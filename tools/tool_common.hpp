// Helpers shared by the emask-* command-line tools.
#pragma once

#include <cstdio>
#include <string>

#include "compiler/masking.hpp"
#include "energy/params.hpp"
#include "util/argparse.hpp"

namespace emask::tools {

inline const char* kPolicyChoices[] = {"original", "selective",
                                       "naive_loadstore", "all_secure"};

/// Maps a validated --policy choice string to the enum.
inline compiler::Policy to_policy(const std::string& name) {
  for (const compiler::Policy p :
       {compiler::Policy::kOriginal, compiler::Policy::kSelective,
        compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure}) {
    if (name == compiler::policy_name(p)) return p;
  }
  throw util::ArgError("--policy: invalid value '" + name + "'");
}

/// The calibrated smart-card parameters, with optional bus coupling (fF).
inline energy::TechParams tech_params(double coupling_ff) {
  return coupling_ff > 0.0
             ? energy::TechParams::smartcard_025um_with_coupling(coupling_ff *
                                                                 1e-15)
             : energy::TechParams::smartcard_025um();
}

/// Standard tool prologue: parse argv, print usage+message on error.
/// Returns 0 to continue, 1 on a usage error, -1 when --help was handled
/// (exit 0).
inline int parse_or_usage(const util::ArgParser& parser, int argc,
                          char** argv) {
  try {
    return parser.parse(argc, argv) ? 0 : -1;
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  }
}

}  // namespace emask::tools
