// Helpers shared by the emask-* command-line tools.
#pragma once

#include <cstdio>
#include <string>

#include "compiler/masking.hpp"
#include "energy/params.hpp"
#include "hiding/policy.hpp"
#include "util/argparse.hpp"

namespace emask::tools {

/// Maps a --policy value to a countermeasure: a masking name
/// ("selective"), a hiding name ("wddl"), or a "masking+hiding" combo
/// ("selective+wddl").
inline hiding::Countermeasure to_countermeasure(const std::string& name) {
  try {
    return hiding::countermeasure_from_name(name);
  } catch (const std::invalid_argument&) {
    throw util::ArgError("--policy: invalid value '" + name + "' (accepted: " +
                         hiding::countermeasure_axis_values() + ")");
  }
}

/// The calibrated smart-card parameters, with optional bus coupling (fF).
inline energy::TechParams tech_params(double coupling_ff) {
  return coupling_ff > 0.0
             ? energy::TechParams::smartcard_025um_with_coupling(coupling_ff *
                                                                 1e-15)
             : energy::TechParams::smartcard_025um();
}

/// Standard tool prologue: parse argv, print usage+message on error.
/// Returns 0 to continue, 1 on a usage error, -1 when --help was handled
/// (exit 0).
inline int parse_or_usage(const util::ArgParser& parser, int argc,
                          char** argv) {
  try {
    return parser.parse(argc, argv) ? 0 : -1;
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  }
}

}  // namespace emask::tools
