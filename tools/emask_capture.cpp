// emask-capture: acquire a power-trace set from the simulated DES card and
// save it as an EMTS file for offline analysis (emask-attack --from=FILE).
//
//   emask-capture --out=FILE [--traces=N] [--policy=NAME] [--key=HEX]
//                 [--window-end=CYCLES] [--noise=PJ] [--coupling=FF]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/trace_io.hpp"
#include "core/batch_runner.hpp"
#include "core/masking_pipeline.hpp"

using namespace emask;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: emask-capture --out=FILE [--traces=N] [--policy=NAME]"
               " [--key=HEX]\n"
               "                     [--window-end=CYCLES] [--noise=PJ] "
               "[--coupling=FF]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  compiler::Policy policy = compiler::Policy::kOriginal;
  int traces = 400;
  std::uint64_t key = 0x133457799BBCDFF1ull;
  std::uint64_t window_end = 13000;
  double noise_pj = 0.0;
  double coupling_ff = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string name = arg.substr(9);
      bool found = false;
      for (const compiler::Policy p :
           {compiler::Policy::kOriginal, compiler::Policy::kSelective,
            compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure}) {
        if (name == compiler::policy_name(p)) {
          policy = p;
          found = true;
        }
      }
      if (!found) return usage();
    } else if (arg.rfind("--traces=", 0) == 0) {
      traces = std::atoi(arg.substr(9).c_str());
    } else if (arg.rfind("--key=", 0) == 0) {
      key = std::strtoull(arg.substr(6).c_str(), nullptr, 16);
    } else if (arg.rfind("--window-end=", 0) == 0) {
      window_end = std::strtoull(arg.substr(13).c_str(), nullptr, 10);
    } else if (arg.rfind("--noise=", 0) == 0) {
      noise_pj = std::atof(arg.substr(8).c_str());
    } else if (arg.rfind("--coupling=", 0) == 0) {
      coupling_ff = std::atof(arg.substr(11).c_str());
    } else {
      return usage();
    }
  }
  if (out_path.empty() || traces < 1) return usage();

  try {
    const energy::TechParams params =
        coupling_ff > 0.0
            ? energy::TechParams::smartcard_025um_with_coupling(coupling_ff *
                                                                1e-15)
            : energy::TechParams::smartcard_025um();
    const auto device = core::MaskingPipeline::des(policy, params);
    // Parallel capture streamed straight to disk: the plaintext for trace i
    // is Rng::nth(0xA77AC4, i) — the same stream emask-attack replays —
    // and measurement noise is seeded per trace index, so the file is
    // identical no matter how many worker threads acquired it.
    core::BatchConfig bc;
    bc.stop_after_cycles = window_end;
    bc.noise_sigma_pj = noise_pj;
    bc.noise_seed = 0xC0FFEE;
    core::BatchRunner runner(device, bc);
    const auto n = static_cast<std::size_t>(traces);
    analysis::TraceSetWriter writer(out_path, n);
    runner.capture_each(
        n, core::random_plaintexts(key, 0xA77AC4),
        [&](std::size_t i, const core::BatchInput& input,
            core::EncryptionRun& run) {
          writer.append(input.plaintext, run.trace);
          if ((i + 1) % 100 == 0) {
            std::printf("  %zu/%d traces\n", i + 1, traces);
          }
        });
    writer.close();
    const core::BatchStats& stats = runner.stats();
    std::printf(
        "wrote %llu traces x %llu cycles to %s\n"
        "  %zu threads, %.2f s wall, %.1f enc/s, %.0f kcycle/s, %.3f uJ "
        "total\n",
        static_cast<unsigned long long>(stats.encryptions),
        static_cast<unsigned long long>(stats.encryptions
                                            ? stats.total_cycles /
                                                  stats.encryptions
                                            : 0),
        out_path.c_str(), stats.threads_used, stats.wall_seconds,
        stats.encryptions_per_sec(), stats.cycles_per_sec() / 1e3,
        stats.total_energy_uj);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-capture: %s\n", e.what());
    return 2;
  }
}
