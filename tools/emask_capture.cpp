// emask-capture: acquire a power-trace set from the simulated DES card and
// save it as an EMTS file for offline analysis (emask-attack --from=FILE).
#include <cstdio>
#include <string>

#include "analysis/trace_io.hpp"
#include "core/batch_runner.hpp"
#include "core/masking_pipeline.hpp"
#include "tool_common.hpp"

using namespace emask;

int main(int argc, char** argv) {
  std::string out_path;
  std::string policy_name = "original";
  std::size_t traces = 400;
  std::uint64_t key = 0x133457799BBCDFF1ull;
  std::uint64_t window_end = 13000;
  double noise_pj = 0.0;
  double coupling_ff = 0.0;

  util::ArgParser parser("emask-capture", "--out=FILE [options]");
  parser.opt_string("out", &out_path, "FILE", "EMTS output path (required)");
  parser.opt_size("traces", &traces, "trace count (default 400)");
  parser.opt_string("policy", &policy_name, "NAME",
                    "device countermeasure: masking (original, selective, "
                    "naive_loadstore, all_secure), hiding (wddl, "
                    "random_precharge, shuffle_nop), or masking+hiding");
  parser.opt_hex("key", &key, "the card's secret key");
  parser.opt_u64("window-end", &window_end,
                 "truncate each encryption after N cycles");
  parser.opt_double("noise", &noise_pj, "Gaussian noise sigma, pJ");
  parser.opt_double("coupling", &coupling_ff, "bus coupling, fF");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;
  if (out_path.empty() || traces < 1) {
    std::fprintf(stderr, "emask-capture: --out=FILE and --traces >= 1 are "
                 "required\n%s", parser.usage().c_str());
    return 1;
  }

  try {
    const hiding::Countermeasure policy = tools::to_countermeasure(policy_name);
    const auto device =
        core::MaskingPipeline::des(policy, tools::tech_params(coupling_ff));
    // Parallel capture streamed straight to disk: the plaintext for trace i
    // is Rng::nth(0xA77AC4, i) — the same stream emask-attack replays —
    // and measurement noise is seeded per trace index, so the file is
    // identical no matter how many worker threads acquired it.
    core::BatchConfig bc;
    bc.stop_after_cycles = window_end;
    bc.noise_sigma_pj = noise_pj;
    bc.noise_seed = 0xC0FFEE;
    core::BatchRunner runner(device, bc);
    analysis::TraceSetWriter writer(out_path, traces);
    runner.capture_each(
        traces, core::random_plaintexts(key, 0xA77AC4),
        [&](std::size_t i, const core::BatchInput& input,
            core::EncryptionRun& run) {
          writer.append(input.plaintext, run.trace);
          if ((i + 1) % 100 == 0) {
            std::printf("  %zu/%zu traces\n", i + 1, traces);
          }
        });
    writer.close();
    const core::BatchStats& stats = runner.stats();
    std::printf(
        "wrote %llu traces x %llu cycles to %s\n"
        "  %zu threads, %.2f s wall, %.1f enc/s, %.0f kcycle/s, %.3f uJ "
        "total\n",
        static_cast<unsigned long long>(stats.encryptions),
        static_cast<unsigned long long>(stats.encryptions
                                            ? stats.total_cycles /
                                                  stats.encryptions
                                            : 0),
        out_path.c_str(), stats.threads_used, stats.wall_seconds,
        stats.encryptions_per_sec(), stats.cycles_per_sec() / 1e3,
        stats.total_energy_uj);
    return 0;
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-capture: %s\n", e.what());
    return 2;
  }
}
