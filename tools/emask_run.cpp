// emask-run: assemble, protect, and simulate an annotated assembly program.
//
//   emask-run program.s [options]
//
// Exit status: 0 on success, 1 on usage errors, 2 on compile/run errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "energy/components.hpp"
#include "tool_common.hpp"
#include "util/csv.hpp"

using namespace emask;

int main(int argc, char** argv) {
  std::string source_path;
  std::string trace_path;
  std::string policy_name = "selective";
  bool listing = false;
  bool breakdown = false;
  bool phases = false;
  double coupling_ff = 0.0;
  std::uint64_t max_cycles = 50'000'000;

  util::ArgParser parser("emask-run", "program.s [options]");
  parser.positional("program.s", &source_path, true,
                    "annotated assembly source");
  parser.opt_string("policy", &policy_name, "NAME",
                    "countermeasure (default selective): masking (original, "
                    "selective, naive_loadstore, all_secure), hiding (wddl, "
                    "random_precharge), or masking+hiding; shuffle_nop needs "
                    "the DES generator's delay slots and is rejected here");
  parser.opt_string("trace", &trace_path, "FILE",
                    "write the per-cycle energy trace CSV");
  parser.flag("listing", &listing,
              "print the compiled program with secure markings");
  parser.flag("breakdown", &breakdown,
              "print the per-component energy table");
  parser.flag("phases", &phases, "print energy per labelled program phase");
  parser.opt_double("coupling", &coupling_ff,
                    "adjacent-line bus coupling, fF");
  parser.opt_u64("max-cycles", &max_cycles,
                 "simulation budget (default 50M)");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  std::ifstream in(source_path);
  if (!in) {
    std::fprintf(stderr, "emask-run: cannot open %s\n", source_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const hiding::Countermeasure policy = tools::to_countermeasure(policy_name);
    const energy::TechParams params = tools::tech_params(coupling_ff);
    const auto pipeline =
        core::MaskingPipeline::from_source(buffer.str(), policy, params);

    const auto& mr = pipeline.mask_result();
    std::printf("policy    : %s\n", policy.name().c_str());
    std::printf("program   : %zu instructions, %zu secured\n",
                pipeline.program().text.size(), mr.secured_count);
    for (const auto& d : mr.slice.diagnostics) {
      std::printf("diagnostic: line %d: %s\n", d.source_line,
                  d.message.c_str());
    }
    if (listing) {
      for (std::size_t i = 0; i < pipeline.program().text.size(); ++i) {
        std::printf("%5zu  %s\n", i,
                    pipeline.program().text[i].to_string().c_str());
      }
    }

    sim::SimConfig config;
    config.max_cycles = max_cycles;
    // run_raw with a custom budget: replicate the core loop here so the CLI
    // can honour --max-cycles.
    sim::Pipeline machine(pipeline.program(), config);
    energy::ProcessorEnergyModel model(params);
    analysis::Trace trace;
    const sim::SimResult result =
        machine.run([&](const energy::CycleActivity& a) {
          trace.push(model.cycle(a) * 1e12);
        });

    std::printf("cycles    : %llu (%llu instructions, CPI %.3f, %llu "
                "stalls, %llu flushes)\n",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.instructions),
                result.cpi(), static_cast<unsigned long long>(result.stalls),
                static_cast<unsigned long long>(result.flushes));
    std::printf("energy    : %.3f uJ (%.1f pJ/cycle)\n", trace.total_uj(),
                trace.mean_pj());

    if (breakdown) {
      std::printf("\n%-14s %12s\n", "component", "energy (uJ)");
      for (std::size_t c = 0; c < energy::kNumComponents; ++c) {
        const auto comp = static_cast<energy::Component>(c);
        std::printf("%-14s %12.4f\n",
                    std::string(energy::component_name(comp)).c_str(),
                    model.breakdown().get(comp) * 1e6);
      }
    }
    if (phases) {
      std::printf("\n%-16s %10s %12s %12s\n", "phase", "cycles",
                  "energy (uJ)", "pJ/cycle");
      for (const core::PhaseEnergy& p :
           core::profile_phases(pipeline, pipeline.program())) {
        if (p.cycles == 0) continue;
        std::printf("%-16s %10llu %12.4f %12.1f\n", p.label.c_str(),
                    static_cast<unsigned long long>(p.cycles), p.energy_uj,
                    p.pj_per_cycle());
      }
    }
    if (!trace_path.empty()) {
      util::CsvWriter csv(trace_path);
      csv.write_header({"cycle", "energy_pj"});
      for (std::size_t i = 0; i < trace.size(); ++i) {
        csv.write_row({static_cast<double>(i), trace[i]});
      }
      csv.flush();
      std::printf("trace     : %s (%zu samples)\n", trace_path.c_str(),
                  trace.size());
    }
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-run: %s\n", e.what());
    return 2;
  }
  return 0;
}
