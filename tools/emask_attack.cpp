// emask-attack: mount side-channel attacks against the simulated DES
// smart card.
//
//   emask-attack [options]
//
// Exit status: 0 attack succeeded (or TVLA passed), 1 usage error,
// 2 runtime error, 3 attack failed / leakage detected.
#include <cstdio>
#include <string>

#include "analysis/collision.hpp"
#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "analysis/mlpa.hpp"
#include "analysis/trace_io.hpp"
#include "analysis/tvla.hpp"
#include "core/leakage_map.hpp"
#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "tool_common.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {
constexpr std::size_t kRound1End = 13000;
}  // namespace

int main(int argc, char** argv) {
  std::string attack = "cpa";
  std::string policy_name = "original";
  int traces = 400;
  int sbox = 1;
  int bit = 0;
  std::uint64_t key = 0x133457799BBCDFF1ull;
  double noise_pj = 0.0;
  double coupling_ff = 0.0;
  std::string from_path;

  util::ArgParser parser("emask-attack", "[options]");
  parser.opt_choice("attack", &attack,
                    {"dpa", "cpa", "mlpa", "collision", "tvla", "localize"},
                    "attack type (default cpa)");
  parser.opt_string("policy", &policy_name, "NAME",
                    "device countermeasure (default original): masking "
                    "(original, selective, naive_loadstore, all_secure), "
                    "hiding (wddl, random_precharge, shuffle_nop), or "
                    "masking+hiding");
  parser.opt_int("traces", &traces, "trace budget (default 400)");
  parser.opt_int("sbox", &sbox, "target round-1 S-box, 1..8 (default 1)");
  parser.opt_int("bit", &bit, "DPA target output bit, 0..3 (default 0)");
  parser.opt_hex("key", &key, "the card's (secret) key");
  parser.opt_double("noise", &noise_pj,
                    "Gaussian measurement noise sigma, pJ");
  parser.opt_double("coupling", &coupling_ff,
                    "adjacent-line bus coupling, fF");
  parser.opt_string("from", &from_path, "FILE",
                    "attack a captured EMTS trace set (see emask-capture) "
                    "instead of the live card");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  sbox -= 1;  // user-facing 1..8 -> internal 0..7
  if (sbox < 0 || sbox > 7 || bit < 0 || bit > 3 || traces < 2) {
    std::fprintf(stderr,
                 "emask-attack: need --sbox in 1..8, --bit in 0..3, "
                 "--traces >= 2\n%s",
                 parser.usage().c_str());
    return 1;
  }

  try {
    const hiding::Countermeasure policy = tools::to_countermeasure(policy_name);
    const energy::TechParams params = tools::tech_params(coupling_ff);
    const auto device = core::MaskingPipeline::des(policy, params);
    analysis::NoiseModel noise(noise_pj, 0xC0FFEE);
    util::Rng rng(0xA77AC4);

    // Offline mode: replay a captured trace set instead of the live card.
    analysis::TraceSet offline;
    std::size_t offline_next = 0;
    if (!from_path.empty()) {
      offline = analysis::load_trace_set(from_path);
      traces = static_cast<int>(offline.size());
      std::printf("loaded %zu traces x %zu cycles from %s\n", offline.size(),
                  offline.traces.empty() ? 0 : offline.traces[0].size(),
                  from_path.c_str());
    } else {
      std::printf("device   : %s policy, %s coupling, noise sigma %.1f pJ\n",
                  policy.name().c_str(),
                  coupling_ff > 0 ? "with" : "no", noise_pj);
      std::printf("capturing %d round-1 traces...\n", traces);
    }

    const auto next_input = [&]() -> std::uint64_t {
      if (!from_path.empty()) return offline.inputs[offline_next];
      return rng.next_u64();
    };
    const auto capture = [&](std::uint64_t pt) {
      if (!from_path.empty()) return offline.traces[offline_next++];
      analysis::Trace t = device.run_des(key, pt, kRound1End).trace;
      return noise_pj > 0.0 ? noise.apply(t) : t;
    };
    const int truth = analysis::DpaAttack::true_subkey_chunk(key, sbox);

    if (attack == "dpa") {
      analysis::DpaConfig cfg;
      cfg.sbox = sbox;
      cfg.bit = bit;
      cfg.window_begin = 3000;
      cfg.window_end = kRound1End;
      analysis::DpaAttack dpa(cfg);
      for (int i = 0; i < traces; ++i) {
        const std::uint64_t pt = next_input();
        dpa.add_trace(pt, capture(pt));
      }
      const analysis::DpaResult r = dpa.solve();
      std::printf("DoM peak %.4f pJ for guess %d (margin %.2fx); true "
                  "chunk %d -> %s\n",
                  r.best_peak, r.best_guess, r.margin(), truth,
                  r.best_guess == truth ? "RECOVERED" : "not recovered");
      return r.best_guess == truth ? 0 : 3;
    }
    if (attack == "cpa") {
      analysis::CpaConfig cfg;
      cfg.sbox = sbox;
      cfg.window_begin = 3000;
      cfg.window_end = kRound1End;
      analysis::CpaAttack cpa(cfg);
      for (int i = 0; i < traces; ++i) {
        const std::uint64_t pt = next_input();
        cpa.add_trace(pt, capture(pt));
      }
      const analysis::CpaResult r = cpa.solve();
      std::printf("|rho| %.4f for guess %d (margin %.2fx); true chunk %d "
                  "-> %s\n",
                  r.best_corr, r.best_guess, r.margin(), truth,
                  r.best_guess == truth ? "RECOVERED" : "not recovered");
      return r.best_guess == truth ? 0 : 3;
    }
    if (attack == "mlpa" || attack == "collision") {
      // Per-S-box windows: adjacent S-boxes share expansion bits, so a
      // round-wide window plants ghost correlations for wrong guesses.
      const core::SboxWindow w =
          core::des_round1_sbox_window(device.program(), sbox);
      const std::size_t wb = w.valid() ? w.begin : 3000;
      const std::size_t we = w.valid() ? w.end : kRound1End;
      if (attack == "mlpa") {
        analysis::MlpaConfig cfg;
        cfg.sbox = sbox;
        cfg.window_begin = wb;
        cfg.window_end = we;
        analysis::MlpaAttack mlpa(cfg);
        for (int i = 0; i < traces; ++i) {
          const std::uint64_t pt = next_input();
          mlpa.add_trace(pt, capture(pt));
        }
        const analysis::MlpaResult r = mlpa.solve();
        std::printf("MLPA score %.4f for guess %d over %zu approximations "
                    "(margin %.2fx); true chunk %d -> %s\n",
                    r.best_score, r.best_guess, mlpa.approximations().size(),
                    r.margin(), truth,
                    r.best_guess == truth ? "RECOVERED" : "not recovered");
        return r.best_guess == truth ? 0 : 3;
      }
      analysis::CollisionConfig cfg;
      cfg.sbox = sbox;
      cfg.window_begin = wb;
      cfg.window_end = we;
      analysis::CollisionAttack collision(cfg);
      for (int i = 0; i < traces; ++i) {
        const std::uint64_t pt = next_input();
        collision.add_trace(pt, capture(pt));
      }
      const analysis::CollisionResult r = collision.solve();
      std::printf("collision score %.4f for guess %d (%zu/64 input classes "
                  "seen); true chunk %d -> %s\n",
                  r.best_score, r.best_guess, r.classes_seen, truth,
                  r.best_guess == truth ? "RECOVERED" : "not recovered");
      return r.best_guess == truth ? 0 : 3;
    }
    if (attack == "localize") {
      const core::LeakageMap map = core::localize_des_leakage(
          device, key, 0x0123456789ABCDEFull, std::max(2, traces / 2));
      std::printf("leaking cycles: %zu (max |t| %.1f) across %zu source "
                  "sites\n",
                  map.total_leaking_cycles, map.max_abs_t, map.sites.size());
      std::printf("%6s %6s  %-26s %8s %8s\n", "line", "index", "instruction",
                  "cycles", "max |t|");
      int shown = 0;
      for (const core::LeakSite& site : map.sites) {
        if (shown++ >= 15) break;
        std::printf("%6d %6u  %-26s %8zu %8.1f\n", site.source_line,
                    site.instr_index, site.instruction.c_str(),
                    site.leaking_cycles, site.max_abs_t);
      }
      return map.leaks() ? 3 : 0;
    }
    // attack == "tvla" (opt_choice already rejected anything else).
    analysis::TvlaAssessment tvla(3000, kRound1End);
    for (int i = 0; i < traces / 2; ++i) {
      tvla.add_fixed(capture(0x0123456789ABCDEFull));
      tvla.add_random(capture(rng.next_u64()));
    }
    const analysis::TvlaResult r = tvla.solve();
    std::printf("TVLA: max |t| = %.2f at cycle %zu; %zu cycles over the "
                "4.5 threshold -> %s\n",
                r.max_abs_t, r.worst_cycle, r.cycles_over_threshold,
                r.leaks() ? "LEAKS" : "passes");
    return r.leaks() ? 3 : 0;
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-attack: %s\n", e.what());
    return 2;
  }
}
