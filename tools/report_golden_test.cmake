# Registered ctest (see tools/CMakeLists.txt): renders the checked-in
# fixture campaign twice and byte-compares both outputs against the golden
# HTML — the report determinism contract, exercised through the real CLI.
#
# Invoked as:
#   cmake -DTOOL=<emask-report> -DFIXTURE=<fixture dir> -DGOLDEN=<.html>
#         -DWORK=<scratch dir> -P report_golden_test.cmake
foreach(var TOOL FIXTURE GOLDEN WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_golden_test: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "report_golden_test: '${ARGV}' exited ${status}")
  endif()
endfunction()

# Two renders of the same manifest: both must byte-match the golden file.
run_step("${TOOL}" "${FIXTURE}" --out=${WORK}/a.html)
run_step("${TOOL}" "${FIXTURE}" --out=${WORK}/b.html)

foreach(rendered a.html b.html)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK}/${rendered}" "${GOLDEN}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "report_golden_test: ${rendered} differs from the "
                        "golden report — determinism contract broken (if the "
                        "report layout changed on purpose, regenerate "
                        "tests/data/fixture_campaign.golden.html with "
                        "emask-report and commit it)")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "report_golden_test: fixture report byte-identical to golden")
