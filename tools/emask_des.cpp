// emask-des: emit the annotated DES assembly program, or run a block
// end-to-end on the simulated card.
//
//   emask-des --emit [--decrypt]                      print the program
//   emask-des --key=HEX --block=HEX [--decrypt]       simulate one block
//             [--policy=NAME]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/masking_pipeline.hpp"
#include "des/asm_generator.hpp"
#include "des/des.hpp"

using namespace emask;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: emask-des --emit [--decrypt]\n"
      "       emask-des --key=HEX --block=HEX [--decrypt] [--policy=NAME]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false;
  bool decrypt = false;
  std::uint64_t key = 0, block = 0;
  bool have_key = false, have_block = false;
  compiler::Policy policy = compiler::Policy::kSelective;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit") {
      emit = true;
    } else if (arg == "--decrypt") {
      decrypt = true;
    } else if (arg.rfind("--key=", 0) == 0) {
      key = std::strtoull(arg.substr(6).c_str(), nullptr, 16);
      have_key = true;
    } else if (arg.rfind("--block=", 0) == 0) {
      block = std::strtoull(arg.substr(8).c_str(), nullptr, 16);
      have_block = true;
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string name = arg.substr(9);
      bool found = false;
      for (const compiler::Policy p :
           {compiler::Policy::kOriginal, compiler::Policy::kSelective,
            compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure}) {
        if (name == compiler::policy_name(p)) {
          policy = p;
          found = true;
        }
      }
      if (!found) return usage();
    } else {
      return usage();
    }
  }

  des::DesAsmOptions options;
  options.decrypt = decrypt;
  if (emit) {
    std::fputs(des::generate_des_asm(0, 0, options).c_str(), stdout);
    return 0;
  }
  if (!have_key || !have_block) return usage();

  try {
    const auto pipeline = core::MaskingPipeline::des(
        policy, energy::TechParams::smartcard_025um(), options);
    const core::EncryptionRun run = pipeline.run_des(key, block);
    const std::uint64_t golden = decrypt ? des::decrypt_block(block, key)
                                         : des::encrypt_block(block, key);
    std::printf("%s 0x%016llX under key 0x%016llX -> 0x%016llX\n",
                decrypt ? "decrypt" : "encrypt",
                static_cast<unsigned long long>(block),
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(run.cipher));
    std::printf("golden  : 0x%016llX (%s)\n",
                static_cast<unsigned long long>(golden),
                golden == run.cipher ? "match" : "MISMATCH");
    std::printf("policy  : %s — %zu secured instructions, %.2f uJ, %llu "
                "cycles\n",
                compiler::policy_name(policy).data(),
                pipeline.mask_result().secured_count, run.total_uj(),
                static_cast<unsigned long long>(run.sim.cycles));
    return golden == run.cipher ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-des: %s\n", e.what());
    return 2;
  }
}
