// emask-des: emit the annotated DES assembly program, or run a block
// end-to-end on the simulated card.
//
//   emask-des --emit [--decrypt]                      print the program
//   emask-des --key=HEX --block=HEX [--decrypt]       simulate one block
//             [--policy=NAME]
#include <cstdio>
#include <string>

#include "core/masking_pipeline.hpp"
#include "des/asm_generator.hpp"
#include "des/des.hpp"
#include "tool_common.hpp"

using namespace emask;

int main(int argc, char** argv) {
  bool emit = false;
  bool decrypt = false;
  std::uint64_t key = 0;
  std::uint64_t block = 0;
  std::string policy_name = "selective";

  util::ArgParser parser("emask-des",
                         "--emit [--decrypt] | --key=HEX --block=HEX "
                         "[options]");
  parser.flag("emit", &emit, "print the annotated DES program and exit");
  parser.flag("decrypt", &decrypt, "generate/run the decryption direction");
  parser.opt_hex("key", &key, "the card's key");
  parser.opt_hex("block", &block, "the 64-bit input block");
  parser.opt_string("policy", &policy_name, "NAME",
                    "device countermeasure: masking (original, selective, "
                    "naive_loadstore, all_secure), hiding (wddl, "
                    "random_precharge, shuffle_nop), or masking+hiding");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  des::DesAsmOptions options;
  options.decrypt = decrypt;
  if (emit) {
    std::fputs(des::generate_des_asm(0, 0, options).c_str(), stdout);
    return 0;
  }
  // argv presence check: a legitimately all-zero key is still explicit.
  bool have_key = false;
  bool have_block = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--key=", 0) == 0) have_key = true;
    if (arg.rfind("--block=", 0) == 0) have_block = true;
  }
  if (!have_key || !have_block) {
    std::fprintf(stderr, "emask-des: --key and --block are required unless "
                 "--emit\n%s", parser.usage().c_str());
    return 1;
  }

  try {
    const hiding::Countermeasure policy = tools::to_countermeasure(policy_name);
    const auto pipeline = core::MaskingPipeline::des(
        policy, energy::TechParams::smartcard_025um(), options);
    const core::EncryptionRun run = pipeline.run_des(key, block);
    const std::uint64_t golden = decrypt ? des::decrypt_block(block, key)
                                         : des::encrypt_block(block, key);
    std::printf("%s 0x%016llX under key 0x%016llX -> 0x%016llX\n",
                decrypt ? "decrypt" : "encrypt",
                static_cast<unsigned long long>(block),
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(run.cipher));
    std::printf("golden  : 0x%016llX (%s)\n",
                static_cast<unsigned long long>(golden),
                golden == run.cipher ? "match" : "MISMATCH");
    std::printf("policy  : %s — %zu secured instructions, %.2f uJ, %llu "
                "cycles\n",
                policy.name().c_str(),
                pipeline.mask_result().secured_count, run.total_uj(),
                static_cast<unsigned long long>(run.sim.cycles));
    return golden == run.cipher ? 0 : 2;
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), parser.usage().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-des: %s\n", e.what());
    return 2;
  }
}
