// emask-campaign: declare an experiment matrix once, run it reproducibly —
// on one machine or sharded across many.
//
//   emask-campaign run SPEC.ini --out=DIR [--jobs=N] [--resume]
//                  [--shard=i/N] [--dry-run] [--limit=K] [--quiet]
//                  [--report]
//   emask-campaign merge DIR... --out=DIR [--quiet]
//
// `run` expands the spec's axes into a scenario grid and executes it
// through the parallel BatchRunner with per-scenario checkpointing; a
// killed campaign rerun with --resume continues from the last completed
// scenario and produces a byte-identical manifest.  --shard=i/N executes
// only the scenarios of one deterministic partition (round-robin over the
// canonical matrix order) and writes manifest.shard-i-of-N.json instead.
// `merge` validates N such shard directories (same spec hash, disjoint and
// complete shard set) and emits a manifest.json byte-identical to a
// single-machine run of the same spec.  --dry-run prints the expanded
// matrix without simulating anything.  Example specs live in
// examples/campaigns/.
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "report/html.hpp"
#include "tool_common.hpp"

using namespace emask;

namespace {

int run_command(int argc, char** argv) {
  std::string command;
  std::string spec_path;
  std::string out_dir;
  std::string shard_text;
  std::string backend_text;
  std::size_t jobs = 0;
  std::size_t limit = 0;
  bool resume = false;
  bool dry_run = false;
  bool quiet = false;
  bool report = false;

  util::ArgParser parser("emask-campaign", "run SPEC.ini [options]");
  parser.positional("command", &command, true, "subcommand: run");
  parser.positional("spec", &spec_path, true, "campaign spec file (INI)");
  parser.opt_string("out", &out_dir, "DIR",
                    "output directory (default: campaigns/<name>)");
  parser.opt_size("jobs", &jobs,
                  "worker threads per scenario batch (0 = all cores)");
  parser.opt_size("limit", &limit,
                  "stop after K executed scenarios (controlled interrupt)");
  parser.opt_string("shard", &shard_text, "i/N",
                    "run only partition i of N (for distributed sweeps)");
  parser.opt_string("backend", &backend_text, "NAME",
                    "hypothesis/energy backend: auto, scalar, or bitslice "
                    "(bit-identical results; default bitslice)");
  parser.flag("resume", &resume, "reuse checkpoints from a previous run");
  parser.flag("dry-run", &dry_run, "print the scenario matrix and exit");
  parser.flag("quiet", &quiet, "suppress per-scenario progress output");
  parser.flag("report", &report,
              "render a self-contained report.html after a successful run");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  try {
    const campaign::CampaignSpec spec =
        campaign::CampaignSpec::load_file(spec_path);
    const auto scenarios = spec.expand();
    if (dry_run) {
      campaign::CampaignRunner::print_matrix(spec, scenarios, stdout);
      return 0;
    }
    campaign::RunnerOptions options;
    options.out_dir = out_dir.empty() ? "campaigns/" + spec.name : out_dir;
    options.jobs = jobs;
    options.resume = resume;
    options.limit = limit;
    options.quiet = quiet;
    if (!backend_text.empty()) {
      options.backend = campaign::backend_from_name(backend_text);
    }
    if (!shard_text.empty()) {
      options.shard = campaign::ShardSpec::parse(shard_text);
    }
    campaign::CampaignRunner runner(spec, options);
    const campaign::CampaignReport result = runner.run();
    if (!quiet && result.complete) {
      const std::string manifest =
          options.shard.sharded()
              ? "manifest." + options.shard.label() + ".json"
              : "manifest.json";
      std::printf("\ncampaign %s: %zu scenarios (%zu executed, %zu "
                  "resumed) -> %s/%s\n",
                  spec.name.c_str(), result.total_scenarios, result.executed,
                  result.resumed, options.out_dir.c_str(), manifest.c_str());
    }
    if (report && result.complete) {
      // Same library path as the emask-report CLI: load the manifest the
      // run just wrote (per-shard for sharded runs) and render next to it.
      const std::string html_path =
          options.shard.sharded()
              ? options.out_dir + "/report." + options.shard.label() +
                    ".html"
              : options.out_dir + "/report.html";
      const std::size_t bytes =
          report::render_directory(options.out_dir, html_path);
      if (!quiet) {
        std::printf("report: %s (%zu bytes, self-contained)\n",
                    html_path.c_str(), bytes);
      }
    }
    return result.complete ? 0 : 3;
  } catch (const campaign::SpecError& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 2;
  }
}

int merge_command(int argc, char** argv) {
  std::string command;
  std::string out_dir;
  bool quiet = false;
  campaign::MergeOptions options;

  util::ArgParser parser("emask-campaign", "merge DIR... --out=DIR");
  parser.positional("command", &command, true, "subcommand: merge");
  parser.positional_rest("dir", &options.shard_dirs,
                         "shard output directories (from run --shard=i/N)");
  parser.opt_string("out", &out_dir, "DIR", "merged output directory");
  parser.flag("quiet", &quiet, "suppress progress output");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  try {
    if (out_dir.empty()) {
      throw campaign::SpecError(
          "merge: --out=DIR is required (the merged directory)");
    }
    options.out_dir = out_dir;
    options.quiet = quiet;
    (void)campaign::merge_shards(options);
    return 0;
  } catch (const campaign::SpecError& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 2;
  }
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: emask-campaign <command> [options]\n"
               "  run SPEC.ini [--out=DIR] [--jobs=N] [--resume]\n"
               "               [--shard=i/N] [--dry-run] [--limit=K] "
               "[--quiet] [--report]\n"
               "  merge DIR... --out=DIR [--quiet]\n"
               "run `emask-campaign <command> --help` for per-command "
               "options\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  if (command == "run") return run_command(argc, argv);
  if (command == "merge") return merge_command(argc, argv);
  std::fprintf(stderr, "emask-campaign: unknown command '%s' (expected "
               "run|merge)\n", command.c_str());
  print_usage(stderr);
  return 1;
}
