// emask-campaign: declare an experiment matrix once, run it reproducibly.
//
//   emask-campaign run SPEC.ini --out=DIR [--jobs=N] [--resume]
//                  [--dry-run] [--limit=K] [--quiet]
//
// `run` expands the spec's axes into a scenario grid and executes it
// through the parallel BatchRunner with per-scenario checkpointing; a
// killed campaign rerun with --resume continues from the last completed
// scenario and produces a byte-identical manifest.  --dry-run prints the
// expanded matrix without simulating anything.  Example specs live in
// examples/campaigns/.
#include <cstdio>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "tool_common.hpp"

using namespace emask;

int main(int argc, char** argv) {
  std::string command;
  std::string spec_path;
  std::string out_dir;
  std::size_t jobs = 0;
  std::size_t limit = 0;
  bool resume = false;
  bool dry_run = false;
  bool quiet = false;

  util::ArgParser parser("emask-campaign", "run SPEC.ini [options]");
  parser.positional("command", &command, true, "subcommand: run");
  parser.positional("spec", &spec_path, true, "campaign spec file (INI)");
  parser.opt_string("out", &out_dir, "DIR",
                    "output directory (default: campaigns/<name>)");
  parser.opt_size("jobs", &jobs,
                  "worker threads per scenario batch (0 = all cores)");
  parser.opt_size("limit", &limit,
                  "stop after K executed scenarios (controlled interrupt)");
  parser.flag("resume", &resume, "reuse checkpoints from a previous run");
  parser.flag("dry-run", &dry_run, "print the scenario matrix and exit");
  parser.flag("quiet", &quiet, "suppress per-scenario progress output");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;
  if (command != "run") {
    std::fprintf(stderr,
                 "emask-campaign: unknown command '%s' (expected run)\n%s",
                 command.c_str(), parser.usage().c_str());
    return 1;
  }

  try {
    const campaign::CampaignSpec spec =
        campaign::CampaignSpec::load_file(spec_path);
    const auto scenarios = spec.expand();
    if (dry_run) {
      campaign::CampaignRunner::print_matrix(spec, scenarios, stdout);
      return 0;
    }
    campaign::RunnerOptions options;
    options.out_dir = out_dir.empty() ? "campaigns/" + spec.name : out_dir;
    options.jobs = jobs;
    options.resume = resume;
    options.limit = limit;
    options.quiet = quiet;
    campaign::CampaignRunner runner(spec, options);
    const campaign::CampaignReport report = runner.run();
    if (!quiet && report.complete) {
      std::printf("\ncampaign %s: %zu scenarios (%zu executed, %zu "
                  "resumed) -> %s/manifest.json\n",
                  spec.name.c_str(), report.total_scenarios, report.executed,
                  report.resumed, options.out_dir.c_str());
    }
    return report.complete ? 0 : 3;
  } catch (const campaign::SpecError& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-campaign: %s\n", e.what());
    return 2;
  }
}
