# Registered ctest (see tools/CMakeLists.txt): runs an example campaign as
# two shards with different thread counts, merges them, runs the same spec
# unsharded, and byte-compares the manifests — the distributed-provenance
# guarantee, exercised through the real CLI.
#
# Invoked as:
#   cmake -DTOOL=<emask-campaign> -DSPEC=<spec.ini> -DWORK=<scratch dir>
#         -P shard_merge_test.cmake
foreach(var TOOL SPEC WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_merge_test: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "shard_merge_test: '${ARGV}' exited ${status}")
  endif()
endfunction()

# Different --jobs per invocation on purpose: neither the partition nor the
# merged manifest may depend on thread count or scheduling.
run_step("${TOOL}" run "${SPEC}" --out=${WORK}/s0 --shard=0/2 --jobs=1 --quiet)
run_step("${TOOL}" run "${SPEC}" --out=${WORK}/s1 --shard=1/2 --jobs=2 --quiet)
run_step("${TOOL}" run "${SPEC}" --out=${WORK}/full --jobs=3 --quiet)
run_step("${TOOL}" merge ${WORK}/s0 ${WORK}/s1 --out=${WORK}/merged --quiet)

foreach(file manifest.json summary.csv)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK}/merged/${file}" "${WORK}/full/${file}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "shard_merge_test: merged ${file} differs from the "
                        "unsharded run — byte-identity contract broken")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "shard_merge_test: merged manifest byte-identical to the "
               "unsharded run")
