// emask-report: one self-contained HTML file from a campaign output
// directory.
//
//   emask-report MANIFEST_DIR [--out=report.html] [--title=...]
//
// MANIFEST_DIR is an `emask-campaign run` (or `merge`) output directory:
// the manifest.json inside is the source of truth, and the per-scenario
// artifact CSVs under scenarios/ feed the drill-down charts.  An unmerged
// shard directory (manifest.shard-i-of-N.json) renders too, with the
// shard provenance called out in the header.
//
// The output is deterministic — same manifest and artifacts, byte-
// identical HTML (see src/report/README.md) — and fully self-contained:
// inline CSS + inline SVG, zero external resources.
#include <cstdio>
#include <string>

#include "campaign/spec.hpp"
#include "report/html.hpp"
#include "tool_common.hpp"
#include "util/json.hpp"

using namespace emask;

int main(int argc, char** argv) {
  std::string dir;
  std::string out_path;
  std::string title;

  util::ArgParser parser("emask-report",
                         "MANIFEST_DIR [--out=report.html] [--title=...]");
  parser.positional("manifest_dir", &dir, true,
                    "campaign output directory (holds manifest.json)");
  parser.opt_string("out", &out_path, "FILE",
                    "output HTML path (default: MANIFEST_DIR/report.html)");
  parser.opt_string("title", &title, "TEXT",
                    "page title (default: campaign <name>)");
  const int parsed = tools::parse_or_usage(parser, argc, argv);
  if (parsed != 0) return parsed > 0 ? 1 : 0;

  try {
    if (out_path.empty()) out_path = dir + "/report.html";
    report::RenderOptions options;
    options.title = title;
    const std::size_t bytes =
        report::render_directory(dir, out_path, options);
    std::printf("emask-report: %s -> %s (%zu bytes, self-contained)\n",
                dir.c_str(), out_path.c_str(), bytes);
    return 0;
  } catch (const report::ReportError& e) {
    std::fprintf(stderr, "emask-report: %s\n", e.what());
    return 1;
  } catch (const campaign::SpecError& e) {
    std::fprintf(stderr, "emask-report: %s\n", e.what());
    return 1;
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "emask-report: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emask-report: %s\n", e.what());
    return 2;
  }
}
