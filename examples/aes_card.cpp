// AES-128 on the simulated smart card: the post-DES workload, protected by
// the same compiler pass and hardware — and attacked by the classic
// first-round CPA when unprotected.
#include <cstdio>

#include "aes/aes128.hpp"
#include "aes/asm_generator.hpp"
#include "analysis/generic_cpa.hpp"
#include "core/masking_pipeline.hpp"
#include "util/rng.hpp"

using namespace emask;

int main() {
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  const aes::Block pt = {0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
                         0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34};
  const std::string source = aes::generate_aes_asm(key, pt);

  const auto masked =
      core::MaskingPipeline::from_source(source, compiler::Policy::kSelective);
  sim::Pipeline machine(masked.program());
  machine.run();
  const aes::Block ct = aes::read_cipher(machine.memory(), masked.program());
  const aes::Block golden = aes::encrypt_block(pt, key);

  std::printf("AES-128 ciphertext (card)  : ");
  for (const auto b : ct) std::printf("%02x", b);
  std::printf("\nAES-128 ciphertext (golden): ");
  for (const auto b : golden) std::printf("%02x", b);
  std::printf("  [%s]\n", ct == golden ? "match" : "MISMATCH");

  const auto run = masked.run_raw();
  std::printf("energy: %.2f uJ over %llu cycles; %zu of %zu instructions "
              "secured by the forward slice\n",
              run.total_uj(),
              static_cast<unsigned long long>(run.sim.cycles),
              masked.mask_result().secured_count,
              masked.program().text.size());

  // The attacker's view: CPA on key byte 0 with 200 random plaintexts.
  std::printf("\nCPA on key byte 0 (Hamming weight of sbox(pt[0]^guess)):\n");
  for (const compiler::Policy policy :
       {compiler::Policy::kOriginal, compiler::Policy::kSelective}) {
    const auto device = core::MaskingPipeline::from_source(source, policy);
    analysis::GenericCpa cpa(256, 3000, 4000);
    util::Rng rng(0xAE5CA8D);
    for (int i = 0; i < 200; ++i) {
      aes::Block p;
      for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_below(256));
      assembler::Program image = device.program();
      aes::poke_plaintext(image, p);
      std::vector<int> h(256);
      for (int g = 0; g < 256; ++g) {
        h[static_cast<std::size_t>(g)] = std::popcount(
            static_cast<unsigned>(aes::sbox(static_cast<std::uint8_t>(
                p[0] ^ g))));
      }
      cpa.add_trace(h, device.run_image(image, 4000).trace);
    }
    const auto r = cpa.solve();
    std::printf("  %-10s: best guess 0x%02X (true 0x%02X), |rho| = %.3f\n",
                compiler::policy_name(policy).data(),
                r.best_guess < 0 ? 0 : r.best_guess, key[0], r.best_corr);
  }
  return ct == golden ? 0 : 1;
}
