// Triple-DES (EDE3) on the simulated smart card — the construction real
// payment cards of the era actually ran, here as a multi-block outer-CBC
// session through the session engine: every block passes E(K1)-D(K2)-E(K3)
// on the masked processor, chained on the device, each stage's key
// schedule computed once per session.  Cross-checks against the golden
// model, then reports what the protection costs at 3DES scale.
#include <cstdio>

#include "des/des.hpp"
#include "session/session.hpp"

using namespace emask;

int main() {
  session::SessionConfig cfg;
  cfg.cipher = session::SessionCipher::kTdesEdeCbc;
  cfg.keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
              0x456789ABCDEF0123ull};
  cfg.iv = 0xA5A5A5A55A5A5A5Aull;

  const std::vector<std::uint64_t> blocks =
      session::pack_message(std::string_view("Now is the time for all "));

  const auto run_policy = [&](compiler::Policy policy) {
    session::SessionConfig c = cfg;
    c.policy = policy;
    session::SessionEngine card(c);
    return card.encrypt(blocks);
  };

  const session::SessionResult original =
      run_policy(compiler::Policy::kOriginal);
  const session::SessionResult masked =
      run_policy(compiler::Policy::kSelective);
  const std::vector<std::uint64_t> golden =
      session::golden_encrypt(cfg.cipher, cfg.keys, cfg.iv, blocks);

  const bool match = original.output == golden && masked.output == golden;
  std::printf("3DES-EDE outer-CBC session on the simulated card\n");
  std::printf("blocks        : %zu (x%zu DES passes each)\n", blocks.size(),
              original.stages);
  std::printf("card cipher   : 0x%016llX ...\n",
              static_cast<unsigned long long>(original.output.front()));
  std::printf("golden cipher : 0x%016llX ...  (%s)\n",
              static_cast<unsigned long long>(golden.front()),
              match ? "match" : "MISMATCH");
  std::printf("\nunprotected   : %.1f uJ, %llu cycles\n", original.total_uj,
              static_cast<unsigned long long>(original.cold_cycles));
  std::printf("masked        : %.1f uJ, %llu cycles (+%.1f%% energy, "
              "identical timing)\n",
              masked.total_uj,
              static_cast<unsigned long long>(masked.cold_cycles),
              100.0 * (masked.total_uj / original.total_uj - 1.0));
  std::printf("amortization  : %llu prefix cycles/stage hoisted, %.2fx "
              "session speedup\n",
              static_cast<unsigned long long>(masked.prefix_cycles / 3),
              masked.amortized_speedup());
  return (match && original.cold_cycles == masked.cold_cycles) ? 0 : 1;
}
