// Triple-DES (EDE3) on the simulated smart card — the construction real
// payment cards of the era actually ran.  Chains three single-block runs
// (encrypt with K1, decrypt with K2, encrypt with K3) through the masked
// processor and cross-checks against the golden model, then reports what
// the protection costs at 3DES scale.
#include <cstdio>

#include "core/masking_pipeline.hpp"
#include "des/des.hpp"

using namespace emask;

int main() {
  const std::uint64_t k1 = 0x0123456789ABCDEFull;
  const std::uint64_t k2 = 0x23456789ABCDEF01ull;
  const std::uint64_t k3 = 0x456789ABCDEF0123ull;
  const std::uint64_t plaintext = 0x4E6F772069732074ull;  // "Now is t"

  des::DesAsmOptions dec_opts;
  dec_opts.decrypt = true;
  const auto params = energy::TechParams::smartcard_025um();

  struct Card {
    core::MaskingPipeline enc;
    core::MaskingPipeline dec;
  };
  const auto make_card = [&](compiler::Policy policy) {
    return Card{core::MaskingPipeline::des(policy, params),
                core::MaskingPipeline::des(policy, params, dec_opts)};
  };

  const auto run_ede3 = [&](const Card& card, double* total_uj,
                            std::uint64_t* total_cycles) {
    *total_uj = 0.0;
    *total_cycles = 0;
    const auto stage = [&](const core::MaskingPipeline& p, std::uint64_t key,
                           std::uint64_t block) {
      const core::EncryptionRun r = p.run_des(key, block);
      *total_uj += r.total_uj();
      *total_cycles += r.sim.cycles;
      return r.cipher;
    };
    const std::uint64_t s1 = stage(card.enc, k1, plaintext);
    const std::uint64_t s2 = stage(card.dec, k2, s1);
    return stage(card.enc, k3, s2);
  };

  const Card original = make_card(compiler::Policy::kOriginal);
  const Card masked = make_card(compiler::Policy::kSelective);

  double uj_orig = 0, uj_masked = 0;
  std::uint64_t cyc_orig = 0, cyc_masked = 0;
  const std::uint64_t ct_orig = run_ede3(original, &uj_orig, &cyc_orig);
  const std::uint64_t ct_masked = run_ede3(masked, &uj_masked, &cyc_masked);
  const std::uint64_t golden = des::encrypt_block_ede3(plaintext, k1, k2, k3);

  std::printf("3DES-EDE3 on the simulated card\n");
  std::printf("plaintext     : 0x%016llX\n",
              static_cast<unsigned long long>(plaintext));
  std::printf("card cipher   : 0x%016llX\n",
              static_cast<unsigned long long>(ct_orig));
  std::printf("golden cipher : 0x%016llX  (%s)\n",
              static_cast<unsigned long long>(golden),
              golden == ct_orig && golden == ct_masked ? "match" : "MISMATCH");
  std::printf("\nunprotected   : %.1f uJ, %llu cycles\n", uj_orig,
              static_cast<unsigned long long>(cyc_orig));
  std::printf("masked        : %.1f uJ, %llu cycles (+%.1f%% energy, "
              "identical timing)\n",
              uj_masked, static_cast<unsigned long long>(cyc_masked),
              100.0 * (uj_masked / uj_orig - 1.0));
  return (golden == ct_orig && golden == ct_masked &&
          cyc_orig == cyc_masked)
             ? 0
             : 1;
}
