// A realistic card session: encrypt a multi-block message in CBC mode on
// the masked smart card through the session engine — chaining happens on
// the device (the chaining XOR is part of the simulated trace) and the key
// schedule is computed once per session, with blocks 2..N forking from the
// post-key-schedule snapshot.
#include <cstdio>
#include <string>

#include "des/des.hpp"
#include "session/session.hpp"

using namespace emask;

int main() {
  const std::string message =
      "PAY 100.00 EUR TO ACCOUNT 12-3456-789 REF 20260707";  // 50 bytes

  session::SessionConfig cfg;
  cfg.cipher = session::SessionCipher::kDesCbc;
  cfg.keys.k1 = 0x0123456789ABCDEFull;
  cfg.iv = 0xFEDCBA9876543210ull;
  cfg.policy = compiler::Policy::kSelective;

  // PKCS#7 padding over 8-byte blocks — 50 bytes become 7 blocks, the
  // last carrying six 0x06 pad bytes (never a silent zero-pad).
  const std::vector<std::uint64_t> blocks = session::pack_message(message);

  session::SessionEngine card(cfg);
  const session::SessionResult enc = card.encrypt(blocks);

  const auto golden =
      des::cbc_encrypt(blocks, cfg.keys.k1, cfg.iv);  // host-side model
  std::printf("message   : \"%s\" (%zu blocks)\n", message.c_str(),
              blocks.size());
  std::printf("ciphertext:");
  for (const std::uint64_t c : enc.output) {
    std::printf(" %016llX", static_cast<unsigned long long>(c));
  }
  std::printf("\ngolden CBC: %s\n",
              enc.output == golden ? "match" : "MISMATCH");
  std::printf("session   : %.1f uJ, %llu amortized cycles on the masked "
              "card (vs %llu cold, %.2fx)\n",
              enc.total_uj,
              static_cast<unsigned long long>(enc.session_cycles),
              static_cast<unsigned long long>(enc.cold_cycles),
              enc.amortized_speedup());

  // And the terminal can decrypt it back with the decryption devices.
  const session::SessionResult dec = card.decrypt(enc.output);
  const std::vector<std::uint8_t> bytes = session::unpack_message(dec.output);
  const bool round_trip =
      dec.output == blocks &&
      std::string(bytes.begin(), bytes.end()) == message;
  std::printf("round-trip: %s\n",
              round_trip ? "plaintext recovered" : "FAILED");
  return (enc.output == golden && round_trip) ? 0 : 1;
}
