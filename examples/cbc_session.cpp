// A realistic card session: encrypt a multi-block message in CBC mode on
// the masked smart card, one block-encryption per card transaction, with
// the chaining done host-side (as a terminal would drive a payment card).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/masking_pipeline.hpp"
#include "des/des.hpp"

using namespace emask;

int main() {
  const std::uint64_t key = 0x0123456789ABCDEFull;
  const std::uint64_t iv = 0xFEDCBA9876543210ull;
  const std::string message =
      "PAY 100.00 EUR TO ACCOUNT 12-3456-789 REF 20260707";  // 56 bytes

  // Pack into 64-bit blocks (zero padding — fine for a demo).
  std::vector<std::uint64_t> blocks;
  for (std::size_t off = 0; off < message.size(); off += 8) {
    std::uint64_t b = 0;
    for (int i = 0; i < 8 && off + static_cast<std::size_t>(i) < message.size(); ++i) {
      b |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(message[off + static_cast<std::size_t>(i)]))
           << (56 - 8 * i);
    }
    blocks.push_back(b);
  }

  const auto card = core::MaskingPipeline::des(compiler::Policy::kSelective);
  std::vector<std::uint64_t> ciphertext;
  std::uint64_t chain = iv;
  double total_uj = 0.0;
  std::uint64_t total_cycles = 0;
  for (const std::uint64_t block : blocks) {
    const core::EncryptionRun run = card.run_des(key, block ^ chain);
    chain = run.cipher;
    ciphertext.push_back(chain);
    total_uj += run.total_uj();
    total_cycles += run.sim.cycles;
  }

  const auto golden = des::cbc_encrypt(blocks, key, iv);
  std::printf("message   : \"%s\" (%zu blocks)\n", message.c_str(),
              blocks.size());
  std::printf("ciphertext:");
  for (const std::uint64_t c : ciphertext) {
    std::printf(" %016llX", static_cast<unsigned long long>(c));
  }
  std::printf("\ngolden CBC: %s\n",
              ciphertext == golden ? "match" : "MISMATCH");
  std::printf("session   : %.1f uJ, %llu cycles on the masked card\n",
              total_uj, static_cast<unsigned long long>(total_cycles));

  // And the terminal can decrypt it back with the decryption program.
  des::DesAsmOptions dec;
  dec.decrypt = true;
  const auto dec_card = core::MaskingPipeline::des(
      compiler::Policy::kSelective, energy::TechParams::smartcard_025um(),
      dec);
  std::vector<std::uint64_t> recovered;
  chain = iv;
  for (const std::uint64_t c : ciphertext) {
    recovered.push_back(dec_card.run_des(key, c).cipher ^ chain);
    chain = c;
  }
  std::printf("round-trip: %s\n",
              recovered == blocks ? "plaintext recovered" : "FAILED");
  return (ciphertext == golden && recovered == blocks) ? 0 : 1;
}
