// Quickstart: encrypt one DES block on the simulated smart-card processor,
// first unprotected, then with compiler-selected secure instructions, and
// compare energy and leakage.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/masking_pipeline.hpp"
#include "des/des.hpp"

using namespace emask;

int main() {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const std::uint64_t plaintext = 0x0123456789ABCDEFull;

  // 1. Compile the annotated DES program for the unprotected processor.
  const auto original = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const core::EncryptionRun plain_run = original.run_des(key, plaintext);

  std::printf("plaintext : 0x%016llX\n",
              static_cast<unsigned long long>(plaintext));
  std::printf("ciphertext: 0x%016llX (simulated smart card)\n",
              static_cast<unsigned long long>(plain_run.cipher));
  std::printf("golden    : 0x%016llX (bit-exact C++ model)\n",
              static_cast<unsigned long long>(
                  des::encrypt_block(plaintext, key)));
  std::printf("cycles    : %llu, energy %.1f uJ (%.1f pJ/cycle)\n\n",
              static_cast<unsigned long long>(plain_run.sim.cycles),
              plain_run.total_uj(), plain_run.mean_pj_per_cycle());

  // 2. Recompile with the masking compiler: annotate `key` as secret (the
  //    generated program already carries `.secret key`), forward-slice, and
  //    emit secure instructions for exactly the slice.
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  const core::EncryptionRun masked_run = masked.run_des(key, plaintext);
  std::printf("secured instructions: %zu of %zu (forward slice of the key)\n",
              masked.mask_result().secured_count,
              masked.program().text.size());
  std::printf("masked energy       : %.1f uJ (+%.1f%% vs unprotected)\n",
              masked_run.total_uj(),
              100.0 * (masked_run.total_uj() / plain_run.total_uj() - 1.0));
  std::printf("same ciphertext     : %s\n\n",
              masked_run.cipher == plain_run.cipher ? "yes" : "NO!");

  // 3. The point of it all: a one-bit key change is visible in the
  //    unprotected trace and invisible in the masked one.
  const std::uint64_t key2 = key ^ (1ull << 62);
  const auto d_orig =
      plain_run.trace.difference(original.run_des(key2, plaintext).trace);
  const auto d_mask =
      masked_run.trace.difference(masked.run_des(key2, plaintext).trace);
  const auto secured_part = [](const analysis::Trace& t) {
    return t.slice(0, static_cast<std::size_t>(
                          static_cast<double>(t.size()) * 0.95));
  };
  std::printf("key-bit flip differential, secured region:\n");
  std::printf("  unprotected: max |diff| = %.2f pJ  (leaks)\n",
              secured_part(d_orig).max_abs());
  std::printf("  masked     : max |diff| = %.2f pJ  (flat)\n",
              secured_part(d_mask).max_abs());
  return 0;
}
