// The framework is not DES-specific ("our approach is general and can be
// extended to other algorithms").  This example protects a different
// program: a 4-round XOR-rotate toy cipher written directly in the target
// assembly, with its key annotated `.secret`.  The same compiler pass
// finds the slice, the same hardware masks it, and the same differential
// experiment shows the leak disappearing.
#include <cstdio>

#include "core/masking_pipeline.hpp"

using namespace emask;

namespace {

// state[i] ^= key[i]; state rotated by one word each round.
constexpr const char* kToyCipher = R"(
.data
key:    .word 0x5a, 0x33, 0x0f, 0xc4
.secret key
state:  .word 0x11, 0x22, 0x33, 0x44
out:    .space 16
.declassified out
locals: .space 8      # round counter, loop counter

.text
main:
  la   $gp, locals
  sw   $zero, 0($gp)          # round = 0
round:
  # state[i] ^= key[i]
  sw   $zero, 4($gp)
  la   $s0, key
  la   $s1, state
mix:
  lw   $t9, 4($gp)
  sll  $t8, $t9, 2
  addu $t0, $s0, $t8
  lw   $t1, 0($t0)            # key word (secure)
  addu $t2, $s1, $t8
  lw   $t3, 0($t2)            # state word (secure after round 1)
  xor  $t4, $t1, $t3          # secure xor
  sw   $t4, 0($t2)            # secure store
  addiu $t9, $t9, 1
  sw   $t9, 4($gp)
  li   $k1, 4
  bne  $t9, $k1, mix
  # rotate: tmp = state[0]; state[i] = state[i+1]; state[3] = tmp
  lw   $t5, 0($s1)
  lw   $t6, 4($s1)
  sw   $t6, 0($s1)
  lw   $t6, 8($s1)
  sw   $t6, 4($s1)
  lw   $t6, 12($s1)
  sw   $t6, 8($s1)
  sw   $t5, 12($s1)
  lw   $t9, 0($gp)
  addiu $t9, $t9, 1
  sw   $t9, 0($gp)
  li   $k1, 4
  bne  $t9, $k1, round
  # publish the ciphertext
  la   $s2, out
  lw   $t0, 0($s1)
  sw   $t0, 0($s2)
  lw   $t0, 4($s1)
  sw   $t0, 4($s2)
  lw   $t0, 8($s1)
  sw   $t0, 8($s2)
  lw   $t0, 12($s1)
  sw   $t0, 12($s2)
  halt
)";

}  // namespace

int main() {
  const auto original = core::MaskingPipeline::from_source(
      kToyCipher, compiler::Policy::kOriginal);
  const auto masked = core::MaskingPipeline::from_source(
      kToyCipher, compiler::Policy::kSelective);

  std::printf("toy cipher: %zu instructions, %zu secured by the slice\n",
              masked.program().text.size(),
              masked.mask_result().secured_count);
  for (const auto& d : masked.mask_result().slice.diagnostics) {
    std::printf("diagnostic: line %d: %s\n", d.source_line, d.message.c_str());
  }

  const auto run = masked.run_raw();
  std::printf("energy: %.3f uJ over %llu cycles (unmasked: %.3f uJ)\n",
              run.total_uj(),
              static_cast<unsigned long long>(run.sim.cycles),
              original.run_raw().total_uj());

  // Differential check with a one-bit key change.  Poking the data image
  // directly plays the role of personalizing the card with a new key.
  auto run_with_key_bit_flipped = [&](const core::MaskingPipeline& p) {
    assembler::Program prog = p.program();
    const auto* key = prog.find_symbol("key");
    prog.poke_word(key->address, prog.initial_word(key->address) ^ 1u);
    sim::Pipeline pipe(prog);
    energy::ProcessorEnergyModel model(p.params());
    analysis::Trace trace;
    pipe.run([&](const energy::CycleActivity& a) {
      trace.push(model.cycle(a) * 1e12);
    });
    return trace;
  };

  const auto d_orig =
      original.run_raw().trace.difference(run_with_key_bit_flipped(original));
  const auto d_mask =
      masked.run_raw().trace.difference(run_with_key_bit_flipped(masked));
  std::printf("key-bit differential, unmasked: max |diff| = %.2f pJ\n",
              d_orig.max_abs());
  std::printf("key-bit differential, masked  : max |diff| = %.2f pJ "
              "(flat up to the declassified output)\n",
              d_mask.slice(0, d_mask.size() - 200).max_abs());
  return 0;
}
