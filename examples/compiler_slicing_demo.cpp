// Forward-slicing demo on the paper's own running example (Fig. 4): the
// DES "left side operation"
//
//     for (i = 0; i < 32; i++) newL[i] = oldR[i];
//
// compiled -O0 style.  Annotating `oldR` as secret (it holds round data
// derived from the key), the compiler converts exactly the data-carrying
// load and store into their secure versions — "the critical operations
// (the load and store instructions highlighted) ... are then converted to
// secure versions in our implementation by the optimizing compiler" — while
// the loop-counter loads/stores stay cheap.
#include <cstdio>
#include <string>

#include "assembler/assembler.hpp"
#include "compiler/masking.hpp"

using namespace emask;

namespace {

constexpr const char* kLeftSideOperation = R"(
.data
oldr:  .space 128        # R(m-1), one bit per word — derived from the key
.secret oldr
newl:  .space 128        # L(m)
i:     .space 4          # the loop counter lives in memory (-O0 style)

.text
main:
  sw   $zero, 0($gp)     # i = 0  ($gp holds the frame base)
loop:
  lw   $2, 0($gp)        # lw $2,i        (public)
  sll  $3, $2, 2
  la   $4, oldr
  addu $4, $4, $3
  lw   $5, 0($4)         # lw $3,(oldR+i) <- CRITICAL: secure load
  la   $6, newl
  addu $6, $6, $3
  sw   $5, 0($6)         # sw $3,(newL+i) <- CRITICAL: secure store
  addiu $2, $2, 1
  sw   $2, 0($gp)        # sw $3,i        (public)
  li   $7, 32
  bne  $2, $7, loop
  halt
)";

}  // namespace

int main() {
  // $gp must point at `i`; patch the frame base in with one more line.
  std::string source = kLeftSideOperation;
  source.insert(source.find("main:\n") + 6, "  la $gp, i\n");

  const assembler::Program program = assembler::assemble(source);
  const compiler::MaskResult result =
      compiler::apply_masking(program, compiler::Policy::kSelective);

  std::printf("Fig. 4 reproduction: the left-side operation, selectively "
              "masked.\n\n");
  std::printf("%-5s %-28s %s\n", "idx", "instruction", "secured?");
  for (std::size_t i = 0; i < result.program.text.size(); ++i) {
    const auto& inst = result.program.text[i];
    std::printf("%-5zu %-28s %s\n", i, inst.to_string().c_str(),
                inst.secure ? "<== secure (in the key's forward slice)" : "");
  }

  std::size_t loads = 0, secure_loads = 0, stores = 0, secure_stores = 0;
  for (const auto& inst : result.program.text) {
    const auto& oi = isa::info(inst.op);
    if (oi.is_load) {
      ++loads;
      secure_loads += inst.secure;
    }
    if (oi.is_store) {
      ++stores;
      secure_stores += inst.secure;
    }
  }
  std::printf("\nloads secured : %zu of %zu  (paper: \"we increase the "
              "energy cost of only one of the four load operations\")\n",
              secure_loads, loads);
  std::printf("stores secured: %zu of %zu\n", secure_stores, stores);
  for (const auto& d : result.slice.diagnostics) {
    std::printf("diagnostic: line %d: %s\n", d.source_line, d.message.c_str());
  }
  return 0;
}
