// Differential power analysis demo: play the attacker.
//
// Captures energy traces of the simulated smart card encrypting random
// plaintexts under a fixed, *unknown* key, then runs the Kocher/Goubin
// difference-of-means attack to recover a 6-bit chunk of round subkey K1 —
// and repeats against the masked device, where the attack starves.
//
//   ./build/examples/dpa_attack_demo [num_traces]   (default 500)
#include <cstdio>
#include <cstdlib>

#include "analysis/dpa.hpp"
#include "core/masking_pipeline.hpp"
#include "util/rng.hpp"

using namespace emask;

int main(int argc, char** argv) {
  const int traces = argc > 1 ? std::atoi(argv[1]) : 500;
  const std::uint64_t secret_key = 0x0E329232EA6D0D73ull;  // shh!
  constexpr std::size_t kRoundOneEnd = 13000;

  analysis::DpaConfig cfg;
  cfg.sbox = 0;                    // target S-box 1 of round 1
  cfg.bit = 0;                     // its most significant output bit
  cfg.window_begin = 3000;
  cfg.window_end = kRoundOneEnd;   // the attacker scopes round 1

  std::printf("Capturing %d traces from the UNPROTECTED card...\n", traces);
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  analysis::DpaAttack attack(cfg);
  util::Rng rng(2026);
  for (int i = 0; i < traces; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt, device.run_des(secret_key, pt, kRoundOneEnd).trace);
    if ((i + 1) % 100 == 0) std::printf("  %d traces\n", i + 1);
  }
  const analysis::DpaResult r = attack.solve();
  const int truth = analysis::DpaAttack::true_subkey_chunk(secret_key, 0);
  std::printf("difference-of-means peak: %.3f pJ for guess %d "
              "(margin over runner-up: %.2fx)\n",
              r.best_peak, r.best_guess, r.margin());
  std::printf("true subkey chunk       : %d -> attack %s\n\n", truth,
              r.best_guess == truth ? "SUCCEEDED" : "failed (try more traces)");

  std::printf("Same attack against the MASKED card...\n");
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  analysis::DpaAttack attack2(cfg);
  util::Rng rng2(2026);
  for (int i = 0; i < traces; ++i) {
    const std::uint64_t pt = rng2.next_u64();
    attack2.add_trace(pt, masked.run_des(secret_key, pt, kRoundOneEnd).trace);
  }
  const analysis::DpaResult r2 = attack2.solve();
  std::printf("difference-of-means peak: %.9f pJ (no signal: the secured "
              "round consumes identical energy for every input)\n",
              r2.best_peak);
  return 0;
}
