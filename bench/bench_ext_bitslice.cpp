// Extension Q: bitsliced hypothesis-matrix generation — scalar
// predict-per-(plaintext, guess) loops vs the bitslice/des_round1 block
// evaluator.
//
// The CPA/MLPA/collision disclosure curves re-solve their attacks at many
// checkpoint trace counts, and every solve consumes a 64-guess hypothesis
// row per trace; generating those rows is the analysis-side hot loop this
// PR bitslices.  This bench proves the two backends produce *identical*
// matrices, then gates the speedup: the sliced block evaluator must build
// hypothesis matrices at least 2x faster than the scalar loop (in
// practice well above that — one sliced S-box evaluation serves 64 lanes).
//
// Wall clock goes to stdout only; the CSV/JSON series carries pure
// counts, checksums, and equality flags, so two runs byte-diff clean and
// the bench-determinism CI job gates on BENCH_ext_bitslice.json.
#include <array>
#include <chrono>
#include <cstdint>

#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "bench_common.hpp"
#include "bitslice/des_round1.hpp"
#include "des/des.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

constexpr int kBlocks = 64;     // 64 blocks x 64 plaintexts = 4096 traces
constexpr int kTimingReps = 5;  // best-of-N wall clock per backend
constexpr std::uint64_t kSeed = 0xB175C0DE;
constexpr int kSbox = 2;
constexpr int kDpaBit = 1;

using Matrix = std::array<std::array<int, 64>, 64>;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over every matrix entry, in row-major order — a deterministic
/// fingerprint the JSON series records for both backends.
std::uint64_t checksum(const std::vector<Matrix>& matrices) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const Matrix& m : matrices) {
    for (const auto& row : m) {
      for (const int v : row) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 0x100000001B3ull;
      }
    }
  }
  return h;
}

}  // namespace

int main() {
  bench::print_banner("Extension Q",
                      "Bitsliced hypothesis generation: scalar predict "
                      "loops vs sliced block evaluation (identity + >= 2x).");
  std::printf("matrix: %d blocks x 64 plaintexts x 64 guesses, S-box %d\n\n",
              kBlocks, kSbox);

  std::vector<std::array<std::uint64_t, 64>> blocks(kBlocks);
  util::Rng rng(kSeed);
  for (auto& block : blocks) {
    for (auto& pt : block) pt = rng.next_u64();
  }

  // --- CPA Hamming-weight matrices -------------------------------------
  std::vector<Matrix> scalar_m(kBlocks), sliced_m(kBlocks);
  double scalar_s = 1e99;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < kBlocks; ++b) {
      for (int p = 0; p < 64; ++p) {
        for (int g = 0; g < 64; ++g) {
          scalar_m[b][p][g] =
              analysis::CpaAttack::predict_weight(blocks[b][p], kSbox, g);
        }
      }
    }
    scalar_s = std::min(scalar_s, seconds_since(t0));
  }
  double sliced_s = 1e99;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < kBlocks; ++b) {
      bitslice::cpa_hypothesis_block(kSbox, blocks[b].data(), sliced_m[b]);
    }
    sliced_s = std::min(sliced_s, seconds_since(t0));
  }
  const bool cpa_equal = scalar_m == sliced_m;
  const std::uint64_t cpa_checksum = checksum(sliced_m);
  const double speedup = scalar_s / sliced_s;
  const double rows = static_cast<double>(kBlocks) * 64;
  std::printf("%10s %12s %14s %10s\n", "backend", "wall s", "rows/s",
              "speedup");
  std::printf("%10s %12.4f %14.0f %10s\n", "scalar", scalar_s,
              rows / scalar_s, "1.00x");
  std::printf("%10s %12.4f %14.0f %9.2fx\n", "bitslice", sliced_s,
              rows / sliced_s, speedup);
  std::printf("matrices identical: %s   checksum %016llx\n\n",
              cpa_equal ? "YES" : "NO",
              static_cast<unsigned long long>(cpa_checksum));

  // --- DPA bit rows (identity only; same sliced machinery) --------------
  bool dpa_equal = true;
  std::uint64_t dpa_hash = 0xCBF29CE484222325ull;
  for (int six = 0; six < 64; ++six) {
    std::array<int, 64> row{};
    bitslice::dpa_hypothesis_row(kSbox, kDpaBit,
                                 static_cast<std::uint8_t>(six), row);
    for (int g = 0; g < 64; ++g) {
      const int expected =
          (des::sbox_lookup(kSbox, static_cast<std::uint8_t>(six ^ g)) >>
           (3 - kDpaBit)) &
          1;
      dpa_equal &= row[g] == expected;
      dpa_hash ^= static_cast<std::uint64_t>(row[g]);
      dpa_hash *= 0x100000001B3ull;
    }
  }
  std::printf("DPA bit rows identical to scalar: %s\n",
              dpa_equal ? "YES" : "NO");

  {
    bench::SeriesWriter series("ext_bitslice");
    series.write_header({"section", "plaintexts", "guesses", "identical",
                         "checksum"});
    series.write_row(std::vector<std::string>{
        "cpa_block", std::to_string(kBlocks * 64), "64",
        cpa_equal ? "1" : "0", std::to_string(cpa_checksum)});
    series.write_row(std::vector<std::string>{
        "dpa_rows", "64", "64", dpa_equal ? "1" : "0",
        std::to_string(dpa_hash)});
    series.flush();
  }

  const bool fast_enough = speedup >= 2.0;
  std::printf("hypothesis-matrix speedup >= 2x: %s (%.2fx)\n",
              fast_enough ? "YES" : "NO", speedup);
  return (cpa_equal && dpa_equal && fast_enough) ? 0 : 1;
}
