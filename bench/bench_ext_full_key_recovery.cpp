// Extension K: full first-round-key recovery — the end game of the attack
// the paper defends against.  One batch of power traces, eight parallel
// CPA attacks (one per S-box), recovering all 48 bits of round subkey K1
// from the unmasked device.  (The remaining 8 key bits would fall to the
// same attack on round 2 or to exhaustive search — 2^8 trials.)
#include "analysis/dpa.hpp"
#include "analysis/key_recovery.hpp"
#include "analysis/generic_cpa.hpp"
#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "des/des.hpp"
#include "util/csv.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension K",
                      "Recovering all 48 bits of K1 from the unmasked "
                      "device with one trace batch.");
  constexpr int kTraces = 500;
  const std::uint64_t key = bench::kKey;

  const auto layout = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const bench::Window round1 = bench::round_window(layout.program(), 1);
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);

  // Window each attack to its own S-box iteration of round 1 (the attacker
  // gets this alignment from SPA, Fig. 6): correlating only where S-box s
  // is actually computed suppresses the ghost peaks that neighbouring
  // S-boxes' data would otherwise induce.
  const auto sbox_starts =
      bench::label_fetch_cycles(layout.program(), "sbox_loop");
  // One acquisition pass; per S-box, one single-bit CPA engine per output
  // bit (DES stores each S-box output bit as its own word, so the exact
  // power model is the single predicted bit, not the 4-bit Hamming
  // weight), scored by *signed* correlation: S-box 4's linear structure
  // S4(x ^ 2F) = ~S4(x) makes the true chunk and its complement partner
  // indistinguishable under |rho|.
  std::vector<std::vector<analysis::GenericCpa>> engines(8);
  for (int s = 0; s < 8; ++s) {
    const std::size_t begin = sbox_starts[static_cast<std::size_t>(s)];
    const std::size_t end = (s < 7)
                                ? sbox_starts[static_cast<std::size_t>(s + 1)]
                                : round1.end;
    for (int bit = 0; bit < 4; ++bit) {
      engines[static_cast<std::size_t>(s)].emplace_back(64, begin, end,
                                                       /*signed=*/true);
    }
  }
  // Parallel acquisition (BatchRunner emits in index order, so the CPA
  // engines see the exact trace stream the old serial loop produced —
  // plaintext i = Rng::nth(0x481, i)); analysis stays on this thread.
  std::vector<int> hyp(64);
  core::BatchConfig bc;
  bc.stop_after_cycles = round1.end;
  core::BatchRunner runner(device, bc);
  runner.capture_each(
      kTraces, core::random_plaintexts(key, 0x481),
      [&](std::size_t, const core::BatchInput& input,
          core::EncryptionRun& run) {
        const std::uint64_t pt = input.plaintext;
        for (int s = 0; s < 8; ++s) {
          for (int bit = 0; bit < 4; ++bit) {
            for (int g = 0; g < 64; ++g) {
              hyp[static_cast<std::size_t>(g)] =
                  analysis::DpaAttack::predict_bit(pt, s, bit, g);
            }
            engines[static_cast<std::size_t>(s)][static_cast<std::size_t>(bit)]
                .add_trace(hyp, run.trace);
          }
        }
      });

  util::CsvWriter csv(bench::out_dir() + "/ext_full_key_recovery.csv");
  csv.write_header({"sbox", "true_chunk", "recovered_chunk", "corr",
                    "margin", "correct"});
  std::printf("%6s %12s %12s %8s %8s %9s\n", "S-box", "true chunk",
              "recovered", "|rho|", "margin", "correct?");
  std::uint64_t recovered_k1 = 0;
  int correct = 0;
  for (int s = 0; s < 8; ++s) {
    // Per guess: the WEAKEST of the four output bits' best signed rho.
    // Requiring all four predicted bits to appear on the trace defeats the
    // structural ghosts of S-box 4 (S4(x ^ 2F) maps two predicted bits
    // exactly onto two *other* true output bits) — a wrong guess can plant
    // one or two perfect bits, never all four.
    std::array<double, 64> score;
    score.fill(2.0);
    for (int bit = 0; bit < 4; ++bit) {
      const analysis::GenericCpaResult r =
          engines[static_cast<std::size_t>(s)][static_cast<std::size_t>(bit)]
              .solve();
      for (int g = 0; g < 64; ++g) {
        score[static_cast<std::size_t>(g)] = std::min(
            score[static_cast<std::size_t>(g)],
            r.corr_per_guess[static_cast<std::size_t>(g)]);
      }
    }
    int best = 0;
    double best_corr = 0.0, runner_up = 0.0;
    for (int g = 0; g < 64; ++g) {
      if (score[static_cast<std::size_t>(g)] > best_corr) {
        best_corr = score[static_cast<std::size_t>(g)];
        best = g;
      }
    }
    for (int g = 0; g < 64; ++g) {
      if (g != best) {
        runner_up = std::max(runner_up, score[static_cast<std::size_t>(g)]);
      }
    }
    const double margin = runner_up > 0.0 ? best_corr / runner_up : 0.0;
    const int truth = analysis::DpaAttack::true_subkey_chunk(key, s);
    const bool ok = best == truth;
    correct += ok;
    recovered_k1 |= static_cast<std::uint64_t>(best & 0x3F) << (42 - 6 * s);
    std::printf("%6d %12d %12d %8.3f %8.2f %9s\n", s + 1, truth, best,
                best_corr, margin, ok ? "YES" : "no");
    csv.write_row({static_cast<double>(s), static_cast<double>(truth),
                   static_cast<double>(best), best_corr, margin,
                   ok ? 1.0 : 0.0});
  }

  const std::uint64_t true_k1 = des::key_schedule(key).subkeys[0];
  std::printf("\nK1 (true)      : 0x%012llX\n",
              static_cast<unsigned long long>(true_k1));
  std::printf("K1 (recovered) : 0x%012llX   (%d/8 chunks, %d traces)\n",
              static_cast<unsigned long long>(recovered_k1), correct,
              kTraces);

  // Finish the job: one known plaintext/ciphertext pair + a 2^8 search
  // over the 8 key bits PC-2 never exposed in K1.
  const std::uint64_t ct = des::encrypt_block(bench::kPlain, key);
  const auto full = analysis::reconstruct_key(recovered_k1, bench::kPlain, ct);
  if (full) {
    std::printf("FULL KEY       : 0x%016llX (odd parity) — %s\n",
                static_cast<unsigned long long>(*full),
                des::with_odd_parity(key) == *full ? "matches the card's key"
                                                   : "MISMATCH");
  } else {
    std::printf("FULL KEY       : reconstruction failed (bad K1)\n");
  }
  std::printf("=> %d key bits from the trace batch + 2^8 search: the entire "
              "56-bit key, from power alone.\n",
              correct * 6);
  return (correct == 8 && full &&
          *full == des::with_odd_parity(key))
             ? 0
             : 1;
}
