// Figure 12: "Additional energy consumed due to the energy masking
// operation during the 1st key permutation" — per-cycle (selective −
// original) overhead over the PC-1 region.  The paper reports ~45 pJ/cycle
// of additional energy against a ~165 pJ/cycle average, and notes that the
// overhead is paid even where the differential profile showed no difference
// ("we need to be conservative to account for all possible inputs").
#include "bench_common.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 12",
                      "Per-cycle masking overhead during the first key "
                      "permutation (selective - original).");
  const auto original =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto masked =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  const auto r_orig = original.run_des(bench::kKey, bench::kPlain);
  const auto r_mask = masked.run_des(bench::kKey, bench::kPlain);
  const analysis::Trace overhead = r_mask.trace.difference(r_orig.trace);

  // PC-1 region: from the first fetch of pc1_loop to the first fetch of
  // round_loop.
  const auto pc1 = bench::label_fetch_cycles(original.program(), "pc1_loop");
  const auto rounds =
      bench::label_fetch_cycles(original.program(), "round_loop");
  const std::size_t begin = pc1.empty() ? 0 : pc1.front();
  const std::size_t end = rounds.empty() ? overhead.size() : rounds.front();
  const analysis::Trace region = overhead.slice(begin, end);

  bench::SeriesWriter csv("fig12_masking_overhead");
  csv.write_header({"cycle", "overhead_pj"});
  for (std::size_t i = 0; i < region.size(); ++i) {
    csv.write_row({static_cast<double>(begin + i), region[i]});
  }

  double sum = 0.0;
  for (std::size_t i = 0; i < region.size(); ++i) sum += region[i];
  const double mean_overhead =
      region.size() ? sum / static_cast<double>(region.size()) : 0.0;

  std::printf("key-permutation window: cycles [%zu, %zu)\n", begin, end);
  std::printf("mean overhead         : %.1f pJ/cycle (paper: ~45)\n",
              mean_overhead);
  std::printf("peak overhead         : %.1f pJ/cycle\n", region.max_abs());
  std::printf("baseline average      : %.1f pJ/cycle (paper: ~165)\n",
              r_orig.trace.mean_pj());
  std::printf("whole-run overhead    : %.1f pJ/cycle\n",
              r_mask.trace.mean_pj() - r_orig.trace.mean_pj());
  std::printf("series -> %s/fig12_masking_overhead.csv\n",
              bench::out_dir().c_str());
  return mean_overhead > 0.0 ? 0 : 1;
}
