// Table T1 (the paper's in-text energy comparison, Sec. 4.3):
//
//   "The total energy consumed without any masking operation is 46.4
//    uJoule.  Our algorithm consumes 52.6 uJoule while the naive approach
//    consumes 63.6 uJoule (all loads and stores are secure instructions).
//    When all instructions are secure instructions, it will consume almost
//    as twice as much as the original, 83.5 uJoule."
//
// and the headline claim: the selective scheme "achieves the energy masking
// of critical operations consuming 83% less energy as compared to existing
// approaches employing dual rail circuits."
#include "bench_common.hpp"
#include "compiler/masking.hpp"

using namespace emask;

int main() {
  bench::print_banner("Table T1",
                      "Total energy per encryption under the four "
                      "protection policies.");
  struct Row {
    compiler::Policy policy;
    double paper_uj;
  };
  const Row rows[] = {
      {compiler::Policy::kOriginal, 46.4},
      {compiler::Policy::kSelective, 52.6},
      {compiler::Policy::kNaiveLoadStore, 63.6},
      {compiler::Policy::kAllSecure, 83.5},
  };

  bench::SeriesWriter csv("t1_total_energy");
  csv.write_header({"policy", "measured_uj", "measured_ratio", "paper_uj",
                    "paper_ratio"});

  double measured[4] = {};
  std::size_t secured[4] = {};
  std::uint64_t cycles = 0;
  for (int i = 0; i < 4; ++i) {
    const auto pipeline = core::MaskingPipeline::des(rows[i].policy);
    const auto run = pipeline.run_des(bench::kKey, bench::kPlain);
    measured[i] = run.total_uj();
    secured[i] = pipeline.mask_result().secured_count;
    cycles = run.sim.cycles;
  }

  std::printf("%-16s %12s %9s %14s %8s %8s\n", "policy", "measured uJ",
              "ratio", "secured instrs", "paper uJ", "ratio");
  for (int i = 0; i < 4; ++i) {
    const double ratio = measured[i] / measured[0];
    const double paper_ratio = rows[i].paper_uj / rows[0].paper_uj;
    std::printf("%-16s %12.2f %9.3f %14zu %8.1f %8.3f\n",
                compiler::policy_name(rows[i].policy).data(), measured[i],
                ratio, secured[i], rows[i].paper_uj, paper_ratio);
    csv.write_row({static_cast<double>(i), measured[i], ratio,
                   rows[i].paper_uj, paper_ratio});
  }

  const double saving =
      1.0 - (measured[1] - measured[0]) / (measured[3] - measured[0]);
  const double paper_saving = 1.0 - (52.6 - 46.4) / (83.5 - 46.4);
  std::printf("\ncycles per encryption      : %llu (paper: ~281k at 165 "
              "pJ/cycle; our compiler emits denser code)\n",
              static_cast<unsigned long long>(cycles));
  std::printf("masking-overhead saving vs full dual-rail: %.1f%% "
              "(paper: %.1f%% — the headline '83%% less energy')\n",
              100.0 * saving, 100.0 * paper_saving);
  return (measured[0] < measured[1] && measured[1] < measured[2] &&
          measured[2] < measured[3] && saving > 0.75)
             ? 0
             : 1;
}
