// Extension D: TVLA fixed-vs-random leakage assessment of the four
// protection policies — the certification-style methodology: any per-cycle
// Welch |t| above 4.5 is significant leakage.
//
// Two windows are assessed:
//   * round 1 (the DPA attack surface): masked policies must show |t| = 0;
//   * the whole prefix including the initial permutation: every policy
//     shows the plaintext-driven IP residual there (paper Fig. 11), which
//     carries no key information.
#include "analysis/tvla.hpp"
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "core/batch_runner.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension D",
                      "TVLA fixed-vs-random assessment per policy "
                      "(threshold |t| > 4.5).");
  constexpr int kPairs = 30;
  const compiler::Policy policies[] = {
      compiler::Policy::kOriginal, compiler::Policy::kSelective,
      compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure};

  // Round-1 window (same instruction layout under every policy).
  const auto layout = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const bench::Window round1 = bench::round_window(layout.program(), 1);
  const std::size_t stop = round1.end;

  bench::SeriesWriter csv("ext_tvla");
  csv.write_header({"policy", "round1_max_abs_t", "round1_cycles_over",
                    "prefix_max_abs_t", "prefix_cycles_over"});

  std::printf("window: round 1 = cycles [%zu, %zu)\n\n", round1.begin,
              round1.end);
  std::printf("%-16s | %10s %12s | %10s %12s\n", "policy", "r1 max|t|",
              "r1 cycles>4.5", "pre max|t|", "pre cycles>4.5");
  bool ok = true;
  for (int p = 0; p < 4; ++p) {
    const auto pipeline = core::MaskingPipeline::des(policies[p]);
    analysis::TvlaAssessment tvla_round(round1.begin, round1.end);
    analysis::TvlaAssessment tvla_prefix(0, round1.begin);
    // The fixed-class trace is one deterministic simulation — capture it
    // once instead of re-running it per pair; the random class is a
    // BatchRunner batch (random plaintext i = Rng::nth(0x71A, i), the same
    // stream the old per-pair serial loop drew).
    core::BatchConfig bc;
    bc.stop_after_cycles = stop;
    core::BatchRunner runner(pipeline, bc);
    const auto fixed = pipeline.run_des(bench::kKey, bench::kPlain, stop).trace;
    runner.capture_each(
        kPairs, core::random_plaintexts(bench::kKey, 0x71A),
        [&](std::size_t, const core::BatchInput&, core::EncryptionRun& run) {
          tvla_round.add_fixed(fixed);
          tvla_round.add_random(run.trace);
          tvla_prefix.add_fixed(fixed);
          tvla_prefix.add_random(run.trace);
        });
    const analysis::TvlaResult r = tvla_round.solve();
    const analysis::TvlaResult pre = tvla_prefix.solve();
    std::printf("%-16s | %10.2f %12zu | %10.2f %12zu\n",
                compiler::policy_name(policies[p]).data(), r.max_abs_t,
                r.cycles_over_threshold, pre.max_abs_t,
                pre.cycles_over_threshold);
    csv.write_row({static_cast<double>(p), r.max_abs_t,
                   static_cast<double>(r.cycles_over_threshold), pre.max_abs_t,
                   static_cast<double>(pre.cycles_over_threshold)});
    if (policies[p] == compiler::Policy::kOriginal) {
      ok &= r.leaks();  // the unprotected device must fail in round 1
    } else if (policies[p] == compiler::Policy::kSelective ||
               policies[p] == compiler::Policy::kAllSecure) {
      ok &= !r.leaks();
    }
    // kNaiveLoadStore is *expected* to leak in round 1: securing only the
    // loads and stores leaves the XOR/shift/add units and their pipeline
    // registers carrying key-derived values unmasked.  The paper uses the
    // naive policy purely as an energy-cost comparison point; this
    // assessment shows it is also weaker protection than the (cheaper)
    // compiler-directed scheme.
  }
  csv.flush();
  std::printf("\n(The prefix column is the unprotected initial permutation: "
              "plaintext-driven, key-free — the paper's Fig. 11 residual.\n"
              " Note naive_loadstore LEAKING in round 1: loads/stores alone "
              "miss the ALU traffic; the slice-directed scheme is both "
              "cheaper and tighter.)\n");
  return ok ? 0 : 1;
}
