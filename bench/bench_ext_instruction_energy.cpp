// Extension M: energy per instruction class, normal vs secure.
//
// Attributes each cycle's energy to the instruction retiring that cycle
// (the standard energy-per-instruction accounting; pipeline overlap makes
// it approximate but consistent), aggregated by opcode.  Shows where the
// dual-rail premium lands: loads/stores pay the bus + latch constants,
// ALU ops the unit + latch constants, and un-securable control flow pays
// nothing because it is never secured.
#include <map>

#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/csv.hpp"

using namespace emask;

namespace {

struct ClassStats {
  std::uint64_t count = 0;
  double energy_pj = 0.0;
  [[nodiscard]] double avg() const {
    return count ? energy_pj / static_cast<double>(count) : 0.0;
  }
};

std::map<std::string, ClassStats> profile(compiler::Policy policy) {
  const auto pipeline = core::MaskingPipeline::des(policy);
  assembler::Program image = pipeline.program();
  des::poke_key(image, bench::kKey);
  des::poke_plaintext(image, bench::kPlain);
  sim::Pipeline machine(image);
  energy::ProcessorEnergyModel model;
  std::map<std::string, ClassStats> stats;
  energy::CycleActivity a;
  double pending = 0.0;  // bubble cycles fold into the next retirement
  while (machine.step(a)) {
    const double pj = model.cycle(a) * 1e12;
    if (!a.retired) {
      pending += pj;
      continue;
    }
    const auto& inst = pipeline.program().text[a.retire_pc];
    ClassStats& s = stats[std::string(isa::mnemonic(inst.op))];
    ++s.count;
    s.energy_pj += pj + pending;
    pending = 0.0;
  }
  return stats;
}

}  // namespace

int main() {
  bench::print_banner("Extension M",
                      "Average attributed energy per instruction class "
                      "(pJ), original vs all-secure.");
  const auto original = profile(compiler::Policy::kOriginal);
  const auto secure = profile(compiler::Policy::kAllSecure);

  util::CsvWriter csv(bench::out_dir() + "/ext_instruction_energy.csv");
  csv.write_header({"class", "count", "original_pj", "all_secure_pj",
                    "premium_pj"});

  std::printf("%-8s %10s %14s %14s %12s\n", "class", "retired",
              "original pJ", "all-secure pJ", "premium pJ");
  bool ok = true;
  int row = 0;
  for (const auto& [mnemonic, orig] : original) {
    const auto it = secure.find(mnemonic);
    if (it == secure.end()) continue;
    const double premium = it->second.avg() - orig.avg();
    std::printf("%-8s %10llu %14.1f %14.1f %12.1f\n", mnemonic.c_str(),
                static_cast<unsigned long long>(orig.count), orig.avg(),
                it->second.avg(), premium);
    csv.write_row({static_cast<double>(row++),
                   static_cast<double>(orig.count), orig.avg(),
                   it->second.avg(), premium});
    // Securable data-path classes must show a positive premium.
    if (mnemonic == "lw" || mnemonic == "sw" || mnemonic == "xor") {
      ok &= premium > 10.0;
    }
  }
  std::printf("\n(loads/stores carry the largest premium: dual-rail "
              "address+data buses plus three pipeline latches; the paper's "
              "motivation for securing as few of them as possible.)\n");
  return ok ? 0 : 1;
}
