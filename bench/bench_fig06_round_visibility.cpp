// Figure 6: "Energy consumption trace of encryption (every 100 cycles)" —
// the energy profile of the original (unmasked) DES reveals the sixteen
// rounds to a single-trace SPA attacker.
#include "analysis/spa.hpp"
#include "bench_common.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 6",
                      "Energy trace of one unmasked encryption; the 16 "
                      "rounds must be visible to SPA.");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto run = pipeline.run_des(bench::kKey, bench::kPlain);

  const std::size_t window = 100;
  const analysis::Trace profile = run.trace.windowed_average(window);
  bench::SeriesWriter csv("fig06_energy_trace");
  csv.write_header({"cycle", "energy_pj_per_cycle"});
  for (std::size_t i = 0; i < profile.size(); ++i) {
    csv.write_row({static_cast<double>(i * window), profile[i]});
  }

  // SPA: recover the round period from the single trace.
  const analysis::Trace fine = run.trace.windowed_average(50);
  const analysis::SpaResult spa = analysis::detect_rounds(fine, 100, 220);
  const auto starts =
      bench::label_fetch_cycles(pipeline.program(), "round_loop");

  std::printf("cycles per encryption : %llu\n",
              static_cast<unsigned long long>(run.sim.cycles));
  std::printf("average energy        : %.1f pJ/cycle (paper: ~165)\n",
              run.trace.mean_pj());
  std::printf("SPA period            : %zu cycles (true round length %llu)\n",
              spa.best_period * 50,
              static_cast<unsigned long long>(
                  starts.size() > 1 ? starts[1] - starts[0] : 0));
  std::printf("SPA repetitions       : %d (paper: 16 rounds visible)\n",
              spa.repetitions);
  std::printf("SPA periodicity score : %.3f\n", spa.periodicity);
  std::printf("series -> %s/fig06_energy_trace.csv\n", bench::out_dir().c_str());
  return spa.repetitions == 16 ? 0 : 1;
}
