// Extension I: AES-128 under the masking framework.
//
// AES is the stress test for the paper's *secure indexing* instruction:
// every round makes 16 S-box and 12 xtime table lookups at secret-derived
// addresses (plus 4 S-box lookups per key-expansion word).  This bench
// reports the policy cost table for AES, mounts a classic first-round
// CPA (Hamming weight of sbox(pt[b] ^ k[b]), 256 guesses) against the
// unmasked device, and shows the masked device starve it.
#include "analysis/generic_cpa.hpp"
#include "aes/aes128.hpp"
#include "aes/asm_generator.hpp"
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

aes::Block random_block(util::Rng& rng) {
  aes::Block b;
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_below(256));
  return b;
}

std::vector<int> hypotheses_for(const aes::Block& pt, int byte_index) {
  std::vector<int> h(256);
  for (int g = 0; g < 256; ++g) {
    h[static_cast<std::size_t>(g)] = std::popcount(static_cast<unsigned>(
        aes::sbox(static_cast<std::uint8_t>(
            pt[static_cast<std::size_t>(byte_index)] ^ g))));
  }
  return h;
}

}  // namespace

int main() {
  bench::print_banner("Extension I",
                      "AES-128: policy cost table and first-round CPA, "
                      "unmasked vs masked.");
  util::Rng rng(0xAE5);
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  const aes::Block pt0 = random_block(rng);
  const std::string source = aes::generate_aes_asm(key, pt0);

  // Policy cost table.
  const compiler::Policy policies[] = {
      compiler::Policy::kOriginal, compiler::Policy::kSelective,
      compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure};
  util::CsvWriter csv(bench::out_dir() + "/ext_aes_masking.csv");
  csv.write_header({"policy", "total_uj", "ratio", "secured"});
  double measured[4] = {};
  std::printf("%-16s %12s %8s %9s %8s\n", "policy", "energy uJ", "ratio",
              "secured", "cycles");
  for (int p = 0; p < 4; ++p) {
    const auto pipeline =
        core::MaskingPipeline::from_source(source, policies[p]);
    const auto run = pipeline.run_raw();
    measured[p] = run.total_uj();
    std::printf("%-16s %12.3f %8.3f %9zu %8llu\n",
                compiler::policy_name(policies[p]).data(), measured[p],
                measured[p] / measured[0],
                pipeline.mask_result().secured_count,
                static_cast<unsigned long long>(run.sim.cycles));
    csv.write_row({static_cast<double>(p), measured[p],
                   measured[p] / measured[0],
                   static_cast<double>(pipeline.mask_result().secured_count)});
  }

  // Round-1 window on the cycle axis (policy-independent layout).
  const auto layout =
      core::MaskingPipeline::from_source(source, compiler::Policy::kOriginal);
  const auto rounds = bench::label_fetch_cycles(layout.program(), "round_loop");
  const std::size_t w_begin = rounds.empty() ? 0 : rounds[0];
  const std::size_t w_end = rounds.size() > 1
                                ? static_cast<std::size_t>(rounds[1])
                                : w_begin + 2000;

  // CPA on key byte 0 against both devices.
  const int target_byte = 0;
  const auto attack = [&](compiler::Policy policy, int traces) {
    const auto device = core::MaskingPipeline::from_source(source, policy);
    analysis::GenericCpa cpa(256, w_begin, w_end);
    util::Rng prng(0xCAFE);
    for (int i = 0; i < traces; ++i) {
      const aes::Block pt = random_block(prng);
      assembler::Program image = device.program();
      aes::poke_plaintext(image, pt);
      cpa.add_trace(hypotheses_for(pt, target_byte),
                    device.run_image(image, w_end).trace);
    }
    return cpa.solve();
  };

  std::printf("\n-- first-round CPA on key byte 0 (window [%zu, %zu)) --\n",
              w_begin, w_end);
  const auto r_unmasked = attack(compiler::Policy::kOriginal, 300);
  std::printf("unmasked, 300 traces: guess 0x%02X (truth 0x%02X), "
              "|rho| = %.3f, margin %.2fx -> %s\n",
              r_unmasked.best_guess, key[0], r_unmasked.best_corr,
              r_unmasked.margin(),
              r_unmasked.best_guess == key[0] ? "KEY BYTE RECOVERED"
                                              : "not recovered");
  const auto r_masked = attack(compiler::Policy::kSelective, 30);
  std::printf("masked,    30 traces: best |rho| = %.6f (every round-1 cycle "
              "has zero variance)\n",
              r_masked.best_corr);

  const double saving =
      1.0 - (measured[1] - measured[0]) / (measured[3] - measured[0]);
  std::printf("\nselective-vs-dual-rail overhead saving on AES: %.1f%% "
              "(DES: 83.3%%, SHA-1: ~47%%)\n",
              100.0 * saving);
  return (r_unmasked.best_guess == key[0] && r_masked.best_corr == 0.0)
             ? 0
             : 1;
}
