// Extension M: the stronger 2009-era adversaries — MLPA (Roche &
// Tavernier's multi-linear power analysis) and the correlation-enhanced
// collision attack — against the unmasked card.  One batch of round-1
// traces, eight parallel MLPA attacks (one per S-box) recovering all 48
// bits of K1 from combined linear-approximation statistics, finished by
// the 2^8 reconstruct_key search: the full 56-bit key without ever
// predicting an exact intermediate bit.  Alongside, the collision attack
// recovers the S-box 1 chunk with *no power model at all*, and both
// attacks' traces-to-disclosure curves (rank of the true chunk per trace
// count) are mirrored as deterministic BENCH series.
#include "analysis/collision.hpp"
#include "analysis/disclosure.hpp"
#include "analysis/dpa.hpp"
#include "analysis/key_recovery.hpp"
#include "analysis/mlpa.hpp"
#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "des/des.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension M",
                      "MLPA + collision attacks: recovering the 56-bit key "
                      "from the unmasked device with 2009-era adversaries.");
  constexpr std::size_t kTraces = 600;
  const std::uint64_t key = bench::kKey;

  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const bench::Window round1 = bench::round_window(device.program(), 1);
  // Window each attack to its own S-box iteration of round 1 (SPA gives
  // the attacker this alignment, Fig. 6) so a neighbouring S-box sharing
  // expansion bits cannot plant ghost correlations.
  const auto sbox_starts =
      bench::label_fetch_cycles(device.program(), "sbox_loop");

  std::vector<analysis::MlpaAttack> mlpa;
  for (int s = 0; s < 8; ++s) {
    analysis::MlpaConfig cfg;
    cfg.sbox = s;
    cfg.window_begin = sbox_starts[static_cast<std::size_t>(s)];
    cfg.window_end = (s < 7) ? sbox_starts[static_cast<std::size_t>(s + 1)]
                             : round1.end;
    mlpa.emplace_back(cfg);
  }
  analysis::CollisionConfig ccfg;
  ccfg.sbox = 0;
  ccfg.window_begin = sbox_starts[0];
  ccfg.window_end = sbox_starts[1];
  analysis::CollisionAttack collision(ccfg);

  // Disclosure curves for the S-box 1 chunk under both adversaries,
  // sampled at the deterministic checkpoint schedule.
  const std::vector<std::size_t> checkpoints =
      analysis::DisclosureCurve::schedule(kTraces);
  analysis::DisclosureCurve mlpa_curve(64);
  analysis::DisclosureCurve collision_curve(64);
  std::size_t next_checkpoint = 0;

  core::BatchConfig bc;
  bc.stop_after_cycles = round1.end;
  core::BatchRunner runner(device, bc);
  runner.capture_each(
      kTraces, core::random_plaintexts(key, 0x481),
      [&](std::size_t index, const core::BatchInput& input,
          core::EncryptionRun& run) {
        for (int s = 0; s < 8; ++s) {
          mlpa[static_cast<std::size_t>(s)].add_trace(input.plaintext,
                                                      run.trace);
        }
        collision.add_trace(input.plaintext, run.trace);
        if (next_checkpoint < checkpoints.size() &&
            index + 1 == checkpoints[next_checkpoint]) {
          const auto m = mlpa[0].solve();
          mlpa_curve.add_checkpoint(
              index + 1, {m.score_per_guess.begin(), m.score_per_guess.end()});
          const auto c = collision.solve();
          collision_curve.add_checkpoint(
              index + 1, {c.score_per_guess.begin(), c.score_per_guess.end()});
          ++next_checkpoint;
        }
      });

  bench::SeriesWriter series("ext_mlpa");
  series.write_header({"sbox", "approximations", "true_chunk",
                       "recovered_chunk", "score", "margin", "correct"});
  std::printf("%6s %8s %12s %12s %8s %8s %9s\n", "S-box", "approx",
              "true chunk", "recovered", "score", "margin", "correct?");
  std::uint64_t recovered_k1 = 0;
  int correct = 0;
  for (int s = 0; s < 8; ++s) {
    const analysis::MlpaResult r = mlpa[static_cast<std::size_t>(s)].solve();
    const int truth = analysis::DpaAttack::true_subkey_chunk(key, s);
    const bool ok = r.best_guess == truth;
    correct += ok;
    recovered_k1 |= static_cast<std::uint64_t>(r.best_guess & 0x3F)
                    << (42 - 6 * s);
    std::printf("%6d %8zu %12d %12d %8.3f %8.2f %9s\n", s + 1,
                mlpa[static_cast<std::size_t>(s)].approximations().size(),
                truth, r.best_guess, r.best_score, r.margin(),
                ok ? "YES" : "no");
    series.write_row(
        {static_cast<double>(s),
         static_cast<double>(
             mlpa[static_cast<std::size_t>(s)].approximations().size()),
         static_cast<double>(truth), static_cast<double>(r.best_guess),
         r.best_score, r.margin(), ok ? 1.0 : 0.0});
  }
  series.flush();

  const analysis::CollisionResult cr = collision.solve();
  const int truth0 = analysis::DpaAttack::true_subkey_chunk(key, 0);
  const bool collision_ok = cr.best_guess == truth0;
  std::printf("\ncollision (S-box 1, no power model): true %d, recovered %d "
              "(score %.3f, margin %.2fx, %zu/64 classes) -> %s\n",
              truth0, cr.best_guess, cr.best_score, cr.margin(),
              cr.classes_seen, collision_ok ? "RECOVERED" : "not recovered");

  // Disclosure series: rank of the true chunk at every checkpoint, plus
  // the curves' headline traces-to-disclosure numbers.
  bench::SeriesWriter disclosure("ext_collision");
  disclosure.write_header(
      {"traces", "mlpa_rank_of_true", "collision_rank_of_true"});
  for (std::size_t i = 0; i < mlpa_curve.checkpoints().size(); ++i) {
    const auto& mc = mlpa_curve.checkpoints()[i];
    const auto& cc = collision_curve.checkpoints()[i];
    disclosure.write_row({static_cast<double>(mc.traces),
                          static_cast<double>(mc.ranks[
                              static_cast<std::size_t>(truth0)]),
                          static_cast<double>(cc.ranks[
                              static_cast<std::size_t>(truth0)])});
  }
  disclosure.flush();
  std::printf("traces to disclosure (S-box 1): mlpa %zu, collision %zu\n",
              mlpa_curve.traces_to_disclosure(truth0),
              collision_curve.traces_to_disclosure(truth0));

  const std::uint64_t true_k1 = des::key_schedule(key).subkeys[0];
  std::printf("\nK1 (true)      : 0x%012llX\n",
              static_cast<unsigned long long>(true_k1));
  std::printf("K1 (recovered) : 0x%012llX   (%d/8 chunks, %zu traces)\n",
              static_cast<unsigned long long>(recovered_k1), correct,
              kTraces);

  // Finish the job: one known plaintext/ciphertext pair + a 2^8 search
  // over the 8 key bits PC-2 never exposed in K1.
  const std::uint64_t ct = des::encrypt_block(bench::kPlain, key);
  const auto full = analysis::reconstruct_key(recovered_k1, bench::kPlain, ct);
  if (full) {
    std::printf("FULL KEY       : 0x%016llX (odd parity) — %s\n",
                static_cast<unsigned long long>(*full),
                des::with_odd_parity(key) == *full ? "matches the card's key"
                                                   : "MISMATCH");
  } else {
    std::printf("FULL KEY       : reconstruction failed (bad K1)\n");
  }
  std::printf("=> combined linear approximations alone recover %d key bits; "
              "the collision attack needs no power model at all.\n",
              correct * 6);
  return (correct == 8 && collision_ok && full &&
          *full == des::with_odd_parity(key))
             ? 0
             : 1;
}
