// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench_figNN binary regenerates one figure of the paper's evaluation
// (Sec. 4.3): it runs the experiment, writes the plotted series as CSV plus
// a BENCH_*.json mirror next to the binary (bench_out/, overridable via
// $EMASK_BENCH_OUT), and prints a compact summary including the check the
// figure is meant to support.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "core/masking_pipeline.hpp"
#include "sim/pipeline.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace emask::bench {

// The classic FIPS worked-example inputs, used throughout the paper-style
// experiments.
inline constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
// "two different secret keys (vary in bit 1)": the paper flips one key bit.
// FIPS bit 1 is a parity bit the algorithm ignores, so we flip bit 2 (the
// first effective bit) — the earliest position with observable effect.
inline constexpr std::uint64_t kKeyBitFlipped = kKey ^ (1ull << 62);
inline constexpr std::uint64_t kPlain = 0x0123456789ABCDEFull;
inline constexpr std::uint64_t kPlain2 = 0xFEDCBA9876543210ull;

/// Output directory for CSV/JSON series (created on demand):
/// `bench_out/` next to the bench *binary* — not the working directory, so
/// `ctest -j` invocations from varying CWDs all land their series in one
/// place — or $EMASK_BENCH_OUT when set.
inline std::string out_dir() {
  namespace fs = std::filesystem;
  fs::path dir;
  if (const char* env = std::getenv("EMASK_BENCH_OUT");
      env != nullptr && *env != '\0') {
    dir = env;
  } else {
#if defined(__linux__)
    std::error_code ec;
    const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
    dir = ec ? fs::path("bench_out") : exe.parent_path() / "bench_out";
#else
    dir = "bench_out";  // no portable executable-path API; fall back to CWD
#endif
  }
  fs::create_directories(dir);
  return dir.string();
}

/// Cycle numbers at which the instruction at text label `label` *retires*
/// (one entry per execution; wrong-path fetches after taken branches do not
/// count).  Used to locate program phases — e.g. the start of every DES
/// round — on the trace's cycle axis.
inline std::vector<std::uint64_t> label_fetch_cycles(
    const assembler::Program& program, const std::string& label) {
  const auto it = program.text_labels.find(label);
  if (it == program.text_labels.end()) return {};
  const std::uint32_t target = it->second;
  std::vector<std::uint64_t> cycles;
  sim::Pipeline p(program);
  energy::CycleActivity a;
  while (p.step(a)) {
    if (a.retired && a.retire_pc == target) cycles.push_back(p.cycles());
  }
  return cycles;
}

/// [begin, end) cycle window of DES round `n` (1-based) for this program.
struct Window {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline Window round_window(const assembler::Program& program, int n) {
  const auto starts = label_fetch_cycles(program, "round_loop");
  Window w;
  if (static_cast<std::size_t>(n) <= starts.size()) {
    w.begin = starts[static_cast<std::size_t>(n - 1)];
    w.end = (static_cast<std::size_t>(n) < starts.size())
                ? static_cast<std::size_t>(starts[static_cast<std::size_t>(n)])
                : w.begin;
  }
  return w;
}

inline void print_banner(const char* id, const char* what) {
  std::printf("== %s ==\n%s\n", id, what);
}

/// Figure/table series writer: emits `<name>.csv` exactly like a bare
/// util::CsvWriter did, and mirrors the same columns/rows as
/// `BENCH_<name>.json` (util::JsonWriter) so CI can diff figure data
/// across commits instead of eyeballing logs.  Numeric cells are JSON
/// numbers (non-finite doubles become null, per JsonWriter); textual cells
/// are JSON strings.  Both files land in out_dir().
class SeriesWriter {
 public:
  explicit SeriesWriter(const std::string& name)
      : name_(name), dir_(out_dir()), csv_(dir_ + "/" + name + ".csv") {}

  ~SeriesWriter() {
    // Best-effort, mirroring CsvWriter's destructor contract; callers who
    // care about IO errors call flush() themselves.
    try {
      flush();
    } catch (...) {
    }
  }

  void write_header(const std::vector<std::string>& columns) {
    columns_ = columns;
    csv_.write_header(columns);
  }

  void write_row(const std::vector<double>& values) {
    csv_.write_row(values);
    rows_.emplace_back();
    for (const double v : values) rows_.back().push_back(Cell{true, v, {}});
  }

  void write_row(std::initializer_list<double> values) {
    write_row(std::vector<double>(values));
  }

  void write_row(const std::vector<std::string>& cells) {
    csv_.write_row(cells);
    rows_.emplace_back();
    for (const std::string& c : cells)
      rows_.back().push_back(Cell{false, 0.0, c});
  }

  /// Flushes the CSV (throws on IO failure) and writes the JSON mirror.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    csv_.flush();
    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    std::ofstream file = util::open_for_write(path);
    util::JsonWriter j(file);
    j.begin_object();
    j.key("format");
    j.value("emask-bench-series-v1");
    j.key("bench");
    j.value(name_);
    j.key("columns");
    j.begin_array();
    for (const std::string& c : columns_) j.value(c);
    j.end_array();
    j.key("rows");
    j.begin_array();
    for (const auto& row : rows_) {
      j.begin_array();
      for (const Cell& cell : row) {
        if (cell.numeric) {
          j.value(cell.number);
        } else {
          j.value(cell.text);
        }
      }
      j.end_array();
    }
    j.end_array();
    j.end_object();
    j.finish();
    util::close_or_throw(file, path);
  }

 private:
  struct Cell {
    bool numeric = false;
    double number = 0.0;
    std::string text;
  };

  std::string name_;
  std::string dir_;
  util::CsvWriter csv_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  bool flushed_ = false;
};

}  // namespace emask::bench
