// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench_figNN binary regenerates one figure of the paper's evaluation
// (Sec. 4.3): it runs the experiment, writes the plotted series as CSV next
// to the binary (bench_out/), and prints a compact summary including the
// check the figure is meant to support.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "core/masking_pipeline.hpp"
#include "sim/pipeline.hpp"

namespace emask::bench {

// The classic FIPS worked-example inputs, used throughout the paper-style
// experiments.
inline constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
// "two different secret keys (vary in bit 1)": the paper flips one key bit.
// FIPS bit 1 is a parity bit the algorithm ignores, so we flip bit 2 (the
// first effective bit) — the earliest position with observable effect.
inline constexpr std::uint64_t kKeyBitFlipped = kKey ^ (1ull << 62);
inline constexpr std::uint64_t kPlain = 0x0123456789ABCDEFull;
inline constexpr std::uint64_t kPlain2 = 0xFEDCBA9876543210ull;

/// Output directory for CSV series (created on demand).
inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Cycle numbers at which the instruction at text label `label` *retires*
/// (one entry per execution; wrong-path fetches after taken branches do not
/// count).  Used to locate program phases — e.g. the start of every DES
/// round — on the trace's cycle axis.
inline std::vector<std::uint64_t> label_fetch_cycles(
    const assembler::Program& program, const std::string& label) {
  const auto it = program.text_labels.find(label);
  if (it == program.text_labels.end()) return {};
  const std::uint32_t target = it->second;
  std::vector<std::uint64_t> cycles;
  sim::Pipeline p(program);
  energy::CycleActivity a;
  while (p.step(a)) {
    if (a.retired && a.retire_pc == target) cycles.push_back(p.cycles());
  }
  return cycles;
}

/// [begin, end) cycle window of DES round `n` (1-based) for this program.
struct Window {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline Window round_window(const assembler::Program& program, int n) {
  const auto starts = label_fetch_cycles(program, "round_loop");
  Window w;
  if (static_cast<std::size_t>(n) <= starts.size()) {
    w.begin = starts[static_cast<std::size_t>(n - 1)];
    w.end = (static_cast<std::size_t>(n) < starts.size())
                ? static_cast<std::size_t>(starts[static_cast<std::size_t>(n)])
                : w.begin;
  }
  return w;
}

inline void print_banner(const char* id, const char* what) {
  std::printf("== %s ==\n%s\n", id, what);
}

}  // namespace emask::bench
