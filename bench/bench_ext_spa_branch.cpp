// Extension L: the secret-dependent-branch leak of the paper's Sec. 1, end
// to end.
//
//   "From this power trace, an attacker can identify the operations being
//    performed (such as whether a branch at point p is taken or not) ...
//    when a branch is taken based on a particular bit of a secret key being
//    zero, the attacker can identify this bit by monitoring the power
//    consumption difference between a taken and not taken branch.
//    Protecting against this type of simple attack can be achieved fairly
//    easily by restructuring the code."  (Sec. 1, citing Coron [3])
//
// A square-and-multiply-shaped kernel (per key bit: always do work A; if
// the bit is set, also do work B) is run in two versions:
//
//   v1 (branchy)     — the classic leak.  The masking compiler *diagnoses*
//                      it (kTaintedBranch: no secure branch exists), SPA
//                      reads every key bit out of one trace, and the cycle
//                      count itself is key-dependent (a timing channel).
//   v2 (branch-free) — the restructured code: the conditional work always
//                      executes against a mask built with securable shifts;
//                      constant time, no diagnostics, flat once masked.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/csv.hpp"

using namespace emask;

namespace {

/// 8 secret bits, MSB first.
std::string kernel_source(unsigned key_bits, bool branch_free) {
  std::string data = R"(
.data
skey:)";
  for (int i = 7; i >= 0; --i) {
    data += (i == 7 ? " .word " : ", ");
    data += std::to_string((key_bits >> i) & 1u);
  }
  data += R"(
.secret skey
st:    .word 0x1234
cval:  .word 0x5A
var_i: .space 4
)";
  std::string body = R"(
.text
main:
  la   $gp, var_i
  la   $s0, st
  la   $s1, skey
  la   $s2, cval
  sw   $zero, 0($gp)
loop:
  lw   $t9, 0($gp)
# work A ("square"): state ^= rotl3(state)
  lw   $t0, 0($s0)
  sll  $t1, $t0, 3
  srl  $t2, $t0, 29
  or   $t1, $t1, $t2
  xor  $t0, $t0, $t1
  sw   $t0, 0($s0)
# fetch key bit i
  sll  $t8, $t9, 2
  addu $t3, $s1, $t8
  lw   $t4, 0($t3)
)";
  if (branch_free) {
    body += R"(# work B, unconditionally, against a key-bit mask (Coron-style)
  sll  $t5, $t4, 31
  sra  $t5, $t5, 31      # mask = bit ? ~0 : 0   (securable shifts)
  lw   $t6, 0($s2)
  and  $t6, $t6, $t5     # C or 0
  xor  $t0, $t0, $t6
  sll  $t7, $t6, 1
  xor  $t0, $t0, $t7
  sw   $t0, 0($s0)
)";
  } else {
    body += R"(# work B only when the key bit is set  <-- THE LEAK
  beq  $t4, $zero, skip
  lw   $t6, 0($s2)
  xor  $t0, $t0, $t6
  sll  $t7, $t6, 1
  xor  $t0, $t0, $t7
  sw   $t0, 0($s0)
skip:
)";
  }
  body += R"(  addiu $t9, $t9, 1
  sw   $t9, 0($gp)
  li   $k1, 8
  bne  $t9, $k1, loop
  halt
)";
  return data + body;
}

}  // namespace

int main() {
  bench::print_banner("Extension L",
                      "Secret-dependent branches: SPA bit readout + timing "
                      "channel, and the branch-free restructuring.");
  const unsigned key = 0b10110010u;

  // --- v1: the branchy kernel ---
  const auto v1 = core::MaskingPipeline::from_source(
      kernel_source(key, /*branch_free=*/false), compiler::Policy::kSelective);
  std::printf("v1 (branchy) compiler diagnostics:\n");
  std::size_t branch_diags = 0;
  for (const auto& d : v1.mask_result().slice.diagnostics) {
    if (d.kind == compiler::DiagnosticKind::kTaintedBranch) ++branch_diags;
    std::printf("  line %d: %s\n", d.source_line, d.message.c_str());
  }

  // SPA: one trace, read the bits from the per-iteration spacing.
  const auto starts = bench::label_fetch_cycles(v1.program(), "loop");
  const auto run1 = v1.run_raw();
  std::vector<std::uint64_t> lengths;
  for (std::size_t i = 0; i + 1 < starts.size(); ++i) {
    lengths.push_back(starts[i + 1] - starts[i]);
  }
  // Threshold at the midpoint of observed iteration lengths (the attacker
  // needs no calibration beyond the trace itself).
  const auto [lo, hi] = std::minmax_element(lengths.begin(), lengths.end());
  const double mid = (static_cast<double>(*lo) + static_cast<double>(*hi)) / 2;
  unsigned recovered = 0;
  std::printf("\nv1 single-trace SPA: iteration lengths ");
  for (const std::uint64_t len : lengths) {
    std::printf("%llu ", static_cast<unsigned long long>(len));
    recovered = (recovered << 1) | (static_cast<double>(len) > mid ? 1u : 0u);
  }
  // The final iteration drains to halt instead of taking the backedge, so
  // its length sits one flush (~4 cycles) below the loop iterations'.
  const std::uint64_t tail = run1.sim.cycles - starts.back();
  recovered = (recovered << 1) |
              (static_cast<double>(tail) > mid - 4.0 ? 1u : 0u);
  std::printf("(tail %llu)\n", static_cast<unsigned long long>(tail));
  std::printf("key bits: true %02X, recovered from ONE trace: %02X -> %s\n",
              key, recovered, recovered == key ? "ALL BITS READ" : "partial");

  // Timing channel: cycle count depends on the key's Hamming weight.
  util::CsvWriter csv(bench::out_dir() + "/ext_spa_branch.csv");
  csv.write_header({"key_hamming_weight", "v1_cycles", "v2_cycles"});
  std::printf("\n%12s %12s %12s\n", "key HW", "v1 cycles", "v2 cycles");
  bool v1_varies = false, v2_constant = true;
  std::uint64_t v1_first = 0, v2_first = 0;
  for (const unsigned k : {0x00u, 0x01u, 0x0Fu, 0xFFu}) {
    const auto p1 = core::MaskingPipeline::from_source(
        kernel_source(k, false), compiler::Policy::kOriginal);
    const auto p2 = core::MaskingPipeline::from_source(
        kernel_source(k, true), compiler::Policy::kOriginal);
    const std::uint64_t c1 = p1.run_raw().sim.cycles;
    const std::uint64_t c2 = p2.run_raw().sim.cycles;
    std::printf("%12d %12llu %12llu\n", std::popcount(k),
                static_cast<unsigned long long>(c1),
                static_cast<unsigned long long>(c2));
    csv.write_row({static_cast<double>(std::popcount(k)),
                   static_cast<double>(c1), static_cast<double>(c2)});
    if (v1_first == 0) v1_first = c1;
    if (v2_first == 0) v2_first = c2;
    v1_varies |= c1 != v1_first;
    v2_constant &= c2 == v2_first;
  }

  // --- v2: restructured, then masked ---
  const auto v2 = core::MaskingPipeline::from_source(
      kernel_source(key, /*branch_free=*/true), compiler::Policy::kSelective);
  std::printf("\nv2 (branch-free) diagnostics: %zu\n",
              v2.mask_result().slice.diagnostics.size());
  assembler::Program flipped = v2.program();
  flipped.poke_word(flipped.find_symbol("skey")->address, 1u ^
                    flipped.initial_word(flipped.find_symbol("skey")->address));
  const auto d =
      v2.run_raw().trace.difference(v2.run_image(flipped).trace);
  std::printf("v2 masked key-bit differential: max |diff| = %.6f pJ\n",
              d.max_abs());

  const bool ok = branch_diags > 0 && recovered == key && v1_varies &&
                  v2_constant &&
                  v2.mask_result().slice.diagnostics.empty() &&
                  d.max_abs() == 0.0;
  std::printf("\nbranchy version: diagnosed, SPA-readable, timing-leaky.\n"
              "restructured version: clean compile, constant time, flat "
              "under masking.\n");
  return ok ? 0 : 1;
}
