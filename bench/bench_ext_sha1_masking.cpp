// Extension H: generality of the masking framework.
//
//   "Note that our approach is general and can be extended to other
//    algorithms that need protection against current measurements based
//    breaks."  (Sec. 1)
//
// Same compiler, same hardware, different kernel: the SHA-1 compression
// function absorbing a secret block (the prefix-key MAC setting).  SHA-1's
// Ch/Maj functions exercise the logic unit — DES never does — so this
// experiment needs the secure and/nor extension of the ISA, and quantifies
// the selective-vs-dual-rail saving on a second workload.
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "sha/asm_generator.hpp"
#include "sha/sha1.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension H",
                      "SHA-1 keyed compression under the four policies "
                      "(the paper's generality claim).");
  util::Rng rng(0x5A1);
  std::array<std::uint32_t, 16> secret_block;
  for (auto& w : secret_block) w = rng.next_u32();
  const std::string source = sha::generate_sha1_asm(secret_block);

  const compiler::Policy policies[] = {
      compiler::Policy::kOriginal, compiler::Policy::kSelective,
      compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure};

  util::CsvWriter csv(bench::out_dir() + "/ext_sha1_masking.csv");
  csv.write_header({"policy", "total_uj", "ratio", "secured"});

  double measured[4] = {};
  std::printf("%-16s %12s %8s %9s %8s\n", "policy", "energy uJ", "ratio",
              "secured", "cycles");
  for (int p = 0; p < 4; ++p) {
    const auto pipeline =
        core::MaskingPipeline::from_source(source, policies[p]);
    const auto run = pipeline.run_raw();
    measured[p] = run.total_uj();
    std::printf("%-16s %12.3f %8.3f %9zu %8llu\n",
                compiler::policy_name(policies[p]).data(), measured[p],
                measured[p] / measured[0],
                pipeline.mask_result().secured_count,
                static_cast<unsigned long long>(run.sim.cycles));
    csv.write_row({static_cast<double>(p), measured[p],
                   measured[p] / measured[0],
                   static_cast<double>(pipeline.mask_result().secured_count)});
  }

  // Leakage check: one secret bit flipped, selective masking, flat trace.
  const auto masked =
      core::MaskingPipeline::from_source(source, compiler::Policy::kSelective);
  auto flipped = secret_block;
  flipped[7] ^= 0x400u;
  assembler::Program image = masked.program();
  sha::poke_message(image, flipped);
  const auto diff =
      masked.run_raw().trace.difference(masked.run_image(image).trace);
  const auto body = diff.slice(0, diff.size() - 100);

  const double saving =
      1.0 - (measured[1] - measured[0]) / (measured[3] - measured[0]);
  std::printf("\nsecret-bit differential (masked, before digest output): "
              "max |diff| = %.6f pJ\n",
              body.max_abs());
  std::printf("selective-vs-dual-rail overhead saving on SHA-1: %.1f%% "
              "(DES: 83.3%%)\n",
              100.0 * saving);
  std::printf("(SHA-1 is secret-dependent nearly everywhere after the "
              "message schedule, so the slice is necessarily larger than "
              "DES's — the saving comes mostly from the public `-O0` "
              "bookkeeping.)\n");
  return (body.max_abs() == 0.0 && measured[0] < measured[1] &&
          measured[1] < measured[3])
             ? 0
             : 1;
}
