// Extension E: measurement-noise study.  The paper argues the simulator is
// conservative ("the use of the simulator provides a far greater control of
// the granularity of information than would be practically possible for a
// hacker") and that random noise only raises the DPA sample count ("random
// noises in power measurements can be filtered through the averaging
// process using a large number of samples").  This bench quantifies that:
// traces needed for DoM key recovery versus additive Gaussian noise.
#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "bench_common.hpp"
#include "core/batch_runner.hpp"

using namespace emask;

namespace {

constexpr std::size_t kWinBegin = 3000;
constexpr std::size_t kWinEnd = 13000;

/// Returns the smallest checkpoint at which the attack first reports the
/// correct chunk and keeps it through every later checkpoint (0 = never).
/// Uses the Hamming-weight CPA engine (the stronger of the two attacks).
std::size_t traces_to_disclosure(const core::MaskingPipeline& device,
                                 double sigma_pj,
                                 const std::vector<std::size_t>& checkpoints) {
  const std::uint64_t key = bench::kKey;
  const int truth = analysis::DpaAttack::true_subkey_chunk(key, 0);
  analysis::CpaConfig cfg;
  cfg.sbox = 0;
  cfg.window_begin = kWinBegin;
  cfg.window_end = kWinEnd;
  analysis::CpaAttack attack(cfg);
  // Parallel acquisition with the noise applied inside the capture engine.
  // BatchRunner seeds the noise per trace *index* (not from one RNG whose
  // state threads through the batch), so noisy captures are deterministic
  // at any thread count; the plaintext stream is the serial Rng(0x5EED)
  // stream via Rng::nth.
  core::BatchConfig bc;
  bc.stop_after_cycles = kWinEnd;
  bc.noise_sigma_pj = sigma_pj;
  bc.noise_seed =
      0xA0153 + static_cast<std::uint64_t>(sigma_pj * 1000);
  core::BatchRunner runner(device, bc);
  std::size_t first_stable = 0;
  std::size_t checkpoint = 0;
  runner.capture_each(
      checkpoints.back(), core::random_plaintexts(key, 0x5EED),
      [&](std::size_t i, const core::BatchInput& input,
          core::EncryptionRun& run) {
        attack.add_trace(input.plaintext, run.trace);
        while (checkpoint < checkpoints.size() &&
               i + 1 == checkpoints[checkpoint]) {
          const std::size_t budget = checkpoints[checkpoint];
          const bool correct = attack.solve().best_guess == truth;
          if (correct && first_stable == 0) first_stable = budget;
          if (!correct) first_stable = 0;  // lost it again: not stable yet
          ++checkpoint;
        }
      });
  return first_stable;
}

}  // namespace

int main() {
  bench::print_banner("Extension E",
                      "DPA traces-to-disclosure vs measurement noise "
                      "(unmasked device; masked never discloses).");
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const std::vector<std::size_t> checkpoints = {100, 200, 400, 800, 1600};
  const double sigmas[] = {0.0, 0.5, 1.0, 2.0};  // pJ per cycle
  // (the per-cycle data-dependent signal is itself only ~0.3-3 pJ)

  bench::SeriesWriter csv("ext_noise_sweep");
  csv.write_header({"noise_sigma_pj", "traces_to_disclosure"});
  std::printf("%14s %22s\n", "noise (pJ rms)", "traces to disclosure");
  bool monotone_ok = true;
  std::size_t prev = 0;
  for (const double sigma : sigmas) {
    const std::size_t n = traces_to_disclosure(device, sigma, checkpoints);
    std::printf("%14.1f %22s\n", sigma,
                n ? std::to_string(n).c_str() : ">1600");
    csv.write_row({sigma, static_cast<double>(n)});
    if (n == 0) continue;
    if (prev != 0) monotone_ok &= n >= prev;
    prev = n;
  }
  csv.flush();
  std::printf("\n(noise delays, but does not prevent, disclosure — the "
              "paper's argument for circuit-level masking over noise "
              "injection.)\n");
  return monotone_ok ? 0 : 1;
}
