// Figure 8: "Difference between energy consumption profiles generated using
// two different keys before masking process" (first round shown for
// clarity, as in the paper).
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 8",
                      "Round-1 differential trace for two different keys, "
                      "before masking.");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  util::Rng rng(0xF18);
  const std::uint64_t key2 = rng.next_u64();
  const auto r1 = pipeline.run_des(bench::kKey, bench::kPlain);
  const auto r2 = pipeline.run_des(key2, bench::kPlain);
  const analysis::Trace diff = r1.trace.difference(r2.trace);

  const bench::Window round1 = bench::round_window(pipeline.program(), 1);
  const analysis::Trace round1_diff = diff.slice(round1.begin, round1.end);

  bench::SeriesWriter csv("fig08_key_diff_before");
  csv.write_header({"cycle", "diff_pj"});
  for (std::size_t i = 0; i < round1_diff.size(); ++i) {
    csv.write_row({static_cast<double>(round1.begin + i), round1_diff[i]});
  }

  std::printf("round-1 window        : cycles [%zu, %zu)\n", round1.begin,
              round1.end);
  std::printf("max |diff|            : %.2f pJ  (paper: large, structured)\n",
              round1_diff.max_abs());
  std::printf("mean |diff|           : %.3f pJ/cycle\n", [&] {
    double s = 0;
    for (std::size_t i = 0; i < round1_diff.size(); ++i)
      s += std::abs(round1_diff[i]);
    return round1_diff.size() ? s / static_cast<double>(round1_diff.size())
                              : 0.0;
  }());
  std::printf("series -> %s/fig08_key_diff_before.csv\n",
              bench::out_dir().c_str());
  return round1_diff.max_abs() > 0.0 ? 0 : 1;
}
