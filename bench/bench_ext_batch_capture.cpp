// Extension P: parallel batch trace capture — serial loop vs the
// core::BatchRunner thread-pool engine.
//
// Every attack experiment consumes thousands of independent encryption
// traces; this bench measures how fast the capture engine acquires them
// and *proves* the engine's determinism contract on the spot: the
// multi-threaded TraceSet must be bit-identical (inputs, sample values,
// ordering) to the 1-thread capture, which in turn must match a plain
// serial run_des loop.  A second section benchmarks shared-prefix
// snapshot/fork capture (hoisted key schedule + `fork` marker): fork-vs-
// cold bit-identity plus the algorithmic speedup from simulating the
// plaintext-independent prefix once per batch.  Exit status reflects the
// bit-identity checks and the cycle-count speedup gate (> 1.3x) — never
// wall clock, which depends on the host's core count (a 4-core machine
// typically shows >= 3x on the thread-pool table).
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "energy/kernels.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

constexpr std::size_t kTraces = 24;
constexpr std::uint64_t kWindowEnd = 6000;  // round-1 window prefix
constexpr std::uint64_t kSeed = 0xBA7C4;
constexpr std::size_t kForkTraces = 12;  // full traces for the fork series

bool identical(const analysis::TraceSet& a, const analysis::TraceSet& b) {
  if (a.size() != b.size() || a.inputs != b.inputs) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.traces[i].samples() != b.traces[i].samples()) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::print_banner("Extension P",
                      "Batch trace capture: serial loop vs BatchRunner "
                      "thread pool (bit-identity + throughput).");
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("host reports %u hardware thread(s); batch = %zu traces x %llu "
              "cycles\n\n",
              hw, kTraces, static_cast<unsigned long long>(kWindowEnd));

  // Reference: the plain serial loop every bench used before BatchRunner.
  analysis::TraceSet reference;
  util::Rng rng(kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kTraces; ++i) {
    const std::uint64_t pt = rng.next_u64();
    reference.add(pt, device.run_des(bench::kKey, pt, kWindowEnd).trace);
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double serial_eps = static_cast<double>(kTraces) / serial_s;
  std::printf("%8s %12s %12s %10s %9s\n", "threads", "wall s", "enc/s",
              "speedup", "bitwise?");
  std::printf("%8s %12.3f %12.1f %10s %9s\n", "loop", serial_s, serial_eps,
              "1.00x", "ref");

  util::CsvWriter csv(bench::out_dir() + "/ext_batch_capture.csv");
  csv.write_header({"threads", "wall_s", "enc_per_s", "speedup", "bitwise"});
  csv.write_row({0.0, serial_s, serial_eps, 1.0, 1.0});

  bool all_identical = true;
  double best_speedup = 1.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{hw}}) {
    core::BatchConfig bc;
    bc.threads = threads;
    bc.stop_after_cycles = kWindowEnd;
    core::BatchRunner runner(device, bc);
    const analysis::TraceSet set =
        runner.capture(kTraces, core::random_plaintexts(bench::kKey, kSeed));
    const core::BatchStats& stats = runner.stats();
    const bool same = identical(set, reference);
    all_identical &= same;
    const double speedup = serial_s / stats.wall_seconds;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%8zu %12.3f %12.1f %9.2fx %9s\n", threads,
                stats.wall_seconds, stats.encryptions_per_sec(), speedup,
                same ? "YES" : "NO");
    csv.write_row({static_cast<double>(threads), stats.wall_seconds,
                   stats.encryptions_per_sec(), speedup, same ? 1.0 : 0.0});
  }

  std::printf("\nbest speedup over serial loop : %.2fx (%u cores visible)\n",
              best_speedup, hw);
  std::printf("all thread counts bit-identical: %s\n",
              all_identical ? "YES" : "NO");

  // --- Shared-prefix snapshot/fork capture ------------------------------
  // A fork-capable device (hoisted key schedule + `fork` marker) captures
  // the plaintext-independent prefix once per batch and forks every trace
  // from the snapshot.  Wall clock goes to stdout only; the CSV/JSON series
  // carries pure cycle-count math, so two runs of this bench byte-diff
  // clean and CI gates the snapshot path on it.
  std::printf("\n-- shared-prefix snapshot/fork (full traces, fixed key) --\n");
  des::DesAsmOptions hoisted;
  hoisted.hoist_key_schedule = true;
  const auto forkable = core::MaskingPipeline::des(
      compiler::Policy::kOriginal, energy::TechParams::smartcard_025um(),
      hoisted);

  core::BatchConfig cold_bc;
  cold_bc.threads = 1;
  cold_bc.snapshot = core::SnapshotMode::kOff;
  core::BatchRunner cold(forkable, cold_bc);
  const analysis::TraceSet cold_set =
      cold.capture(kForkTraces, core::random_plaintexts(bench::kKey, kSeed));
  const double cold_wall = cold.stats().wall_seconds;
  const std::uint64_t trace_cycles = cold.stats().total_cycles;

  bool fork_identical = true;
  std::uint64_t prefix_cycles = 0;
  std::uint64_t forks = 0;
  double fork_wall_1t = 0.0;
  std::printf("%8s %12s %12s %10s %9s\n", "threads", "wall s", "enc/s",
              "speedup", "bitwise?");
  std::printf("%8s %12.3f %12.1f %10s %9s\n", "cold", cold_wall,
              cold.stats().encryptions_per_sec(), "1.00x", "ref");
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{hw}}) {
    core::BatchConfig fork_bc;
    fork_bc.threads = threads;
    fork_bc.snapshot = core::SnapshotMode::kRequire;
    core::BatchRunner forked(forkable, fork_bc);
    const analysis::TraceSet set = forked.capture(
        kForkTraces, core::random_plaintexts(bench::kKey, kSeed));
    const bool same = identical(set, cold_set);
    fork_identical &= same;
    prefix_cycles = forked.stats().snapshot_prefix_cycles;
    forks = forked.stats().snapshot_forks;
    if (threads == 1) fork_wall_1t = forked.stats().wall_seconds;
    std::printf("%8zu %12.3f %12.1f %9.2fx %9s\n", threads,
                forked.stats().wall_seconds,
                forked.stats().encryptions_per_sec(),
                cold_wall / forked.stats().wall_seconds, same ? "YES" : "NO");
  }

  // Algorithmic speedup from cycle counts alone: a cold batch simulates
  // every cycle of every trace; a forked batch simulates the prefix once
  // plus each trace's continuation.  (Forked traces still *report* full
  // cycle counts — the prefix is spliced — so trace_cycles is mode-
  // independent, which is itself part of the bit-identity contract.)
  const std::uint64_t fork_simulated =
      trace_cycles - forks * prefix_cycles + prefix_cycles;
  const double algorithmic_speedup =
      static_cast<double>(trace_cycles) / static_cast<double>(fork_simulated);
  std::printf("\nshared prefix: %llu of %llu cycles/trace (%.1f%%)\n",
              static_cast<unsigned long long>(prefix_cycles),
              static_cast<unsigned long long>(trace_cycles / kForkTraces),
              100.0 * static_cast<double>(prefix_cycles * kForkTraces) /
                  static_cast<double>(trace_cycles));
  std::printf("algorithmic speedup (cycles simulated, cold/fork): %.2fx\n",
              algorithmic_speedup);
  std::printf("measured 1-thread wall speedup: %.2fx\n",
              fork_wall_1t > 0.0 ? cold_wall / fork_wall_1t : 0.0);
  std::printf("fork vs cold bit-identical: %s\n",
              fork_identical ? "YES" : "NO");

  {
    bench::SeriesWriter series("ext_snapshot_fork");
    series.write_header({"mode_fork", "traces", "prefix_cycles",
                         "snapshot_forks", "trace_cycles", "simulated_cycles",
                         "algorithmic_speedup", "bitwise_vs_cold"});
    series.write_row({0.0, static_cast<double>(kForkTraces), 0.0, 0.0,
                      static_cast<double>(trace_cycles),
                      static_cast<double>(trace_cycles), 1.0, 1.0});
    series.write_row({1.0, static_cast<double>(kForkTraces),
                      static_cast<double>(prefix_cycles),
                      static_cast<double>(forks),
                      static_cast<double>(trace_cycles),
                      static_cast<double>(fork_simulated), algorithmic_speedup,
                      fork_identical ? 1.0 : 0.0});
    series.flush();
  }

  const bool fork_fast_enough = algorithmic_speedup > 1.3;
  std::printf("algorithmic speedup > 1.3x: %s\n",
              fork_fast_enough ? "YES" : "NO");

  // --- Energy-kernel backend (scalar vs bitslice Hamming loops) ---------
  // A coupling-enabled capture exercises the adjacent-line loops of every
  // bus on every cycle — the loops the word-parallel kernels replace.
  // Both backends must produce bit-identical trace sets; wall clock goes
  // to stdout only, the series carries counts and the identity flag.
  std::printf("\n-- energy-kernel backend (coupling-enabled capture) --\n");
  const auto coupled = core::MaskingPipeline::des(
      compiler::Policy::kOriginal,
      energy::TechParams::smartcard_025um_with_coupling());
  const energy::HammingBackend saved_backend = energy::hamming_backend();
  analysis::TraceSet kernel_sets[2];
  double kernel_wall[2] = {0.0, 0.0};
  const energy::HammingBackend backends[2] = {
      energy::HammingBackend::kScalar, energy::HammingBackend::kBitslice};
  for (int i = 0; i < 2; ++i) {
    energy::set_hamming_backend(backends[i]);
    core::BatchConfig bc;
    bc.threads = 1;
    bc.stop_after_cycles = kWindowEnd;
    core::BatchRunner runner(coupled, bc);
    kernel_sets[i] =
        runner.capture(kTraces, core::random_plaintexts(bench::kKey, kSeed));
    kernel_wall[i] = runner.stats().wall_seconds;
  }
  energy::set_hamming_backend(saved_backend);
  const bool kernel_identical = identical(kernel_sets[0], kernel_sets[1]);
  std::printf("%10s %12.3f s\n%10s %12.3f s\n", "scalar", kernel_wall[0],
              "bitslice", kernel_wall[1]);
  std::printf("scalar vs bitslice kernels bit-identical: %s\n",
              kernel_identical ? "YES" : "NO");
  {
    bench::SeriesWriter series("ext_kernel_backend");
    series.write_header({"backend_bitslice", "traces", "window_cycles",
                         "coupling_enabled", "bitwise_vs_scalar"});
    series.write_row({0.0, static_cast<double>(kTraces),
                      static_cast<double>(kWindowEnd), 1.0, 1.0});
    series.write_row({1.0, static_cast<double>(kTraces),
                      static_cast<double>(kWindowEnd), 1.0,
                      kernel_identical ? 1.0 : 0.0});
    series.flush();
  }

  return (all_identical && fork_identical && fork_fast_enough &&
          kernel_identical)
             ? 0
             : 1;
}
