// Extension P: parallel batch trace capture — serial loop vs the
// core::BatchRunner thread-pool engine.
//
// Every attack experiment consumes thousands of independent encryption
// traces; this bench measures how fast the capture engine acquires them
// and *proves* the engine's determinism contract on the spot: the
// multi-threaded TraceSet must be bit-identical (inputs, sample values,
// ordering) to the 1-thread capture, which in turn must match a plain
// serial run_des loop.  Exit status reflects the bit-identity check, not
// the speedup — wall-clock gains depend on the host's core count (a
// 4-core machine typically shows >= 3x).
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

constexpr std::size_t kTraces = 24;
constexpr std::uint64_t kWindowEnd = 6000;  // round-1 window prefix
constexpr std::uint64_t kSeed = 0xBA7C4;

bool identical(const analysis::TraceSet& a, const analysis::TraceSet& b) {
  if (a.size() != b.size() || a.inputs != b.inputs) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.traces[i].samples() != b.traces[i].samples()) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::print_banner("Extension P",
                      "Batch trace capture: serial loop vs BatchRunner "
                      "thread pool (bit-identity + throughput).");
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("host reports %u hardware thread(s); batch = %zu traces x %llu "
              "cycles\n\n",
              hw, kTraces, static_cast<unsigned long long>(kWindowEnd));

  // Reference: the plain serial loop every bench used before BatchRunner.
  analysis::TraceSet reference;
  util::Rng rng(kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kTraces; ++i) {
    const std::uint64_t pt = rng.next_u64();
    reference.add(pt, device.run_des(bench::kKey, pt, kWindowEnd).trace);
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double serial_eps = static_cast<double>(kTraces) / serial_s;
  std::printf("%8s %12s %12s %10s %9s\n", "threads", "wall s", "enc/s",
              "speedup", "bitwise?");
  std::printf("%8s %12.3f %12.1f %10s %9s\n", "loop", serial_s, serial_eps,
              "1.00x", "ref");

  util::CsvWriter csv(bench::out_dir() + "/ext_batch_capture.csv");
  csv.write_header({"threads", "wall_s", "enc_per_s", "speedup", "bitwise"});
  csv.write_row({0.0, serial_s, serial_eps, 1.0, 1.0});

  bool all_identical = true;
  double best_speedup = 1.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{hw}}) {
    core::BatchConfig bc;
    bc.threads = threads;
    bc.stop_after_cycles = kWindowEnd;
    core::BatchRunner runner(device, bc);
    const analysis::TraceSet set =
        runner.capture(kTraces, core::random_plaintexts(bench::kKey, kSeed));
    const core::BatchStats& stats = runner.stats();
    const bool same = identical(set, reference);
    all_identical &= same;
    const double speedup = serial_s / stats.wall_seconds;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%8zu %12.3f %12.1f %9.2fx %9s\n", threads,
                stats.wall_seconds, stats.encryptions_per_sec(), speedup,
                same ? "YES" : "NO");
    csv.write_row({static_cast<double>(threads), stats.wall_seconds,
                   stats.encryptions_per_sec(), speedup, same ? 1.0 : 0.0});
  }

  std::printf("\nbest speedup over serial loop : %.2fx (%u cores visible)\n",
              best_speedup, hw);
  std::printf("all thread counts bit-identical: %s\n",
              all_identical ? "YES" : "NO");
  return all_identical ? 0 : 1;
}
