// Figure 7: "Difference between energy consumption profiles generated using
// two different secret keys (vary in bit 1), 1st round" — before masking,
// flipping a single key bit produces a visible differential trace already
// in round 1.
#include "bench_common.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 7",
                      "Round-1 differential trace for two keys differing in "
                      "a single bit (unmasked).");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto r1 = pipeline.run_des(bench::kKey, bench::kPlain);
  const auto r2 = pipeline.run_des(bench::kKeyBitFlipped, bench::kPlain);
  const analysis::Trace diff = r1.trace.difference(r2.trace);

  const bench::Window round1 = bench::round_window(pipeline.program(), 1);
  const analysis::Trace round1_diff = diff.slice(round1.begin, round1.end);

  bench::SeriesWriter csv("fig07_key_bit_diff_round1");
  csv.write_header({"cycle", "diff_pj"});
  for (std::size_t i = 0; i < round1_diff.size(); ++i) {
    csv.write_row({static_cast<double>(round1.begin + i), round1_diff[i]});
  }

  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < round1_diff.size(); ++i) {
    if (round1_diff[i] != 0.0) ++nonzero;
  }
  std::printf("round-1 window        : cycles [%zu, %zu)\n", round1.begin,
              round1.end);
  std::printf("max |diff|            : %.2f pJ  (paper: clearly nonzero)\n",
              round1_diff.max_abs());
  std::printf("nonzero cycles        : %zu of %zu\n", nonzero,
              round1_diff.size());
  std::printf("series -> %s/fig07_key_bit_diff_round1.csv\n",
              bench::out_dir().c_str());
  return round1_diff.max_abs() > 0.0 ? 0 : 1;
}
