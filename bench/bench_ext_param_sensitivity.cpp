// Extension O: calibration sensitivity of the headline claim.
//
// Our absolute capacitances are calibrated, not layout-extracted (DESIGN.md
// §2), so the obvious threat to validity is: does the "83% overhead saving"
// depend on the calibration?  This bench rescales all data-dependent
// capacitances (buses, latches, functional units) by 0.5x / 1x / 2x and
// recomputes the policy table.  The *ordering* and the *saving* are
// structural — the saving is a ratio of secured-work populations, invariant
// under uniform capacitance scaling — while the absolute microjoules and
// the policy/original ratios shift as expected.
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/csv.hpp"

using namespace emask;

namespace {

energy::TechParams scaled(double f) {
  energy::TechParams p = energy::TechParams::smartcard_025um();
  p.c_instr_bus_line *= f;
  p.c_addr_bus_line *= f;
  p.c_data_bus_line *= f;
  p.c_latch_bit *= f;
  p.c_adder_node *= f;
  p.c_logic_node *= f;
  p.c_shift_node *= f;
  p.c_xor_node *= f;
  p.e_unit_base *= f;
  p.e_dummy_load *= f;
  return p;
}

}  // namespace

int main() {
  bench::print_banner("Extension O",
                      "Calibration sensitivity: the saving is structural, "
                      "not a calibration artifact.");
  util::CsvWriter csv(bench::out_dir() + "/ext_param_sensitivity.csv");
  csv.write_header({"cap_scale", "original_uj", "selective_ratio",
                    "all_secure_ratio", "saving"});

  std::printf("%10s %12s %12s %12s %10s\n", "cap scale", "original uJ",
              "sel/orig", "all/orig", "saving");
  bool ok = true;
  for (const double f : {0.5, 1.0, 2.0}) {
    const energy::TechParams params = scaled(f);
    double e[3];
    const compiler::Policy policies[] = {compiler::Policy::kOriginal,
                                         compiler::Policy::kSelective,
                                         compiler::Policy::kAllSecure};
    for (int i = 0; i < 3; ++i) {
      e[i] = core::MaskingPipeline::des(policies[i], params)
                 .run_des(bench::kKey, bench::kPlain)
                 .total_uj();
    }
    const double saving = 1.0 - (e[1] - e[0]) / (e[2] - e[0]);
    std::printf("%10.1f %12.2f %12.3f %12.3f %9.1f%%\n", f, e[0], e[1] / e[0],
                e[2] / e[0], 100.0 * saving);
    csv.write_row({f, e[0], e[1] / e[0], e[2] / e[0], saving});
    ok &= saving > 0.80 && saving < 0.87;  // structural, scale-invariant
  }
  std::printf("\nthe saving is the ratio of secured-work populations "
              "(selective slice vs whole program)\nand survives any uniform "
              "rescaling of the capacitance calibration; only the\nabsolute "
              "microjoules and the per-policy ratios move.\n");
  return ok ? 0 : 1;
}
