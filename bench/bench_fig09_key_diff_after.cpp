// Figure 9: "Difference between energy consumption profiles generated using
// two different keys after masking process" — with the compiler-selected
// secure instructions, the round-1 differential is identically flat.
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 9",
                      "Round-1 differential trace for two different keys, "
                      "after selective masking (must be flat).");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  util::Rng rng(0xF18);  // same second key as Figure 8
  const std::uint64_t key2 = rng.next_u64();
  const auto r1 = pipeline.run_des(bench::kKey, bench::kPlain);
  const auto r2 = pipeline.run_des(key2, bench::kPlain);
  const analysis::Trace diff = r1.trace.difference(r2.trace);

  const bench::Window round1 = bench::round_window(pipeline.program(), 1);
  const analysis::Trace round1_diff = diff.slice(round1.begin, round1.end);

  bench::SeriesWriter csv("fig09_key_diff_after");
  csv.write_header({"cycle", "diff_pj"});
  for (std::size_t i = 0; i < round1_diff.size(); ++i) {
    csv.write_row({static_cast<double>(round1.begin + i), round1_diff[i]});
  }

  // Also check the whole secured region (everything up to the declassified
  // output permutation).
  const auto body = diff.slice(
      0, static_cast<std::size_t>(static_cast<double>(diff.size()) * 0.95));

  std::printf("round-1 window        : cycles [%zu, %zu)\n", round1.begin,
              round1.end);
  std::printf("round-1 max |diff|    : %.6f pJ  (paper: flat)\n",
              round1_diff.max_abs());
  std::printf("all-rounds max |diff| : %.6f pJ\n", body.max_abs());
  std::printf("series -> %s/fig09_key_diff_after.csv\n",
              bench::out_dir().c_str());
  return (round1_diff.max_abs() == 0.0 && body.max_abs() == 0.0) ? 0 : 1;
}
