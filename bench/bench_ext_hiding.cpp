// Extension: the countermeasure zoo's energy bill.  One full DES
// encryption under each masking/hiding policy, reporting total energy,
// the overhead ratio against the unprotected device, and the cycle count
// (shuffle_nop pays in time, wddl in switched capacitance,
// random_precharge splits the difference).  Exit code gates the
// qualitative claims: every policy preserves the ciphertext, and every
// hiding policy costs energy or cycles over the baseline.
#include "bench_common.hpp"

#include "hiding/policy.hpp"

using namespace emask;

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

int main() {
  bench::print_banner("Ext: hiding countermeasures",
                      "Energy and cycle overhead of the hiding policies "
                      "(WDDL, random precharge, NOP shuffling) against the "
                      "unprotected and masked devices.");

  const char* kPolicies[] = {"original",         "selective", "wddl",
                             "random_precharge", "shuffle_nop",
                             "selective+wddl"};

  bench::SeriesWriter csv("ext_hiding");
  csv.write_header({"policy", "total_uj", "ratio_vs_original", "cycles"});

  double base_uj = 0.0;
  std::uint64_t base_cycles = 0;
  std::uint64_t base_cipher = 0;
  bool ok = true;
  std::printf("%-18s %12s %8s %10s\n", "policy", "total uJ", "ratio",
              "cycles");
  for (const char* name : kPolicies) {
    const auto device =
        core::MaskingPipeline::des(hiding::countermeasure_from_name(name));
    const auto run = device.run_des(bench::kKey, bench::kPlain);
    const double uj = run.total_uj();
    if (base_uj == 0.0) {
      base_uj = uj;
      base_cycles = run.sim.cycles;
      base_cipher = run.cipher;
    }
    const double ratio = uj / base_uj;
    std::printf("%-18s %12.3f %8.3f %10llu\n", name, uj, ratio,
                static_cast<unsigned long long>(run.sim.cycles));
    csv.write_row(std::vector<std::string>{
        name, fmt(uj), fmt(ratio),
        std::to_string(static_cast<unsigned long long>(run.sim.cycles))});

    if (run.cipher != base_cipher) {
      std::printf("FAIL: %s changed the ciphertext\n", name);
      ok = false;
    }
    const bool hiding_policy =
        hiding::countermeasure_from_name(name).hiding !=
        hiding::HidingPolicy::kNone;
    if (hiding_policy && uj <= base_uj && run.sim.cycles <= base_cycles) {
      std::printf("FAIL: %s is free — no energy or cycle overhead\n", name);
      ok = false;
    }
  }
  csv.flush();
  std::printf("series -> %s/ext_hiding.csv\n", bench::out_dir().c_str());
  return ok ? 0 : 1;
}
