// Figure 11: "Difference between energy consumption generated using two
// different plaintexts after masking process" — the initial plaintext
// permutation is deliberately unprotected ("since this process is not
// operated in a secure mode, the differences in the input values result in
// the difference"), so its region still differs; the sixteen secured rounds
// are flat.
#include "bench_common.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 11",
                      "Differential trace for two different plaintexts, "
                      "after selective masking: only the (unprotected) "
                      "initial permutation and the (public) output "
                      "permutation differ.");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  const auto r1 = pipeline.run_des(bench::kKey, bench::kPlain);
  const auto r2 = pipeline.run_des(bench::kKey, bench::kPlain2);
  const analysis::Trace diff = r1.trace.difference(r2.trace);

  bench::SeriesWriter csv("fig11_plaintext_diff_after");
  csv.write_header({"cycle", "diff_pj"});
  for (std::size_t i = 0; i < diff.size(); ++i) {
    csv.write_row({static_cast<double>(i), diff[i]});
  }

  const auto rounds_begin = bench::round_window(pipeline.program(), 1).begin;
  const auto pre =
      bench::label_fetch_cycles(pipeline.program(), "pre_r");
  const std::size_t rounds_end = pre.empty() ? diff.size() : pre.front();
  const auto ip_region = diff.slice(0, rounds_begin);
  const auto rounds = diff.slice(rounds_begin, rounds_end);
  const auto output = diff.slice(rounds_end, diff.size());

  std::printf("initial permutation   : max |diff| %.2f pJ (unprotected: "
              "nonzero, as in the paper)\n",
              ip_region.max_abs());
  std::printf("16 secured rounds     : max |diff| %.6f pJ (must be flat)\n",
              rounds.max_abs());
  std::printf("output permutation    : max |diff| %.2f pJ (public data)\n",
              output.max_abs());
  std::printf("series -> %s/fig11_plaintext_diff_after.csv\n",
              bench::out_dir().c_str());
  return (ip_region.max_abs() > 0.0 && rounds.max_abs() == 0.0) ? 0 : 1;
}
