// Extension J: operand-isolation ablation — a microarchitectural channel
// *below* the paper's abstraction level, discovered while building this
// reproduction.
//
// The register file is read in ID, two stages before forwarding replaces
// stale values at the EX inputs.  Without operand isolation, a non-secure
// instruction whose source register is about to be overwritten latches the
// register's stale architectural value — possibly secret-derived — into
// the ID/EX pipeline register, *outside* any secure instruction's dual-rail
// protection.  The compiler cannot see this channel (the instruction does
// not architecturally consume the secret); it must be closed in hardware.
// Operand isolation (gating reads that forwarding will supersede — also a
// classic low-power technique) does exactly that.
#include "analysis/tvla.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

struct Outcome {
  double key_diff_peak;
  double tvla_max_t;
  std::size_t tvla_over;
};

Outcome assess(bool isolation, const bench::Window& round1) {
  auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  sim::SimConfig config;
  config.operand_isolation = isolation;
  masked.set_sim_config(config);

  const auto d =
      masked.run_des(bench::kKey, bench::kPlain, round1.end)
          .trace.difference(
              masked.run_des(bench::kKeyBitFlipped, bench::kPlain, round1.end)
                  .trace);
  analysis::TvlaAssessment tvla(round1.begin, round1.end);
  util::Rng rng(0x150);
  for (int i = 0; i < 20; ++i) {
    tvla.add_fixed(
        masked.run_des(bench::kKey, bench::kPlain, round1.end).trace);
    tvla.add_random(
        masked.run_des(bench::kKey, rng.next_u64(), round1.end).trace);
  }
  const analysis::TvlaResult t = tvla.solve();
  return Outcome{d.slice(round1.begin, round1.end).max_abs(), t.max_abs_t,
                 t.cycles_over_threshold};
}

}  // namespace

int main() {
  bench::print_banner("Extension J",
                      "Operand-isolation ablation: the stale-register "
                      "channel the compiler cannot see.");
  const auto layout = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const bench::Window round1 = bench::round_window(layout.program(), 1);

  util::CsvWriter csv(bench::out_dir() + "/ext_operand_isolation.csv");
  csv.write_header({"operand_isolation", "masked_key_diff_pj", "tvla_max_t",
                    "tvla_cycles_over"});

  std::printf("%-20s %18s %12s %14s\n", "operand isolation",
              "masked key diff pJ", "TVLA max|t|", "cycles > 4.5");
  Outcome results[2];
  int row = 0;
  for (const bool isolation : {false, true}) {
    const Outcome o = assess(isolation, round1);
    results[row++] = o;
    std::printf("%-20s %18.4f %12.2f %14zu\n", isolation ? "ON" : "off",
                o.key_diff_peak, o.tvla_max_t, o.tvla_over);
    csv.write_row({isolation ? 1.0 : 0.0, o.key_diff_peak, o.tvla_max_t,
                   static_cast<double>(o.tvla_over)});
  }

  std::printf("\nwith isolation off, the fully-masked device still leaks "
              "key-dependent energy\nthrough stale register-file reads "
              "latched under non-secure instructions —\na channel invisible "
              "to the paper's compiler analysis, closed here in hardware.\n");
  const bool ok =
      results[0].key_diff_peak > 0.0 && results[1].key_diff_peak == 0.0 &&
      results[1].tvla_over == 0;
  return ok ? 0 : 1;
}
