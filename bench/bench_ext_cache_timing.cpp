// Extension N: cache-timing ablation — power masking does not close
// microarchitectural timing channels.
//
// The paper's device class runs cacheless from on-chip SRAM, and the whole
// masking construction silently relies on it: with an ordinary data cache,
// the S-box lookups' secret-derived addresses produce key-dependent
// hit/miss patterns, so the *cycle count* itself leaks — through perfect
// dual-rail power masking — exactly the cache-attack line of work
// contemporary with the paper.  This bench adds a small D-cache to the
// fully masked device and measures the reopened timing channel.
#include <algorithm>
#include <set>

#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

std::uint64_t cycles_with_cache(const core::MaskingPipeline& base,
                                std::uint64_t key, std::uint64_t pt,
                                bool with_cache) {
  auto device = base;  // copy: independent sim config
  sim::SimConfig config;
  if (with_cache) {
    sim::CacheConfig cache;
    cache.size_bytes = 1024;
    cache.line_bytes = 32;
    cache.miss_penalty = 8;
    config.dcache = cache;
  }
  device.set_sim_config(config);
  return device.run_des(key, pt).sim.cycles;
}

}  // namespace

int main() {
  bench::print_banner("Extension N",
                      "Cache-timing ablation: a D-cache reopens a timing "
                      "channel through the masked device.");
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  util::Rng rng(0xCAC4E);

  util::CsvWriter csv(bench::out_dir() + "/ext_cache_timing.csv");
  csv.write_header({"key_index", "cacheless_cycles", "cached_cycles"});

  std::printf("%8s %18s %18s\n", "key #", "cacheless cycles", "cached cycles");
  std::set<std::uint64_t> cacheless_counts, cached_counts;
  const std::uint64_t pt = bench::kPlain;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t c0 = cycles_with_cache(masked, key, pt, false);
    const std::uint64_t c1 = cycles_with_cache(masked, key, pt, true);
    cacheless_counts.insert(c0);
    cached_counts.insert(c1);
    std::printf("%8d %18llu %18llu\n", i,
                static_cast<unsigned long long>(c0),
                static_cast<unsigned long long>(c1));
    csv.write_row({static_cast<double>(i), static_cast<double>(c0),
                   static_cast<double>(c1)});
  }

  std::printf("\ndistinct cycle counts over 8 keys: cacheless %zu, "
              "cached %zu\n",
              cacheless_counts.size(), cached_counts.size());
  std::printf("the cacheless (paper-accurate) device is perfectly "
              "constant-time;\nthe cached device's timing varies with the "
              "key through the masked\nS-box lookups — a channel power "
              "masking cannot close.\n");
  return (cacheless_counts.size() == 1 && cached_counts.size() > 1) ? 0 : 1;
}
