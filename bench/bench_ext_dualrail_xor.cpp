// Extension C: gate-level characterization of the pre-charged dual-rail XOR
// unit (paper Fig. 5).  Sweeps operand pairs and reports the energy
// distribution in normal mode (data-dependent, ~0.3 pJ average) versus
// secure mode (constant 0.6 pJ, exactly 32 node discharges per cycle).
#include "bench_common.hpp"
#include "dualrail/xor_unit.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension C",
                      "Dual-rail XOR unit (Fig. 5): energy vs operand data, "
                      "normal and secure modes.");
  constexpr double kNodeCap = 3e-15;
  constexpr double kVdd = 2.5;

  // Secure mode: energy must be a single constant across random operands.
  dualrail::DualRailXor32 secure_unit(kNodeCap, kVdd);
  util::Rng rng(0xC0DE);
  secure_unit.cycle(rng.next_u32(), rng.next_u32(), true);  // warm up
  util::RunningStats secure_stats;
  int min_discharge = 64, max_discharge = 0;
  for (int i = 0; i < 50000; ++i) {
    secure_stats.add(
        secure_unit.cycle(rng.next_u32(), rng.next_u32(), true).total() *
        1e12);
    min_discharge = std::min(min_discharge, secure_unit.discharged_nodes());
    max_discharge = std::max(max_discharge, secure_unit.discharged_nodes());
  }

  // Normal mode: energy follows the data (popcount of the previous result).
  dualrail::DualRailXor32 normal_unit(kNodeCap, kVdd);
  util::RunningStats normal_stats;
  std::vector<double> by_weight(33, 0.0);
  std::vector<int> weight_count(33, 0);
  std::uint32_t prev_result = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const double e = normal_unit.cycle(a, b, false).total() * 1e12;
    normal_stats.add(e);
    const int w = std::popcount(prev_result);  // what gets recharged
    by_weight[static_cast<std::size_t>(w)] += e;
    weight_count[static_cast<std::size_t>(w)]++;
    prev_result = a ^ b;
  }

  util::CsvWriter csv(bench::out_dir() + "/ext_dualrail_xor.csv");
  csv.write_header({"prev_result_weight", "normal_energy_pj", "secure_energy_pj"});
  for (int w = 0; w <= 32; ++w) {
    if (weight_count[static_cast<std::size_t>(w)] == 0) continue;
    csv.write_row({static_cast<double>(w),
                   by_weight[static_cast<std::size_t>(w)] /
                       weight_count[static_cast<std::size_t>(w)],
                   secure_stats.mean()});
  }

  std::printf("secure mode : mean %.4f pJ, stddev %.6f pJ "
              "(paper: 0.6 pJ, constant)\n",
              secure_stats.mean(), secure_stats.stddev());
  std::printf("              discharges per cycle: min %d, max %d "
              "(must both be 32)\n",
              min_discharge, max_discharge);
  std::printf("normal mode : mean %.4f pJ (paper: 0.3 pJ), stddev %.4f pJ "
              "(data-dependent)\n",
              normal_stats.mean(), normal_stats.stddev());
  std::printf("series -> %s/ext_dualrail_xor.csv\n", bench::out_dir().c_str());

  const bool ok = secure_stats.stddev() < 1e-9 && min_discharge == 32 &&
                  max_discharge == 32 && normal_stats.stddev() > 0.01;
  return ok ? 0 : 1;
}
