// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// golden DES, the assembler, the cycle-accurate simulator with and without
// the energy back end, the forward slicer, and the DPA kernel.
#include <benchmark/benchmark.h>

#include "analysis/dpa.hpp"
#include "assembler/assembler.hpp"
#include "compiler/masking.hpp"
#include "core/masking_pipeline.hpp"
#include "des/asm_generator.hpp"
#include "des/des.hpp"
#include "energy/model.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"

namespace {

using namespace emask;

void BM_GoldenDesEncrypt(benchmark::State& state) {
  util::Rng rng(1);
  std::uint64_t pt = rng.next_u64();
  const std::uint64_t key = rng.next_u64();
  for (auto _ : state) {
    pt = des::encrypt_block(pt, key);
    benchmark::DoNotOptimize(pt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenDesEncrypt);

void BM_GoldenDesKeySchedule(benchmark::State& state) {
  util::Rng rng(2);
  std::uint64_t key = rng.next_u64();
  for (auto _ : state) {
    const des::KeySchedule ks = des::key_schedule(key);
    benchmark::DoNotOptimize(ks);
    ++key;
  }
}
BENCHMARK(BM_GoldenDesKeySchedule);

void BM_GenerateDesAsm(benchmark::State& state) {
  for (auto _ : state) {
    const std::string src = des::generate_des_asm(0, 0, {});
    benchmark::DoNotOptimize(src);
  }
}
BENCHMARK(BM_GenerateDesAsm);

void BM_AssembleDesProgram(benchmark::State& state) {
  const std::string src = des::generate_des_asm(0, 0, {});
  for (auto _ : state) {
    const assembler::Program p = assembler::assemble(src);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_AssembleDesProgram);

void BM_ForwardSliceDes(benchmark::State& state) {
  const assembler::Program p =
      assembler::assemble(des::generate_des_asm(0, 0, {}));
  for (auto _ : state) {
    const auto r = compiler::forward_slice(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ForwardSliceDes);

// Simulator speed in simulated cycles per second, performance model only.
void BM_PipelineSimulation(benchmark::State& state) {
  const auto masked = compiler::apply_masking(
      assembler::assemble(des::generate_des_asm(1, 2, {})),
      compiler::Policy::kSelective);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim::Pipeline p(masked.program);
    const sim::SimResult r = p.run();
    cycles += r.cycles;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

// Simulator + transition-sensitive energy accounting (the SimplePower
// configuration used by every experiment).
void BM_PipelineWithEnergyModel(benchmark::State& state) {
  const auto pipeline = core::MaskingPipeline::des(compiler::Policy::kSelective);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto run = pipeline.run_des(1, 2);
    cycles += run.sim.cycles;
    benchmark::DoNotOptimize(run);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineWithEnergyModel)->Unit(benchmark::kMillisecond);

void BM_EnergyModelCycle(benchmark::State& state) {
  energy::ProcessorEnergyModel model;
  util::Rng rng(3);
  energy::CycleActivity a;
  a.fetch = true;
  a.decode = true;
  a.rf_reads = 2;
  a.ex.valid = true;
  a.ex.unit = isa::FuncUnit::kAdder;
  a.mem.read = true;
  a.rf_write = true;
  a.id_ex = energy::LatchWrite{true, false, 0, 64};
  for (auto _ : state) {
    a.fetch_bits = rng.next_u64();
    a.ex.result = rng.next_u32();
    a.mem.address = rng.next_u32() & ~3u;
    a.mem.data = rng.next_u32();
    a.id_ex.payload = rng.next_u64();
    benchmark::DoNotOptimize(model.cycle(a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnergyModelCycle);

void BM_DpaAddTrace(benchmark::State& state) {
  analysis::DpaConfig cfg;
  cfg.window_end = 10000;
  analysis::DpaAttack attack(cfg);
  const analysis::Trace trace(std::vector<double>(10000, 150.0));
  util::Rng rng(4);
  for (auto _ : state) {
    attack.add_trace(rng.next_u64(), trace);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpaAddTrace);

void BM_DpaPredictBit(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::DpaAttack::predict_bit(
        rng.next_u64(), 3, 1, static_cast<int>(rng.next_below(64))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpaPredictBit);

}  // namespace

BENCHMARK_MAIN();
