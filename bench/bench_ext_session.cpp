// Extension S: protocol-scale CBC sessions through the session engine —
// key-schedule amortization and fork-vs-cold bit-identity.
//
// A session chains N blocks through DES-CBC (or 3DES-EDE outer CBC) under
// one key; the engine hoists the key schedule ahead of the fork marker so
// it is simulated once per session instead of once per block.  This bench
// measures simulated blocks/sec at small session lengths, *proves* the
// snapshot contract on the spot (forked per-block traces bit-identical to
// cold captures), and extrapolates the amortized speedup to a 10^5-block
// session with pure cycle math:
//
//   speedup(N) = N * F / (P + N * (F - P))
//
// where F is the full cycle count of one block (all stages) and P the
// summed key-schedule prefix.  Exit status gates the bit-identity checks
// and the 10^5-block speedup (>= 1.2x) — never wall clock.  The CSV/JSON
// series carries cycle math only, so two runs byte-diff clean and CI gates
// the session path on it.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "session/session.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

constexpr std::size_t kBlocks = 16;  // fully simulated session length
constexpr std::uint64_t kSeed = 0x5E5510;
constexpr double kSpeedupGate = 1.2;  // at the 10^5-block session

struct CipherCase {
  const char* label;
  session::SessionCipher cipher;
  compiler::Policy policy;
};

/// Everything a captured session exposes that must be mode-independent:
/// the per-block attribution rows plus every raw trace sample.
struct Captured {
  session::SessionResult result;
  std::vector<std::vector<double>> samples;  // one entry per (stage, block)
  double wall_s = 0.0;
};

Captured run_session(const CipherCase& c, core::SnapshotMode snapshot,
                     const std::vector<std::uint64_t>& blocks) {
  session::SessionConfig cfg;
  cfg.cipher = c.cipher;
  cfg.policy = c.policy;
  cfg.keys = {bench::kKey, 0x23456789ABCDEF01ull, 0x456789ABCDEF0123ull};
  cfg.iv = bench::kPlain2;
  cfg.snapshot = snapshot;
  session::SessionEngine engine(cfg);
  Captured out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = engine.encrypt(
      blocks, [&](const session::BlockEvent&, core::EncryptionRun& run) {
        out.samples.push_back(run.trace.samples());
      });
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

bool identical(const Captured& a, const Captured& b) {
  if (a.samples != b.samples) return false;
  if (a.result.output != b.result.output) return false;
  if (a.result.blocks.size() != b.result.blocks.size()) return false;
  for (std::size_t i = 0; i < a.result.blocks.size(); ++i) {
    const session::BlockResult& x = a.result.blocks[i];
    const session::BlockResult& y = b.result.blocks[i];
    if (x.input != y.input || x.chain != y.chain || x.output != y.output ||
        x.cycles != y.cycles || x.energy_uj != y.energy_uj) {
      return false;
    }
  }
  return a.result.session_cycles == b.result.session_cycles &&
         a.result.cold_cycles == b.result.cold_cycles;
}

/// Amortized speedup of an N-block session from one block's cycle counts.
double projected_speedup(std::uint64_t full, std::uint64_t prefix,
                         double n) {
  const double cold = n * static_cast<double>(full);
  const double amortized =
      static_cast<double>(prefix) + n * static_cast<double>(full - prefix);
  return amortized > 0.0 ? cold / amortized : 1.0;
}

}  // namespace

int main() {
  bench::print_banner("Extension S",
                      "CBC session engine: key-schedule amortization and "
                      "fork-vs-cold bit-identity at protocol scale.");

  const CipherCase cases[] = {
      {"des_cbc/selective", session::SessionCipher::kDesCbc,
       compiler::Policy::kSelective},
      {"tdes_cbc/original", session::SessionCipher::kTdesEdeCbc,
       compiler::Policy::kOriginal},
  };
  const std::vector<double> lengths = {1.0, 16.0, 256.0, 100000.0};

  std::vector<std::uint64_t> blocks(kBlocks);
  util::Rng rng(kSeed);
  for (std::uint64_t& b : blocks) b = rng.next_u64();

  bench::SeriesWriter series("ext_session");
  series.write_header({"cipher_tdes", "session_blocks", "prefix_cycles",
                       "block_cycles", "session_cycles", "cold_cycles",
                       "amortized_speedup", "fork_identical"});

  bool all_identical = true;
  bool all_fast_enough = true;
  for (const CipherCase& c : cases) {
    const Captured fork = run_session(c, core::SnapshotMode::kRequire, blocks);
    const Captured cold = run_session(c, core::SnapshotMode::kOff, blocks);
    const bool same = identical(fork, cold);
    all_identical &= same;

    const session::SessionResult& r = fork.result;
    const double fork_bps = static_cast<double>(kBlocks) / fork.wall_s;
    std::printf("\n-- %s: %zu-block session, %zu stage(s)/block --\n", c.label,
                kBlocks, r.stages);
    std::printf("wall: fork %.3f s (%.1f blocks/s), cold %.3f s; "
                "fork vs cold bit-identical: %s\n",
                fork.wall_s, fork_bps, cold.wall_s, same ? "YES" : "NO");
    std::printf("cycles: prefix %llu, block %llu, session %llu "
                "(cold %llu, %.3fx)\n",
                static_cast<unsigned long long>(r.prefix_cycles),
                static_cast<unsigned long long>(r.block_cycles),
                static_cast<unsigned long long>(r.session_cycles),
                static_cast<unsigned long long>(r.cold_cycles),
                r.amortized_speedup());

    std::printf("%12s %14s %12s\n", "blocks", "speedup", "est. wall s");
    const double cycles_per_s =
        static_cast<double>(r.session_cycles) / fork.wall_s;
    double gate_speedup = 0.0;
    for (const double n : lengths) {
      const double speedup =
          projected_speedup(r.block_cycles, r.prefix_cycles, n);
      const double session_cycles =
          static_cast<double>(r.prefix_cycles) +
          n * static_cast<double>(r.block_cycles - r.prefix_cycles);
      std::printf("%12.0f %13.3fx %12.1f\n", n, speedup,
                  session_cycles / cycles_per_s);
      series.write_row(
          {c.cipher == session::SessionCipher::kTdesEdeCbc ? 1.0 : 0.0, n,
           static_cast<double>(r.prefix_cycles),
           static_cast<double>(r.block_cycles), session_cycles,
           n * static_cast<double>(r.block_cycles), speedup,
           same ? 1.0 : 0.0});
      if (n == lengths.back()) gate_speedup = speedup;
    }
    const bool fast_enough = gate_speedup >= kSpeedupGate;
    all_fast_enough &= fast_enough;
    std::printf("amortized speedup at 10^5 blocks >= %.1fx: %s (%.3fx)\n",
                kSpeedupGate, fast_enough ? "YES" : "NO", gate_speedup);
  }
  series.flush();

  std::printf("\nall ciphers fork-vs-cold bit-identical: %s\n",
              all_identical ? "YES" : "NO");
  return (all_identical && all_fast_enough) ? 0 : 1;
}
