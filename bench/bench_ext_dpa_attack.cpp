// Extension A: end-to-end DPA (difference-of-means, Kocher/Goubin) against
// the simulated smart card — the attack the paper's countermeasure is built
// to stop.  The paper's introduction describes the attacker using ~1000
// sampled inputs; we sweep the trace budget and report when the 6-bit
// round-1 subkey chunk is recovered on the unmasked device, and show the
// selectively masked device yields zero signal at the full budget.
#include "analysis/dpa.hpp"
#include "bench_common.hpp"
#include "core/batch_runner.hpp"

using namespace emask;

namespace {

constexpr std::size_t kWindowBegin = 3000;
constexpr std::size_t kWindowEnd = 13000;  // covers round 1

struct Checkpoint {
  std::size_t traces;
  int best_guess;
  double best_peak;
  double margin;
};

std::vector<Checkpoint> attack(const core::MaskingPipeline& pipeline,
                               std::uint64_t key, int sbox,
                               const std::vector<std::size_t>& budgets) {
  analysis::DpaConfig cfg;
  cfg.sbox = sbox;
  cfg.bit = 0;
  cfg.window_begin = kWindowBegin;
  cfg.window_end = kWindowEnd;
  analysis::DpaAttack atk(cfg);
  std::vector<Checkpoint> out;
  // Parallel acquisition, serial analysis: BatchRunner streams the traces
  // in index order (plaintext i = Rng::nth(0xD9A, i), the same stream the
  // old serial loop drew), so the checkpoints are bit-identical to serial
  // capture at any thread count.
  core::BatchConfig bc;
  bc.stop_after_cycles = kWindowEnd;
  core::BatchRunner runner(pipeline, bc);
  std::size_t checkpoint = 0;
  runner.capture_each(
      budgets.back(), core::random_plaintexts(key, 0xD9A),
      [&](std::size_t i, const core::BatchInput& input,
          core::EncryptionRun& run) {
        atk.add_trace(input.plaintext, run.trace);
        while (checkpoint < budgets.size() && i + 1 == budgets[checkpoint]) {
          const analysis::DpaResult r = atk.solve();
          out.push_back({budgets[checkpoint], r.best_guess, r.best_peak,
                         r.margin()});
          ++checkpoint;
        }
      });
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Extension A",
                      "Difference-of-means DPA on round-1 S-box 1: trace "
                      "budget sweep, unmasked vs selectively masked.");
  const std::uint64_t key = bench::kKey;
  const int sbox = 0;
  const int truth = analysis::DpaAttack::true_subkey_chunk(key, sbox);
  const std::vector<std::size_t> budgets = {50, 100, 200, 400, 800};

  const auto original =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto masked =
      core::MaskingPipeline::des(compiler::Policy::kSelective);

  std::printf("true subkey chunk (K1, S-box 1): %d\n\n", truth);
  bench::SeriesWriter csv("ext_dpa_attack");
  csv.write_header({"traces", "unmasked_guess", "unmasked_peak",
                    "unmasked_margin", "unmasked_correct"});

  std::printf("-- unmasked device --\n");
  std::printf("%8s %8s %10s %8s %9s\n", "traces", "guess", "peak pJ",
              "margin", "correct?");
  bool recovered = false;
  for (const Checkpoint& c : attack(original, key, sbox, budgets)) {
    const bool ok = c.best_guess == truth;
    recovered |= ok && c.traces == budgets.back();
    std::printf("%8zu %8d %10.3f %8.2f %9s\n", c.traces, c.best_guess,
                c.best_peak, c.margin, ok ? "YES" : "no");
    csv.write_row({static_cast<double>(c.traces),
                   static_cast<double>(c.best_guess), c.best_peak, c.margin,
                   ok ? 1.0 : 0.0});
  }

  csv.flush();

  std::printf("\n-- selectively masked device --\n");
  const auto masked_result =
      attack(masked, key, sbox, {budgets.back()}).back();
  std::printf("%8zu traces: best-guess DoM peak = %.6f pJ "
              "(zero signal: every guess ties at the fp noise floor)\n",
              masked_result.traces, masked_result.best_peak);

  const bool masked_flat = masked_result.best_peak < 1e-9;
  std::printf("\nunmasked key chunk recovered : %s\n",
              recovered ? "YES" : "no");
  std::printf("masked device leaks          : %s\n",
              masked_flat ? "no (DPA defeated)" : "YES");
  return (recovered && masked_flat) ? 0 : 1;
}
