// Extension F: the paper's own stated limitation, quantified.
//
//   "The use of complementary values and dual rail logic alone will not be
//    sufficient in the future.  This is because power consumption
//    differences will also arise due to signal transitions on adjacent
//    lines of on-chip buses [8].  Current dual-rail encoding schemes do not
//    mask the key leakage arising due to these differences."  (Sec. 5)
//
// With inter-wire coupling enabled in the bus model, the dual-rail secure
// transfers still switch a constant number of lines, but *which* lines fall
// depends on the data — and the coupling term leaks the adjacent-bit
// pattern.  This bench shows the selectively masked device going from
// perfectly flat (no coupling) to measurably leaky (with coupling).
#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "analysis/tvla.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace emask;

namespace {

double masked_key_differential(const energy::TechParams& params,
                               const bench::Window& round1) {
  const auto masked =
      core::MaskingPipeline::des(compiler::Policy::kSelective, params);
  const auto d = masked.run_des(bench::kKey, bench::kPlain, round1.end)
                     .trace.difference(
                         masked.run_des(bench::kKeyBitFlipped, bench::kPlain,
                                        round1.end)
                             .trace);
  return d.slice(round1.begin, round1.end).max_abs();
}

}  // namespace

int main() {
  bench::print_banner("Extension F",
                      "Residual leakage of dual-rail masking under "
                      "adjacent-line bus coupling (the paper's conclusion).");
  const auto layout = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const bench::Window round1 = bench::round_window(layout.program(), 1);

  util::CsvWriter csv(bench::out_dir() + "/ext_coupling_leakage.csv");
  csv.write_header({"coupling_ff", "masked_round1_key_diff_pj"});

  std::printf("%16s %32s\n", "coupling C (fF)", "masked round-1 key diff (pJ)");
  double without = -1.0, with_coupling = -1.0;
  for (const double c_ff : {0.0, 5.0, 10.0, 20.0}) {
    const auto params =
        c_ff == 0.0 ? energy::TechParams::smartcard_025um()
                    : energy::TechParams::smartcard_025um_with_coupling(
                          c_ff * 1e-15);
    const double diff = masked_key_differential(params, round1);
    std::printf("%16.1f %32.4f\n", c_ff, diff);
    csv.write_row({c_ff, diff});
    if (c_ff == 0.0) without = diff;
    if (c_ff == 20.0) with_coupling = diff;
  }

  // The channel is not just measurable — it is exploitable: run the CPA
  // key-recovery attack against the *masked* device with 20 fF coupling.
  std::printf("\n-- CPA against the MASKED device, 20 fF coupling --\n");
  const auto masked = core::MaskingPipeline::des(
      compiler::Policy::kSelective,
      energy::TechParams::smartcard_025um_with_coupling(20e-15));
  analysis::CpaConfig cfg;
  cfg.sbox = 0;
  cfg.window_begin = round1.begin;
  cfg.window_end = round1.end;
  analysis::CpaAttack attack(cfg);
  util::Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt,
                     masked.run_des(bench::kKey, pt, round1.end).trace);
  }
  const analysis::CpaResult r = attack.solve();
  const int truth = analysis::DpaAttack::true_subkey_chunk(bench::kKey, 0);
  const bool broken = r.best_guess == truth;
  std::printf("400 traces: best guess %d (truth %d), |rho| = %.3f, margin "
              "%.2fx -> key chunk %s\n",
              r.best_guess, truth, r.best_corr, r.margin(),
              broken ? "RECOVERED" : "not recovered");

  std::printf("\nwithout coupling the masked device is exactly flat; with "
              "coupling the\nsecure buses leak the adjacent-bit pattern of "
              "key-derived values — and the\nleak is strong enough for "
              "full CPA key recovery.  This is precisely the\nresidual "
              "channel the paper's conclusion flags as future work.\n");
  return (without == 0.0 && with_coupling > 0.0 && broken) ? 0 : 1;
}
