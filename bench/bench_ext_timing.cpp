// Extension G: timing behaviour of the masked processor.
//
// Two properties worth demonstrating:
//   1. Secure instructions do not change the cycle count: masking adds
//      energy, never latency — so it introduces no timing channel of its
//      own (the paper's secure versions widen datapaths; the pipeline
//      schedule is untouched).
//   2. The cycle count is identical for every key and plaintext: the DES
//      code layout itself is timing-channel free (no secret-dependent
//      branches — enforced by the compiler's kTaintedBranch diagnostic).
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "util/rng.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension G",
                      "Pipeline timing per policy: masking must not perturb "
                      "the schedule.");
  const compiler::Policy policies[] = {
      compiler::Policy::kOriginal, compiler::Policy::kSelective,
      compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure};

  bench::SeriesWriter csv("ext_timing");
  csv.write_header({"policy", "cycles", "instructions", "cpi", "stalls",
                    "flushes"});

  std::printf("%-16s %10s %13s %7s %8s %8s\n", "policy", "cycles",
              "instructions", "CPI", "stalls", "flushes");
  std::uint64_t baseline_cycles = 0;
  bool invariant = true;
  for (int p = 0; p < 4; ++p) {
    const auto pipeline = core::MaskingPipeline::des(policies[p]);
    const auto run = pipeline.run_des(bench::kKey, bench::kPlain);
    std::printf("%-16s %10llu %13llu %7.3f %8llu %8llu\n",
                compiler::policy_name(policies[p]).data(),
                static_cast<unsigned long long>(run.sim.cycles),
                static_cast<unsigned long long>(run.sim.instructions),
                run.sim.cpi(),
                static_cast<unsigned long long>(run.sim.stalls),
                static_cast<unsigned long long>(run.sim.flushes));
    csv.write_row({static_cast<double>(p),
                   static_cast<double>(run.sim.cycles),
                   static_cast<double>(run.sim.instructions), run.sim.cpi(),
                   static_cast<double>(run.sim.stalls),
                   static_cast<double>(run.sim.flushes)});
    if (p == 0) baseline_cycles = run.sim.cycles;
    invariant &= run.sim.cycles == baseline_cycles;
  }

  // Key/plaintext timing invariance on the masked device.
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  util::Rng rng(0x7137);
  bool input_invariant = true;
  for (int i = 0; i < 5; ++i) {
    input_invariant &=
        masked.run_des(rng.next_u64(), rng.next_u64()).sim.cycles ==
        baseline_cycles;
  }
  csv.flush();
  std::printf("\ncycle count identical across policies : %s\n",
              invariant ? "yes (masking adds energy, never latency)" : "NO");
  std::printf("cycle count identical across inputs   : %s\n",
              input_invariant ? "yes (no timing channel)" : "NO");
  return (invariant && input_invariant) ? 0 : 1;
}
