// Extension B: per-component energy breakdown under each protection policy.
// Supports the paper's Sec. 1 claim that "the processor datapath and buses
// exhibit more data-dependent energy variation as compared to memory
// components", and shows exactly where the dual-rail overhead lands.
#include "bench_common.hpp"
#include "compiler/masking.hpp"
#include "energy/components.hpp"
#include "util/csv.hpp"

using namespace emask;

int main() {
  bench::print_banner("Extension B",
                      "Per-component energy totals for one encryption, per "
                      "policy (uJ).");
  const compiler::Policy policies[] = {
      compiler::Policy::kOriginal, compiler::Policy::kSelective,
      compiler::Policy::kNaiveLoadStore, compiler::Policy::kAllSecure};

  energy::Breakdown breakdowns[4];
  for (int i = 0; i < 4; ++i) {
    const auto pipeline = core::MaskingPipeline::des(policies[i]);
    breakdowns[i] =
        pipeline.run_des(bench::kKey, bench::kPlain).breakdown;
  }

  util::CsvWriter csv(bench::out_dir() + "/ext_component_breakdown.csv");
  csv.write_header({"component", "original_uj", "selective_uj",
                    "naive_loadstore_uj", "all_secure_uj"});

  std::printf("%-14s %10s %10s %10s %10s\n", "component", "original",
              "selective", "naive L/S", "all secure");
  for (std::size_t c = 0; c < energy::kNumComponents; ++c) {
    const auto comp = static_cast<energy::Component>(c);
    std::printf("%-14s", std::string(energy::component_name(comp)).c_str());
    std::vector<double> row{static_cast<double>(c)};
    for (int i = 0; i < 4; ++i) {
      const double uj = breakdowns[i].get(comp) * 1e6;
      std::printf(" %10.3f", uj);
      row.push_back(uj);
    }
    std::printf("\n");
    csv.write_row(row);
  }
  std::printf("%-14s", "TOTAL");
  for (const auto& b : breakdowns) std::printf(" %10.3f", b.total() * 1e6);
  std::printf("\n");

  // Data-dependence check: the memory array's share is policy-invariant
  // (data-independent), while datapath+buses carry all the overhead.
  const double mem_delta =
      breakdowns[3].get(energy::Component::kMemArray) -
      breakdowns[0].get(energy::Component::kMemArray);
  std::printf("\nmemory-array overhead (all-secure - original): %.3f uJ "
              "(paper: memory is data-independent)\n",
              mem_delta * 1e6);
  return mem_delta == 0.0 ? 0 : 1;
}
