// Figure 10: "Difference between energy consumption profiles generated
// using two different plaintexts before masking process."
#include "bench_common.hpp"

using namespace emask;

int main() {
  bench::print_banner("Figure 10",
                      "Differential trace for two different plaintexts, "
                      "same key, before masking.");
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto r1 = pipeline.run_des(bench::kKey, bench::kPlain);
  const auto r2 = pipeline.run_des(bench::kKey, bench::kPlain2);
  const analysis::Trace diff = r1.trace.difference(r2.trace);

  bench::SeriesWriter csv("fig10_plaintext_diff_before");
  csv.write_header({"cycle", "diff_pj"});
  for (std::size_t i = 0; i < diff.size(); ++i) {
    csv.write_row({static_cast<double>(i), diff[i]});
  }

  const bench::Window round1 = bench::round_window(pipeline.program(), 1);
  const auto rounds = diff.slice(round1.begin, diff.size());
  std::printf("max |diff| overall    : %.2f pJ\n", diff.max_abs());
  std::printf("max |diff| in rounds  : %.2f pJ  (paper: nonzero everywhere)\n",
              rounds.max_abs());
  std::printf("series -> %s/fig10_plaintext_diff_before.csv\n",
              bench::out_dir().c_str());
  return (diff.max_abs() > 0.0 && rounds.max_abs() > 0.0) ? 0 : 1;
}
