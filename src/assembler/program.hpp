// Loadable program image produced by the assembler and consumed by the
// pipeline simulator and the compiler pass.
//
// The modeled machine is a Harvard-style embedded core (as in SimpleScalar's
// functional model): instruction memory is separate from data memory, the PC
// is an instruction index, and data addresses are byte addresses into a flat
// on-chip SRAM starting at kDataBase.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace emask::assembler {

inline constexpr std::uint32_t kDataBase = 0x00010000;

/// One named object in the data segment.
///
/// `secret` records a programmer `.secret` annotation: the compiler uses
/// these symbols as the seeds of its forward slice (the paper's "annotated
/// critical variables").
///
/// `declassified` records a `.declassified` annotation: secret-derived data
/// stored here is considered public, so the stores need no secure version
/// and the region does not propagate taint.  This reproduces the paper's
/// treatment of the output inverse permutation: "this operation does not
/// need any secure instruction although it uses data generated from secure
/// instructions as it reveals only the information already available from
/// the output cipher" (Sec. 4.1).
struct DataSymbol {
  std::string name;
  std::uint32_t address = 0;     // absolute byte address
  std::uint32_t size_bytes = 0;  // extent up to the next label / end of data
  bool secret = false;
  bool declassified = false;
};

/// Maps an emitted instruction back to its source line (diagnostics, and the
/// compiler's report of which source operations were secured).
struct SourceLoc {
  int line = 0;  // 1-based line in the assembly source; 0 = synthesized
};

class Program {
 public:
  std::vector<isa::Instruction> text;
  std::vector<SourceLoc> text_locs;           // parallel to `text`
  std::vector<std::uint8_t> data;             // image based at kDataBase
  std::map<std::string, std::uint32_t> text_labels;  // label -> instr index
  std::vector<DataSymbol> symbols;
  /// Instruction index of the `fork` marker, if the source declared one.
  /// The marker is a retired no-op separating a shared input-independent
  /// prefix (e.g. the DES key schedule) from per-input work; simulator
  /// snapshots are taken at the cycle the marker retires (see
  /// sim::Snapshot).  At most one marker per program.
  std::optional<std::uint32_t> fork_point;

  /// Entry point: index of label "main" if present, else 0.
  [[nodiscard]] std::uint32_t entry() const;

  /// Looks up a data symbol by name.
  [[nodiscard]] const DataSymbol* find_symbol(const std::string& name) const;

  /// Finds the data symbol covering an absolute byte address, if any.
  [[nodiscard]] const DataSymbol* symbol_at(std::uint32_t address) const;

  /// Initial 32-bit little-endian word at absolute byte address `addr`
  /// (must lie fully inside the data image).
  [[nodiscard]] std::uint32_t initial_word(std::uint32_t addr) const;

  /// Overwrites a 32-bit word of the initial data image (used to plug a key
  /// or plaintext into an already assembled program between runs).
  void poke_word(std::uint32_t addr, std::uint32_t value);
};

}  // namespace emask::assembler
