#include "assembler/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/encoding.hpp"

namespace emask::assembler {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

/// A raw source statement after label/comment stripping.
struct Statement {
  int line = 0;
  std::string head;                // mnemonic or directive (lowercased)
  std::vector<std::string> args;   // comma-separated operands, trimmed
};

/// Mnemonic lookup result: base opcode + secure flag (or a pseudo).
struct Mnemonic {
  enum class Kind { kReal, kNop, kFork, kMove, kLi, kLa, kB } kind = Kind::kReal;
  Opcode op = Opcode::kHalt;
  bool secure = false;
};

std::optional<Mnemonic> resolve_mnemonic(const std::string& m, int line) {
  if (m == "nop") return Mnemonic{Mnemonic::Kind::kNop, Opcode::kSll, false};
  // Fork marker: assembles to a retired no-op and records its instruction
  // index in Program::fork_point (snapshot/fork trace capture).
  if (m == "fork") return Mnemonic{Mnemonic::Kind::kFork, Opcode::kSll, false};
  if (m == "move") return Mnemonic{Mnemonic::Kind::kMove, Opcode::kAddu, false};
  if (m == "smove") return Mnemonic{Mnemonic::Kind::kMove, Opcode::kAddu, true};
  if (m == "li") return Mnemonic{Mnemonic::Kind::kLi, Opcode::kAddiu, false};
  if (m == "la") return Mnemonic{Mnemonic::Kind::kLa, Opcode::kLui, false};
  if (m == "b") return Mnemonic{Mnemonic::Kind::kB, Opcode::kBeq, false};
  if (auto op = isa::opcode_from_mnemonic(m)) {
    return Mnemonic{Mnemonic::Kind::kReal, *op, false};
  }
  // "s"-prefixed secure spelling (paper Fig. 4: slw, ssw, ...).
  if (m.size() > 1 && m[0] == 's') {
    if (auto op = isa::opcode_from_mnemonic(m.substr(1))) {
      if (!isa::info(*op).securable) {
        throw AsmError(line, "'" + m + "': '" + m.substr(1) +
                                 "' has no secure version");
      }
      return Mnemonic{Mnemonic::Kind::kReal, *op, true};
    }
  }
  return std::nullopt;
}

std::int64_t parse_number(const std::string& text, int line) {
  if (text.empty()) throw AsmError(line, "expected a number");
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 0);
  if (end != text.c_str() + text.size()) {
    throw AsmError(line, "malformed number '" + text + "'");
  }
  return v;
}

Reg parse_reg_or_throw(const std::string& text, int line) {
  if (auto r = isa::parse_reg(text)) return *r;
  throw AsmError(line, "malformed register '" + text + "'");
}

bool is_label_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// The assembler proper: collects statements, lays out data, sizes/expands
/// text in two passes.
class Assembler {
 public:
  Program run(const std::string& source) {
    collect(source);
    layout_data();
    size_text();
    emit_text();
    resolve_secrets();
    return std::move(prog_);
  }

 private:
  // ---- Pass 0: statement collection --------------------------------------

  void collect(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    bool in_data = false;
    while (std::getline(in, raw)) {
      ++line_no;
      // Strip comments.
      for (const char marker : {'#', ';'}) {
        const auto pos = raw.find(marker);
        if (pos != std::string::npos) raw.resize(pos);
      }
      std::string rest = trim(raw);
      // Peel leading labels ("name:").
      while (!rest.empty() && is_label_start(rest[0])) {
        const auto colon = rest.find(':');
        if (colon == std::string::npos) break;
        const std::string candidate = trim(rest.substr(0, colon));
        if (candidate.find(' ') != std::string::npos ||
            candidate.find('\t') != std::string::npos) {
          break;  // not a label, e.g. a directive with args
        }
        define_label(candidate, in_data, line_no);
        rest = trim(rest.substr(colon + 1));
      }
      if (rest.empty()) continue;

      Statement st;
      st.line = line_no;
      const auto ws = rest.find_first_of(" \t");
      st.head = rest.substr(0, ws);
      std::transform(st.head.begin(), st.head.end(), st.head.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (ws != std::string::npos) {
        std::string args = trim(rest.substr(ws));
        std::string cur;
        for (char c : args) {
          if (c == ',') {
            st.args.push_back(trim(cur));
            cur.clear();
          } else {
            cur += c;
          }
        }
        if (!trim(cur).empty()) st.args.push_back(trim(cur));
      }

      if (st.head == ".text") {
        in_data = false;
      } else if (st.head == ".data") {
        in_data = true;
      } else if (in_data) {
        data_stmts_.push_back(st);
      } else {
        text_stmts_.push_back(st);
      }
    }
  }

  void define_label(const std::string& name, bool in_data, int line) {
    if (in_data) {
      if (data_label_lines_.count(name)) {
        throw AsmError(line, "duplicate data label '" + name + "'");
      }
      data_label_lines_[name] = line;
      data_stmts_.push_back(Statement{line, ".label", {name}});
    } else {
      if (prog_.text_labels.count(name)) {
        throw AsmError(line, "duplicate text label '" + name + "'");
      }
      pending_text_labels_.push_back({name, line});
      text_stmts_.push_back(Statement{line, ".label", {name}});
    }
  }

  // ---- Data layout ---------------------------------------------------------

  void layout_data() {
    std::vector<std::pair<std::string, std::uint32_t>> label_offsets;
    std::vector<std::uint8_t>& img = prog_.data;
    for (const Statement& st : data_stmts_) {
      if (st.head == ".label") {
        label_offsets.emplace_back(st.args[0],
                                   static_cast<std::uint32_t>(img.size()));
      } else if (st.head == ".word") {
        if (st.args.empty()) throw AsmError(st.line, ".word needs values");
        for (const std::string& a : st.args) {
          const auto v =
              static_cast<std::uint32_t>(parse_number(a, st.line) & 0xFFFFFFFF);
          img.push_back(static_cast<std::uint8_t>(v & 0xFF));
          img.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
          img.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
          img.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
        }
      } else if (st.head == ".space") {
        if (st.args.size() != 1) throw AsmError(st.line, ".space needs a size");
        const std::int64_t n = parse_number(st.args[0], st.line);
        if (n < 0 || n > (1 << 24)) {
          throw AsmError(st.line, ".space size out of range");
        }
        img.insert(img.end(), static_cast<std::size_t>(n), 0u);
      } else if (st.head == ".align") {
        if (st.args.size() != 1) throw AsmError(st.line, ".align needs a power");
        const std::int64_t p = parse_number(st.args[0], st.line);
        if (p < 0 || p > 12) throw AsmError(st.line, ".align power out of range");
        const std::size_t unit = std::size_t{1} << p;
        while (img.size() % unit != 0) img.push_back(0u);
      } else if (st.head == ".secret") {
        if (st.args.size() != 1) throw AsmError(st.line, ".secret needs a name");
        secret_requests_.emplace_back(st.args[0], st.line);
      } else if (st.head == ".declassified") {
        if (st.args.size() != 1) {
          throw AsmError(st.line, ".declassified needs a name");
        }
        declassified_requests_.emplace_back(st.args[0], st.line);
      } else {
        throw AsmError(st.line, "unknown data directive '" + st.head + "'");
      }
    }
    // Symbol extents: from each label to the next label (or end of image).
    for (std::size_t i = 0; i < label_offsets.size(); ++i) {
      const std::uint32_t begin = label_offsets[i].second;
      const std::uint32_t end = (i + 1 < label_offsets.size())
                                    ? label_offsets[i + 1].second
                                    : static_cast<std::uint32_t>(img.size());
      prog_.symbols.push_back(DataSymbol{label_offsets[i].first,
                                         kDataBase + begin, end - begin,
                                         false});
    }
  }

  void resolve_secrets() {
    const auto mark = [&](const std::string& name, int line,
                          const char* directive, auto&& set) {
      for (DataSymbol& s : prog_.symbols) {
        if (s.name == name) {
          set(s);
          return;
        }
      }
      throw AsmError(line, std::string(directive) + ": unknown data symbol '" +
                               name + "'");
    };
    for (const auto& [name, line] : secret_requests_) {
      mark(name, line, ".secret", [](DataSymbol& s) { s.secret = true; });
    }
    for (const auto& [name, line] : declassified_requests_) {
      mark(name, line, ".declassified",
           [](DataSymbol& s) { s.declassified = true; });
    }
  }

  // ---- Text sizing and emission ---------------------------------------------

  /// Number of machine instructions a statement expands to.
  std::uint32_t expansion_size(const Statement& st) const {
    const auto mn = resolve_mnemonic(st.head, st.line);
    if (!mn) throw AsmError(st.line, "unknown mnemonic '" + st.head + "'");
    switch (mn->kind) {
      case Mnemonic::Kind::kLi: {
        if (st.args.size() != 2) throw AsmError(st.line, "li needs 2 operands");
        const std::int64_t v = parse_number(st.args[1], st.line);
        return (v >= -32768 && v <= 65535) ? 1 : 2;
      }
      case Mnemonic::Kind::kLa:
        return 2;
      default:
        return 1;
    }
  }

  void size_text() {
    std::uint32_t index = 0;
    for (const Statement& st : text_stmts_) {
      if (st.head == ".label") {
        const auto [it, inserted] =
            prog_.text_labels.emplace(st.args[0], index);
        if (!inserted) {
          throw AsmError(st.line, "duplicate text label '" + st.args[0] + "'");
        }
      } else if (st.head == ".globl" || st.head == ".ent" ||
                 st.head == ".end") {
        // Accepted and ignored for compatibility with compiler output.
      } else {
        index += expansion_size(st);
      }
    }
  }

  void push(const Instruction& inst, int line) {
    prog_.text.push_back(inst);
    prog_.text_locs.push_back(SourceLoc{line});
  }

  std::uint32_t text_label_or_throw(const std::string& name, int line) const {
    const auto it = prog_.text_labels.find(name);
    if (it == prog_.text_labels.end()) {
      throw AsmError(line, "undefined label '" + name + "'");
    }
    return it->second;
  }

  /// Branch/jump target: label name or numeric literal.
  std::int32_t branch_target(const std::string& arg, int line,
                             std::uint32_t next_index) const {
    if (!arg.empty() && (is_label_start(arg[0]))) {
      const std::uint32_t target = text_label_or_throw(arg, line);
      return static_cast<std::int32_t>(target) -
             static_cast<std::int32_t>(next_index);
    }
    return static_cast<std::int32_t>(parse_number(arg, line));
  }

  std::uint32_t data_address_or_throw(const std::string& name,
                                      int line) const {
    const DataSymbol* s = prog_.find_symbol(name);
    if (s == nullptr) {
      throw AsmError(line, "undefined data symbol '" + name + "'");
    }
    return s->address;
  }

  /// Parses "offset(reg)" or "(reg)" or "symbol" load/store address operand.
  struct MemOperand {
    Reg base = 0;
    std::int32_t offset = 0;
  };
  MemOperand parse_mem(const std::string& arg, int line) const {
    const auto open = arg.find('(');
    if (open == std::string::npos) {
      throw AsmError(line, "expected 'offset(reg)' operand, got '" + arg + "'");
    }
    const auto close = arg.find(')', open);
    if (close == std::string::npos) {
      throw AsmError(line, "missing ')' in '" + arg + "'");
    }
    MemOperand m;
    m.base = parse_reg_or_throw(trim(arg.substr(open + 1, close - open - 1)),
                                line);
    const std::string off = trim(arg.substr(0, open));
    if (!off.empty()) {
      m.offset = static_cast<std::int32_t>(parse_number(off, line));
    }
    return m;
  }

  void require_args(const Statement& st, std::size_t n) const {
    if (st.args.size() != n) {
      throw AsmError(st.line, "'" + st.head + "' expects " + std::to_string(n) +
                                  " operand(s), got " +
                                  std::to_string(st.args.size()));
    }
  }

  void emit_text() {
    for (const Statement& st : text_stmts_) {
      if (st.head == ".label" || st.head == ".globl" || st.head == ".ent" ||
          st.head == ".end") {
        continue;
      }
      const auto mn = resolve_mnemonic(st.head, st.line);
      const auto next_index = static_cast<std::uint32_t>(prog_.text.size()) + 1;
      switch (mn->kind) {
        case Mnemonic::Kind::kNop:
          push(isa::make_nop(), st.line);
          continue;
        case Mnemonic::Kind::kFork:
          require_args(st, 0);
          if (prog_.fork_point) {
            throw AsmError(st.line, "duplicate fork marker (the snapshot "
                                    "point must be unique)");
          }
          prog_.fork_point = static_cast<std::uint32_t>(prog_.text.size());
          push(isa::make_nop(), st.line);
          continue;
        case Mnemonic::Kind::kMove: {
          require_args(st, 2);
          const Reg rd = parse_reg_or_throw(st.args[0], st.line);
          const Reg rs = parse_reg_or_throw(st.args[1], st.line);
          push(isa::make_rtype(Opcode::kAddu, rd, rs, isa::kZero, mn->secure),
               st.line);
          continue;
        }
        case Mnemonic::Kind::kLi: {
          require_args(st, 2);
          const Reg rt = parse_reg_or_throw(st.args[0], st.line);
          const std::int64_t v = parse_number(st.args[1], st.line);
          if (v >= -32768 && v <= 32767) {
            push(isa::make_itype(Opcode::kAddiu, rt, isa::kZero,
                                 static_cast<std::int32_t>(v)),
                 st.line);
          } else if (v >= 0 && v <= 65535) {
            push(isa::make_itype(Opcode::kOri, rt, isa::kZero,
                                 static_cast<std::int32_t>(v)),
                 st.line);
          } else {
            const auto u = static_cast<std::uint32_t>(v & 0xFFFFFFFF);
            push(isa::make_itype(Opcode::kLui, rt, isa::kZero,
                                 static_cast<std::int32_t>(u >> 16)),
                 st.line);
            push(isa::make_itype(Opcode::kOri, rt, rt,
                                 static_cast<std::int32_t>(u & 0xFFFF)),
                 st.line);
          }
          continue;
        }
        case Mnemonic::Kind::kLa: {
          require_args(st, 2);
          const Reg rt = parse_reg_or_throw(st.args[0], st.line);
          const std::uint32_t addr = data_address_or_throw(st.args[1], st.line);
          push(isa::make_itype(Opcode::kLui, rt, isa::kZero,
                               static_cast<std::int32_t>(addr >> 16)),
               st.line);
          push(isa::make_itype(Opcode::kOri, rt, rt,
                               static_cast<std::int32_t>(addr & 0xFFFF)),
               st.line);
          continue;
        }
        case Mnemonic::Kind::kB: {
          require_args(st, 1);
          push(isa::make_branch(Opcode::kBeq, isa::kZero, isa::kZero,
                                branch_target(st.args[0], st.line, next_index)),
               st.line);
          continue;
        }
        case Mnemonic::Kind::kReal:
          break;
      }

      const Opcode op = mn->op;
      Instruction inst;
      switch (isa::info(op).format) {
        case isa::Format::kRegister: {
          require_args(st, 3);
          const Reg rd = parse_reg_or_throw(st.args[0], st.line);
          const Reg second = parse_reg_or_throw(st.args[1], st.line);
          const Reg third = parse_reg_or_throw(st.args[2], st.line);
          // Variable shifts use MIPS operand order "rd, rt, rs": the second
          // operand is the value, the third the shift amount.
          const bool variable_shift = op == Opcode::kSllv ||
                                      op == Opcode::kSrlv ||
                                      op == Opcode::kSrav;
          inst = variable_shift
                     ? isa::make_rtype(op, rd, third, second, mn->secure)
                     : isa::make_rtype(op, rd, second, third, mn->secure);
          break;
        }
        case isa::Format::kShiftImm: {
          require_args(st, 3);
          inst = isa::make_shift(
              op, parse_reg_or_throw(st.args[0], st.line),
              parse_reg_or_throw(st.args[1], st.line),
              static_cast<int>(parse_number(st.args[2], st.line)), mn->secure);
          break;
        }
        case isa::Format::kImmediate: {
          if (op == Opcode::kLui) {
            require_args(st, 2);
            inst = isa::make_itype(
                op, parse_reg_or_throw(st.args[0], st.line), isa::kZero,
                static_cast<std::int32_t>(parse_number(st.args[1], st.line)),
                mn->secure);
          } else {
            require_args(st, 3);
            inst = isa::make_itype(
                op, parse_reg_or_throw(st.args[0], st.line),
                parse_reg_or_throw(st.args[1], st.line),
                static_cast<std::int32_t>(parse_number(st.args[2], st.line)),
                mn->secure);
          }
          break;
        }
        case isa::Format::kLoadStore: {
          require_args(st, 2);
          const Reg rt = parse_reg_or_throw(st.args[0], st.line);
          const MemOperand m = parse_mem(st.args[1], st.line);
          inst = isa::make_loadstore(op, rt, m.offset, m.base, mn->secure);
          break;
        }
        case isa::Format::kBranch: {
          if (op == Opcode::kBeq || op == Opcode::kBne) {
            require_args(st, 3);
            inst = isa::make_branch(
                op, parse_reg_or_throw(st.args[0], st.line),
                parse_reg_or_throw(st.args[1], st.line),
                branch_target(st.args[2], st.line, next_index));
          } else {
            require_args(st, 2);
            inst = isa::make_branch(
                op, parse_reg_or_throw(st.args[0], st.line), isa::kZero,
                branch_target(st.args[1], st.line, next_index));
          }
          break;
        }
        case isa::Format::kJump: {
          require_args(st, 1);
          std::int32_t target;
          if (!st.args[0].empty() && is_label_start(st.args[0][0])) {
            target = static_cast<std::int32_t>(
                text_label_or_throw(st.args[0], st.line));
          } else {
            target =
                static_cast<std::int32_t>(parse_number(st.args[0], st.line));
          }
          inst = isa::make_jump(op, target);
          break;
        }
        case isa::Format::kJumpReg: {
          if (op == Opcode::kJalr && st.args.size() == 2) {
            inst = Instruction{op, parse_reg_or_throw(st.args[0], st.line),
                               parse_reg_or_throw(st.args[1], st.line), 0, 0,
                               false};
          } else {
            require_args(st, 1);
            const Reg link = (op == Opcode::kJalr) ? isa::kRa : isa::kZero;
            inst = Instruction{op, link,
                               parse_reg_or_throw(st.args[0], st.line), 0, 0,
                               false};
          }
          break;
        }
        case isa::Format::kNullary: {
          require_args(st, 0);
          inst = Instruction{op, 0, 0, 0, 0, false};
          break;
        }
      }
      // Validate encodability early so layout errors carry a source line.
      try {
        (void)isa::encode(inst);
      } catch (const std::invalid_argument& e) {
        throw AsmError(st.line, e.what());
      }
      push(inst, st.line);
    }
  }

  Program prog_;
  std::vector<Statement> data_stmts_;
  std::vector<Statement> text_stmts_;
  std::map<std::string, int> data_label_lines_;
  std::vector<std::pair<std::string, int>> pending_text_labels_;
  std::vector<std::pair<std::string, int>> secret_requests_;
  std::vector<std::pair<std::string, int>> declassified_requests_;
};

}  // namespace

Program assemble(const std::string& source) { return Assembler{}.run(source); }

}  // namespace emask::assembler
