// Two-pass assembler for the modeled ISA.
//
// Syntax (MIPS-flavoured, matching the paper's Fig. 4 listings):
//
//   .data
//   key:      .word 1, 0, 1, 1   # initialized words
//   .secret key                  # programmer annotation: key is sensitive
//   buf:      .space 64          # zero-filled bytes
//             .align 2
//   .text
//   main:
//     la   $t0, key
//     lw   $t1, 0($t0)
//     sxor $t2, $t1, $t3         # "s" prefix = secure version
//     halt
//
// Pseudo-instructions: nop, move/smove, li, la, b.
// Comments start with '#' or ';'.  Numeric literals may be decimal or 0x hex.
#pragma once

#include <stdexcept>
#include <string>

#include "assembler/program.hpp"

namespace emask::assembler {

/// Assembly-time diagnostic carrying the 1-based source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Assembles `source` into a loadable program.  Throws AsmError on any
/// syntactic or semantic problem (unknown mnemonic, undefined label,
/// out-of-range immediate, secure prefix on a non-securable opcode, ...).
[[nodiscard]] Program assemble(const std::string& source);

}  // namespace emask::assembler
