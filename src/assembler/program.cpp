#include "assembler/program.hpp"

#include <stdexcept>

namespace emask::assembler {

std::uint32_t Program::entry() const {
  const auto it = text_labels.find("main");
  return it != text_labels.end() ? it->second : 0u;
}

const DataSymbol* Program::find_symbol(const std::string& name) const {
  for (const DataSymbol& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const DataSymbol* Program::symbol_at(std::uint32_t address) const {
  for (const DataSymbol& s : symbols) {
    if (address >= s.address && address < s.address + s.size_bytes) return &s;
  }
  return nullptr;
}

std::uint32_t Program::initial_word(std::uint32_t addr) const {
  if (addr < kDataBase || addr + 4 > kDataBase + data.size()) {
    throw std::out_of_range("Program::initial_word: address outside image");
  }
  const std::size_t off = addr - kDataBase;
  return static_cast<std::uint32_t>(data[off]) |
         (static_cast<std::uint32_t>(data[off + 1]) << 8) |
         (static_cast<std::uint32_t>(data[off + 2]) << 16) |
         (static_cast<std::uint32_t>(data[off + 3]) << 24);
}

void Program::poke_word(std::uint32_t addr, std::uint32_t value) {
  if (addr < kDataBase || addr + 4 > kDataBase + data.size()) {
    throw std::out_of_range("Program::poke_word: address outside image");
  }
  const std::size_t off = addr - kDataBase;
  data[off] = static_cast<std::uint8_t>(value & 0xFF);
  data[off + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
  data[off + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
  data[off + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
}

}  // namespace emask::assembler
