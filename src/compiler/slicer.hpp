// Forward slicing over the program's control-flow graph.
//
// Given the `.secret`-annotated data symbols as seeds, computes every
// instruction whose value depends on them — the paper's Sec. 4.1:
//
//   "In forward slicing, given a set of variables and/or instructions
//    (called seeds), the compiler determines all the variables/instructions
//    whose values depend on the seeds. [...] After all the variables whose
//    values are affected by the seeds are determined, the compiler uses
//    secure instructions to protect them."
//
// Implementation: a worklist dataflow over instruction-granularity program
// points.  Register state is flow-sensitive (AbsVal per register per point);
// memory taint is region-level and flow-insensitive (a symbol once tainted
// stays tainted), which is sound and matches the paper's conservatism
// ("we need to be conservative to account for all possible inputs").
// The outer loop re-runs the register dataflow until the region taint set
// reaches a fixpoint.  Complexity is bounded by O(edges * regions), in line
// with the paper's "bounded by the number of edges of the control flow
// graph".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hpp"

namespace emask::compiler {

enum class DiagnosticKind {
  kTaintedBranch,        // control flow depends on a secret (SPA leak)
  kTaintedNonSecurable,  // secret data flows through an op with no secure form
  kUnresolvedAddress,    // memory access whose target region is unknown
  kTooManySymbols,       // >64 data symbols (points-to mask exhausted)
};

struct Diagnostic {
  DiagnosticKind kind;
  std::uint32_t instr_index;
  int source_line;
  std::string message;
};

/// Result of the slicing analysis (before any rewriting).
struct SliceResult {
  /// Per instruction: does it operate on (produce or consume) sliced data,
  /// so that the selective policy must emit its secure version?
  std::vector<bool> in_slice;
  /// Per data symbol (by index in Program::symbols): reached by the slice.
  std::vector<bool> symbol_tainted;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t slice_size() const {
    std::size_t n = 0;
    for (bool b : in_slice) n += b;
    return n;
  }
};

struct SliceOptions {
  /// Restrict securable opcodes to exactly the paper's four classes
  /// (assignment/XOR/shift/indexing, i.e. lw/sw/addu/addiu/or/ori/xor/
  /// xori/shifts) — excluding the and/andi/nor extension this repository
  /// adds for SHA-1.  Under the strict set, kernels that route secrets
  /// through the logic unit produce kTaintedNonSecurable diagnostics:
  /// the paper's classes are DES-complete, not universal.
  bool paper_strict_classes = false;
};

/// Runs the forward slice from the program's `.secret` symbols.
[[nodiscard]] SliceResult forward_slice(const assembler::Program& program,
                                        const SliceOptions& options = {});

}  // namespace emask::compiler
