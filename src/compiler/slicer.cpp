#include "compiler/slicer.hpp"

#include <array>
#include <deque>
#include <stdexcept>

#include "compiler/taint.hpp"
#include "isa/instruction.hpp"

namespace emask::compiler {
namespace {

using assembler::Program;
using isa::Instruction;
using isa::Opcode;

/// Register state at one program point.
struct State {
  bool reachable = false;
  std::array<AbsVal, isa::kNumRegisters> regs;

  /// Joins `other` in; returns true if anything changed.
  bool join_from(const State& other) {
    bool changed = false;
    if (!reachable) {
      *this = other;
      return other.reachable;
    }
    for (int i = 0; i < isa::kNumRegisters; ++i) {
      const AbsVal joined = regs[static_cast<std::size_t>(i)].join(
          other.regs[static_cast<std::size_t>(i)]);
      if (joined != regs[static_cast<std::size_t>(i)]) {
        regs[static_cast<std::size_t>(i)] = joined;
        changed = true;
      }
    }
    return changed;
  }
};

class Slicer {
 public:
  Slicer(const Program& program, const SliceOptions& options)
      : prog_(program), options_(options) {
    if (prog_.symbols.size() > 64) {
      throw std::invalid_argument(
          "forward_slice: more than 64 data symbols (points-to mask "
          "exhausted); split the data segment");
    }
    region_tainted_.resize(prog_.symbols.size());
    region_pts_.resize(prog_.symbols.size(), 0);
    region_pts_accum_.resize(prog_.symbols.size(), 0);
    for (std::size_t i = 0; i < prog_.symbols.size(); ++i) {
      region_tainted_[i] = prog_.symbols[i].secret;
    }
    any_secret_ = false;
    for (bool t : region_tainted_) any_secret_ |= t;
  }

  SliceResult run() {
    // Phase 1: region points-to fixpoint.  Unoptimized code spills base
    // pointers to memory; the per-region summary records which symbols a
    // pointer reloaded from each region may target.  This is independent
    // of taint and MUST stabilize first — otherwise the first taint pass
    // would see spilled-pointer accesses as unresolved, conservatively
    // taint every region, and the monotone taint ratchet would lock that
    // imprecision in.
    for (;;) {
      dataflow();
      (void)classify();
      bool grew = false;
      for (std::size_t i = 0; i < region_pts_.size(); ++i) {
        if ((region_pts_accum_[i] | region_pts_[i]) != region_pts_[i]) {
          region_pts_[i] |= region_pts_accum_[i];
          grew = true;
        }
      }
      if (!grew) break;
    }
    // Phase 2: taint fixpoint on the stable points-to summaries.
    for (;;) {
      dataflow();
      SliceResult result = classify();
      bool grew = false;
      for (std::size_t i = 0; i < region_tainted_.size(); ++i) {
        if (result.symbol_tainted[i] && !region_tainted_[i]) {
          region_tainted_[i] = true;
          grew = true;
        }
      }
      if (!grew) return result;
    }
  }

 private:
  /// Abstract constant with its containing-symbol points-to bit.
  AbsVal mk_const(std::uint32_t v) const {
    AbsVal out;
    out.is_const = true;
    out.cval = v;
    out.points_to = symbol_mask_at(v);
    return out;
  }

  std::uint64_t symbol_mask_at(std::uint32_t address) const {
    for (std::size_t i = 0; i < prog_.symbols.size(); ++i) {
      const assembler::DataSymbol& s = prog_.symbols[i];
      if (address >= s.address && address < s.address + s.size_bytes) {
        return 1ull << i;
      }
    }
    return 0;
  }

  static AbsVal read(const State& s, isa::Reg r) {
    if (r == isa::kZero) {
      AbsVal z;
      z.is_const = true;
      return z;
    }
    return s.regs[r];
  }

  static void def(State& s, isa::Reg r, const AbsVal& v) {
    if (r != isa::kZero) s.regs[r] = v;
  }

  /// Re-derive the containing-symbol set after constant folding.  A known
  /// constant points exactly at the symbol containing it — unioning in the
  /// operands' masks would smear spurious targets (e.g. the intermediate
  /// `lui` half of a `la` expansion lands inside whatever symbol sits at
  /// the start of the data segment).
  AbsVal normalized(AbsVal v) const {
    if (v.is_const) v.points_to = symbol_mask_at(v.cval);
    return v;
  }

  /// Effective address of a load/store as an abstract value.
  AbsVal effective_address(const State& s, const Instruction& inst) const {
    return normalized(combine(read(s, inst.rs),
                              mk_const(static_cast<std::uint32_t>(inst.imm)),
                              [](std::uint32_t a, std::uint32_t b) {
                                return a + b;
                              }));
  }

  /// Regions a memory access may touch; empty mask means unresolved.
  std::uint64_t resolve(const AbsVal& addr) const {
    if (addr.is_const) return symbol_mask_at(addr.cval);
    return addr.points_to;
  }

  bool any_region_tainted(std::uint64_t mask) const {
    for (std::size_t i = 0; i < region_tainted_.size(); ++i) {
      if ((mask >> i) & 1u) {
        if (region_tainted_[i]) return true;
      }
    }
    return false;
  }

  /// Applies instruction semantics to the abstract state.  When `sink` is
  /// non-null, classification effects (slice membership, diagnostics, new
  /// region taints) are recorded there.
  void transfer(std::uint32_t index, State& s, SliceResult* sink) {
    const Instruction& inst = prog_.text[index];
    const isa::OpcodeInfo& oi = isa::info(inst.op);
    const int line = index < prog_.text_locs.size()
                         ? prog_.text_locs[index].line
                         : 0;

    const auto diag = [&](DiagnosticKind kind, const std::string& msg) {
      if (sink) sink->diagnostics.push_back(Diagnostic{kind, index, line, msg});
    };
    const auto mark = [&] {
      if (sink) sink->in_slice[index] = true;
    };

    switch (oi.format) {
      case isa::Format::kLoadStore: {
        const AbsVal addr = effective_address(s, inst);
        std::uint64_t regions = resolve(addr);
        bool unresolved = false;
        if (regions == 0) {
          unresolved = true;
          diag(DiagnosticKind::kUnresolvedAddress,
               "memory access with unresolved target region: " +
                   inst.to_string());
        }
        if (oi.is_load) {
          AbsVal v;
          v.tainted = addr.tainted || any_region_tainted(regions) ||
                      (unresolved && any_secret_);
          // A value loaded back from memory may be a previously stored
          // pointer: give it the union of the touched regions' points-to
          // summaries (all regions when the access is unresolved).
          for (std::size_t i = 0; i < region_pts_.size(); ++i) {
            if (unresolved || (((regions >> i) & 1u) != 0)) {
              v.points_to |= region_pts_[i];
            }
          }
          def(s, inst.rt, v);
          if (v.tainted || addr.tainted) mark();
        } else {
          const AbsVal v = read(s, inst.rt);
          // Stores of secret-derived data into `.declassified` regions stay
          // insecure (the paper's output-permutation argument) and do not
          // propagate taint; secret-derived *addresses* always need the
          // secure indexing version.
          bool taints_some_region = false;
          for (std::size_t i = 0; i < region_tainted_.size(); ++i) {
            const bool touches = unresolved || (((regions >> i) & 1u) != 0);
            if (!touches) continue;
            if (sink) region_pts_accum_[i] |= v.points_to;
            if (v.tainted && !prog_.symbols[i].declassified) {
              taints_some_region = true;
              if (sink) sink->symbol_tainted[i] = true;
            }
          }
          if (taints_some_region || addr.tainted) mark();
        }
        break;
      }
      case isa::Format::kRegister:
      case isa::Format::kShiftImm:
      case isa::Format::kImmediate: {
        AbsVal a, b;
        if (oi.format == isa::Format::kRegister) {
          a = read(s, inst.rs);
          b = read(s, inst.rt);
        } else if (oi.format == isa::Format::kShiftImm) {
          a = read(s, inst.rt);
          b = mk_const(static_cast<std::uint32_t>(inst.imm));
        } else if (inst.op == Opcode::kLui) {
          a = mk_const(0);
          b = mk_const(static_cast<std::uint32_t>(inst.imm) & 0xFFFFu);
        } else {
          a = read(s, inst.rs);
          b = mk_const(static_cast<std::uint32_t>(inst.imm));
        }
        const AbsVal result = normalized(combine(a, b, [&](std::uint32_t x,
                                                           std::uint32_t y) {
          return fold(inst.op, x, y, inst.imm);
        }));
        def(s, dest_reg(inst), result);
        const bool securable =
            oi.securable &&
            !(options_.paper_strict_classes &&
              (inst.op == Opcode::kAnd || inst.op == Opcode::kAndi ||
               inst.op == Opcode::kNor));
        if (a.tainted || b.tainted) {
          if (securable) {
            mark();
          } else {
            diag(DiagnosticKind::kTaintedNonSecurable,
                 "secret-dependent value flows through '" +
                     std::string(oi.mnemonic) +
                     "', which has no secure version: " + inst.to_string());
          }
        }
        break;
      }
      case isa::Format::kBranch: {
        const AbsVal a = read(s, inst.rs);
        const AbsVal b = read(s, inst.rt);
        if (a.tainted || b.tainted) {
          diag(DiagnosticKind::kTaintedBranch,
               "branch condition depends on a secret (SPA/timing leak): " +
                   inst.to_string());
        }
        break;
      }
      case isa::Format::kJump:
        if (inst.op == Opcode::kJal) def(s, isa::kRa, AbsVal{});
        break;
      case isa::Format::kJumpReg:
        if (inst.op == Opcode::kJalr) def(s, inst.rd, AbsVal{});
        break;
      case isa::Format::kNullary:
        break;
    }
  }

  static isa::Reg dest_reg(const Instruction& inst) {
    switch (isa::info(inst.op).format) {
      case isa::Format::kRegister:
      case isa::Format::kShiftImm:
        return inst.rd;
      default:
        return inst.rt;
    }
  }

  static std::uint32_t fold(Opcode op, std::uint32_t a, std::uint32_t b,
                            std::int32_t imm) {
    switch (op) {
      case Opcode::kAddu:
      case Opcode::kAddiu: return a + b;
      case Opcode::kSubu: return a - b;
      case Opcode::kAnd:
      case Opcode::kAndi: return a & b;
      case Opcode::kOr:
      case Opcode::kOri: return a | b;
      case Opcode::kXor:
      case Opcode::kXori: return a ^ b;
      case Opcode::kNor: return ~(a | b);
      case Opcode::kSll: return a << (imm & 31);
      case Opcode::kSrl: return a >> (imm & 31);
      case Opcode::kSra:
        return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                          (imm & 31));
      case Opcode::kSllv: return b << (a & 31u);
      case Opcode::kSrlv: return b >> (a & 31u);
      case Opcode::kSrav:
        return static_cast<std::uint32_t>(static_cast<std::int32_t>(b) >>
                                          (a & 31u));
      case Opcode::kLui: return b << 16;
      case Opcode::kSlt:
        return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
      case Opcode::kSlti:
        return static_cast<std::int32_t>(a) < imm ? 1u : 0u;
      case Opcode::kSltu: return a < b ? 1u : 0u;
      case Opcode::kSltiu: return a < static_cast<std::uint32_t>(imm) ? 1u : 0u;
      default: return 0;
    }
  }

  std::vector<std::uint32_t> successors(std::uint32_t index) const {
    const Instruction& inst = prog_.text[index];
    const isa::OpcodeInfo& oi = isa::info(inst.op);
    std::vector<std::uint32_t> out;
    const auto push = [&](std::int64_t t) {
      if (t >= 0 && t < static_cast<std::int64_t>(prog_.text.size())) {
        out.push_back(static_cast<std::uint32_t>(t));
      }
    };
    if (inst.op == Opcode::kHalt) return out;
    if (oi.is_branch) {
      push(index + 1);
      push(static_cast<std::int64_t>(index) + 1 + inst.imm);
      return out;
    }
    if (inst.op == Opcode::kJ || inst.op == Opcode::kJal) {
      push(inst.imm);
      // kJal's return edge is handled specially in dataflow() (caller-saved
      // registers are clobbered across the call).
      return out;
    }
    if (inst.op == Opcode::kJr || inst.op == Opcode::kJalr) {
      // Indirect target unknown; treated as a sink.  Returns are modeled by
      // the jal return edge above.
      return out;
    }
    push(index + 1);
    return out;
  }

  void dataflow() {
    states_.assign(prog_.text.size(), State{});
    State entry;
    entry.reachable = true;
    states_[prog_.entry()] = entry;
    std::deque<std::uint32_t> worklist{prog_.entry()};
    while (!worklist.empty()) {
      const std::uint32_t i = worklist.front();
      worklist.pop_front();
      State out = states_[i];
      if (!out.reachable) continue;
      transfer(i, out, nullptr);
      const auto propagate = [&](std::uint32_t succ, const State& st) {
        if (states_[succ].join_from(st)) worklist.push_back(succ);
      };
      for (const std::uint32_t succ : successors(i)) propagate(succ, out);
      if (prog_.text[i].op == Opcode::kJal &&
          i + 1 < prog_.text.size()) {
        // Return edge: the callee may leave anything in the caller-saved
        // registers, including secret-derived values.  Callee-saved
        // registers are assumed preserved (O32 convention).
        State ret = out;
        for (const isa::Reg r :
             {isa::kAt, isa::Reg{2},  isa::Reg{3},  isa::Reg{4},  isa::Reg{5},
              isa::Reg{6}, isa::Reg{7},  isa::Reg{8},  isa::Reg{9},
              isa::Reg{10}, isa::Reg{11}, isa::Reg{12}, isa::Reg{13},
              isa::Reg{14}, isa::Reg{15}, isa::Reg{24}, isa::Reg{25},
              isa::kRa}) {
          AbsVal unknown;
          unknown.tainted = any_secret_;
          ret.regs[r] = unknown;
        }
        propagate(i + 1, ret);
      }
    }
  }

  SliceResult classify() {
    SliceResult result;
    result.in_slice.assign(prog_.text.size(), false);
    result.symbol_tainted.resize(prog_.symbols.size());
    for (std::size_t i = 0; i < prog_.symbols.size(); ++i) {
      result.symbol_tainted[i] = region_tainted_[i];
    }
    for (std::uint32_t i = 0; i < prog_.text.size(); ++i) {
      if (!states_[i].reachable) continue;
      State s = states_[i];
      transfer(i, s, &result);
    }
    return result;
  }

  const Program& prog_;
  SliceOptions options_;
  std::vector<bool> region_tainted_;
  std::vector<std::uint64_t> region_pts_;        // current fixpoint iterate
  std::vector<std::uint64_t> region_pts_accum_;  // growth observed this pass
  bool any_secret_;
  std::vector<State> states_;
};

}  // namespace

SliceResult forward_slice(const Program& program,
                          const SliceOptions& options) {
  return Slicer(program, options).run();
}

}  // namespace emask::compiler
