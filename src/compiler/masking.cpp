#include "compiler/masking.hpp"

namespace emask::compiler {

std::string_view policy_name(Policy p) {
  switch (p) {
    case Policy::kOriginal: return "original";
    case Policy::kSelective: return "selective";
    case Policy::kNaiveLoadStore: return "naive_loadstore";
    case Policy::kAllSecure: return "all_secure";
  }
  return "?";
}

MaskResult apply_masking(const assembler::Program& program, Policy policy) {
  MaskResult out;
  out.program = program;
  for (isa::Instruction& inst : out.program.text) inst.secure = false;

  switch (policy) {
    case Policy::kOriginal:
      break;
    case Policy::kSelective: {
      out.slice = forward_slice(program);
      for (std::size_t i = 0; i < out.program.text.size(); ++i) {
        if (out.slice.in_slice[i]) {
          out.program.text[i].secure = true;
          ++out.secured_count;
        }
      }
      break;
    }
    case Policy::kNaiveLoadStore: {
      for (isa::Instruction& inst : out.program.text) {
        const isa::OpcodeInfo& oi = isa::info(inst.op);
        if (oi.is_load || oi.is_store) {
          inst.secure = true;
          ++out.secured_count;
        }
      }
      break;
    }
    case Policy::kAllSecure: {
      for (isa::Instruction& inst : out.program.text) {
        inst.secure = true;
        ++out.secured_count;
      }
      break;
    }
  }
  return out;
}

}  // namespace emask::compiler
