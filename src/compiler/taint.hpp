// Abstract values for the forward-slicing dataflow analysis.
#pragma once

#include <cstdint>

namespace emask::compiler {

/// Abstract state of one register.
///
/// * `tainted`: the value may depend on an annotated secret (the forward
///   slice from the `.secret` seeds, Sec. 4.1 of the paper).
/// * constant tracking: enough constant folding to see through the
///   assembler's `la` expansion (lui+ori) so loads/stores resolve to data
///   symbols.
/// * `points_to`: bitmask over the program's data symbols the value may
///   address (bit i = symbols[i]).  Arithmetic unions the masks, which is a
///   sound over-approximation for base+offset address computation.
struct AbsVal {
  bool tainted = false;
  bool is_const = false;
  std::uint32_t cval = 0;
  std::uint64_t points_to = 0;

  /// Control-flow join (lattice least upper bound).
  [[nodiscard]] AbsVal join(const AbsVal& other) const {
    AbsVal out;
    out.tainted = tainted || other.tainted;
    out.is_const = is_const && other.is_const && cval == other.cval;
    out.cval = out.is_const ? cval : 0;
    out.points_to = points_to | other.points_to;
    return out;
  }

  bool operator==(const AbsVal&) const = default;
};

/// Result of a binary operation on abstract values, with optional constant
/// folding via `fold` (only applied when both inputs are constants).
template <typename Fold>
[[nodiscard]] AbsVal combine(const AbsVal& a, const AbsVal& b, Fold&& fold) {
  AbsVal out;
  out.tainted = a.tainted || b.tainted;
  out.points_to = a.points_to | b.points_to;
  if (a.is_const && b.is_const) {
    out.is_const = true;
    out.cval = fold(a.cval, b.cval);
  }
  return out;
}

}  // namespace emask::compiler
