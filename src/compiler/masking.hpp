// Secure-instruction rewriting: the compiler's code-transformation step.
//
// Four protection policies, matching the four configurations the paper
// evaluates (Sec. 4.3, total-energy comparison):
//
//   * kOriginal        — no masking; 46.4 uJ in the paper.
//   * kSelective       — the paper's contribution: secure versions only for
//                        the forward slice of the `.secret` seeds; 52.6 uJ.
//   * kNaiveLoadStore  — "the naive approach would convert all the four
//                        load operations into secure loads": every load and
//                        store becomes secure, no analysis; 63.6 uJ.
//   * kAllSecure       — every instruction runs on dual-rail hardware, as
//                        in whole-circuit dual-rail solutions; 83.5 uJ.
#pragma once

#include <string>

#include "assembler/program.hpp"
#include "compiler/slicer.hpp"

namespace emask::compiler {

enum class Policy {
  kOriginal,
  kSelective,
  kNaiveLoadStore,
  kAllSecure,
};

[[nodiscard]] std::string_view policy_name(Policy p);

/// Output of the masking compiler.
struct MaskResult {
  assembler::Program program;  // rewritten copy
  SliceResult slice;           // analysis results (empty for non-selective)
  std::size_t secured_count = 0;
};

/// Applies `policy` to `program` and returns the rewritten copy.  For
/// kSelective this runs the forward slice; any kTaintedBranch or
/// kTaintedNonSecurable diagnostic is a *hole in the protection* — callers
/// should surface them (they are returned, not thrown, so tooling can
/// report all of them at once).
[[nodiscard]] MaskResult apply_masking(const assembler::Program& program,
                                       Policy policy);

}  // namespace emask::compiler
