// Optional direct-mapped data cache (timing model).
//
// The modeled smart-card core is cacheless by default — the paper's class
// of device runs from single-cycle on-chip SRAM, and the paper's security
// argument implicitly depends on that: a data cache makes *timing* a
// function of the access-address history, and DES/AES S-box lookups use
// secret-derived addresses.  The cache-timing ablation
// (bench_ext_cache_timing) shows that adding an ordinary D-cache
// reintroduces a key-dependent timing channel that no amount of power
// masking closes — the cache-attack line of work contemporary with the
// paper (Kelsey et al., later Bernstein/Percival).
//
// The model is tags-only: data correctness is handled by the backing SRAM
// model; the cache contributes hit/miss *timing* (and a refill energy
// event).
#pragma once

#include <cstdint>
#include <vector>

namespace emask::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t miss_penalty = 8;  // extra cycles per miss
};

class DirectMappedCache {
 public:
  explicit DirectMappedCache(const CacheConfig& config);

  /// Looks up (and on miss, fills) the line holding `address`.
  /// Returns true on hit.
  bool access(std::uint32_t address);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
  std::uint32_t num_lines_;
  std::vector<std::uint64_t> tags_;  // tag+1; 0 = invalid
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace emask::sim
