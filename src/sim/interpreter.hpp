// Functional (non-pipelined) reference interpreter.
//
// Executes the ISA with simple architectural semantics — one instruction at
// a time, no hazards, no timing.  It serves as the differential oracle for
// the cycle-accurate pipeline: on any program, both must produce identical
// architectural state (registers + memory).  The test suite exercises this
// on random hazard-rich programs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "assembler/program.hpp"
#include "isa/registers.hpp"
#include "sim/memory.hpp"

namespace emask::sim {

class Interpreter {
 public:
  explicit Interpreter(const assembler::Program& program,
                       std::size_t dmem_bytes = 1u << 20);

  /// Runs to halt.  Throws on runaway (instruction budget exceeded),
  /// invalid memory access, or pc leaving the text section.
  ///
  /// Budget boundary: a program that halts after executing exactly
  /// `max_instructions` succeeds — the budget-exceeded error fires only
  /// when the machine has spent its budget and is *not* about to halt
  /// (same drain-grace semantics as sim::Pipeline's cycle budget).
  void run(std::uint64_t max_instructions = 50'000'000);

  /// Executes a single instruction; returns false once halted.
  bool step();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t instructions() const { return executed_; }
  [[nodiscard]] std::uint32_t reg(isa::Reg r) const { return regs_[r]; }
  [[nodiscard]] const DataMemory& memory() const { return dmem_; }

 private:
  const assembler::Program& program_;
  DataMemory dmem_;
  std::array<std::uint32_t, isa::kNumRegisters> regs_{};
  std::uint32_t pc_;
  std::uint64_t executed_ = 0;
  bool halted_ = false;
};

}  // namespace emask::sim
