#include "sim/interpreter.hpp"

#include <stdexcept>
#include <string>

namespace emask::sim {

using isa::Instruction;
using isa::Opcode;

Interpreter::Interpreter(const assembler::Program& program,
                         std::size_t dmem_bytes)
    : program_(program), dmem_(program, dmem_bytes), pc_(program.entry()) {
  if (program_.text.empty()) {
    throw std::invalid_argument("Interpreter: empty program");
  }
}

bool Interpreter::step() {
  if (halted_) return false;
  if (pc_ >= program_.text.size()) {
    throw std::runtime_error("Interpreter: pc ran off the end of text at " +
                             std::to_string(pc_));
  }
  const Instruction& inst = program_.text[pc_];
  ++executed_;
  const auto rs = [&] { return regs_[inst.rs]; };
  const auto rt = [&] { return regs_[inst.rt]; };
  const auto write = [&](isa::Reg r, std::uint32_t v) {
    if (r != isa::kZero) regs_[r] = v;
  };
  const auto srs = [&] { return static_cast<std::int32_t>(rs()); };
  const auto srt = [&] { return static_cast<std::int32_t>(rt()); };
  const auto simm = inst.imm;
  const auto zimm = static_cast<std::uint32_t>(inst.imm) & 0xFFFFu;
  std::uint32_t next = pc_ + 1;

  switch (inst.op) {
    case Opcode::kAddu: write(inst.rd, rs() + rt()); break;
    case Opcode::kSubu: write(inst.rd, rs() - rt()); break;
    case Opcode::kAnd: write(inst.rd, rs() & rt()); break;
    case Opcode::kOr: write(inst.rd, rs() | rt()); break;
    case Opcode::kXor: write(inst.rd, rs() ^ rt()); break;
    case Opcode::kNor: write(inst.rd, ~(rs() | rt())); break;
    case Opcode::kSlt: write(inst.rd, srs() < srt() ? 1 : 0); break;
    case Opcode::kSltu: write(inst.rd, rs() < rt() ? 1 : 0); break;
    case Opcode::kSllv: write(inst.rd, rt() << (rs() & 31u)); break;
    case Opcode::kSrlv: write(inst.rd, rt() >> (rs() & 31u)); break;
    case Opcode::kSrav:
      write(inst.rd, static_cast<std::uint32_t>(srt() >> (rs() & 31u)));
      break;
    case Opcode::kSll: write(inst.rd, rt() << (simm & 31)); break;
    case Opcode::kSrl: write(inst.rd, rt() >> (simm & 31)); break;
    case Opcode::kSra:
      write(inst.rd, static_cast<std::uint32_t>(srt() >> (simm & 31)));
      break;
    case Opcode::kAddiu:
      write(inst.rt, rs() + static_cast<std::uint32_t>(simm));
      break;
    case Opcode::kAndi: write(inst.rt, rs() & zimm); break;
    case Opcode::kOri: write(inst.rt, rs() | zimm); break;
    case Opcode::kXori: write(inst.rt, rs() ^ zimm); break;
    case Opcode::kSlti: write(inst.rt, srs() < simm ? 1 : 0); break;
    case Opcode::kSltiu:
      write(inst.rt, rs() < static_cast<std::uint32_t>(simm) ? 1 : 0);
      break;
    case Opcode::kLui: write(inst.rt, zimm << 16); break;
    case Opcode::kLw:
      write(inst.rt,
            dmem_.load_word(rs() + static_cast<std::uint32_t>(simm)));
      break;
    case Opcode::kSw:
      dmem_.store_word(rs() + static_cast<std::uint32_t>(simm), rt());
      break;
    case Opcode::kBeq:
      if (rs() == rt()) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kBne:
      if (rs() != rt()) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kBlez:
      if (srs() <= 0) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kBgtz:
      if (srs() > 0) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kBltz:
      if (srs() < 0) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kBgez:
      if (srs() >= 0) next = pc_ + 1 + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kJ:
      next = static_cast<std::uint32_t>(inst.imm);
      break;
    case Opcode::kJal:
      write(isa::kRa, pc_ + 1);
      next = static_cast<std::uint32_t>(inst.imm);
      break;
    case Opcode::kJr:
      next = rs();
      break;
    case Opcode::kJalr:
      write(inst.rd, pc_ + 1);
      next = rs();
      break;
    case Opcode::kHalt:
      halted_ = true;
      return false;
  }
  pc_ = next;
  return true;
}

void Interpreter::run(std::uint64_t max_instructions) {
  // Budget boundary semantics (mirrored by sim::Pipeline's cycle budget):
  // the budget caps the *work before the machine commits to halting*.  A
  // program whose next instruction is the terminating halt completes even
  // when the budget is already spent — only a machine that is still doing
  // productive work past `max_instructions` is a runaway.
  while (step()) {
    const bool next_is_halt = pc_ < program_.text.size() &&
                              program_.text[pc_].op == isa::Opcode::kHalt;
    if (executed_ >= max_instructions && !next_is_halt) {
      throw std::runtime_error(
          "Interpreter: instruction budget exceeded (" +
          std::to_string(max_instructions) + " executed without halting)");
    }
  }
}

}  // namespace emask::sim
