#include "sim/memory.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace emask::sim {
namespace {

std::string hex(std::uint32_t address) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08X", address);
  return buf;
}

}  // namespace

DataMemory::DataMemory(const assembler::Program& program,
                       std::size_t size_bytes)
    : size_(size_bytes) {
  if (program.data.size() > size_bytes) {
    throw std::invalid_argument("DataMemory: image larger than memory");
  }
  const std::size_t num_pages = (size_bytes + kPageBytes - 1) / kPageBytes;
  pages_.reserve(num_pages);
  for (std::size_t i = 0; i < num_pages; ++i) {
    pages_.push_back(std::make_shared<Page>());  // value-initialized: zeros
  }
  for (std::size_t i = 0; i < program.data.size(); ++i) {
    (*pages_[i / kPageBytes])[i % kPageBytes] = program.data[i];
  }
}

void DataMemory::check(std::uint32_t address) const {
  if (address % 4 != 0) {
    throw std::runtime_error("DataMemory: unaligned 4-byte word access at " +
                             hex(address));
  }
  if (address < base() || address - base() + 4 > size_) {
    throw std::runtime_error(
        "DataMemory: 4-byte access outside memory at " + hex(address) +
        " (valid range [" + hex(base()) + ", " +
        hex(base() + static_cast<std::uint32_t>(size_)) + "))");
  }
}

DataMemory::Page& DataMemory::writable_page(std::size_t page_index) {
  std::shared_ptr<Page>& slot = pages_[page_index];
  // use_count() == 1 means this DataMemory is the sole owner: writing in
  // place is safe.  Shared pages are never mutated — they are replaced by a
  // private clone, so snapshots and sibling forks keep their view.
  if (slot.use_count() > 1) slot = std::make_shared<Page>(*slot);
  return *slot;
}

std::uint32_t DataMemory::load_word(std::uint32_t address) const {
  check(address);
  const std::size_t off = address - base();
  const Page& page = *pages_[off / kPageBytes];
  const std::size_t o = off % kPageBytes;
  return static_cast<std::uint32_t>(page[o]) |
         (static_cast<std::uint32_t>(page[o + 1]) << 8) |
         (static_cast<std::uint32_t>(page[o + 2]) << 16) |
         (static_cast<std::uint32_t>(page[o + 3]) << 24);
}

void DataMemory::store_word(std::uint32_t address, std::uint32_t value) {
  check(address);
  const std::size_t off = address - base();
  Page& page = writable_page(off / kPageBytes);
  const std::size_t o = off % kPageBytes;
  page[o] = static_cast<std::uint8_t>(value & 0xFF);
  page[o + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
  page[o + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
  page[o + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
}

bool DataMemory::shares_page_with(const DataMemory& other,
                                  std::uint32_t address) const {
  check(address);
  other.check(address);
  const std::size_t index = (address - base()) / kPageBytes;
  return pages_[index].get() == other.pages_[index].get();
}

}  // namespace emask::sim
