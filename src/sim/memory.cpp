#include "sim/memory.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace emask::sim {
namespace {

std::string hex(std::uint32_t address) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08X", address);
  return buf;
}

}  // namespace

DataMemory::DataMemory(const assembler::Program& program,
                       std::size_t size_bytes)
    : bytes_(size_bytes, 0u) {
  if (program.data.size() > size_bytes) {
    throw std::invalid_argument("DataMemory: image larger than memory");
  }
  std::copy(program.data.begin(), program.data.end(), bytes_.begin());
}

void DataMemory::check(std::uint32_t address) const {
  if (address % 4 != 0) {
    throw std::runtime_error("DataMemory: unaligned 4-byte word access at " +
                             hex(address));
  }
  if (address < base() || address - base() + 4 > bytes_.size()) {
    throw std::runtime_error(
        "DataMemory: 4-byte access outside memory at " + hex(address) +
        " (valid range [" + hex(base()) + ", " +
        hex(base() + static_cast<std::uint32_t>(bytes_.size())) + "))");
  }
}

std::uint32_t DataMemory::load_word(std::uint32_t address) const {
  check(address);
  const std::size_t off = address - base();
  return static_cast<std::uint32_t>(bytes_[off]) |
         (static_cast<std::uint32_t>(bytes_[off + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes_[off + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes_[off + 3]) << 24);
}

void DataMemory::store_word(std::uint32_t address, std::uint32_t value) {
  check(address);
  const std::size_t off = address - base();
  bytes_[off] = static_cast<std::uint8_t>(value & 0xFF);
  bytes_[off + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
  bytes_[off + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
  bytes_[off + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
}

}  // namespace emask::sim
