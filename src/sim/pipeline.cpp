#include "sim/pipeline.hpp"

#include <stdexcept>

#include "isa/encoding.hpp"

namespace emask::sim {
namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

/// Result of executing an instruction in EX.
struct ExOutput {
  std::uint32_t result = 0;  // ALU result / memory address / link value
  bool control_taken = false;
  std::uint32_t target = 0;  // next pc when control_taken
};

ExOutput execute(const Instruction& inst, std::uint32_t pc, std::uint32_t a,
                 std::uint32_t b) {
  ExOutput out;
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  const auto simm = inst.imm;
  const auto zimm = static_cast<std::uint32_t>(inst.imm) & 0xFFFFu;
  switch (inst.op) {
    case Opcode::kAddu: out.result = a + b; break;
    case Opcode::kSubu: out.result = a - b; break;
    case Opcode::kAnd: out.result = a & b; break;
    case Opcode::kOr: out.result = a | b; break;
    case Opcode::kXor: out.result = a ^ b; break;
    case Opcode::kNor: out.result = ~(a | b); break;
    case Opcode::kSlt: out.result = (sa < sb) ? 1u : 0u; break;
    case Opcode::kSltu: out.result = (a < b) ? 1u : 0u; break;
    // Variable shifts: rd = rt shifted by rs (a = rs value, b = rt value).
    case Opcode::kSllv: out.result = b << (a & 31u); break;
    case Opcode::kSrlv: out.result = b >> (a & 31u); break;
    case Opcode::kSrav:
      out.result = static_cast<std::uint32_t>(sb >> (a & 31u));
      break;
    // Shift by immediate: a carries the rt value.
    case Opcode::kSll: out.result = a << (simm & 31); break;
    case Opcode::kSrl: out.result = a >> (simm & 31); break;
    case Opcode::kSra:
      out.result = static_cast<std::uint32_t>(sa >> (simm & 31));
      break;
    case Opcode::kAddiu:
      out.result = a + static_cast<std::uint32_t>(simm);
      break;
    case Opcode::kAndi: out.result = a & zimm; break;
    case Opcode::kOri: out.result = a | zimm; break;
    case Opcode::kXori: out.result = a ^ zimm; break;
    case Opcode::kSlti: out.result = (sa < simm) ? 1u : 0u; break;
    case Opcode::kSltiu:
      out.result = (a < static_cast<std::uint32_t>(simm)) ? 1u : 0u;
      break;
    case Opcode::kLui: out.result = zimm << 16; break;
    case Opcode::kLw:
    case Opcode::kSw:
      out.result = a + static_cast<std::uint32_t>(simm);  // effective address
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlez:
    case Opcode::kBgtz:
    case Opcode::kBltz:
    case Opcode::kBgez: {
      bool taken = false;
      switch (inst.op) {
        case Opcode::kBeq: taken = (a == b); break;
        case Opcode::kBne: taken = (a != b); break;
        case Opcode::kBlez: taken = (sa <= 0); break;
        case Opcode::kBgtz: taken = (sa > 0); break;
        case Opcode::kBltz: taken = (sa < 0); break;
        default: taken = (sa >= 0); break;
      }
      out.result = a - b;  // the comparator's subtraction
      out.control_taken = taken;
      out.target = pc + 1 + static_cast<std::uint32_t>(inst.imm);
      break;
    }
    case Opcode::kJ:
    case Opcode::kJal:
      out.control_taken = true;
      out.target = static_cast<std::uint32_t>(inst.imm);
      out.result = pc + 1;  // link value (kJal only)
      break;
    case Opcode::kJr:
    case Opcode::kJalr:
      out.control_taken = true;
      out.target = a;
      out.result = pc + 1;
      break;
    case Opcode::kHalt:
      break;
  }
  return out;
}

}  // namespace

Pipeline::Pipeline(const assembler::Program& program, SimConfig config)
    : program_(program),
      config_(config),
      dmem_(program, config.dmem_bytes),
      pc_(program.entry()) {
  if (program_.text.empty()) {
    throw std::invalid_argument("Pipeline: empty program");
  }
  if (config_.dcache) dcache_.emplace(*config_.dcache);
}

Pipeline::Pipeline(const assembler::Program& program, const Snapshot& snapshot)
    : program_(program),
      config_(snapshot.config),
      dmem_(snapshot.memory),  // copy-on-write: pages stay shared until written
      regs_(snapshot.regs),
      pc_(snapshot.pc),
      if_id_(snapshot.if_id),
      id_ex_(snapshot.id_ex),
      ex_mem_(snapshot.ex_mem),
      mem_wb_(snapshot.mem_wb),
      cycles_(snapshot.cycles),
      retired_(snapshot.retired),
      stalls_(snapshot.stalls),
      flushes_(snapshot.flushes),
      dcache_(snapshot.dcache),
      miss_stall_remaining_(snapshot.miss_stall_remaining),
      halted_(snapshot.halted),
      halt_seen_(snapshot.halt_seen) {
  if (program_.text.empty()) {
    throw std::invalid_argument("Pipeline: empty program");
  }
  if (snapshot.text_size != program_.text.size()) {
    throw std::invalid_argument(
        "Pipeline: snapshot was captured from a different program (text size " +
        std::to_string(snapshot.text_size) + " vs " +
        std::to_string(program_.text.size()) + ")");
  }
}

Snapshot Pipeline::snapshot() const {
  Snapshot s{config_, dmem_};
  s.regs = regs_;
  s.pc = pc_;
  s.if_id = if_id_;
  s.id_ex = id_ex_;
  s.ex_mem = ex_mem_;
  s.mem_wb = mem_wb_;
  s.cycles = cycles_;
  s.retired = retired_;
  s.stalls = stalls_;
  s.flushes = flushes_;
  s.dcache = dcache_;
  s.miss_stall_remaining = miss_stall_remaining_;
  s.halted = halted_;
  s.halt_seen = halt_seen_;
  s.text_size = program_.text.size();
  return s;
}

std::uint32_t Pipeline::forwarded(isa::Reg r, std::uint32_t id_value) const {
  if (r == isa::kZero) return 0;
  // Younger result wins: the instruction currently in MEM first.
  if (ex_mem_.valid) {
    const auto d = ex_mem_.inst.dest();
    if (d && *d == r) {
      if (isa::info(ex_mem_.inst.op).is_load) {
        // The interlock must have kept the consumer out of EX.
        throw std::logic_error("Pipeline: load-use forwarding violation");
      }
      return ex_mem_.alu;
    }
  }
  if (mem_wb_.valid) {
    const auto d = mem_wb_.inst.dest();
    if (d && *d == r) return mem_wb_.value;
  }
  return id_value;
}

bool Pipeline::step(energy::CycleActivity& activity) {
  activity = energy::CycleActivity{};
  if (halted_) return false;
  ++cycles_;

  // A data-cache miss blocks the whole (in-order, blocking-cache) pipeline;
  // only the clock tree burns energy while the line is refilled.
  if (miss_stall_remaining_ > 0) {
    --miss_stall_remaining_;
    return !halted_;
  }

  // Snapshots of the start-of-cycle latch state.
  const IfId if_id = if_id_;
  const IdEx id_ex = id_ex_;
  const ExMem ex_mem = ex_mem_;
  const MemWb mem_wb = mem_wb_;

  // ---- WB (first half of the cycle: writes are visible to ID reads) ----
  if (mem_wb.valid) {
    if (const auto d = mem_wb.inst.dest()) regs_[*d] = mem_wb.value;
    ++retired_;
    activity.rf_write = mem_wb.inst.dest().has_value();
    activity.wb_secure = mem_wb.inst.secure;
    activity.retired = true;
    activity.retire_pc = mem_wb.pc;
    if (mem_wb.inst.op == Opcode::kHalt) halted_ = true;
  }

  // ---- MEM ----
  MemWb next_mem_wb;
  if (ex_mem.valid) {
    const isa::OpcodeInfo& oi = isa::info(ex_mem.inst.op);
    std::uint32_t value = ex_mem.alu;
    if (oi.is_load) {
      value = dmem_.load_word(ex_mem.alu);
      activity.mem.read = true;
    } else if (oi.is_store) {
      dmem_.store_word(ex_mem.alu, ex_mem.store_data);
      activity.mem.write = true;
    }
    if (oi.is_load || oi.is_store) {
      activity.mem.secure = ex_mem.inst.secure;
      activity.mem.address = ex_mem.alu;
      activity.mem.data = oi.is_load ? value : ex_mem.store_data;
      if (dcache_ && !dcache_->access(ex_mem.alu)) {
        // Blocking miss: the access completes architecturally now; the
        // refill penalty freezes the machine for the following cycles.
        miss_stall_remaining_ = dcache_->config().miss_penalty;
      }
    }
    next_mem_wb = MemWb{true, ex_mem.inst, ex_mem.pc, value};
  }

  // ---- EX ----
  ExMem next_ex_mem;
  bool flush = false;
  std::uint32_t flush_target = 0;
  if (id_ex.valid) {
    std::uint32_t a = id_ex.a;
    std::uint32_t b = id_ex.b;
    if (const auto s1 = id_ex.inst.src1()) a = forwarded(*s1, a);
    if (const auto s2 = id_ex.inst.src2()) b = forwarded(*s2, b);
    const ExOutput out = execute(id_ex.inst, id_ex.pc, a, b);
    next_ex_mem = ExMem{true, id_ex.inst, id_ex.pc, out.result, b};
    if (out.control_taken) {
      flush = true;
      flush_target = out.target;
    }
    activity.ex.valid = true;
    activity.ex.unit = isa::info(id_ex.inst.op).unit;
    activity.ex.secure = id_ex.inst.secure;
    activity.ex.a = a;
    activity.ex.b = b;
    activity.ex.result = out.result;
  }

  // ---- ID (with load-use interlock against the instruction in EX) ----
  IdEx next_id_ex;
  bool stall = false;
  if (if_id.valid) {
    const Instruction& inst = if_id.inst;
    if (id_ex.valid && isa::info(id_ex.inst.op).is_load) {
      const auto ldest = id_ex.inst.dest();
      const auto s1 = inst.src1();
      const auto s2 = inst.src2();
      if (ldest && ((s1 && *s1 == *ldest) || (s2 && *s2 == *ldest))) {
        stall = true;
        ++stalls_;
      }
    }
    if (!stall) {
      // Operand isolation: when the hazard logic already knows a source
      // will be superseded by forwarding in EX (its producer is currently
      // in EX or MEM), the register-file read is gated and a zero is
      // latched.  This is a standard low-power technique — and it also
      // closes a side channel: without it, the *stale* architectural value
      // (possibly secret-derived) of an overwritten register would transit
      // the ID/EX register under a non-secure instruction.
      const auto will_forward = [&](isa::Reg r) {
        if (id_ex.valid) {
          const auto d = id_ex.inst.dest();
          if (d && *d == r) return true;
        }
        if (ex_mem.valid) {
          const auto d = ex_mem.inst.dest();
          if (d && *d == r) return true;
        }
        return false;
      };
      int reads = 0;
      const auto port = [&](std::optional<isa::Reg> r) -> std::uint32_t {
        if (!r) return 0u;
        if (config_.operand_isolation && will_forward(*r)) return 0u;
        ++reads;
        return regs_[*r];
      };
      next_id_ex = IdEx{true, inst, if_id.pc, port(inst.src1()),
                        port(inst.src2())};
      activity.decode = true;
      activity.rf_reads = reads;
    }
  }

  // ---- IF ----
  IfId next_if_id = if_id;  // default: hold on stall
  bool fetched = false;
  std::uint64_t fetch_bits = 0;
  if (!stall) {
    if (!halt_seen_ && pc_ < program_.text.size()) {
      const Instruction& inst = program_.text[pc_];
      fetch_bits = isa::encode(inst);
      next_if_id = IfId{true, inst, fetch_bits, pc_};
      fetched = true;
      if (inst.op == Opcode::kHalt) halt_seen_ = true;
      ++pc_;
    } else {
      // Past a halt, or past the end of text while an in-flight control
      // transfer (e.g. a trailing jr) may still redirect fetch: issue
      // bubbles.  A genuine runaway is detected below when the pipeline
      // drains completely without halting.
      next_if_id = IfId{};
    }
  }
  activity.fetch = fetched;
  activity.fetch_bits = fetch_bits;
  activity.fetch_pc = fetched ? next_if_id.pc : 0;

  // ---- Control transfer: squash the two younger stages ----
  if (flush) {
    ++flushes_;
    next_if_id = IfId{};
    next_id_ex = IdEx{};
    pc_ = flush_target;
    halt_seen_ = false;  // fetch resumes at the target
    if (pc_ >= program_.text.size()) {
      throw std::runtime_error("Pipeline: jump outside text to " +
                               std::to_string(pc_));
    }
  }

  // ---- Latch energy activity (writes occurring at this clock edge) ----
  // Clock-gated: bubbles and held (stalled) latches are not rewritten.
  if (fetched && !flush) {
    activity.if_id = energy::LatchWrite{true, false, next_if_id.encoded, 33};
  }
  if (next_id_ex.valid && !flush) {
    activity.id_ex = energy::LatchWrite{
        true, next_id_ex.inst.secure,
        static_cast<std::uint64_t>(next_id_ex.a) |
            (static_cast<std::uint64_t>(next_id_ex.b) << 32),
        64};
  }
  if (next_ex_mem.valid) {
    activity.ex_mem = energy::LatchWrite{
        true, next_ex_mem.inst.secure,
        static_cast<std::uint64_t>(next_ex_mem.alu) |
            (static_cast<std::uint64_t>(next_ex_mem.store_data) << 32),
        64};
  }
  if (next_mem_wb.valid) {
    activity.mem_wb = energy::LatchWrite{true, next_mem_wb.inst.secure,
                                         next_mem_wb.value, 32};
  }

  // ---- Commit ----
  // On a stall next_id_ex is the default bubble; on a flush it was squashed
  // above, so a plain assignment covers interlock and control transfer.
  if_id_ = next_if_id;
  id_ex_ = next_id_ex;
  ex_mem_ = next_ex_mem;
  mem_wb_ = next_mem_wb;

  if (!halted_ && !halt_seen_ && pc_ >= program_.text.size() &&
      !if_id_.valid && !id_ex_.valid && !ex_mem_.valid && !mem_wb_.valid) {
    throw std::runtime_error("Pipeline: pc ran off the end of text at " +
                             std::to_string(pc_));
  }
  return !halted_;
}

SimResult Pipeline::run() {
  return run([](const energy::CycleActivity&) {});
}

}  // namespace emask::sim
