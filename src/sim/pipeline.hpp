// Cycle-accurate, in-order, five-stage pipeline (IF ID EX MEM WB).
//
// Matches the paper's target: "a simple five-stage pipelined smart card
// processor" (fetch, decode, execute, memory access, write back).
// Microarchitectural choices, documented here because they shape the cycle
// counts and the energy trace:
//
//   * full forwarding from EX/MEM and MEM/WB into EX;
//   * one-cycle load-use interlock;
//   * branches and jumps resolve in EX; a taken control transfer flushes
//     the two younger stages (2-cycle penalty); no delay slots;
//   * Harvard memories, both single-cycle (smart-card cores run cacheless
//     on-chip SRAM);
//   * pipeline registers are clock-gated on bubbles (no latch write, no
//     latch energy), and gated *extra* rails are only powered for secure
//     instructions — both noted in the paper as sources of savings.
//
// The simulator produces one energy::CycleActivity per clock; it never
// computes energy itself (SimplePower's split between performance model and
// energy back end).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "assembler/program.hpp"
#include "energy/activity.hpp"
#include "isa/instruction.hpp"
#include "sim/cache.hpp"
#include "sim/memory.hpp"

namespace emask::sim {

struct SimConfig {
  std::uint64_t max_cycles = 50'000'000;
  std::size_t dmem_bytes = 1u << 20;
  /// Gate register-file reads whose value will be superseded by forwarding
  /// (standard low-power operand isolation).  Also closes a side channel:
  /// without it, the stale architectural value of an overwritten register —
  /// possibly secret-derived — transits the ID/EX register under a
  /// non-secure instruction.  Disable only for the ablation experiment.
  bool operand_isolation = true;
  /// Optional data cache (timing only).  Smart cards run cacheless —
  /// enabling this reintroduces a key-dependent timing channel through
  /// secret-indexed table lookups (see bench_ext_cache_timing).
  std::optional<CacheConfig> dcache;
};

struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  // retired
  std::uint64_t stalls = 0;        // load-use interlock bubbles
  std::uint64_t flushes = 0;       // taken control transfers (2 slots each)
  bool halted = false;

  [[nodiscard]] double cpi() const {
    return instructions ? static_cast<double>(cycles) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
};

// Latched state between pipeline stages; `valid=false` is a bubble.  At
// namespace scope (rather than nested in Pipeline) so sim::Snapshot can
// carry them.
struct IfIdLatch {
  bool valid = false;
  isa::Instruction inst;
  std::uint64_t encoded = 0;
  std::uint32_t pc = 0;
};
struct IdExLatch {
  bool valid = false;
  isa::Instruction inst;
  std::uint32_t pc = 0;
  std::uint32_t a = 0;  // rs value (or rt for shift-by-immediate)
  std::uint32_t b = 0;  // rt value
};
struct ExMemLatch {
  bool valid = false;
  isa::Instruction inst;
  std::uint32_t pc = 0;
  std::uint32_t alu = 0;         // ALU result or memory address
  std::uint32_t store_data = 0;  // rt value for stores
};
struct MemWbLatch {
  bool valid = false;
  isa::Instruction inst;
  std::uint32_t pc = 0;
  std::uint32_t value = 0;  // value to write back
};

struct Snapshot;

class Pipeline {
 public:
  explicit Pipeline(const assembler::Program& program, SimConfig config = {});

  /// Resumes a captured machine mid-run.  `program` must be the same text
  /// the snapshot was taken from (checked by instruction count); the data
  /// *image* may since have been poked only at addresses the pre-snapshot
  /// prefix never touched — forked runs poke fresh inputs into memory(),
  /// not into the program image.
  Pipeline(const assembler::Program& program, const Snapshot& snapshot);

  /// Advances one clock.  Fills `activity` with what happened.  Returns
  /// false once the machine has halted (activity is then all-idle).
  bool step(energy::CycleActivity& activity);

  /// Runs to halt (or the cycle limit, which throws).  Invokes
  /// `on_cycle(activity)` after every clock if provided.
  ///
  /// Budget boundary (mirrors Interpreter::run): a program that halts in
  /// exactly `max_cycles` cycles succeeds, and once the halt instruction
  /// has been fetched on the correct path the pipeline is allowed to drain
  /// (a bounded handful of cycles) even if that crosses the limit — the
  /// budget error means "still doing productive work past the limit", not
  /// "finished a cycle too late".
  template <typename OnCycle>
  SimResult run(OnCycle&& on_cycle) {
    energy::CycleActivity activity;
    while (!halted_) {
      if (cycles_ >= config_.max_cycles && !halt_seen_) {
        throw std::runtime_error("Pipeline: cycle limit exceeded");
      }
      step(activity);
      on_cycle(activity);
    }
    return result();
  }

  SimResult run();

  /// Captures the complete machine state — registers, PC, the four
  /// inter-stage latches, cycle/retire/stall/flush counters, halt flags,
  /// cache tags, and the data memory (shared copy-on-write, see
  /// DataMemory) — so an identical Pipeline can be re-created later with
  /// the restore constructor and stepped on bit-identically.
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] SimResult result() const {
    return SimResult{cycles_, retired_, stalls_, flushes_, halted_};
  }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint32_t reg(isa::Reg r) const { return regs_[r]; }
  [[nodiscard]] const DataMemory& memory() const { return dmem_; }
  [[nodiscard]] DataMemory& memory() { return dmem_; }
  [[nodiscard]] const DirectMappedCache* dcache() const {
    return dcache_ ? &*dcache_ : nullptr;
  }

 private:
  using IfId = IfIdLatch;
  using IdEx = IdExLatch;
  using ExMem = ExMemLatch;
  using MemWb = MemWbLatch;

  [[nodiscard]] std::uint32_t forwarded(isa::Reg r, std::uint32_t id_value) const;

  const assembler::Program& program_;
  SimConfig config_;
  DataMemory dmem_;

  std::array<std::uint32_t, isa::kNumRegisters> regs_{};
  std::uint32_t pc_;
  IfId if_id_;
  IdEx id_ex_;
  ExMem ex_mem_;
  MemWb mem_wb_;

  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t flushes_ = 0;
  std::optional<DirectMappedCache> dcache_;
  std::uint32_t miss_stall_remaining_ = 0;
  bool halted_ = false;
  bool halt_seen_ = false;  // a halt is in flight; stop fetching
};

/// Full machine state captured mid-run (see Pipeline::snapshot()).
///
/// The intended use is shared-prefix trace forking: run the machine once to
/// a program-declared fork point (Program::fork_point — the `fork` marker
/// the DES generator places between the key schedule and the first
/// plaintext use), snapshot, then fork N per-input runs from the snapshot
/// instead of re-simulating the identical prefix N times.  Because the
/// snapshot carries *everything* the step function reads — including the
/// in-flight latches and the microarchitectural counters — a restored
/// Pipeline steps bit-identically to the original from the capture cycle
/// on.  Memory is held copy-on-write, so a snapshot shared read-only
/// across worker threads hands out forks at page granularity.
struct Snapshot {
  SimConfig config;
  DataMemory memory;
  std::array<std::uint32_t, isa::kNumRegisters> regs{};
  std::uint32_t pc = 0;
  IfIdLatch if_id;
  IdExLatch id_ex;
  ExMemLatch ex_mem;
  MemWbLatch mem_wb;
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;
  std::uint64_t stalls = 0;
  std::uint64_t flushes = 0;
  std::optional<DirectMappedCache> dcache;
  std::uint32_t miss_stall_remaining = 0;
  bool halted = false;
  bool halt_seen = false;
  std::size_t text_size = 0;  // sanity check against the restoring program
};

}  // namespace emask::sim
