#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace emask::sim {

DirectMappedCache::DirectMappedCache(const CacheConfig& config)
    : config_(config) {
  if (config.line_bytes == 0 || config.size_bytes == 0 ||
      config.size_bytes % config.line_bytes != 0 ||
      !std::has_single_bit(config.line_bytes) ||
      !std::has_single_bit(config.size_bytes)) {
    throw std::invalid_argument(
        "DirectMappedCache: size and line must be powers of two");
  }
  num_lines_ = config.size_bytes / config.line_bytes;
  tags_.assign(num_lines_, 0);
}

bool DirectMappedCache::access(std::uint32_t address) {
  const std::uint32_t line = address / config_.line_bytes;
  const std::uint32_t index = line % num_lines_;
  const std::uint64_t tag = static_cast<std::uint64_t>(line / num_lines_) + 1;
  if (tags_[index] == tag) {
    ++hits_;
    return true;
  }
  tags_[index] = tag;
  ++misses_;
  return false;
}

}  // namespace emask::sim
