// Flat on-chip data SRAM of the modeled smart-card core.
#pragma once

#include <cstdint>
#include <vector>

#include "assembler/program.hpp"

namespace emask::sim {

/// Byte-addressable data memory based at assembler::kDataBase.  Word
/// accesses must be 4-byte aligned; violations and out-of-range accesses
/// throw (they indicate a broken program, not a modeled trap).
class DataMemory {
 public:
  explicit DataMemory(const assembler::Program& program,
                      std::size_t size_bytes = 1u << 20);

  [[nodiscard]] std::uint32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::uint32_t value);

  [[nodiscard]] std::uint32_t base() const { return assembler::kDataBase; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  void check(std::uint32_t address) const;

  std::vector<std::uint8_t> bytes_;
};

}  // namespace emask::sim
