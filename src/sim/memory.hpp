// Flat on-chip data SRAM of the modeled smart-card core.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "assembler/program.hpp"

namespace emask::sim {

/// Byte-addressable data memory based at assembler::kDataBase.  Word
/// accesses must be 4-byte aligned; violations and out-of-range accesses
/// throw (they indicate a broken program, not a modeled trap).
///
/// Storage is paged and copy-on-write: copying a DataMemory shares its
/// pages, and a store to a shared page clones just that page.  Forking N
/// simulators from one sim::Snapshot therefore costs O(pages actually
/// written) per fork, not O(memory size) — the 1 MiB default image is 256
/// pages, of which a DES encryption dirties only a handful.  Page reference
/// counts are atomic (std::shared_ptr), so concurrent forks from a shared
/// read-only snapshot are safe; the bytes of a shared page are never
/// mutated in place.
class DataMemory {
 public:
  explicit DataMemory(const assembler::Program& program,
                      std::size_t size_bytes = 1u << 20);

  [[nodiscard]] std::uint32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::uint32_t value);

  [[nodiscard]] std::uint32_t base() const { return assembler::kDataBase; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Copy-on-write bookkeeping: does `this` still share the physical page
  /// holding `address` with `other`?  Exposed for tests and fork-cost
  /// observability; `address` must be in range for both.
  [[nodiscard]] bool shares_page_with(const DataMemory& other,
                                      std::uint32_t address) const;

 private:
  // 4 KiB pages: large enough that the per-access indirection is noise,
  // small enough that a forked DES run (which touches the lr/cd/er/sbval
  // working set plus the cipher area) clones only a few.
  static constexpr std::size_t kPageBytes = 4096;
  static_assert(kPageBytes % 4 == 0, "aligned words must not span pages");
  using Page = std::array<std::uint8_t, kPageBytes>;

  void check(std::uint32_t address) const;
  [[nodiscard]] Page& writable_page(std::size_t page_index);

  std::size_t size_ = 0;  // logical size in bytes (last page may be partial)
  std::vector<std::shared_ptr<Page>> pages_;
};

}  // namespace emask::sim
