#include "hiding/policy.hpp"

#include <stdexcept>

namespace emask::hiding {
namespace {

template <typename T, std::size_t N>
const T* find_by_name(const std::array<PolicyName<T>, N>& table,
                      std::string_view name) {
  for (const PolicyName<T>& entry : table) {
    if (entry.name == name) return &entry.value;
  }
  return nullptr;
}

}  // namespace

const std::array<PolicyName<compiler::Policy>, 4>& masking_names() {
  static const std::array<PolicyName<compiler::Policy>, 4> table = {{
      {compiler::Policy::kOriginal,
       compiler::policy_name(compiler::Policy::kOriginal)},
      {compiler::Policy::kSelective,
       compiler::policy_name(compiler::Policy::kSelective)},
      {compiler::Policy::kNaiveLoadStore,
       compiler::policy_name(compiler::Policy::kNaiveLoadStore)},
      {compiler::Policy::kAllSecure,
       compiler::policy_name(compiler::Policy::kAllSecure)},
  }};
  return table;
}

const std::array<PolicyName<HidingPolicy>, 3>& hiding_names() {
  static const std::array<PolicyName<HidingPolicy>, 3> table = {{
      {HidingPolicy::kWddl, "wddl"},
      {HidingPolicy::kRandomPrecharge, "random_precharge"},
      {HidingPolicy::kShuffleNop, "shuffle_nop"},
  }};
  return table;
}

std::string_view hiding_name(HidingPolicy h) {
  for (const auto& entry : hiding_names()) {
    if (entry.value == h) return entry.name;
  }
  return "none";
}

std::string Countermeasure::name() const {
  if (hiding == HidingPolicy::kNone) {
    return std::string(compiler::policy_name(masking));
  }
  if (masking == compiler::Policy::kOriginal) {
    return std::string(hiding_name(hiding));
  }
  return std::string(compiler::policy_name(masking)) + "+" +
         std::string(hiding_name(hiding));
}

std::string countermeasure_axis_values() {
  std::string values;
  for (const auto& entry : masking_names()) {
    if (!values.empty()) values += "|";
    values += entry.name;
  }
  for (const auto& entry : hiding_names()) {
    values += "|";
    values += entry.name;
  }
  return values;
}

Countermeasure countermeasure_from_name(std::string_view name) {
  const auto fail = [&]() -> std::invalid_argument {
    return std::invalid_argument(
        "unknown policy '" + std::string(name) + "' (expected " +
        countermeasure_axis_values() +
        ", or a masking+hiding pair like selective+wddl)");
  };
  const std::size_t plus = name.find('+');
  if (plus == std::string_view::npos) {
    if (const compiler::Policy* m = find_by_name(masking_names(), name)) {
      return Countermeasure(*m);
    }
    if (const HidingPolicy* h = find_by_name(hiding_names(), name)) {
      return Countermeasure(compiler::Policy::kOriginal, *h);
    }
    throw fail();
  }
  const std::string_view masking_part = name.substr(0, plus);
  const std::string_view hiding_part = name.substr(plus + 1);
  const compiler::Policy* m = find_by_name(masking_names(), masking_part);
  const HidingPolicy* h = find_by_name(hiding_names(), hiding_part);
  if (m == nullptr || h == nullptr || hiding_part.find('+') !=
      std::string_view::npos) {
    throw fail();
  }
  return Countermeasure(*m, *h);
}

}  // namespace emask::hiding
