// Countermeasure policies: masking x hiding combinations.
//
// The paper's four policies (compiler::Policy) all *mask*: secure
// instructions run on dual-rail hardware so their energy is data-
// independent.  The other half of the countermeasure design space *hides*:
// it leaves the computation alone and makes the measurement useless.  This
// module models three hiding policies as first-class citizens alongside
// the masking ones, composable with any of them:
//
//   * wddl             — wave dynamic differential logic (Tiri &
//                        Verbauwhede): every bus, latch and functional unit
//                        precharges and then evaluates complementary rails
//                        each cycle, whether or not the instruction is
//                        secure.  Per-cycle energy is constant in the data;
//                        only the adjacent-line coupling residue survives.
//   * random_precharge — buses/latches/units precharge to *random* values
//                        drawn from a deterministic per-trace util::Rng
//                        stream, so the Hamming distance any one cycle
//                        leaks is against a word the attacker cannot know.
//                        First-order averaging destroys the correlation.
//   * shuffle_nop      — random NOP-delay insertion in the generated DES
//                        program (data-driven delay loops, deterministic
//                        per-trace schedule) desynchronizes the attack
//                        window: cycle c no longer lines up with the same
//                        operation across traces.
//
// A Countermeasure is a (masking, hiding) pair named "masking+hiding"
// ("selective+wddl"); bare masking names ("selective") and bare hiding
// names ("wddl" == "original+wddl") keep their short spellings.  The name
// tables below are the single source of truth for the campaign policy
// axis, spec validation and error messages.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "compiler/masking.hpp"

namespace emask::hiding {

enum class HidingPolicy {
  kNone,
  kWddl,
  kRandomPrecharge,
  kShuffleNop,
};

/// Name table entry; mirrors campaign's AxisName<T> shape.
template <typename T>
struct PolicyName {
  T value;
  std::string_view name;
};

/// All masking policies, in compiler::Policy order (the paper's Table-1
/// order: baseline first).
[[nodiscard]] const std::array<PolicyName<compiler::Policy>, 4>&
masking_names();

/// All hiding policies *except* kNone (which has no spelled name: the
/// absence of a "+hiding" suffix means none).
[[nodiscard]] const std::array<PolicyName<HidingPolicy>, 3>& hiding_names();

[[nodiscard]] std::string_view hiding_name(HidingPolicy h);

/// Upper bound on the per-slot delay-loop iteration count drawn by the
/// shuffle_nop schedule (each iteration is a 2-instruction loop body, so
/// one slot inserts up to ~3x this many cycles).
inline constexpr std::uint32_t kShuffleNopMaxDelay = 12;

/// A composed countermeasure: which instructions are masked (dual-rail
/// secure versions) and which hiding transform wraps the whole run.
struct Countermeasure {
  compiler::Policy masking = compiler::Policy::kOriginal;
  HidingPolicy hiding = HidingPolicy::kNone;

  Countermeasure() = default;
  // Implicit by design: every pre-existing call site that speaks plain
  // compiler::Policy means "that masking, no hiding".
  Countermeasure(compiler::Policy m) : masking(m) {}  // NOLINT
  Countermeasure(compiler::Policy m, HidingPolicy h) : masking(m), hiding(h) {}

  /// Canonical axis name: "selective", "wddl" (== original+wddl),
  /// "selective+wddl".
  [[nodiscard]] std::string name() const;

  /// Snapshot/fork eligibility: random_precharge consumes a per-trace
  /// RNG stream from cycle 0, so a shared prefix captured once would pin
  /// every forked trace to the same precharge values — both wrong (the
  /// hiding would silently vanish) and non-identical to a cold start.
  [[nodiscard]] bool fork_compatible() const {
    return hiding != HidingPolicy::kRandomPrecharge;
  }

  friend bool operator==(const Countermeasure& a, const Countermeasure& b) {
    return a.masking == b.masking && a.hiding == b.hiding;
  }
  friend bool operator!=(const Countermeasure& a, const Countermeasure& b) {
    return !(a == b);
  }
};

/// Parses "masking", "hiding", or "masking+hiding".  Throws
/// std::invalid_argument naming the accepted spellings (campaign wraps it
/// into a SpecError).
[[nodiscard]] Countermeasure countermeasure_from_name(std::string_view name);

/// "original|selective|...|wddl|..." — the accepted single-token
/// spellings, for error messages.
[[nodiscard]] std::string countermeasure_axis_values();

}  // namespace emask::hiding
