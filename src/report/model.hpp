// report::Model — the joined, chart-ready view of one campaign output
// directory.
//
// Input is the deterministic half of the campaign layout only:
//
//   <dir>/manifest.json                  (or manifest.shard-i-of-N.json)
//   <dir>/scenarios/<id>/<artifact>.csv  breakdown / guesses / t_per_cycle
//
// The manifest is the source of truth: scenario parameters and results are
// read back through util::parse_json + campaign::scenario_result_from_json
// (bit-exact number round-trip), the per-policy roll-up is *recomputed*
// from those results with campaign::rollup_by_policy — never copied from
// the manifest's own rollup block — and the paper references ride in from
// the manifest's by_policy entries.  Artifact CSVs are joined by the
// campaign layout contract (campaign::scenario_artifact_path); a missing
// artifact degrades that scenario's drill-down, it never fails the load.
//
// Everything in the Model is a pure function of the bytes under <dir>, so
// a report rendered from it inherits the manifest's byte-identity
// guarantee.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/spec.hpp"
#include "util/csv.hpp"

namespace emask::report {

/// Load/consistency error (bad directory, malformed or unknown-format
/// manifest).  Malformed JSON inside surfaces as util::JsonError with the
/// file prefixed, as elsewhere in the codebase.
class ReportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scenario row joined with its analysis artifact.
struct ScenarioEntry {
  campaign::Scenario scenario;      // parameters, parsed back from JSON
  campaign::ScenarioResult result;  // deterministic result fields
  /// The analysis-specific CSV (breakdown/guesses/t_per_cycle), parsed.
  util::CsvTable artifact;
  bool artifact_present = false;
  /// Relative path the artifact was looked up at (for callouts).
  std::string artifact_path;
  /// Traces-to-disclosure curve (disclosure.csv) for key-ranking attack
  /// scenarios.  Optional: campaigns written before the curve existed
  /// simply have no disclosure sections, never a load failure, so its
  /// absence does not count toward missing_artifacts.
  util::CsvTable disclosure;
  bool disclosure_present = false;
  /// Session-cipher extras (blocks.csv / session.csv), joined for
  /// des_cbc / tdes_cbc scenarios only.  Optional in the same sense as
  /// the disclosure curve.
  util::CsvTable blocks;
  bool blocks_present = false;
  util::CsvTable session;
  bool session_present = false;
};

/// One roll-up row: recomputed measurement plus the manifest's paper
/// reference when the campaign carried one.
struct PolicyRow {
  hiding::Countermeasure policy;
  std::size_t scenarios = 0;
  double mean_uj = 0.0;
  // Derived values are NaN ("n/a" in the report) until computed — never a
  // fake 0 that reads like a measurement.
  double ratio = std::numeric_limits<double>::quiet_NaN();
  bool has_reference = false;
  double paper_uj = 0.0;
  double paper_ratio = std::numeric_limits<double>::quiet_NaN();
  double normalized_uj = std::numeric_limits<double>::quiet_NaN();
};

struct Model {
  // -- provenance header ------------------------------------------------
  std::string campaign;   // spec name
  std::string spec_hash;  // FNV-1a of the spec text
  std::string generator;  // git describe of the producing build
  std::string manifest_name;  // relative filename the model was loaded from
  bool sharded = false;       // loaded from a per-shard manifest
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  std::vector<ScenarioEntry> scenarios;  // manifest order
  std::vector<PolicyRow> rollup;         // manifest by_policy order

  // -- status tallies ---------------------------------------------------
  std::size_t failed = 0;             // result.success == false
  std::size_t missing_artifacts = 0;  // artifact CSV absent on disk

  /// Loads `<dir>/manifest.json`, falling back to the directory's single
  /// `manifest.shard-i-of-N.json` for an unmerged shard.  Throws
  /// ReportError when neither exists (or several shard manifests make the
  /// choice ambiguous), util::JsonError / campaign::SpecError on malformed
  /// content.
  [[nodiscard]] static Model load(const std::string& dir);

  /// Parses an already-loaded manifest document (crafted fixtures, tests).
  /// `dir` is still used to join artifact CSVs; `manifest_name` is the
  /// name recorded in the provenance header.
  [[nodiscard]] static Model from_manifest(const std::string& manifest_text,
                                           const std::string& manifest_name,
                                           const std::string& dir);
};

}  // namespace emask::report
