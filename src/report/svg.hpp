// report::Svg — a small deterministic chart builder.
//
// Emits standalone inline-SVG fragments (no external CSS/JS/fonts beyond
// the generic sans-serif family) for the three shapes the report needs:
// grouped bar charts (per-policy energy vs. paper references), line charts
// (TVLA t-per-cycle, attack guess scores), and a scenario status grid.
//
// Determinism contract: the output is a pure function of the spec structs
// — every coordinate is formatted with fixed snprintf patterns ("%.2f"
// for geometry, "%.6g" for tick labels), axis ticks are chosen by a
// deterministic 1/2/5 ladder, and nothing reads clocks, locales, or
// randomness.  Non-finite values never reach the output: a NaN/Inf bar is
// drawn as an "n/a" placeholder and a NaN/Inf point breaks the polyline.
#pragma once

#include <string>
#include <vector>

namespace emask::report {

/// Fixed "%.2f" rendering for SVG geometry.  Callers must keep non-finite
/// values out (the chart builders do).
[[nodiscard]] std::string svg_num(double v);

/// Compact "%.6g" rendering for tick/value labels.
[[nodiscard]] std::string svg_label_num(double v);

/// XML/HTML text escaping (&, <, >, ").
[[nodiscard]] std::string xml_escape(const std::string& text);

struct BarSeries {
  std::string label;
  std::vector<double> values;  // one per group; NaN/Inf draws as "n/a"
};

struct BarChartSpec {
  std::string title;
  std::string y_label;
  std::vector<std::string> groups;  // category labels along x
  std::vector<BarSeries> series;    // bars per group, in legend order
  int width = 720;
  int height = 340;
};

[[nodiscard]] std::string bar_chart(const BarChartSpec& spec);

struct LineSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  // NaN/Inf breaks the polyline at that point
};

struct LineChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<LineSeries> series;
  /// Dashed horizontal reference lines (e.g. the TVLA +/-4.5 threshold).
  std::vector<double> hlines;
  int width = 720;
  int height = 300;
};

[[nodiscard]] std::string line_chart(const LineChartSpec& spec);

/// One labelled point of a scatter/Pareto chart.  `open` draws a hollow
/// marker — the report uses it for censored values (an attack that never
/// disclosed the key within the trace budget).
struct ScatterPoint {
  std::string label;
  double x = 0.0;
  double y = 0.0;
  bool open = false;
};

struct ScatterChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<ScatterPoint> points;  // NaN/Inf points are skipped
  /// Indices into `points` to join with a dashed frontier polyline, in
  /// drawing order (the caller computes the Pareto set deterministically).
  std::vector<std::size_t> frontier;
  /// Dashed vertical reference lines with labels (e.g. the paper's
  /// per-policy energy numbers on an energy x-axis).
  std::vector<double> vlines;
  std::vector<std::string> vline_labels;  // parallel to vlines; may be short
  int width = 720;
  int height = 340;
};

[[nodiscard]] std::string scatter_chart(const ScatterChartSpec& spec);

enum class CellState { kOk, kFailed, kNoArtifact };

struct GridCell {
  std::string label;  // hover text (scenario id)
  CellState state = CellState::kOk;
};

/// Compact scenario-status grid; `columns` cells per row.
[[nodiscard]] std::string status_grid(const std::vector<GridCell>& cells,
                                      int columns = 10);

}  // namespace emask::report
