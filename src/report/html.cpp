#include "report/html.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "report/svg.hpp"
#include "util/fsio.hpp"

namespace emask::report {
namespace {

constexpr const char* kStyle =
    "body{font-family:sans-serif;color:#222;margin:24px auto;max-width:960px;"
    "padding:0 16px;background:#fafafa}"
    "h1{font-size:22px;border-bottom:2px solid #4878a8;padding-bottom:6px}"
    "h2{font-size:17px;margin-top:28px}"
    "table{border-collapse:collapse;margin:8px 0;background:#fff}"
    "th,td{border:1px solid #ccc;padding:4px 10px;font-size:13px;"
    "text-align:right}"
    "th{background:#eef2f7;text-align:center}"
    "td.l,th.l{text-align:left}"
    "details{margin:6px 0;background:#fff;border:1px solid #ddd;"
    "border-radius:4px;padding:4px 10px}"
    "summary{cursor:pointer;font-size:14px;padding:4px 0}"
    ".ok{color:#3a7a34}.fail{color:#b03330;font-weight:bold}"
    ".miss{color:#777}"
    ".callout{border-left:4px solid #d1605e;background:#fff;"
    "padding:8px 12px;margin:8px 0;font-size:13px}"
    ".note{border-left:4px solid #b8b8b8;background:#fff;"
    "padding:8px 12px;margin:8px 0;font-size:13px}"
    ".prov{font-size:12px;color:#555}"
    "svg{background:#fff;border:1px solid #e5e5e5;border-radius:4px;"
    "margin:6px 0;max-width:100%}";

std::string esc(const std::string& s) { return xml_escape(s); }

double cell_to_double(const std::string& cell) {
  if (cell.empty()) return std::nan("");
  return std::strtod(cell.c_str(), nullptr);
}

std::string_view metric_label(campaign::Analysis a) {
  switch (a) {
    case campaign::Analysis::kEnergy: return "mean uJ/enc";
    case campaign::Analysis::kDpa:
    case campaign::Analysis::kSecondOrder: return "|DoM| peak (pJ)";
    case campaign::Analysis::kCpa: return "max |rho|";
    case campaign::Analysis::kTvla: return "max |t|";
    case campaign::Analysis::kMlpa: return "MLPA score";
    case campaign::Analysis::kCollision: return "collision score";
  }
  return "metric";
}

bool has_column(const util::CsvTable& t, const char* name) {
  return std::find(t.columns.begin(), t.columns.end(), name) !=
         t.columns.end();
}

bool disclosure_table_usable(const util::CsvTable& t) {
  return has_column(t, "traces") && has_column(t, "guess") &&
         has_column(t, "rank");
}

/// The true guess's (traces, rank) points from a disclosure.csv table
/// (checkpoint-major rows of traces,guess,rank,score).
struct DisclosurePoints {
  std::vector<double> traces;
  std::vector<double> ranks;
};

DisclosurePoints true_guess_ranks(const util::CsvTable& t, int true_guess) {
  DisclosurePoints p;
  if (!disclosure_table_usable(t) || true_guess < 0) return p;
  const std::size_t traces_col = t.column("traces");
  const std::size_t guess_col = t.column("guess");
  const std::size_t rank_col = t.column("rank");
  for (const auto& row : t.rows) {
    if (static_cast<int>(cell_to_double(row[guess_col])) != true_guess) {
      continue;
    }
    p.traces.push_back(cell_to_double(row[traces_col]));
    p.ranks.push_back(cell_to_double(row[rank_col]));
  }
  return p;
}

/// Earliest checkpoint trace count from which the rank stays 0 through the
/// last checkpoint; 0 = never disclosed (mirrors
/// analysis::DisclosureCurve::traces_to_disclosure on the CSV artifact).
double disclosure_traces(const DisclosurePoints& p) {
  double disclosed_at = 0.0;
  for (std::size_t i = 0; i < p.ranks.size(); ++i) {
    if (p.ranks[i] == 0.0) {
      if (disclosed_at == 0.0) disclosed_at = p.traces[i];
    } else {
      disclosed_at = 0.0;
    }
  }
  return disclosed_at;
}

/// Deterministic stride downsample so huge per-cycle series stay light.
void downsample(std::vector<double>& xs, std::vector<double>& ys,
                std::size_t max_points) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n <= max_points) return;
  const std::size_t stride = (n + max_points - 1) / max_points;
  std::vector<double> dx;
  std::vector<double> dy;
  for (std::size_t i = 0; i < n; i += stride) {
    dx.push_back(xs[i]);
    dy.push_back(ys[i]);
  }
  xs = std::move(dx);
  ys = std::move(dy);
}

void provenance_section(std::ostringstream& out, const Model& m) {
  out << "<table class=\"prov\">\n";
  const auto row = [&](const char* k, const std::string& v) {
    out << "<tr><th class=\"l\">" << k << "</th><td class=\"l\"><code>"
        << esc(v) << "</code></td></tr>\n";
  };
  row("campaign", m.campaign);
  row("spec hash", m.spec_hash);
  row("generator", m.generator);
  row("manifest", m.manifest_name);
  if (m.sharded) {
    row("shard", std::to_string(m.shard_index) + " of " +
                     std::to_string(m.shard_count) +
                     " (unmerged partition — run `emask-campaign merge` "
                     "for the whole matrix)");
  }
  out << "</table>\n";

  const std::size_t total = m.scenarios.size();
  const std::size_t ok = total - m.failed;
  out << "<p>" << total << " scenario" << (total == 1 ? "" : "s")
      << ": <span class=\"ok\">" << ok << " ok</span>";
  if (m.failed > 0) {
    out << ", <span class=\"fail\">" << m.failed << " failed</span>";
  }
  if (m.missing_artifacts > 0) {
    out << ", <span class=\"miss\">" << m.missing_artifacts
        << " with missing artifacts</span>";
  }
  out << ".</p>\n";
}

void rollup_section(std::ostringstream& out, const Model& m) {
  if (m.rollup.empty()) return;
  out << "<h2>Energy per policy</h2>\n";
  bool any_reference = false;
  for (const PolicyRow& r : m.rollup) any_reference |= r.has_reference;

  out << "<table>\n<tr><th class=\"l\">policy</th><th>scenarios</th>"
      << "<th>mean uJ/enc</th><th>ratio</th>";
  if (any_reference) {
    out << "<th>paper uJ</th><th>paper ratio</th><th>normalized uJ</th>";
  }
  out << "</tr>\n";
  for (const PolicyRow& r : m.rollup) {
    out << "<tr><td class=\"l\">" << esc(r.policy.name()) << "</td><td>"
        << r.scenarios << "</td><td>" << num_or_na(r.mean_uj) << "</td><td>"
        << num_or_na(r.ratio) << "</td>";
    if (any_reference) {
      if (r.has_reference) {
        out << "<td>" << num_or_na(r.paper_uj) << "</td><td>"
            << num_or_na(r.paper_ratio) << "</td><td>"
            << num_or_na(r.normalized_uj) << "</td>";
      } else {
        out << "<td>n/a</td><td>n/a</td><td>n/a</td>";
      }
    }
    out << "</tr>\n";
  }
  out << "</table>\n";

  BarChartSpec chart;
  chart.y_label = "uJ per encryption";
  for (const PolicyRow& r : m.rollup) {
    chart.groups.push_back(r.policy.name());
  }
  if (any_reference) {
    chart.title = "Energy per policy: measured (paper-normalized) vs. paper";
    BarSeries measured{"measured (normalized uJ)", {}};
    BarSeries paper{"paper uJ", {}};
    for (const PolicyRow& r : m.rollup) {
      measured.values.push_back(r.has_reference ? r.normalized_uj
                                                : std::nan(""));
      paper.values.push_back(r.has_reference ? r.paper_uj : std::nan(""));
    }
    chart.series.push_back(std::move(measured));
    chart.series.push_back(std::move(paper));
  } else {
    chart.title = "Measured energy per policy";
    BarSeries measured{"measured uJ/enc", {}};
    for (const PolicyRow& r : m.rollup) measured.values.push_back(r.mean_uj);
    chart.series.push_back(std::move(measured));
  }
  out << bar_chart(chart) << "\n";
}

void status_section(std::ostringstream& out, const Model& m) {
  if (m.scenarios.empty()) return;
  out << "<h2>Scenario status</h2>\n";
  std::vector<GridCell> cells;
  for (const ScenarioEntry& e : m.scenarios) {
    GridCell cell;
    cell.label = e.scenario.id;
    if (!e.result.success) {
      cell.state = CellState::kFailed;
      cell.label += " — FAILED";
    } else if (!e.artifact_present) {
      cell.state = CellState::kNoArtifact;
      cell.label += " — artifact missing";
    }
    cells.push_back(std::move(cell));
  }
  out << status_grid(cells) << "\n";
  out << "<p class=\"prov\"><span class=\"ok\">&#9632;</span> ok &nbsp; "
      << "<span class=\"fail\">&#9632;</span> failed &nbsp; "
      << "<span class=\"miss\">&#9632;</span> artifact missing</p>\n";

  // Failed / degraded scenarios called out explicitly, never buried.
  if (m.failed > 0) {
    out << "<div class=\"callout\"><b>Failed scenarios</b><ul>\n";
    for (const ScenarioEntry& e : m.scenarios) {
      if (e.result.success) continue;
      out << "<li><code>" << esc(e.scenario.id) << "</code> — "
          << esc(std::string(metric_label(e.scenario.analysis))) << " = "
          << num_or_na(e.result.metric) << "</li>\n";
    }
    out << "</ul></div>\n";
  }
  if (m.missing_artifacts > 0) {
    out << "<div class=\"note\"><b>Missing artifacts</b> (drill-down "
           "degraded to manifest data)<ul>\n";
    for (const ScenarioEntry& e : m.scenarios) {
      if (e.artifact_present) continue;
      out << "<li><code>" << esc(e.scenario.id) << "</code> — expected "
          << "<code>" << esc(e.artifact_path) << "</code></li>\n";
    }
    out << "</ul></div>\n";
  }
}

/// Metric-vs-axis line charts whenever the campaign swept noise or trace
/// budget (one series per policy, one chart per analysis kind).
void sweep_section(std::ostringstream& out, const Model& m) {
  std::ostringstream charts;
  std::vector<campaign::Analysis> kinds;
  for (const ScenarioEntry& e : m.scenarios) {
    if (std::find(kinds.begin(), kinds.end(), e.scenario.analysis) ==
        kinds.end()) {
      kinds.push_back(e.scenario.analysis);
    }
  }
  struct AxisDef {
    const char* label;
    double (*get)(const campaign::Scenario&);
  };
  static const AxisDef kAxes[] = {
      {"noise sigma (pJ)",
       [](const campaign::Scenario& s) { return s.noise_sigma_pj; }},
      {"traces",
       [](const campaign::Scenario& s) {
         return static_cast<double>(s.traces);
       }},
  };
  for (const campaign::Analysis kind : kinds) {
    for (const AxisDef& ax : kAxes) {
      std::set<double> distinct;
      for (const ScenarioEntry& e : m.scenarios) {
        if (e.scenario.analysis == kind) distinct.insert(ax.get(e.scenario));
      }
      if (distinct.size() < 2) continue;
      LineChartSpec spec;
      spec.title = std::string(campaign::analysis_name(kind)) + ": " +
                   std::string(metric_label(kind)) + " vs. " + ax.label;
      spec.x_label = ax.label;
      spec.y_label = std::string(metric_label(kind));
      if (kind == campaign::Analysis::kTvla) spec.hlines = {4.5};
      for (const PolicyRow& p : m.rollup) {
        LineSeries series;
        series.label = p.policy.name();
        std::vector<std::pair<double, double>> points;
        for (const ScenarioEntry& e : m.scenarios) {
          if (e.scenario.analysis != kind ||
              e.scenario.policy != p.policy) {
            continue;
          }
          points.emplace_back(ax.get(e.scenario), e.result.metric);
        }
        if (points.empty()) continue;
        std::stable_sort(points.begin(), points.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        for (const auto& [x, y] : points) {
          series.xs.push_back(x);
          series.ys.push_back(y);
        }
        spec.series.push_back(std::move(series));
      }
      if (!spec.series.empty()) charts << line_chart(spec) << "\n";
    }
  }
  const std::string body = charts.str();
  if (body.empty()) return;
  out << "<h2>Sweeps</h2>\n" << body;
}

/// Traces-to-disclosure section: rank-evolution charts (the true guess's
/// rank per trace-count checkpoint, one chart per attack kind with one
/// series per scenario) plus the per-policy summary table.  Emitted only
/// when attack scenarios carry a disclosure.csv artifact, so campaigns
/// without one render byte-identically to before the curve existed.
void disclosure_section(std::ostringstream& out, const Model& m) {
  struct Row {
    const ScenarioEntry* entry;
    DisclosurePoints points;
  };
  std::vector<Row> rows;
  for (const ScenarioEntry& e : m.scenarios) {
    if (!e.disclosure_present) continue;
    DisclosurePoints p = true_guess_ranks(e.disclosure, e.result.true_value);
    if (p.traces.empty()) continue;
    rows.push_back({&e, std::move(p)});
  }
  if (rows.empty()) return;

  out << "<h2>Traces to disclosure</h2>\n"
      << "<p>Rank of the true subkey chunk under each attack's statistic "
         "as traces accumulate (rank 0 = the attack's current best guess). "
         "The disclosure point is the earliest checkpoint from which the "
         "true chunk holds rank 0 through the end of the acquisition.</p>\n";

  std::vector<campaign::Analysis> kinds;
  for (const Row& r : rows) {
    if (std::find(kinds.begin(), kinds.end(), r.entry->scenario.analysis) ==
        kinds.end()) {
      kinds.push_back(r.entry->scenario.analysis);
    }
  }
  for (const campaign::Analysis kind : kinds) {
    LineChartSpec spec;
    spec.title = std::string(campaign::analysis_name(kind)) +
                 ": true-guess rank vs. traces";
    spec.x_label = "traces";
    spec.y_label = "rank of true guess";
    for (const Row& r : rows) {
      if (r.entry->scenario.analysis != kind) continue;
      // Label by policy when it identifies the scenario uniquely within
      // this chart, by full scenario id otherwise.
      std::size_t same_policy = 0;
      for (const Row& other : rows) {
        if (other.entry->scenario.analysis == kind &&
            other.entry->scenario.policy == r.entry->scenario.policy) {
          ++same_policy;
        }
      }
      LineSeries series;
      series.label = same_policy == 1 ? r.entry->scenario.policy.name()
                                      : r.entry->scenario.id;
      series.xs = r.points.traces;
      series.ys = r.points.ranks;
      spec.series.push_back(std::move(series));
    }
    if (!spec.series.empty()) out << line_chart(spec) << "\n";
  }

  out << "<table>\n<tr><th class=\"l\">scenario</th><th class=\"l\">policy"
         "</th><th class=\"l\">analysis</th><th>traces</th>"
         "<th>traces to disclosure</th><th>final rank</th></tr>\n";
  for (const Row& r : rows) {
    const campaign::Scenario& s = r.entry->scenario;
    const double disclosed = disclosure_traces(r.points);
    out << "<tr><td class=\"l\"><code>" << esc(s.id) << "</code></td>"
        << "<td class=\"l\">" << esc(s.policy.name()) << "</td>"
        << "<td class=\"l\">"
        << esc(std::string(campaign::analysis_name(s.analysis))) << "</td>"
        << "<td>" << s.traces << "</td><td>"
        << (disclosed > 0.0 ? num_or_na(disclosed)
                            : std::string("not disclosed"))
        << "</td><td>" << num_or_na(r.points.ranks.back()) << "</td></tr>\n";
  }
  out << "</table>\n";
}

/// Countermeasure Pareto frontier: per-policy mean energy against the
/// attacker's best traces-to-disclosure across that policy's key-ranking
/// attack scenarios.  A policy whose attacks all ran dry is censored at
/// its largest trace budget (hollow marker, "> N" label).  Emitted only
/// when at least one policy has both an energy figure and a disclosure
/// curve, so legacy campaigns render byte-identically.
void pareto_section(std::ostringstream& out, const Model& m) {
  struct Candidate {
    std::string name;
    double energy = std::nan("");
    double disclosed_at = 0.0;  // min over attacks; 0 = never disclosed
    double budget = 0.0;        // largest attack trace budget (censor point)
    bool has_attack = false;
  };
  std::vector<Candidate> cands;
  for (const PolicyRow& r : m.rollup) {
    Candidate c;
    c.name = r.policy.name();
    // Paper-normalized energy when the campaign carries a reference scale,
    // raw measured uJ otherwise — the same choice the roll-up chart makes.
    c.energy = std::isfinite(r.normalized_uj) ? r.normalized_uj : r.mean_uj;
    for (const ScenarioEntry& e : m.scenarios) {
      if (!(e.scenario.policy == r.policy) || !e.disclosure_present) continue;
      const DisclosurePoints p =
          true_guess_ranks(e.disclosure, e.result.true_value);
      if (p.traces.empty()) continue;
      c.has_attack = true;
      c.budget = std::max(c.budget, static_cast<double>(e.scenario.traces));
      const double d = disclosure_traces(p);
      if (d > 0.0 && (c.disclosed_at == 0.0 || d < c.disclosed_at)) {
        c.disclosed_at = d;
      }
    }
    if (c.has_attack && std::isfinite(c.energy) && c.energy > 0.0) {
      cands.push_back(std::move(c));
    }
  }
  if (cands.empty()) return;

  ScatterChartSpec spec;
  spec.title = "Countermeasure Pareto: energy vs. traces to disclosure";
  spec.x_label = "uJ per encryption";
  spec.y_label = "traces to disclosure";
  for (const Candidate& c : cands) {
    ScatterPoint p;
    p.x = c.energy;
    const bool censored = c.disclosed_at == 0.0;
    p.y = censored ? c.budget : c.disclosed_at;
    p.open = censored;
    p.label = censored ? c.name + " (> " + num_or_na(c.budget) + ")" : c.name;
    spec.points.push_back(std::move(p));
  }
  // Paper reference energies as dashed vertical lines, on the same scale
  // as the normalized measurements.
  for (const PolicyRow& r : m.rollup) {
    if (!r.has_reference) continue;
    spec.vlines.push_back(r.paper_uj);
    spec.vline_labels.push_back(r.policy.name() + " (paper)");
  }
  // Pareto set: cheapest-first sweep keeping points that strictly raise the
  // attacker's cost.  A censored point counts at its budget — it resisted
  // at least that long.
  std::vector<std::size_t> order(spec.points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (spec.points[a].x != spec.points[b].x) {
                       return spec.points[a].x < spec.points[b].x;
                     }
                     return spec.points[a].y > spec.points[b].y;
                   });
  double best_y = -1.0;
  for (const std::size_t idx : order) {
    if (spec.points[idx].y > best_y) {
      best_y = spec.points[idx].y;
      spec.frontier.push_back(idx);
    }
  }

  out << "<h2>Countermeasure Pareto frontier</h2>\n"
      << "<p>Each point is one countermeasure: x is its mean energy per "
         "encryption, y the fewest traces any key-ranking attack in this "
         "campaign needed to disclose the subkey.  Hollow markers never "
         "disclosed within their trace budget and are plotted at that "
         "budget as a lower bound.  The dashed line joins the Pareto set "
         "(no other policy is both cheaper and harder to break); vertical "
         "lines mark the paper's reference energies.</p>\n";
  out << scatter_chart(spec) << "\n";

  out << "<table>\n<tr><th class=\"l\">policy</th><th>uJ/enc</th>"
         "<th>traces to disclosure</th><th>frontier</th></tr>\n";
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const Candidate& c = cands[i];
    const bool on_frontier =
        std::find(spec.frontier.begin(), spec.frontier.end(), i) !=
        spec.frontier.end();
    out << "<tr><td class=\"l\">" << esc(c.name) << "</td><td>"
        << num_or_na(c.energy) << "</td><td>"
        << (c.disclosed_at > 0.0
                ? num_or_na(c.disclosed_at)
                : "&gt; " + num_or_na(c.budget) + " (not disclosed)")
        << "</td><td>" << (on_frontier ? "yes" : "") << "</td></tr>\n";
  }
  out << "</table>\n";
}

std::string session_field(const util::CsvTable& t, const char* name) {
  if (!has_column(t, "field") || !has_column(t, "value")) return "";
  const std::size_t field_col = t.column("field");
  const std::size_t value_col = t.column("value");
  for (const auto& row : t.rows) {
    if (row[field_col] == name) return row[value_col];
  }
  return "";
}

/// Session workloads: key-schedule amortization table plus leakage-vs-
/// block-index charts, emitted only when the campaign has session-cipher
/// scenarios (des_cbc / tdes_cbc) carrying session.csv — legacy manifests
/// render byte-identically to before sessions existed.
void session_section(std::ostringstream& out, const Model& m) {
  std::vector<const ScenarioEntry*> rows;
  for (const ScenarioEntry& e : m.scenarios) {
    if (campaign::is_session_cipher(e.scenario.cipher) && e.session_present) {
      rows.push_back(&e);
    }
  }
  if (rows.empty()) return;

  out << "<h2>Session workloads</h2>\n"
      << "<p>Multi-block CBC sessions chained on the device, key schedule "
         "hoisted and computed once per session.  <i>cold cycles</i> is "
         "what the session would cost restarting every block from scratch; "
         "<i>session cycles</i> amortizes the key-schedule prefix across "
         "the blocks.</p>\n";

  out << "<table>\n<tr><th class=\"l\">scenario</th><th class=\"l\">cipher"
         "</th><th>blocks</th><th>stages</th><th>prefix cycles</th>"
         "<th>block cycles</th><th>session cycles</th><th>cold cycles</th>"
         "<th>speedup</th></tr>\n";
  for (const ScenarioEntry* e : rows) {
    const util::CsvTable& t = e->session;
    out << "<tr><td class=\"l\"><code>" << esc(e->scenario.id)
        << "</code></td><td class=\"l\">" << esc(session_field(t, "cipher"))
        << "</td><td>" << esc(session_field(t, "session_length"))
        << "</td><td>" << esc(session_field(t, "stages")) << "</td><td>"
        << esc(session_field(t, "prefix_cycles")) << "</td><td>"
        << esc(session_field(t, "block_cycles")) << "</td><td>"
        << esc(session_field(t, "session_cycles")) << "</td><td>"
        << esc(session_field(t, "cold_cycles")) << "</td><td>"
        << num_or_na(cell_to_double(session_field(t, "amortized_speedup")))
        << "</td></tr>\n";
  }
  out << "</table>\n";

  // Per-block energy: leakage vs. block index for the full-session
  // (energy-analysis) scenarios.  A flat line is the expected shape — a
  // trend with block index would mean the chaining value leaks into the
  // energy envelope.
  LineChartSpec spec;
  spec.title = "Energy per block vs. block index";
  spec.x_label = "block index";
  spec.y_label = "uJ per block";
  for (const ScenarioEntry* e : rows) {
    if (e->scenario.analysis != campaign::Analysis::kEnergy ||
        !e->blocks_present) {
      continue;
    }
    const util::CsvTable& t = e->blocks;
    if (!has_column(t, "block") || !has_column(t, "energy_uj")) continue;
    const std::size_t block_col = t.column("block");
    const std::size_t energy_col = t.column("energy_uj");
    LineSeries series;
    series.label = e->scenario.id;
    for (const auto& row : t.rows) {
      series.xs.push_back(cell_to_double(row[block_col]));
      series.ys.push_back(cell_to_double(row[energy_col]));
    }
    downsample(series.xs, series.ys, 1200);
    spec.series.push_back(std::move(series));
  }
  if (!spec.series.empty()) out << line_chart(spec) << "\n";
}

void artifact_chart(std::ostringstream& out, const ScenarioEntry& e) {
  if (!e.artifact_present) {
    out << "<p class=\"miss\">artifact <code>" << esc(e.artifact_path)
        << "</code> missing — no drill-down chart.</p>\n";
    return;
  }
  const util::CsvTable& t = e.artifact;
  switch (e.scenario.analysis) {
    case campaign::Analysis::kEnergy: {
      // breakdown.csv: component,energy_uj
      BarChartSpec spec;
      spec.title = "Energy breakdown by component";
      spec.y_label = "uJ";
      const std::size_t name_col = t.column("component");
      const std::size_t value_col = t.column("energy_uj");
      BarSeries series{"energy uJ", {}};
      for (const auto& row : t.rows) {
        spec.groups.push_back(row[name_col]);
        series.values.push_back(cell_to_double(row[value_col]));
      }
      spec.width = 840;
      spec.series.push_back(std::move(series));
      out << bar_chart(spec) << "\n";
      break;
    }
    case campaign::Analysis::kDpa:
    case campaign::Analysis::kCpa:
    case campaign::Analysis::kSecondOrder: {
      // guesses.csv: guess,<score>
      if (t.columns.size() < 2) break;
      const std::size_t guess_col = t.column("guess");
      const std::size_t score_col = guess_col == 0 ? 1 : 0;
      LineChartSpec spec;
      spec.title = "Attack score per key guess";
      spec.x_label = "guess";
      spec.y_label = t.columns[score_col];
      LineSeries series{t.columns[score_col], {}, {}};
      for (const auto& row : t.rows) {
        series.xs.push_back(cell_to_double(row[guess_col]));
        series.ys.push_back(cell_to_double(row[score_col]));
      }
      spec.series.push_back(std::move(series));
      out << line_chart(spec) << "\n";
      break;
    }
    case campaign::Analysis::kTvla: {
      // t_per_cycle.csv: cycle,t
      const std::size_t cycle_col = t.column("cycle");
      const std::size_t t_col = t.column("t");
      LineChartSpec spec;
      spec.title = "TVLA |t| per cycle (threshold 4.5)";
      spec.x_label = "cycle";
      spec.y_label = "t";
      spec.hlines = {4.5, -4.5};
      LineSeries series{"t", {}, {}};
      for (const auto& row : t.rows) {
        series.xs.push_back(cell_to_double(row[cycle_col]));
        series.ys.push_back(cell_to_double(row[t_col]));
      }
      downsample(series.xs, series.ys, 1200);
      spec.series.push_back(std::move(series));
      out << line_chart(spec) << "\n";
      break;
    }
    case campaign::Analysis::kMlpa:
    case campaign::Analysis::kCollision: {
      // disclosure.csv: traces,guess,rank,score
      DisclosurePoints p = true_guess_ranks(t, e.result.true_value);
      if (p.traces.empty()) break;
      LineChartSpec spec;
      spec.title = "True-guess rank vs. traces";
      spec.x_label = "traces";
      spec.y_label = "rank of true guess";
      LineSeries series{"rank", std::move(p.traces), std::move(p.ranks)};
      spec.series.push_back(std::move(series));
      out << line_chart(spec) << "\n";
      break;
    }
  }
}

void scenario_section(std::ostringstream& out, const ScenarioEntry& e) {
  const campaign::Scenario& s = e.scenario;
  const campaign::ScenarioResult& r = e.result;
  out << "<details><summary><code>" << esc(s.id) << "</code> — "
      << (r.success ? "<span class=\"ok\">ok</span>"
                    : "<span class=\"fail\">FAILED</span>")
      << ", " << esc(std::string(metric_label(s.analysis))) << " = "
      << num_or_na(r.metric) << "</summary>\n";

  out << "<table><tr><th class=\"l\">parameter</th><th>value</th></tr>\n";
  const auto prow = [&](const char* k, const std::string& v) {
    out << "<tr><td class=\"l\">" << k << "</td><td>" << esc(v)
        << "</td></tr>\n";
  };
  prow("cipher", std::string(campaign::cipher_name(s.cipher)));
  prow("policy", s.policy.name());
  prow("analysis", std::string(campaign::analysis_name(s.analysis)));
  prow("noise sigma (pJ)", num_or_na(s.noise_sigma_pj));
  prow("traces", std::to_string(s.traces));
  if (campaign::is_session_cipher(s.cipher)) {
    prow("session length (blocks)", std::to_string(s.session_length));
  }
  prow("coupling (fF)", num_or_na(s.coupling_ff));
  out << "</table>\n";

  out << "<table><tr><th class=\"l\">result</th><th>value</th></tr>\n";
  prow("encryptions", std::to_string(r.encryptions));
  prow("total cycles", std::to_string(r.total_cycles));
  prow("total instructions", std::to_string(r.total_instructions));
  prow("total energy (uJ)", num_or_na(r.total_energy_uj));
  prow("mean uJ/enc", num_or_na(r.mean_uj()));
  prow("secured instructions", std::to_string(r.secured_count));
  prow("program instructions", std::to_string(r.program_instructions));
  prow(std::string(metric_label(s.analysis)).c_str(), num_or_na(r.metric));
  if (r.best_guess >= 0 || r.true_value >= 0) {
    prow("best guess", std::to_string(r.best_guess));
    prow("true value", std::to_string(r.true_value));
    prow("margin", num_or_na(r.margin));
  }
  if (s.analysis == campaign::Analysis::kTvla) {
    prow("cycles over threshold", std::to_string(r.cycles_over_threshold));
  }
  prow("success", r.success ? "yes" : "no");
  out << "</table>\n";

  artifact_chart(out, e);
  out << "</details>\n";
}

}  // namespace

std::string num_or_na(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string render(const Model& model, const RenderOptions& options) {
  const std::string title =
      options.title.empty() ? "campaign " + model.campaign : options.title;
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>" << esc(title) << "</title>\n"
      << "<style>" << kStyle << "</style>\n</head>\n<body>\n";
  out << "<h1>" << esc(title) << "</h1>\n";

  provenance_section(out, model);
  rollup_section(out, model);
  status_section(out, model);
  sweep_section(out, model);
  disclosure_section(out, model);
  pareto_section(out, model);
  session_section(out, model);

  if (!model.scenarios.empty()) {
    out << "<h2>Scenarios</h2>\n";
    for (const ScenarioEntry& e : model.scenarios) {
      scenario_section(out, e);
    }
  }

  out << "<hr><p class=\"prov\">emask-report-v1 &middot; deterministic: "
         "re-rendering the same manifest yields a byte-identical file "
         "&middot; spec hash <code>"
      << esc(model.spec_hash) << "</code></p>\n";
  out << "</body>\n</html>\n";
  return out.str();
}

void write_report(const std::string& path, const std::string& html) {
  std::ofstream out = util::open_for_write(path);
  out << html;
  util::close_or_throw(out, path);
}

std::size_t render_directory(const std::string& dir,
                             const std::string& out_path,
                             const RenderOptions& options) {
  const Model model = Model::load(dir);
  const std::string html = render(model, options);
  write_report(out_path, html);
  return html.size();
}

}  // namespace emask::report
