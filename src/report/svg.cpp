#include "report/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace emask::report {
namespace {

// Series palette (colorblind-safe ordering), then status colors.
constexpr const char* kPalette[] = {"#4878a8", "#e49444", "#6a9f58",
                                    "#d1605e", "#85b6b2", "#a87c9f"};
constexpr std::size_t kPaletteSize = sizeof kPalette / sizeof kPalette[0];
constexpr const char* kAxisColor = "#444444";
constexpr const char* kGridColor = "#dddddd";
constexpr const char* kOkColor = "#6a9f58";
constexpr const char* kFailColor = "#d1605e";
constexpr const char* kMissColor = "#b8b8b8";
constexpr const char* kFont =
    "font-family=\"sans-serif\" fill=\"#222222\"";

const char* series_color(std::size_t i) { return kPalette[i % kPaletteSize]; }

/// Largest finite value across the data (plus reference lines); 1.0 when
/// nothing is finite so the axis math stays well-defined.
struct Range {
  double lo = 0.0;
  double hi = 1.0;
  bool any = false;

  void include(double v) {
    if (!std::isfinite(v)) return;
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
};

/// Deterministic 1/2/5 tick step for ~n divisions of `span`.
double tick_step(double span, int n) {
  if (!(span > 0.0)) return 1.0;
  const double raw = span / n;
  const double pow10 = std::pow(10.0, std::floor(std::log10(raw)));
  const double frac = raw / pow10;
  double nice = 10.0;
  if (frac <= 1.0) {
    nice = 1.0;
  } else if (frac <= 2.0) {
    nice = 2.0;
  } else if (frac <= 5.0) {
    nice = 5.0;
  }
  return nice * pow10;
}

struct Axis {
  double lo = 0.0;
  double hi = 1.0;
  double step = 0.2;
};

/// Expands [lo, hi] to tick-aligned bounds.
Axis make_axis(double lo, double hi, int divisions) {
  Axis a;
  if (lo > hi) std::swap(lo, hi);
  if (hi == lo) hi = lo + 1.0;
  a.step = tick_step(hi - lo, divisions);
  a.lo = std::floor(lo / a.step) * a.step;
  a.hi = std::ceil(hi / a.step) * a.step;
  if (a.hi <= a.lo) a.hi = a.lo + a.step;
  return a;
}

void open_svg(std::ostringstream& out, int width, int height) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
      << height << "\" role=\"img\">\n";
}

void title_text(std::ostringstream& out, const std::string& title,
                int width) {
  if (title.empty()) return;
  out << "<text x=\"" << width / 2
      << "\" y=\"16\" text-anchor=\"middle\" font-size=\"13\" "
         "font-weight=\"bold\" "
      << kFont << ">" << xml_escape(title) << "</text>\n";
}

struct Plot {
  double x0, y0, x1, y1;  // plot rectangle, y0 = top

  [[nodiscard]] double map_y(double v, const Axis& axis) const {
    const double t = (v - axis.lo) / (axis.hi - axis.lo);
    return y1 - t * (y1 - y0);
  }
  [[nodiscard]] double map_x(double v, const Axis& axis) const {
    const double t = (v - axis.lo) / (axis.hi - axis.lo);
    return x0 + t * (x1 - x0);
  }
};

void y_axis(std::ostringstream& out, const Plot& plot, const Axis& axis,
            const std::string& label) {
  // Gridlines + tick labels.  Iterate by index, not by accumulating
  // doubles, so the tick set is exact.
  const int ticks =
      static_cast<int>(std::llround((axis.hi - axis.lo) / axis.step));
  for (int i = 0; i <= ticks; ++i) {
    const double v = axis.lo + axis.step * i;
    const double y = plot.map_y(v, axis);
    out << "<line x1=\"" << svg_num(plot.x0) << "\" y1=\"" << svg_num(y)
        << "\" x2=\"" << svg_num(plot.x1) << "\" y2=\"" << svg_num(y)
        << "\" stroke=\"" << (i == 0 ? kAxisColor : kGridColor)
        << "\" stroke-width=\"1\"/>\n";
    out << "<text x=\"" << svg_num(plot.x0 - 6) << "\" y=\""
        << svg_num(y + 3.5) << "\" text-anchor=\"end\" font-size=\"10\" "
        << kFont << ">" << svg_label_num(v) << "</text>\n";
  }
  if (!label.empty()) {
    const double cy = (plot.y0 + plot.y1) / 2.0;
    out << "<text x=\"12\" y=\"" << svg_num(cy)
        << "\" text-anchor=\"middle\" font-size=\"11\" " << kFont
        << " transform=\"rotate(-90 12 " << svg_num(cy) << ")\">"
        << xml_escape(label) << "</text>\n";
  }
}

void legend(std::ostringstream& out, const std::vector<std::string>& labels,
            double x, double y) {
  double cx = x;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out << "<rect x=\"" << svg_num(cx) << "\" y=\"" << svg_num(y - 9)
        << "\" width=\"10\" height=\"10\" fill=\"" << series_color(i)
        << "\"/>\n";
    cx += 14;
    out << "<text x=\"" << svg_num(cx) << "\" y=\"" << svg_num(y)
        << "\" font-size=\"11\" " << kFont << ">" << xml_escape(labels[i])
        << "</text>\n";
    cx += 7.0 * static_cast<double>(labels[i].size()) + 18.0;
  }
}

}  // namespace

std::string svg_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string svg_label_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string bar_chart(const BarChartSpec& spec) {
  std::ostringstream out;
  open_svg(out, spec.width, spec.height);
  title_text(out, spec.title, spec.width);

  Range range;
  range.include(0.0);
  for (const BarSeries& s : spec.series) {
    for (const double v : s.values) range.include(v);
  }
  const Axis axis = make_axis(std::min(range.lo, 0.0), range.hi, 5);

  const bool with_legend = spec.series.size() > 1;
  const Plot plot{56.0, 26.0, spec.width - 16.0,
                  spec.height - (with_legend ? 58.0 : 38.0)};
  y_axis(out, plot, axis, spec.y_label);

  const std::size_t groups = spec.groups.size();
  const std::size_t nseries = spec.series.size();
  if (groups > 0 && nseries > 0) {
    const double slot = (plot.x1 - plot.x0) / static_cast<double>(groups);
    const double band = slot * 0.72;
    const double bar = band / static_cast<double>(nseries);
    const double zero_y = plot.map_y(std::max(axis.lo, 0.0), axis);
    for (std::size_t g = 0; g < groups; ++g) {
      const double left =
          plot.x0 + slot * static_cast<double>(g) + (slot - band) / 2.0;
      for (std::size_t si = 0; si < nseries; ++si) {
        const double x = left + bar * static_cast<double>(si);
        const double v = g < spec.series[si].values.size()
                             ? spec.series[si].values[g]
                             : std::nan("");
        if (!std::isfinite(v)) {
          out << "<text x=\"" << svg_num(x + bar / 2.0) << "\" y=\""
              << svg_num(zero_y - 4) << "\" text-anchor=\"middle\" "
              << "font-size=\"9\" " << kFont << ">n/a</text>\n";
          continue;
        }
        const double y = plot.map_y(v, axis);
        const double top = std::min(y, zero_y);
        const double h = std::abs(zero_y - y);
        out << "<rect x=\"" << svg_num(x + 1) << "\" y=\"" << svg_num(top)
            << "\" width=\"" << svg_num(bar - 2) << "\" height=\""
            << svg_num(h) << "\" fill=\"" << series_color(si) << "\">"
            << "<title>" << xml_escape(spec.series[si].label) << " / "
            << xml_escape(spec.groups[g]) << ": " << svg_label_num(v)
            << "</title></rect>\n";
        out << "<text x=\"" << svg_num(x + bar / 2.0) << "\" y=\""
            << svg_num(top - 3) << "\" text-anchor=\"middle\" "
            << "font-size=\"9\" " << kFont << ">" << svg_label_num(v)
            << "</text>\n";
      }
      out << "<text x=\"" << svg_num(left + band / 2.0) << "\" y=\""
          << svg_num(plot.y1 + 14) << "\" text-anchor=\"middle\" "
          << "font-size=\"11\" " << kFont << ">" << xml_escape(spec.groups[g])
          << "</text>\n";
    }
  }
  if (with_legend) {
    std::vector<std::string> labels;
    for (const BarSeries& s : spec.series) labels.push_back(s.label);
    legend(out, labels, plot.x0, spec.height - 10.0);
  }
  out << "</svg>";
  return out.str();
}

std::string line_chart(const LineChartSpec& spec) {
  std::ostringstream out;
  open_svg(out, spec.width, spec.height);
  title_text(out, spec.title, spec.width);

  Range xr;
  Range yr;
  for (const LineSeries& s : spec.series) {
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.ys[i])) continue;
      xr.include(s.xs[i]);
      yr.include(s.ys[i]);
    }
  }
  for (const double h : spec.hlines) yr.include(h);
  const Axis x_axis = make_axis(xr.lo, xr.hi, 6);
  const Axis axis = make_axis(yr.lo, yr.hi, 5);

  const bool with_legend = spec.series.size() > 1;
  const Plot plot{56.0, 26.0, spec.width - 16.0,
                  spec.height - (with_legend ? 62.0 : 42.0)};
  y_axis(out, plot, axis, spec.y_label);

  // X ticks.
  const int xticks =
      static_cast<int>(std::llround((x_axis.hi - x_axis.lo) / x_axis.step));
  for (int i = 0; i <= xticks; ++i) {
    const double v = x_axis.lo + x_axis.step * i;
    const double x = plot.map_x(v, x_axis);
    out << "<line x1=\"" << svg_num(x) << "\" y1=\"" << svg_num(plot.y1)
        << "\" x2=\"" << svg_num(x) << "\" y2=\"" << svg_num(plot.y1 + 4)
        << "\" stroke=\"" << kAxisColor << "\" stroke-width=\"1\"/>\n";
    out << "<text x=\"" << svg_num(x) << "\" y=\"" << svg_num(plot.y1 + 15)
        << "\" text-anchor=\"middle\" font-size=\"10\" " << kFont << ">"
        << svg_label_num(v) << "</text>\n";
  }
  if (!spec.x_label.empty()) {
    out << "<text x=\"" << svg_num((plot.x0 + plot.x1) / 2.0) << "\" y=\""
        << svg_num(plot.y1 + 28) << "\" text-anchor=\"middle\" "
        << "font-size=\"11\" " << kFont << ">" << xml_escape(spec.x_label)
        << "</text>\n";
  }

  for (const double h : spec.hlines) {
    if (!std::isfinite(h) || h < axis.lo || h > axis.hi) continue;
    const double y = plot.map_y(h, axis);
    out << "<line x1=\"" << svg_num(plot.x0) << "\" y1=\"" << svg_num(y)
        << "\" x2=\"" << svg_num(plot.x1) << "\" y2=\"" << svg_num(y)
        << "\" stroke=\"" << kFailColor
        << "\" stroke-width=\"1\" stroke-dasharray=\"4 3\"/>\n";
    out << "<text x=\"" << svg_num(plot.x1) << "\" y=\"" << svg_num(y - 3)
        << "\" text-anchor=\"end\" font-size=\"9\" fill=\"" << kFailColor
        << "\" font-family=\"sans-serif\">" << svg_label_num(h)
        << "</text>\n";
  }

  for (std::size_t si = 0; si < spec.series.size(); ++si) {
    const LineSeries& s = spec.series[si];
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    std::string points;
    const auto emit_segment = [&] {
      if (points.empty()) return;
      out << "<polyline fill=\"none\" stroke=\"" << series_color(si)
          << "\" stroke-width=\"1.5\" points=\"" << points << "\"/>\n";
      points.clear();
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) {
        emit_segment();  // NaN/Inf breaks the polyline
        continue;
      }
      if (!points.empty()) points += ' ';
      points += svg_num(plot.map_x(s.xs[i], x_axis));
      points += ',';
      points += svg_num(plot.map_y(s.ys[i], axis));
    }
    emit_segment();
  }

  if (with_legend) {
    std::vector<std::string> labels;
    for (const LineSeries& s : spec.series) labels.push_back(s.label);
    legend(out, labels, plot.x0, spec.height - 10.0);
  }
  out << "</svg>";
  return out.str();
}

std::string scatter_chart(const ScatterChartSpec& spec) {
  std::ostringstream out;
  open_svg(out, spec.width, spec.height);
  title_text(out, spec.title, spec.width);

  Range xr;
  Range yr;
  for (const ScatterPoint& p : spec.points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    xr.include(p.x);
    yr.include(p.y);
  }
  for (const double v : spec.vlines) xr.include(v);
  yr.include(0.0);
  const Axis x_axis = make_axis(xr.lo, xr.hi, 6);
  const Axis axis = make_axis(std::min(yr.lo, 0.0), yr.hi, 5);

  const Plot plot{56.0, 26.0, spec.width - 16.0, spec.height - 42.0};
  y_axis(out, plot, axis, spec.y_label);

  const int xticks =
      static_cast<int>(std::llround((x_axis.hi - x_axis.lo) / x_axis.step));
  for (int i = 0; i <= xticks; ++i) {
    const double v = x_axis.lo + x_axis.step * i;
    const double x = plot.map_x(v, x_axis);
    out << "<line x1=\"" << svg_num(x) << "\" y1=\"" << svg_num(plot.y1)
        << "\" x2=\"" << svg_num(x) << "\" y2=\"" << svg_num(plot.y1 + 4)
        << "\" stroke=\"" << kAxisColor << "\" stroke-width=\"1\"/>\n";
    out << "<text x=\"" << svg_num(x) << "\" y=\"" << svg_num(plot.y1 + 15)
        << "\" text-anchor=\"middle\" font-size=\"10\" " << kFont << ">"
        << svg_label_num(v) << "</text>\n";
  }
  if (!spec.x_label.empty()) {
    out << "<text x=\"" << svg_num((plot.x0 + plot.x1) / 2.0) << "\" y=\""
        << svg_num(plot.y1 + 28) << "\" text-anchor=\"middle\" "
        << "font-size=\"11\" " << kFont << ">" << xml_escape(spec.x_label)
        << "</text>\n";
  }

  for (std::size_t i = 0; i < spec.vlines.size(); ++i) {
    const double v = spec.vlines[i];
    if (!std::isfinite(v) || v < x_axis.lo || v > x_axis.hi) continue;
    const double x = plot.map_x(v, x_axis);
    out << "<line x1=\"" << svg_num(x) << "\" y1=\"" << svg_num(plot.y0)
        << "\" x2=\"" << svg_num(x) << "\" y2=\"" << svg_num(plot.y1)
        << "\" stroke=\"" << kMissColor
        << "\" stroke-width=\"1\" stroke-dasharray=\"4 3\"/>\n";
    const std::string label = i < spec.vline_labels.size()
                                  ? spec.vline_labels[i]
                                  : svg_label_num(v);
    out << "<text x=\"" << svg_num(x + 3) << "\" y=\""
        << svg_num(plot.y0 + 9) << "\" font-size=\"9\" fill=\"#888888\" "
        << "font-family=\"sans-serif\">" << xml_escape(label) << "</text>\n";
  }

  // Frontier polyline under the markers.
  std::string points;
  for (const std::size_t idx : spec.frontier) {
    if (idx >= spec.points.size()) continue;
    const ScatterPoint& p = spec.points[idx];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    if (!points.empty()) points += ' ';
    points += svg_num(plot.map_x(p.x, x_axis));
    points += ',';
    points += svg_num(plot.map_y(p.y, axis));
  }
  if (!points.empty()) {
    out << "<polyline fill=\"none\" stroke=\"" << kPalette[0]
        << "\" stroke-width=\"1.5\" stroke-dasharray=\"5 3\" points=\""
        << points << "\"/>\n";
  }

  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    const ScatterPoint& p = spec.points[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    const double x = plot.map_x(p.x, x_axis);
    const double y = plot.map_y(p.y, axis);
    out << "<circle cx=\"" << svg_num(x) << "\" cy=\"" << svg_num(y)
        << "\" r=\"5\" fill=\"" << (p.open ? "#ffffff" : series_color(i))
        << "\" stroke=\"" << series_color(i) << "\" stroke-width=\"2\">"
        << "<title>" << xml_escape(p.label) << ": (" << svg_label_num(p.x)
        << ", " << svg_label_num(p.y) << ")</title></circle>\n";
    out << "<text x=\"" << svg_num(x + 8) << "\" y=\"" << svg_num(y - 6)
        << "\" font-size=\"10\" " << kFont << ">" << xml_escape(p.label)
        << "</text>\n";
  }

  out << "</svg>";
  return out.str();
}

std::string status_grid(const std::vector<GridCell>& cells, int columns) {
  if (columns < 1) columns = 1;
  constexpr int kCell = 18;
  constexpr int kGap = 3;
  const int rows =
      (static_cast<int>(cells.size()) + columns - 1) / columns;
  const int width = columns * (kCell + kGap) + kGap;
  const int height = std::max(rows, 1) * (kCell + kGap) + kGap;
  std::ostringstream out;
  open_svg(out, width, height);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int c = static_cast<int>(i) % columns;
    const int r = static_cast<int>(i) / columns;
    const char* fill = kOkColor;
    if (cells[i].state == CellState::kFailed) fill = kFailColor;
    if (cells[i].state == CellState::kNoArtifact) fill = kMissColor;
    out << "<rect x=\"" << kGap + c * (kCell + kGap) << "\" y=\""
        << kGap + r * (kCell + kGap) << "\" width=\"" << kCell
        << "\" height=\"" << kCell << "\" rx=\"3\" fill=\"" << fill << "\">"
        << "<title>" << xml_escape(cells[i].label) << "</title></rect>\n";
  }
  out << "</svg>";
  return out.str();
}

}  // namespace emask::report
