#include "report/model.hpp"

#include <cmath>
#include <filesystem>

#include "util/argparse.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace emask::report {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestFormat = "emask-campaign-manifest-v1";
constexpr const char* kShardFormat = "emask-campaign-shard-manifest-v1";

std::uint64_t hex_field(const util::JsonValue& doc, const char* key) {
  try {
    return util::ArgParser::parse_hex(doc.at(key).as_string(), key);
  } catch (const util::ArgError& e) {
    throw ReportError(e.what());
  }
}

/// Locates the manifest inside a campaign output directory: manifest.json
/// when present, else the directory's single per-shard manifest.
fs::path find_manifest(const fs::path& dir) {
  if (!fs::is_directory(dir)) {
    throw ReportError(dir.string() + ": not a directory");
  }
  const fs::path merged = dir / "manifest.json";
  if (fs::exists(merged)) return merged;
  std::vector<fs::path> shards;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("manifest.shard-", 0) == 0 && name.size() >= 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      shards.push_back(entry.path());
    }
  }
  if (shards.empty()) {
    throw ReportError(dir.string() +
                      ": no manifest.json (campaign incomplete, or not a "
                      "campaign output directory?)");
  }
  if (shards.size() > 1) {
    throw ReportError(dir.string() + ": no manifest.json and " +
                      std::to_string(shards.size()) +
                      " shard manifests — run `emask-campaign merge` first");
  }
  return shards.front();
}

/// Per-policy reference energies out of the manifest's by_policy block
/// (absent for campaigns without a [reference] section), keyed by name.
std::vector<std::pair<std::string, double>> references_from_rollup(
    const util::JsonValue& doc) {
  std::vector<std::pair<std::string, double>> refs;
  const util::JsonValue* rollup = doc.find("rollup");
  if (rollup == nullptr) return refs;
  const util::JsonValue* by_policy = rollup->find("by_policy");
  if (by_policy == nullptr) return refs;
  for (const util::JsonValue& row : by_policy->array) {
    if (const util::JsonValue* ref = row.find("paper_uj")) {
      refs.emplace_back(row.at("policy").as_string(), ref->as_double());
    }
  }
  return refs;
}

}  // namespace

Model Model::from_manifest(const std::string& manifest_text,
                           const std::string& manifest_name,
                           const std::string& dir) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(manifest_text);
  } catch (const util::JsonError& e) {
    throw util::JsonError(manifest_name + ": " + e.what());
  }

  Model model;
  model.manifest_name = manifest_name;
  const std::string format = doc.at("format").as_string();
  if (format == kShardFormat) {
    model.sharded = true;
    model.shard_index = static_cast<std::size_t>(
        doc.at("shard_index").as_u64());
    model.shard_count = static_cast<std::size_t>(
        doc.at("shard_count").as_u64());
  } else if (format != kManifestFormat) {
    throw ReportError(manifest_name + ": unknown manifest format '" + format +
                      "' (expected " + kManifestFormat + " or " +
                      kShardFormat + ")");
  }
  model.campaign = doc.at("campaign").as_string();
  model.spec_hash = doc.at("spec_hash").as_string();
  model.generator = doc.at("generator").as_string();

  const std::uint64_t key = hex_field(doc, "key");
  const std::uint64_t fixed_input = hex_field(doc, "fixed_input");
  const auto window_begin =
      static_cast<std::size_t>(doc.at("window_begin").as_u64());
  const auto window_end =
      static_cast<std::size_t>(doc.at("window_end").as_u64());

  const util::JsonValue& scenarios = doc.at("scenarios");
  for (std::size_t i = 0; i < scenarios.array.size(); ++i) {
    const util::JsonValue& row = scenarios.array[i];
    ScenarioEntry entry;
    campaign::Scenario& s = entry.scenario;
    s.index = i;
    s.id = row.at("id").as_string();
    s.cipher = campaign::cipher_from_name(row.at("cipher").as_string());
    s.policy = campaign::policy_from_name(row.at("policy").as_string());
    s.analysis = campaign::analysis_from_name(row.at("analysis").as_string());
    s.noise_sigma_pj = row.at("noise_sigma_pj").as_double();
    s.traces = static_cast<std::size_t>(row.at("traces").as_u64());
    // Optional (session scenarios only); absent in legacy manifests.
    if (const util::JsonValue* length = row.find("session_length")) {
      s.session_length = static_cast<std::size_t>(length->as_u64());
    }
    s.coupling_ff = row.at("coupling_ff").as_double();
    s.seed = hex_field(row, "seed");
    s.key = key;
    s.fixed_input = fixed_input;
    s.window_begin = window_begin;
    s.window_end = window_end;
    entry.result = campaign::scenario_result_from_json(row.at("result"));
    if (!entry.result.success) ++model.failed;

    entry.artifact_path =
        campaign::scenario_artifact_path(s.id, s.analysis);
    const fs::path artifact = fs::path(dir) / entry.artifact_path;
    if (fs::exists(artifact)) {
      entry.artifact = util::load_csv_file(artifact.string());
      entry.artifact_present = true;
    } else {
      ++model.missing_artifacts;
    }
    if (campaign::analysis_has_disclosure(s.analysis)) {
      const fs::path disclosure =
          fs::path(dir) / campaign::scenario_disclosure_path(s.id);
      if (fs::exists(disclosure)) {
        entry.disclosure = util::load_csv_file(disclosure.string());
        entry.disclosure_present = true;
      }
    }
    if (campaign::is_session_cipher(s.cipher)) {
      const fs::path blocks =
          fs::path(dir) / campaign::scenario_blocks_path(s.id);
      if (fs::exists(blocks)) {
        entry.blocks = util::load_csv_file(blocks.string());
        entry.blocks_present = true;
      }
      const fs::path session =
          fs::path(dir) / campaign::scenario_session_path(s.id);
      if (fs::exists(session)) {
        entry.session = util::load_csv_file(session.string());
        entry.session_present = true;
      }
    }
    model.scenarios.push_back(std::move(entry));
  }

  if (const util::JsonValue* count = doc.find("scenario_count")) {
    if (count->as_u64() != model.scenarios.size()) {
      throw ReportError(manifest_name + ": scenario_count says " +
                        std::to_string(count->as_u64()) + " but " +
                        std::to_string(model.scenarios.size()) +
                        " scenarios are listed");
    }
  }

  // Recompute the roll-up from the scenario results through the same
  // helper the manifest writer uses.  The pseudo-spec carries the policy
  // order (by_policy order when present, else order of first appearance)
  // and the paper references read back from by_policy.
  campaign::CampaignSpec pseudo;
  pseudo.name = model.campaign;
  pseudo.reference_uj = references_from_rollup(doc);
  const util::JsonValue* rollup = doc.find("rollup");
  const util::JsonValue* by_policy =
      rollup != nullptr ? rollup->find("by_policy") : nullptr;
  if (by_policy != nullptr) {
    for (const util::JsonValue& row : by_policy->array) {
      pseudo.policies.push_back(
          campaign::policy_from_name(row.at("policy").as_string()));
    }
  } else {
    for (const ScenarioEntry& e : model.scenarios) {
      bool seen = false;
      for (const hiding::Countermeasure& p : pseudo.policies) {
        if (p == e.scenario.policy) seen = true;
      }
      if (!seen) pseudo.policies.push_back(e.scenario.policy);
    }
  }
  std::vector<campaign::ScenarioOutcome> outcomes;
  outcomes.reserve(model.scenarios.size());
  for (const ScenarioEntry& e : model.scenarios) {
    campaign::ScenarioOutcome o;
    o.scenario = e.scenario;
    o.result = e.result;
    outcomes.push_back(std::move(o));
  }
  const std::vector<campaign::PolicyRollup> rollups =
      campaign::rollup_by_policy(pseudo, outcomes);
  const double baseline = rollups.empty() ? 0.0 : rollups.front().mean_uj;
  const double* ref_baseline =
      rollups.empty()
          ? nullptr
          : campaign::find_reference(pseudo, rollups.front().policy);
  for (const campaign::PolicyRollup& r : rollups) {
    PolicyRow row;
    row.policy = r.policy;
    row.scenarios = r.scenarios;
    row.mean_uj = r.mean_uj;
    // NaN, not 0, when the baseline is unusable (no energy scenarios, or a
    // NaN mean poisoning it): the report renders "n/a" where the manifest's
    // own rollup block would have written a misleading 0 ratio.
    row.ratio = baseline > 0.0 ? r.mean_uj / baseline : std::nan("");
    if (const double* ref = campaign::find_reference(pseudo, r.policy)) {
      row.has_reference = true;
      row.paper_uj = *ref;
    }
    // Paper-normalized energy is a projection of the *measured* ratio onto
    // the paper's absolute scale — it exists whenever the baseline policy
    // has a reference, even for policies (the hiding countermeasures) the
    // paper itself never measured.  Without it such rows would render 0/NaN
    // bars next to real measurements.
    if (ref_baseline != nullptr && *ref_baseline > 0.0) {
      if (row.has_reference) row.paper_ratio = row.paper_uj / *ref_baseline;
      row.normalized_uj = row.ratio * *ref_baseline;
    }
    model.rollup.push_back(row);
  }
  return model;
}

Model Model::load(const std::string& dir) {
  const fs::path manifest = find_manifest(dir);
  return from_manifest(util::read_text_file(manifest.string()),
                       manifest.filename().string(), dir);
}

}  // namespace emask::report
