// report::Html — templated sections + the render() glue.
//
// render() turns a report::Model into ONE self-contained static HTML
// document: all styling is an inline <style> block, every chart is inline
// SVG from report::Svg, and there are no external resources (no links to
// scripts, stylesheets, fonts, or images) — the file can be archived next
// to the manifest and opened offline years later.
//
// Determinism contract (the report-level mirror of the manifest's):
// render() is a pure function of (Model, RenderOptions).  No timestamps,
// no absolute paths, no locale-dependent formatting — so the same
// manifest + artifacts produce a byte-identical report.html, and reports
// can be diffed in CI exactly like manifests are (enforced by the
// emask-report_golden ctest and the CI re-render diff step).
//
// Non-finite numbers (a NaN metric loaded back from a `null`, an Inf
// energy in a crafted manifest) always render as "n/a" — never "nan",
// "inf", or "null" — via the single number-formatting chokepoint.
#pragma once

#include <string>

#include "report/model.hpp"

namespace emask::report {

struct RenderOptions {
  /// Page title; empty means "campaign <name>".
  std::string title;
};

/// "n/a" for non-finite values, compact "%.6g" otherwise.  The only
/// double→text path in the HTML layer.
[[nodiscard]] std::string num_or_na(double v);

/// Renders the full self-contained HTML document.
[[nodiscard]] std::string render(const Model& model,
                                 const RenderOptions& options = {});

/// Writes `html` to `path`, creating missing parent directories; throws
/// with the path in the message on any IO failure.
void write_report(const std::string& path, const std::string& html);

/// Convenience glue: Model::load(dir) + render + write_report.  Returns
/// the rendered byte count.
std::size_t render_directory(const std::string& dir,
                             const std::string& out_path,
                             const RenderOptions& options = {});

}  // namespace emask::report
