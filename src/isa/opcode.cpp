#include "isa/opcode.hpp"

#include <array>

namespace emask::isa {
namespace {

constexpr OpcodeInfo make(std::string_view m, Format f, FuncUnit u,
                          bool load = false, bool store = false,
                          bool branch = false, bool jump = false,
                          bool writes = true, bool securable = false) {
  return OpcodeInfo{m, f, u, load, store, branch, jump, writes, securable};
}

// Indexed by static_cast<int>(Opcode).
constexpr std::array<OpcodeInfo, kNumOpcodes> kTable = {{
    // mnemonic  format                unit                ld     st     br     jp     wr     sec
    make("addu", Format::kRegister, FuncUnit::kAdder, false, false, false, false, true, true),
    make("subu", Format::kRegister, FuncUnit::kAdder),
    make("and", Format::kRegister, FuncUnit::kLogic, false, false, false, false, true, true),
    make("or", Format::kRegister, FuncUnit::kLogic, false, false, false, false, true, true),
    make("xor", Format::kRegister, FuncUnit::kXorUnit, false, false, false, false, true, true),
    make("nor", Format::kRegister, FuncUnit::kLogic, false, false, false, false, true, true),
    make("slt", Format::kRegister, FuncUnit::kAdder),
    make("sltu", Format::kRegister, FuncUnit::kAdder),
    make("sllv", Format::kRegister, FuncUnit::kShifter, false, false, false, false, true, true),
    make("srlv", Format::kRegister, FuncUnit::kShifter, false, false, false, false, true, true),
    make("srav", Format::kRegister, FuncUnit::kShifter, false, false, false, false, true, true),
    make("addiu", Format::kImmediate, FuncUnit::kAdder, false, false, false, false, true, true),
    make("andi", Format::kImmediate, FuncUnit::kLogic, false, false, false, false, true, true),
    make("ori", Format::kImmediate, FuncUnit::kLogic, false, false, false, false, true, true),
    make("xori", Format::kImmediate, FuncUnit::kXorUnit, false, false, false, false, true, true),
    make("slti", Format::kImmediate, FuncUnit::kAdder),
    make("sltiu", Format::kImmediate, FuncUnit::kAdder),
    make("lui", Format::kImmediate, FuncUnit::kNone),
    make("sll", Format::kShiftImm, FuncUnit::kShifter, false, false, false, false, true, true),
    make("srl", Format::kShiftImm, FuncUnit::kShifter, false, false, false, false, true, true),
    make("sra", Format::kShiftImm, FuncUnit::kShifter, false, false, false, false, true, true),
    make("lw", Format::kLoadStore, FuncUnit::kAdder, true, false, false, false, true, true),
    make("sw", Format::kLoadStore, FuncUnit::kAdder, false, true, false, false, false, true),
    make("beq", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("bne", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("blez", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("bgtz", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("bltz", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("bgez", Format::kBranch, FuncUnit::kAdder, false, false, true, false, false),
    make("j", Format::kJump, FuncUnit::kNone, false, false, false, true, false),
    make("jal", Format::kJump, FuncUnit::kNone, false, false, false, true, true),
    make("jr", Format::kJumpReg, FuncUnit::kNone, false, false, false, true, false),
    make("jalr", Format::kJumpReg, FuncUnit::kNone, false, false, false, true, true),
    make("halt", Format::kNullary, FuncUnit::kNone, false, false, false, false, false),
}};

}  // namespace

const OpcodeInfo& info(Opcode op) noexcept {
  return kTable[static_cast<int>(op)];
}

std::string_view mnemonic(Opcode op) noexcept { return info(op).mnemonic; }

std::optional<Opcode> opcode_from_mnemonic(std::string_view m) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kTable[static_cast<std::size_t>(i)].mnemonic == m) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

}  // namespace emask::isa
