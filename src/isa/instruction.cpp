#include "isa/instruction.hpp"

#include <sstream>

namespace emask::isa {

std::optional<Reg> Instruction::dest() const {
  const OpcodeInfo& i = info(op);
  if (!i.writes_rd) return std::nullopt;
  Reg d;
  switch (i.format) {
    case Format::kRegister:
    case Format::kShiftImm:
      d = rd;
      break;
    case Format::kImmediate:
    case Format::kLoadStore:
      d = rt;
      break;
    case Format::kJump:  // jal
      d = kRa;
      break;
    case Format::kJumpReg:  // jalr
      d = rd;
      break;
    default:
      return std::nullopt;
  }
  if (d == kZero) return std::nullopt;
  return d;
}

std::optional<Reg> Instruction::src1() const {
  switch (info(op).format) {
    case Format::kRegister:
    case Format::kImmediate:
    case Format::kLoadStore:
    case Format::kBranch:
    case Format::kJumpReg:
      return rs;
    case Format::kShiftImm:
      return rt;  // shift-by-immediate reads rt
    default:
      return std::nullopt;
  }
}

std::optional<Reg> Instruction::src2() const {
  const OpcodeInfo& i = info(op);
  switch (i.format) {
    case Format::kRegister:
      return rt;
    case Format::kLoadStore:
      return i.is_store ? std::optional<Reg>(rt) : std::nullopt;
    case Format::kBranch:
      // blez/bgtz/bltz/bgez compare one register against zero.
      return (op == Opcode::kBeq || op == Opcode::kBne)
                 ? std::optional<Reg>(rt)
                 : std::nullopt;
    default:
      return std::nullopt;
  }
}

std::string Instruction::to_string() const {
  const OpcodeInfo& i = info(op);
  std::ostringstream os;
  if (secure) os << 's';
  os << i.mnemonic << ' ';
  switch (i.format) {
    case Format::kRegister:
      // Variable shifts use MIPS operand order "rd, rt, rs" (value first,
      // then shift amount) — matching what the assembler parses.
      if (op == Opcode::kSllv || op == Opcode::kSrlv || op == Opcode::kSrav) {
        os << reg_name(rd) << ',' << reg_name(rt) << ',' << reg_name(rs);
      } else {
        os << reg_name(rd) << ',' << reg_name(rs) << ',' << reg_name(rt);
      }
      break;
    case Format::kShiftImm:
      os << reg_name(rd) << ',' << reg_name(rt) << ',' << imm;
      break;
    case Format::kImmediate:
      if (op == Opcode::kLui) {
        os << reg_name(rt) << ',' << imm;
      } else {
        os << reg_name(rt) << ',' << reg_name(rs) << ',' << imm;
      }
      break;
    case Format::kLoadStore:
      os << reg_name(rt) << ',' << imm << '(' << reg_name(rs) << ')';
      break;
    case Format::kBranch:
      if (op == Opcode::kBeq || op == Opcode::kBne) {
        os << reg_name(rs) << ',' << reg_name(rt) << ',' << imm;
      } else {
        os << reg_name(rs) << ',' << imm;
      }
      break;
    case Format::kJump:
      os << imm;
      break;
    case Format::kJumpReg:
      if (op == Opcode::kJalr) {
        os << reg_name(rd) << ',' << reg_name(rs);
      } else {
        os << reg_name(rs);
      }
      break;
    case Format::kNullary:
      break;
  }
  return os.str();
}

Instruction make_rtype(Opcode op, Reg rd, Reg rs, Reg rt, bool secure) {
  return Instruction{op, rd, rs, rt, 0, secure};
}

Instruction make_shift(Opcode op, Reg rd, Reg rt, int shamt, bool secure) {
  return Instruction{op, rd, 0, rt, shamt, secure};
}

Instruction make_itype(Opcode op, Reg rt, Reg rs, std::int32_t imm,
                       bool secure) {
  return Instruction{op, 0, rs, rt, imm, secure};
}

Instruction make_loadstore(Opcode op, Reg rt, std::int32_t off, Reg base,
                           bool secure) {
  return Instruction{op, 0, base, rt, off, secure};
}

Instruction make_branch(Opcode op, Reg rs, Reg rt, std::int32_t rel_words) {
  return Instruction{op, 0, rs, rt, rel_words, false};
}

Instruction make_jump(Opcode op, std::int32_t target_index) {
  return Instruction{op, 0, 0, 0, target_index, false};
}

Instruction make_nop() { return make_shift(Opcode::kSll, 0, 0, 0); }

Instruction make_halt() { return Instruction{Opcode::kHalt, 0, 0, 0, 0, false}; }

}  // namespace emask::isa
