#include "isa/registers.hpp"

#include <array>
#include <charconv>

namespace emask::isa {
namespace {

constexpr std::array<std::string_view, kNumRegisters> kNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

}  // namespace

std::string_view reg_name(Reg r) { return kNames[r % kNumRegisters]; }

std::optional<Reg> parse_reg(std::string_view text) {
  if (text.size() < 2 || text[0] != '$') return std::nullopt;
  // Numeric form: $0 .. $31.
  const std::string_view body = text.substr(1);
  if (body[0] >= '0' && body[0] <= '9') {
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(body.data(), body.data() + body.size(), value);
    if (ec != std::errc{} || ptr != body.data() + body.size()) {
      return std::nullopt;
    }
    if (value < 0 || value >= kNumRegisters) return std::nullopt;
    return static_cast<Reg>(value);
  }
  for (int i = 0; i < kNumRegisters; ++i) {
    if (kNames[static_cast<std::size_t>(i)] == text) {
      return static_cast<Reg>(i);
    }
  }
  return std::nullopt;
}

}  // namespace emask::isa
