// Instruction set of the modeled smart-card processor.
//
// The paper targets the SimpleScalar (PISA) integer ISA on a five-stage
// in-order pipeline, "representative of current embedded 32-bit RISC cores
// used in smart cards such as the ARM7-TDMI".  We define an equivalent
// MIPS-flavoured integer subset.  Each instruction additionally carries a
// *secure bit* (the paper's chosen encoding option: "augmenting the original
// opcodes with an additional secure bit" to minimize decode-logic impact).
// When the secure bit is set, the dual-rail/pre-charged versions of the
// datapath structures the instruction exercises are activated, making the
// switched capacitance — and hence the energy — independent of operand data.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace emask::isa {

enum class Opcode : std::uint8_t {
  // R-type ALU.
  kAddu,
  kSubu,
  kAnd,
  kOr,
  kXor,
  kNor,
  kSlt,
  kSltu,
  kSllv,
  kSrlv,
  kSrav,
  // I-type ALU.
  kAddiu,
  kAndi,
  kOri,
  kXori,
  kSlti,
  kSltiu,
  kLui,
  // Shifts by immediate (R-type with shamt).
  kSll,
  kSrl,
  kSra,
  // Memory.
  kLw,
  kSw,
  // Control flow.
  kBeq,
  kBne,
  kBlez,
  kBgtz,
  kBltz,
  kBgez,
  kJ,
  kJal,
  kJr,
  kJalr,
  // Simulation control: stops the pipeline after write-back.
  kHalt,
};

/// Number of distinct opcodes (for table sizing).
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kHalt) + 1;

/// Instruction format, used by the encoder and the assembler.
enum class Format : std::uint8_t {
  kRegister,    // op rd, rs, rt
  kShiftImm,    // op rd, rt, shamt
  kImmediate,   // op rt, rs, imm16
  kLoadStore,   // op rt, imm16(rs)
  kBranch,      // op rs, rt, label   (or one-register compare against zero)
  kJump,        // op target
  kJumpReg,     // op rs  /  op rd, rs
  kNullary,     // op
};

/// Functional unit exercised in the EX stage.  The energy model keeps one
/// transition-sensitive model per unit; the paper singles out the XOR unit
/// (Fig. 5) because DES's round function is XOR-dominated.
enum class FuncUnit : std::uint8_t {
  kNone,
  kAdder,    // addu/subu/slt/address generation
  kLogic,    // and/or/nor
  kXorUnit,  // xor/xori — the pre-charged complementary circuit of Fig. 5
  kShifter,  // sll/srl/sra and variable forms
};

/// Static properties of an opcode.
struct OpcodeInfo {
  std::string_view mnemonic;
  Format format;
  FuncUnit unit;
  bool is_load;
  bool is_store;
  bool is_branch;  // conditional branches only
  bool is_jump;    // unconditional j/jal/jr/jalr
  bool writes_rd;  // writes a destination register
  /// True if the instruction has a secure (dual-rail) version the selective
  /// compiler may emit.  The paper defines four classes — assignment
  /// (lw/sw/move), XOR, shift, and indexing — which are exactly what DES
  /// needs.  We additionally provide secure and/andi/nor (the same
  /// complementary-logic construction on the logic unit): they are never
  /// exercised by DES but are required to cover other kernels, e.g. the
  /// Ch/Maj functions of SHA-1 (see the keyed-hash experiment).
  bool securable;
};

/// Lookup table access (never fails for a valid enum value).
[[nodiscard]] const OpcodeInfo& info(Opcode op) noexcept;

/// Canonical mnemonic ("addu", "lw", ...).
[[nodiscard]] std::string_view mnemonic(Opcode op) noexcept;

/// Parses a canonical mnemonic.  Does NOT accept the "s"-prefixed secure
/// spellings; the assembler strips the prefix first.
[[nodiscard]] std::optional<Opcode> opcode_from_mnemonic(std::string_view m);

}  // namespace emask::isa
