// Binary encoding of the ISA.
//
// Instructions encode to a classic MIPS-I 32-bit word; the secure bit rides
// as bit 32 of the fetched word, i.e. the instruction memory and fetch bus
// are 33 bits wide.  This matches the paper's implementation choice of
// "augmenting the original opcodes with an additional secure bit" rather
// than burning unassigned opcodes, minimizing the impact on decode logic.
//
// The encoding is load-bearing for the energy model: instruction-fetch bus
// energy is charged per bit *transition* between consecutively fetched
// words, so the bit-level layout of the encoding determines fetch energy.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace emask::isa {

/// Encoded instruction word: bits [31:0] MIPS-style, bit 32 = secure.
using EncodedWord = std::uint64_t;

inline constexpr EncodedWord kSecureBit = 1ull << 32;

/// Encodes an instruction.  Throws std::invalid_argument when a field does
/// not fit its encoding slot (e.g. a branch displacement beyond ±32767
/// words or a jump index beyond 26 bits).
[[nodiscard]] EncodedWord encode(const Instruction& inst);

/// Decodes an encoded word.  Throws std::invalid_argument on patterns that
/// do not correspond to any implemented instruction.
[[nodiscard]] Instruction decode(EncodedWord word);

}  // namespace emask::isa
