// Decoded instruction representation shared by the assembler, the compiler
// pass and the pipeline simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/opcode.hpp"
#include "isa/registers.hpp"

namespace emask::isa {

/// One decoded instruction.  All label references have already been resolved
/// by the assembler: branch targets are *word* offsets relative to the next
/// instruction (MIPS-style), jump targets are absolute instruction indices.
struct Instruction {
  Opcode op = Opcode::kHalt;
  Reg rd = 0;          // destination (R-type) / link register (jalr)
  Reg rs = 0;          // first source / base address / jump register
  Reg rt = 0;          // second source / load-store data register
  std::int32_t imm = 0;  // imm16 (sign interpreted per opcode), shamt, or target
  bool secure = false;   // the paper's secure bit

  /// Destination register written in WB, if any ($zero writes discarded).
  [[nodiscard]] std::optional<Reg> dest() const;

  /// First source register read in ID/EX, if any.
  [[nodiscard]] std::optional<Reg> src1() const;

  /// Second source register read in ID/EX, if any.
  [[nodiscard]] std::optional<Reg> src2() const;

  /// Assembly rendering, secure instructions get the "s" prefix the paper
  /// uses in Fig. 4 (e.g. "slw $3,0($4)").
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Instruction&) const = default;
};

/// Convenience constructors (used by tests, code generators and the
/// assembler's pseudo-instruction expansion).
[[nodiscard]] Instruction make_rtype(Opcode op, Reg rd, Reg rs, Reg rt,
                                     bool secure = false);
[[nodiscard]] Instruction make_shift(Opcode op, Reg rd, Reg rt, int shamt,
                                     bool secure = false);
[[nodiscard]] Instruction make_itype(Opcode op, Reg rt, Reg rs,
                                     std::int32_t imm, bool secure = false);
[[nodiscard]] Instruction make_loadstore(Opcode op, Reg rt, std::int32_t off,
                                         Reg base, bool secure = false);
[[nodiscard]] Instruction make_branch(Opcode op, Reg rs, Reg rt,
                                      std::int32_t rel_words);
[[nodiscard]] Instruction make_jump(Opcode op, std::int32_t target_index);
[[nodiscard]] Instruction make_nop();
[[nodiscard]] Instruction make_halt();

}  // namespace emask::isa
