// Architectural register file naming (MIPS O32-style conventions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace emask::isa {

inline constexpr int kNumRegisters = 32;

/// A register number in [0, 32).  Register 0 is hardwired to zero.
using Reg = std::uint8_t;

inline constexpr Reg kZero = 0;
inline constexpr Reg kAt = 1;
inline constexpr Reg kV0 = 2;
inline constexpr Reg kA0 = 4;
inline constexpr Reg kT0 = 8;
inline constexpr Reg kS0 = 16;
inline constexpr Reg kGp = 28;
inline constexpr Reg kSp = 29;
inline constexpr Reg kFp = 30;
inline constexpr Reg kRa = 31;

/// ABI name of a register, e.g. "$t0".
[[nodiscard]] std::string_view reg_name(Reg r);

/// Parses "$t0", "$zero", "$5", "$31", ...  Returns nullopt if malformed
/// or out of range.
[[nodiscard]] std::optional<Reg> parse_reg(std::string_view text);

}  // namespace emask::isa
