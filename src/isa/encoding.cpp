#include "isa/encoding.hpp"

#include <stdexcept>
#include <string>

#include "util/bitops.hpp"

namespace emask::isa {
namespace {

// MIPS-I primary opcodes and SPECIAL functs for the implemented subset.
constexpr std::uint32_t kSpecial = 0x00;
constexpr std::uint32_t kRegimm = 0x01;
constexpr std::uint32_t kHaltPrimary = 0x3F;  // reserved slot in MIPS-I

struct MipsSlot {
  std::uint32_t primary;
  std::uint32_t funct;  // only meaningful when primary == kSpecial
  std::uint32_t regimm_rt;  // only meaningful when primary == kRegimm
};

MipsSlot slot_of(Opcode op) {
  switch (op) {
    case Opcode::kAddu:  return {kSpecial, 0x21, 0};
    case Opcode::kSubu:  return {kSpecial, 0x23, 0};
    case Opcode::kAnd:   return {kSpecial, 0x24, 0};
    case Opcode::kOr:    return {kSpecial, 0x25, 0};
    case Opcode::kXor:   return {kSpecial, 0x26, 0};
    case Opcode::kNor:   return {kSpecial, 0x27, 0};
    case Opcode::kSlt:   return {kSpecial, 0x2A, 0};
    case Opcode::kSltu:  return {kSpecial, 0x2B, 0};
    case Opcode::kSllv:  return {kSpecial, 0x04, 0};
    case Opcode::kSrlv:  return {kSpecial, 0x06, 0};
    case Opcode::kSrav:  return {kSpecial, 0x07, 0};
    case Opcode::kSll:   return {kSpecial, 0x00, 0};
    case Opcode::kSrl:   return {kSpecial, 0x02, 0};
    case Opcode::kSra:   return {kSpecial, 0x03, 0};
    case Opcode::kJr:    return {kSpecial, 0x08, 0};
    case Opcode::kJalr:  return {kSpecial, 0x09, 0};
    case Opcode::kAddiu: return {0x09, 0, 0};
    case Opcode::kSlti:  return {0x0A, 0, 0};
    case Opcode::kSltiu: return {0x0B, 0, 0};
    case Opcode::kAndi:  return {0x0C, 0, 0};
    case Opcode::kOri:   return {0x0D, 0, 0};
    case Opcode::kXori:  return {0x0E, 0, 0};
    case Opcode::kLui:   return {0x0F, 0, 0};
    case Opcode::kLw:    return {0x23, 0, 0};
    case Opcode::kSw:    return {0x2B, 0, 0};
    case Opcode::kBeq:   return {0x04, 0, 0};
    case Opcode::kBne:   return {0x05, 0, 0};
    case Opcode::kBlez:  return {0x06, 0, 0};
    case Opcode::kBgtz:  return {0x07, 0, 0};
    case Opcode::kBltz:  return {kRegimm, 0, 0x00};
    case Opcode::kBgez:  return {kRegimm, 0, 0x01};
    case Opcode::kJ:     return {0x02, 0, 0};
    case Opcode::kJal:   return {0x03, 0, 0};
    case Opcode::kHalt:  return {kHaltPrimary, 0, 0};
  }
  throw std::invalid_argument("slot_of: bad opcode");
}

void require_imm16(std::int32_t imm, const char* what) {
  if (imm < -32768 || imm > 65535) {
    throw std::invalid_argument(std::string(what) +
                                ": immediate out of 16-bit range: " +
                                std::to_string(imm));
  }
}

std::uint32_t field_imm16(std::int32_t imm) {
  return static_cast<std::uint32_t>(imm) & 0xFFFFu;
}

}  // namespace

EncodedWord encode(const Instruction& inst) {
  const MipsSlot slot = slot_of(inst.op);
  const OpcodeInfo& oi = info(inst.op);
  std::uint32_t word = slot.primary << 26;
  switch (oi.format) {
    case Format::kRegister:
      word |= (std::uint32_t{inst.rs} << 21) | (std::uint32_t{inst.rt} << 16) |
              (std::uint32_t{inst.rd} << 11) | slot.funct;
      break;
    case Format::kShiftImm:
      if (inst.imm < 0 || inst.imm > 31) {
        throw std::invalid_argument("encode: shamt out of range");
      }
      word |= (std::uint32_t{inst.rt} << 16) | (std::uint32_t{inst.rd} << 11) |
              (static_cast<std::uint32_t>(inst.imm) << 6) | slot.funct;
      break;
    case Format::kImmediate:
    case Format::kLoadStore:
      require_imm16(inst.imm, "encode");
      word |= (std::uint32_t{inst.rs} << 21) | (std::uint32_t{inst.rt} << 16) |
              field_imm16(inst.imm);
      break;
    case Format::kBranch:
      require_imm16(inst.imm, "encode branch");
      if (slot.primary == kRegimm) {
        word |= (std::uint32_t{inst.rs} << 21) | (slot.regimm_rt << 16) |
                field_imm16(inst.imm);
      } else {
        word |= (std::uint32_t{inst.rs} << 21) |
                (std::uint32_t{inst.rt} << 16) | field_imm16(inst.imm);
      }
      break;
    case Format::kJump:
      if (inst.imm < 0 || inst.imm >= (1 << 26)) {
        throw std::invalid_argument("encode: jump target out of range");
      }
      word |= static_cast<std::uint32_t>(inst.imm);
      break;
    case Format::kJumpReg:
      word |= (std::uint32_t{inst.rs} << 21) | (std::uint32_t{inst.rd} << 11) |
              slot.funct;
      break;
    case Format::kNullary:
      break;
  }
  EncodedWord out = word;
  if (inst.secure) out |= kSecureBit;
  return out;
}

Instruction decode(EncodedWord encoded) {
  const bool secure = (encoded & kSecureBit) != 0;
  const auto word = static_cast<std::uint32_t>(encoded & 0xFFFFFFFFu);
  const std::uint32_t primary = word >> 26;
  const auto rs = static_cast<Reg>((word >> 21) & 31u);
  const auto rt = static_cast<Reg>((word >> 16) & 31u);
  const auto rd = static_cast<Reg>((word >> 11) & 31u);
  const auto shamt = static_cast<std::int32_t>((word >> 6) & 31u);
  const auto imm16s =
      static_cast<std::int32_t>(static_cast<std::int16_t>(word & 0xFFFFu));
  const std::uint32_t funct = word & 0x3Fu;

  auto bad = [&] {
    return std::invalid_argument("decode: unimplemented encoding 0x" +
                                 std::to_string(word));
  };

  if (primary == kSpecial) {
    Opcode op;
    switch (funct) {
      case 0x21: op = Opcode::kAddu; break;
      case 0x23: op = Opcode::kSubu; break;
      case 0x24: op = Opcode::kAnd; break;
      case 0x25: op = Opcode::kOr; break;
      case 0x26: op = Opcode::kXor; break;
      case 0x27: op = Opcode::kNor; break;
      case 0x2A: op = Opcode::kSlt; break;
      case 0x2B: op = Opcode::kSltu; break;
      case 0x04: op = Opcode::kSllv; break;
      case 0x06: op = Opcode::kSrlv; break;
      case 0x07: op = Opcode::kSrav; break;
      case 0x00: op = Opcode::kSll; break;
      case 0x02: op = Opcode::kSrl; break;
      case 0x03: op = Opcode::kSra; break;
      case 0x08: op = Opcode::kJr; break;
      case 0x09: op = Opcode::kJalr; break;
      default: throw bad();
    }
    const Format f = info(op).format;
    if (f == Format::kShiftImm) return Instruction{op, rd, 0, rt, shamt, secure};
    if (f == Format::kJumpReg) return Instruction{op, rd, rs, 0, 0, secure};
    return Instruction{op, rd, rs, rt, 0, secure};
  }
  if (primary == kRegimm) {
    const std::uint32_t sel = (word >> 16) & 31u;
    if (sel == 0x00) return Instruction{Opcode::kBltz, 0, rs, 0, imm16s, secure};
    if (sel == 0x01) return Instruction{Opcode::kBgez, 0, rs, 0, imm16s, secure};
    throw bad();
  }
  switch (primary) {
    case 0x09: return Instruction{Opcode::kAddiu, 0, rs, rt, imm16s, secure};
    case 0x0A: return Instruction{Opcode::kSlti, 0, rs, rt, imm16s, secure};
    case 0x0B: return Instruction{Opcode::kSltiu, 0, rs, rt, imm16s, secure};
    case 0x0C:
      return Instruction{Opcode::kAndi, 0, rs, rt,
                         static_cast<std::int32_t>(word & 0xFFFFu), secure};
    case 0x0D:
      return Instruction{Opcode::kOri, 0, rs, rt,
                         static_cast<std::int32_t>(word & 0xFFFFu), secure};
    case 0x0E:
      return Instruction{Opcode::kXori, 0, rs, rt,
                         static_cast<std::int32_t>(word & 0xFFFFu), secure};
    case 0x0F:
      return Instruction{Opcode::kLui, 0, 0, rt,
                         static_cast<std::int32_t>(word & 0xFFFFu), secure};
    case 0x23: return Instruction{Opcode::kLw, 0, rs, rt, imm16s, secure};
    case 0x2B: return Instruction{Opcode::kSw, 0, rs, rt, imm16s, secure};
    case 0x04: return Instruction{Opcode::kBeq, 0, rs, rt, imm16s, secure};
    case 0x05: return Instruction{Opcode::kBne, 0, rs, rt, imm16s, secure};
    case 0x06: return Instruction{Opcode::kBlez, 0, rs, 0, imm16s, secure};
    case 0x07: return Instruction{Opcode::kBgtz, 0, rs, 0, imm16s, secure};
    case 0x02:
      return Instruction{Opcode::kJ, 0, 0, 0,
                         static_cast<std::int32_t>(word & 0x03FFFFFFu), secure};
    case 0x03:
      return Instruction{Opcode::kJal, 0, 0, 0,
                         static_cast<std::int32_t>(word & 0x03FFFFFFu), secure};
    case kHaltPrimary: return Instruction{Opcode::kHalt, 0, 0, 0, 0, secure};
    default: throw bad();
  }
}

}  // namespace emask::isa
