// Runtime-selectable backend for the energy model's Hamming/coupling
// inner loops.
//
// kScalar keeps the original per-bit-pair loops; kBitslice swaps in the
// word-parallel kernels from bitslice/hamming.hpp (same integer event
// counts, so per-cycle energies are bit-identical); kVerify runs both and
// aborts on any divergence — the belt-and-braces mode the equivalence
// tests run whole captures under.
//
// The default is kBitslice, overridable three ways (first match wins):
//   1. at build time: -DEMASK_DEFAULT_HAMMING_BACKEND=kScalar (CMake
//      option EMASK_SCALAR_HAMMING);
//   2. at process start: EMASK_HAMMING_BACKEND=scalar|bitslice|verify;
//   3. at runtime: set_hamming_backend() (emask-campaign --backend).
#pragma once

#include <cstdint>

#include "bitslice/hamming.hpp"

namespace emask::energy {

enum class HammingBackend { kScalar, kBitslice, kVerify };

/// The active backend (env-initialized on first use, then whatever
/// set_hamming_backend last installed).
[[nodiscard]] HammingBackend hamming_backend();
void set_hamming_backend(HammingBackend backend);

/// Parses "scalar" / "bitslice" / "verify"; throws on anything else.
[[nodiscard]] HammingBackend hamming_backend_from_name(const char* name);

namespace detail {
[[noreturn]] void kernel_mismatch(const char* kernel);
}  // namespace detail

/// Normal-mode adjacent-pair coupling events (see bitslice/hamming.hpp),
/// dispatched through the active backend.
[[nodiscard]] inline int coupling_events(std::uint64_t last,
                                         std::uint64_t value, int width) {
  switch (hamming_backend()) {
    case HammingBackend::kScalar:
      return bitslice::coupling_events_scalar(last, value, width);
    case HammingBackend::kBitslice:
      return bitslice::coupling_events(last, value, width);
    case HammingBackend::kVerify: {
      const int fast = bitslice::coupling_events(last, value, width);
      if (fast != bitslice::coupling_events_scalar(last, value, width)) {
        detail::kernel_mismatch("coupling_events");
      }
      return fast;
    }
  }
  return 0;  // unreachable
}

/// Secure-mode opposing-transition count, dispatched likewise.
[[nodiscard]] inline int secure_opposing(std::uint64_t value, int width) {
  switch (hamming_backend()) {
    case HammingBackend::kScalar:
      return bitslice::secure_opposing_scalar(value, width);
    case HammingBackend::kBitslice:
      return bitslice::secure_opposing(value, width);
    case HammingBackend::kVerify: {
      const int fast = bitslice::secure_opposing(value, width);
      if (fast != bitslice::secure_opposing_scalar(value, width)) {
        detail::kernel_mismatch("secure_opposing");
      }
      return fast;
    }
  }
  return 0;  // unreachable
}

}  // namespace emask::energy
