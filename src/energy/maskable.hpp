// Maskable datapath structures: behave as conventional (data-dependent)
// hardware for normal instructions and as dual-rail pre-charged (constant
// energy) hardware when driven by a secure instruction.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "energy/kernels.hpp"
#include "util/bitops.hpp"

namespace emask::energy {

/// A static bus that can be driven in secure mode.
///
/// Normal transfer: supply energy is drawn for every line that rises 0 -> 1
/// relative to the previously transmitted word (the paper's Sec. 4.2 "values
/// of d in two successive cycles" example).
///
/// Secure transfer: the bus widens to normal + complementary lines, all
/// pre-charged high; exactly `width` of the 2*width lines recharge per
/// cycle, independent of the data.  The lines are left in the pre-charged
/// (all-ones) state, so no residue of the secure value influences — or is
/// leaked by — the next normal transfer.
class MaskableBus {
 public:
  /// `coupling_energy_joules` models inter-wire (adjacent-line) coupling
  /// capacitance, the effect the paper's conclusion flags as the limit of
  /// dual-rail masking: "power consumption differences will also arise due
  /// to signal transitions on adjacent lines of on-chip buses [Sotiriadis &
  /// Chandrakasan].  Current dual-rail encoding schemes do not mask the key
  /// leakage arising due to these differences."  It defaults to zero (the
  /// paper's main model); the coupling ablation experiment turns it on.
  MaskableBus(int width, double line_energy_joules,
              double coupling_energy_joules = 0.0)
      : width_(width),
        line_energy_(line_energy_joules),
        coupling_energy_(coupling_energy_joules) {}

  [[nodiscard]] double transfer(std::uint64_t value, bool secure) {
    // Up to 64 lines so the 33-bit instruction word (32-bit encoding plus
    // the secure bit) rides the same model as the 32-bit buses.
    const std::uint64_t mask =
        width_ >= 64 ? ~0ull : ((1ull << width_) - 1ull);
    value &= mask;
    if (secure) {
      last_ = mask;  // lines are pre-charged again after the evaluation
      double coupling = 0.0;
      if (coupling_energy_ > 0.0) {
        // Dual-rail layout [d0, ~d0, d1, ~d1, ...]: during evaluation each
        // pair discharges exactly one line, so total switched capacitance
        // is constant — but WHICH line falls depends on the data.  Within
        // a pair the two lines always move oppositely (constant term);
        // across a pair boundary the falling lines are (d_i, ~d_{i+1}),
        // which oppose each other exactly when d_i == d_{i+1}.  Coupling
        // therefore leaks the adjacent-bit-equality pattern even in secure
        // mode — the residual channel the paper warns about.
        coupling = coupling_energy_ * energy::secure_opposing(value, width_);
      }
      return line_energy_ * width_ + coupling;
    }
    const std::uint64_t rising = ~last_ & value;
    double coupling = 0.0;
    if (coupling_energy_ > 0.0) {
      // delta_i in {-1, 0, +1}: falling, quiet, rising.  Each adjacent
      // pair pays in proportion to how differently its lines move.
      coupling =
          coupling_energy_ * energy::coupling_events(last_, value, width_);
    }
    last_ = value;
    return line_energy_ * std::popcount(rising) + coupling;
  }

  /// Random-precharge transfer: the bus is precharged to the random word
  /// `rand` in the first clock phase, then evaluates `value`; every line
  /// whose precharge and evaluation states differ switches.  For uniform
  /// `rand`, popcount(value ^ rand) is Binomial(width, 1/2) regardless of
  /// `value` — the per-cycle energy carries no first-order information
  /// about the data.  History-free by construction: the next cycle
  /// precharges again before anything is driven.
  [[nodiscard]] double transfer_random(std::uint64_t value,
                                       std::uint64_t rand) {
    const std::uint64_t mask =
        width_ >= 64 ? ~0ull : ((1ull << width_) - 1ull);
    value &= mask;
    rand &= mask;
    double coupling = 0.0;
    if (coupling_energy_ > 0.0) {
      coupling =
          coupling_energy_ * energy::coupling_events(rand, value, width_);
    }
    last_ = value;
    return line_energy_ * std::popcount(value ^ rand) + coupling;
  }

 private:
  int width_;
  double line_energy_;
  double coupling_energy_;
  std::uint64_t last_ = 0;
};

/// A pipeline register modeled as a pre-charged structure: per-cycle energy
/// follows the number of asserted payload bits (value-dependent,
/// history-free).  Secure writes activate the complementary half: constant
/// `width` recharges per cycle.
class MaskableLatch {
 public:
  explicit MaskableLatch(double bit_energy_joules)
      : bit_energy_(bit_energy_joules) {}

  [[nodiscard]] double write(std::uint64_t payload, int width,
                             bool secure) const {
    if (secure) return bit_energy_ * width;
    const std::uint64_t mask =
        width >= 64 ? ~0ull : ((1ull << width) - 1ull);
    return bit_energy_ * std::popcount(payload & mask);
  }

 private:
  double bit_energy_;
};

/// A 32-bit dynamic-logic functional unit (adder / logic / shifter): energy
/// follows the number of asserted result bits plus a fixed activation cost.
/// The secure version evaluates the complementary network as well: constant
/// 32 node recharges.
class DynamicUnit {
 public:
  DynamicUnit(double node_energy_joules, double base_energy_joules)
      : node_energy_(node_energy_joules), base_energy_(base_energy_joules) {}

  [[nodiscard]] double evaluate(std::uint32_t result, bool secure) const {
    const int nodes = secure ? 32 : util::popcount(result);
    return base_energy_ + node_energy_ * nodes;
  }

 private:
  double node_energy_;
  double base_energy_;
};

}  // namespace emask::energy
