// Technology and calibration parameters of the energy model.
//
// The paper models a 0.25 micron, 2.5 V smart-card core with SimplePower's
// transition-sensitive, circuit-simulation-derived tables.  Those tables are
// not public, so we use analytic C*Vdd^2 models per component with effective
// capacitances calibrated to the magnitudes the paper reports:
//
//   * a 1 pF wire at 2.5 V costs 6.25 pJ per charging transition (Sec. 4.2);
//   * the XOR unit consumes ~0.3 pJ in normal mode, 0.6 pJ in secure
//     (dual-rail) mode (Sec. 4.2);
//   * the whole processor averages ~165 pJ/cycle on DES, and energy masking
//     adds ~45 pJ/cycle while it is active (Sec. 4.3);
//   * full-program energies: 46.4 uJ original, 52.6 uJ selective masking,
//     63.6 uJ all-loads/stores, 83.5 uJ all instructions secure.
//
// Energy conventions (documented per component in model.cpp):
//   * buses are static lines: supply energy is drawn on 0->1 transitions,
//     E = C_line * Vdd^2 per rising line (history-dependent);
//   * pipeline registers and functional units are modeled as pre-charged
//     dynamic structures: per-cycle energy follows the number of asserted
//     output bits (value-dependent, history-free), matching the paper's
//     "based on whether a bit value of one or zero is stored in the pipeline
//     register bits, a different amount of energy is consumed";
//   * secure (dual-rail) versions recharge exactly `width` of `2*width`
//     nodes per cycle: constant energy, data-independent;
//   * memory arrays and the register file are data-independent (Sec. 4.2:
//     differential sense amps / "another memory array").
#pragma once

namespace emask::energy {

struct TechParams {
  double vdd = 2.5;  // volts

  // Effective capacitance per line/node, in farads.
  double c_instr_bus_line = 99e-15;   // 33-bit instruction fetch bus
  double c_addr_bus_line = 50e-15;    // data-memory address bus
  double c_data_bus_line = 68e-15;    // data-memory data bus
  double c_latch_bit = 149e-15;        // pipeline register bit cell
  double c_adder_node = 124e-15;       // main ALU adder (also address adds)
  double c_logic_node = 62e-15;       // and/or/nor unit
  double c_shift_node = 62e-15;       // barrel shifter
  double c_xor_node = 3e-15;          // XOR unit of Fig. 5 (0.6 pJ secure)
  /// Inter-wire coupling capacitance between adjacent bus lines.  Zero in
  /// the paper's main model; nonzero values enable the coupling ablation
  /// (the residual channel dual-rail cannot mask — see the paper's
  /// conclusion and Sotiriadis & Chandrakasan).
  double c_bus_coupling = 0.0;

  // Data-independent per-event energies, in joules.
  double e_clock_tree = 77e-12;       // clock + global control, per cycle
  double e_fetch_array = 29.6e-12;      // instruction memory array, per fetch
  double e_decode = 11.8e-12;            // decoder, per decoded instruction
  double e_rf_read = 8.9e-12;           // register file, per read port access
  double e_rf_write = 11.8e-12;          // register file, per write
  double e_mem_read = 37e-12;         // data SRAM array, per read
  double e_mem_write = 41.4e-12;        // data SRAM array, per write
  double e_unit_base = 3.7e-12;         // functional-unit activation, per op
  double e_dummy_load = 3.7e-12;        // terminating the complementary rail
                                      // at write-back, per secure instruction

  /// The calibrated smart-card configuration used by all experiments.
  static TechParams smartcard_025um() { return TechParams{}; }

  /// Same technology with adjacent-line bus coupling enabled (ablation).
  static TechParams smartcard_025um_with_coupling(double c_coupling = 20e-15) {
    TechParams p;
    p.c_bus_coupling = c_coupling;
    return p;
  }

  /// Energy of one rising transition on a line of capacitance `c` (joules).
  [[nodiscard]] double line_energy(double c) const { return c * vdd * vdd; }
};

}  // namespace emask::energy
