// Component taxonomy for per-cycle energy accounting.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace emask::energy {

enum class Component : int {
  kClockTree,
  kFetchArray,
  kInstrBus,
  kDecode,
  kRegFile,
  kAdder,
  kLogicUnit,
  kShifter,
  kXorUnit,
  kPipeIfId,
  kPipeIdEx,
  kPipeExMem,
  kPipeMemWb,
  kAddrBus,
  kDataBus,
  kMemArray,
  kDummyLoad,
  kCount,
};

inline constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(Component::kCount);

[[nodiscard]] std::string_view component_name(Component c);

/// Per-component energy totals, in joules.
class Breakdown {
 public:
  void add(Component c, double joules) {
    values_[static_cast<std::size_t>(c)] += joules;
  }
  [[nodiscard]] double get(Component c) const {
    return values_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum;
  }
  void clear() { values_.fill(0.0); }

 private:
  std::array<double, kNumComponents> values_{};
};

}  // namespace emask::energy
