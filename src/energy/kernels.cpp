#include "energy/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace emask::energy {
namespace {

#ifndef EMASK_DEFAULT_HAMMING_BACKEND
#define EMASK_DEFAULT_HAMMING_BACKEND kBitslice
#endif

std::atomic<HammingBackend>& backend_state() {
  static std::atomic<HammingBackend> state = [] {
    HammingBackend b = HammingBackend::EMASK_DEFAULT_HAMMING_BACKEND;
    if (const char* env = std::getenv("EMASK_HAMMING_BACKEND")) {
      b = hamming_backend_from_name(env);
    }
    return b;
  }();
  return state;
}

}  // namespace

HammingBackend hamming_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_hamming_backend(HammingBackend backend) {
  backend_state().store(backend, std::memory_order_relaxed);
}

HammingBackend hamming_backend_from_name(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return HammingBackend::kScalar;
  if (std::strcmp(name, "bitslice") == 0) return HammingBackend::kBitslice;
  if (std::strcmp(name, "verify") == 0) return HammingBackend::kVerify;
  throw std::invalid_argument(
      std::string("unknown Hamming backend '") + name +
      "' (expected scalar, bitslice, or verify)");
}

namespace detail {

void kernel_mismatch(const char* kernel) {
  // A divergence here means the word-parallel kernel and the scalar loop
  // disagree on an integer count — a correctness bug, never data-driven.
  std::fprintf(stderr, "energy: %s backend mismatch (verify mode)\n",
               kernel);
  std::abort();
}

}  // namespace detail
}  // namespace emask::energy
