#include "energy/model.hpp"

namespace emask::energy {

namespace {
constexpr std::array<std::string_view, kNumComponents> kComponentNames = {
    "clock_tree", "fetch_array", "instr_bus", "decode",      "reg_file",
    "adder",      "logic_unit",  "shifter",   "xor_unit",    "pipe_if_id",
    "pipe_id_ex", "pipe_ex_mem", "pipe_mem_wb", "addr_bus",  "data_bus",
    "mem_array",  "dummy_load"};
}  // namespace

std::string_view component_name(Component c) {
  return kComponentNames[static_cast<std::size_t>(c)];
}

ProcessorEnergyModel::ProcessorEnergyModel(const TechParams& params)
    : params_(params),
      instr_bus_(33, params.line_energy(params.c_instr_bus_line),
                 params.line_energy(params.c_bus_coupling)),
      addr_bus_(32, params.line_energy(params.c_addr_bus_line),
                params.line_energy(params.c_bus_coupling)),
      data_bus_(32, params.line_energy(params.c_data_bus_line),
                params.line_energy(params.c_bus_coupling)),
      latch_(params.line_energy(params.c_latch_bit)),
      adder_(params.line_energy(params.c_adder_node), params.e_unit_base),
      logic_(params.line_energy(params.c_logic_node), params.e_unit_base),
      shifter_(params.line_energy(params.c_shift_node), params.e_unit_base),
      xor_unit_(params.c_xor_node, params.vdd) {}

double ProcessorEnergyModel::cycle(const CycleActivity& a) {
  // Accumulate this cycle's energy locally (exact, history-independent sum)
  // and fold it into the running per-component breakdown.  Computing the
  // cycle energy as a difference of running totals would contaminate it
  // with floating-point rounding that depends on the accumulated history.
  double cycle_energy = 0.0;
  const auto charge = [&](Component c, double joules) {
    cycle_energy += joules;
    breakdown_.add(c, joules);
  };

  // Clock tree and global control run every cycle.
  charge(Component::kClockTree, params_.e_clock_tree);

  // IF: instruction memory array (data-independent) + instruction bus
  // (depends on the bit-level Hamming relationship of consecutive fetches).
  if (a.fetch) {
    charge(Component::kFetchArray, params_.e_fetch_array);
    // All 33 lines of the fetch word, including the secure bit (bit 32):
    // a secure/normal instruction boundary toggles that line and draws
    // energy like any other — exactly the per-policy fetch difference a
    // masked program exhibits.
    charge(Component::kInstrBus,
                   instr_bus_.transfer(a.fetch_bits & 0x1FFFFFFFFull,
                                       /*secure=*/false));
  }

  // ID: decoder + register-file reads (both data-independent; the register
  // file "can be considered as another memory array", Sec. 4.2).
  if (a.decode) charge(Component::kDecode, params_.e_decode);
  if (a.rf_reads > 0) {
    charge(Component::kRegFile, params_.e_rf_read * a.rf_reads);
  }

  // EX: one dynamic functional unit evaluates.
  if (a.ex.valid) {
    switch (a.ex.unit) {
      case isa::FuncUnit::kAdder:
        charge(Component::kAdder,
                       adder_.evaluate(a.ex.result, a.ex.secure));
        break;
      case isa::FuncUnit::kLogic:
        charge(Component::kLogicUnit,
                       logic_.evaluate(a.ex.result, a.ex.secure));
        break;
      case isa::FuncUnit::kShifter:
        charge(Component::kShifter,
                       shifter_.evaluate(a.ex.result, a.ex.secure));
        break;
      case isa::FuncUnit::kXorUnit:
        // Driven by the gate-level pre-charged dual-rail circuit of Fig. 5.
        charge(Component::kXorUnit,
                       xor_unit_.cycle(a.ex.a, a.ex.b, a.ex.secure).total());
        break;
      case isa::FuncUnit::kNone:
        break;
    }
  }

  // MEM: SRAM array is data-independent (differential reads), but the
  // address and data buses between the core and the array are not.
  if (a.mem.read || a.mem.write) {
    charge(Component::kMemArray,
                   a.mem.read ? params_.e_mem_read : params_.e_mem_write);
    charge(Component::kAddrBus,
                   addr_bus_.transfer(a.mem.address, a.mem.secure));
    charge(Component::kDataBus,
                   data_bus_.transfer(a.mem.data, a.mem.secure));
  }

  // WB: register-file write (data-independent) and, for secure
  // instructions, the dummy capacitive load that terminates the
  // complementary rail (Sec. 4.2, Fig. 3).
  if (a.rf_write) charge(Component::kRegFile, params_.e_rf_write);
  if (a.wb_secure) charge(Component::kDummyLoad, params_.e_dummy_load);

  // Pipeline registers written at the clock edge.
  const auto latch = [&](Component c, const LatchWrite& w) {
    if (w.wrote) charge(c, latch_.write(w.payload, w.width, w.secure));
  };
  latch(Component::kPipeIfId, a.if_id);
  latch(Component::kPipeIdEx, a.id_ex);
  latch(Component::kPipeExMem, a.ex_mem);
  latch(Component::kPipeMemWb, a.mem_wb);

  return cycle_energy;
}

}  // namespace emask::energy
