#include "energy/model.hpp"

namespace emask::energy {

namespace {
constexpr std::array<std::string_view, kNumComponents> kComponentNames = {
    "clock_tree", "fetch_array", "instr_bus", "decode",      "reg_file",
    "adder",      "logic_unit",  "shifter",   "xor_unit",    "pipe_if_id",
    "pipe_id_ex", "pipe_ex_mem", "pipe_mem_wb", "addr_bus",  "data_bus",
    "mem_array",  "dummy_load"};
}  // namespace

std::string_view component_name(Component c) {
  return kComponentNames[static_cast<std::size_t>(c)];
}

ProcessorEnergyModel::ProcessorEnergyModel(const TechParams& params,
                                           const HidingConfig& hiding)
    : params_(params),
      hiding_(hiding),
      rng_(hiding.seed),
      instr_bus_(33, params.line_energy(params.c_instr_bus_line),
                 params.line_energy(params.c_bus_coupling)),
      addr_bus_(32, params.line_energy(params.c_addr_bus_line),
                params.line_energy(params.c_bus_coupling)),
      data_bus_(32, params.line_energy(params.c_data_bus_line),
                params.line_energy(params.c_bus_coupling)),
      latch_(params.line_energy(params.c_latch_bit)),
      adder_(params.line_energy(params.c_adder_node), params.e_unit_base),
      logic_(params.line_energy(params.c_logic_node), params.e_unit_base),
      shifter_(params.line_energy(params.c_shift_node), params.e_unit_base),
      xor_unit_(params.c_xor_node, params.vdd) {}

double ProcessorEnergyModel::cycle(const CycleActivity& a) {
  // Accumulate this cycle's energy locally (exact, history-independent sum)
  // and fold it into the running per-component breakdown.  Computing the
  // cycle energy as a difference of running totals would contaminate it
  // with floating-point rounding that depends on the accumulated history.
  double cycle_energy = 0.0;
  const auto charge = [&](Component c, double joules) {
    cycle_energy += joules;
    breakdown_.add(c, joules);
  };

  // Hiding transforms (see HidingMode): WDDL forces every structure onto
  // its dual-rail secure path; random precharge recharges each structure
  // to a fresh word from the per-run stream.  Words are drawn only for
  // active structures, in the fixed order they appear below, so the
  // stream consumption is a deterministic function of the run.
  const bool wddl = hiding_.mode == HidingMode::kConstant;
  const bool randomize = hiding_.mode == HidingMode::kRandomPrecharge;
  const auto rand_word = [&] { return rng_.next_u64(); };

  // Clock tree and global control run every cycle.
  charge(Component::kClockTree, params_.e_clock_tree);

  // IF: instruction memory array (data-independent) + instruction bus
  // (depends on the bit-level Hamming relationship of consecutive fetches).
  if (a.fetch) {
    charge(Component::kFetchArray, params_.e_fetch_array);
    // All 33 lines of the fetch word, including the secure bit (bit 32):
    // a secure/normal instruction boundary toggles that line and draws
    // energy like any other — exactly the per-policy fetch difference a
    // masked program exhibits.
    const std::uint64_t bits = a.fetch_bits & 0x1FFFFFFFFull;
    charge(Component::kInstrBus,
           wddl        ? instr_bus_.transfer(bits, /*secure=*/true)
           : randomize ? instr_bus_.transfer_random(bits, rand_word())
                       : instr_bus_.transfer(bits, /*secure=*/false));
  }

  // ID: decoder + register-file reads (both data-independent; the register
  // file "can be considered as another memory array", Sec. 4.2).
  if (a.decode) charge(Component::kDecode, params_.e_decode);
  if (a.rf_reads > 0) {
    charge(Component::kRegFile, params_.e_rf_read * a.rf_reads);
  }

  // EX: one dynamic functional unit evaluates.  Under WDDL every unit
  // runs both rails (constant 32 node recharges); under random precharge
  // an unmasked result is evaluated against a random precharge word, so
  // the node count popcount(result ^ r) is value-independent on average.
  if (a.ex.valid) {
    const bool ex_secure = a.ex.secure || wddl;
    const auto unit_energy = [&](const DynamicUnit& unit) {
      if (ex_secure) return unit.evaluate(a.ex.result, true);
      if (randomize) {
        return unit.evaluate(
            a.ex.result ^ static_cast<std::uint32_t>(rand_word()), false);
      }
      return unit.evaluate(a.ex.result, false);
    };
    switch (a.ex.unit) {
      case isa::FuncUnit::kAdder:
        charge(Component::kAdder, unit_energy(adder_));
        break;
      case isa::FuncUnit::kLogic:
        charge(Component::kLogicUnit, unit_energy(logic_));
        break;
      case isa::FuncUnit::kShifter:
        charge(Component::kShifter, unit_energy(shifter_));
        break;
      case isa::FuncUnit::kXorUnit: {
        // Driven by the gate-level pre-charged dual-rail circuit of Fig. 5.
        std::uint32_t xa = a.ex.a;
        std::uint32_t xb = a.ex.b;
        if (randomize && !ex_secure) {
          xa ^= static_cast<std::uint32_t>(rand_word());
          xb ^= static_cast<std::uint32_t>(rand_word());
        }
        charge(Component::kXorUnit,
               xor_unit_.cycle(xa, xb, ex_secure).total());
        break;
      }
      case isa::FuncUnit::kNone:
        break;
    }
  }

  // MEM: SRAM array is data-independent (differential reads), but the
  // address and data buses between the core and the array are not.
  if (a.mem.read || a.mem.write) {
    charge(Component::kMemArray,
                   a.mem.read ? params_.e_mem_read : params_.e_mem_write);
    const bool mem_secure = a.mem.secure || wddl;
    if (randomize && !mem_secure) {
      charge(Component::kAddrBus,
             addr_bus_.transfer_random(a.mem.address, rand_word()));
      charge(Component::kDataBus,
             data_bus_.transfer_random(a.mem.data, rand_word()));
    } else {
      charge(Component::kAddrBus,
             addr_bus_.transfer(a.mem.address, mem_secure));
      charge(Component::kDataBus,
             data_bus_.transfer(a.mem.data, mem_secure));
    }
  }

  // WB: register-file write (data-independent) and, for secure
  // instructions, the dummy capacitive load that terminates the
  // complementary rail (Sec. 4.2, Fig. 3).  Under WDDL every retiring
  // instruction terminates a complementary rail, so the dummy load is
  // paid whenever the WB stage is occupied — data-independent either way.
  if (a.rf_write) charge(Component::kRegFile, params_.e_rf_write);
  if (wddl ? a.mem_wb.wrote : a.wb_secure) {
    charge(Component::kDummyLoad, params_.e_dummy_load);
  }

  // Pipeline registers written at the clock edge.
  const auto latch = [&](Component c, const LatchWrite& w) {
    if (!w.wrote) return;
    const bool secure = w.secure || wddl;
    if (randomize && !secure) {
      charge(c, latch_.write(w.payload ^ rand_word(), w.width, false));
      return;
    }
    charge(c, latch_.write(w.payload, w.width, secure));
  };
  latch(Component::kPipeIfId, a.if_id);
  latch(Component::kPipeIdEx, a.id_ex);
  latch(Component::kPipeExMem, a.ex_mem);
  latch(Component::kPipeMemWb, a.mem_wb);

  return cycle_energy;
}

}  // namespace emask::energy
