// Per-cycle microarchitectural activity report: the interface between the
// pipeline simulator (producer) and the energy model (consumer).
//
// The simulator fills one CycleActivity per clock; the energy model converts
// it into joules.  Keeping the two decoupled mirrors SimplePower's split
// between the performance simulator and the energy estimation back end, and
// lets tests drive the energy model with synthetic activity.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace emask::energy {

/// A pipeline-register write: `payload` is the data-dependent portion of the
/// latch contents (up to 64 bits meaningful, given by `width`).
struct LatchWrite {
  bool wrote = false;
  bool secure = false;   // latch operates in dual-rail pre-charged mode
  std::uint64_t payload = 0;
  int width = 64;
};

/// Functional-unit activity in EX.
struct ExecActivity {
  bool valid = false;
  isa::FuncUnit unit = isa::FuncUnit::kNone;
  bool secure = false;
  std::uint32_t a = 0;       // operand A
  std::uint32_t b = 0;       // operand B
  std::uint32_t result = 0;  // unit output
};

/// Data-memory activity in MEM.
struct MemActivity {
  bool read = false;
  bool write = false;
  bool secure = false;       // secure load/store: dual-rail address+data path
  std::uint32_t address = 0;
  std::uint32_t data = 0;    // word read or written
};

struct CycleActivity {
  // IF stage.
  bool fetch = false;
  std::uint64_t fetch_bits = 0;  // 33-bit encoded instruction word
  std::uint32_t fetch_pc = 0;    // instruction index (metadata: lets tools
                                 // map cycles to program phases)

  // ID stage.
  bool decode = false;
  int rf_reads = 0;

  // EX stage.
  ExecActivity ex;

  // MEM stage.
  MemActivity mem;

  // WB stage.
  bool rf_write = false;
  bool wb_secure = false;  // complementary rail terminated (dummy load)
  bool retired = false;    // an instruction completed this cycle
  std::uint32_t retire_pc = 0;  // its instruction index (metadata)

  // Pipeline registers written at the end of this cycle.
  LatchWrite if_id;
  LatchWrite id_ex;
  LatchWrite ex_mem;
  LatchWrite mem_wb;
};

}  // namespace emask::energy
