// Transition-sensitive processor energy model (SimplePower-style back end).
//
// Consumes one CycleActivity per clock from the pipeline simulator and
// produces energy in joules, split by component.  See params.hpp for the
// modeling conventions and calibration targets.
#pragma once

#include <cstdint>

#include "dualrail/xor_unit.hpp"
#include "energy/activity.hpp"
#include "energy/components.hpp"
#include "energy/maskable.hpp"
#include "energy/params.hpp"

namespace emask::energy {

class ProcessorEnergyModel {
 public:
  explicit ProcessorEnergyModel(const TechParams& params = TechParams::smartcard_025um());

  /// Accounts one clock cycle of activity; returns this cycle's energy in
  /// joules (also accumulated into the running breakdown).
  double cycle(const CycleActivity& activity);

  [[nodiscard]] const Breakdown& breakdown() const { return breakdown_; }
  [[nodiscard]] double total_joules() const { return breakdown_.total(); }
  [[nodiscard]] const TechParams& params() const { return params_; }

 private:
  TechParams params_;
  Breakdown breakdown_;

  MaskableBus instr_bus_;
  MaskableBus addr_bus_;
  MaskableBus data_bus_;
  MaskableLatch latch_;
  DynamicUnit adder_;
  DynamicUnit logic_;
  DynamicUnit shifter_;
  dualrail::DualRailXor32 xor_unit_;  // the gate-level circuit of Fig. 5
};

}  // namespace emask::energy
