// Transition-sensitive processor energy model (SimplePower-style back end).
//
// Consumes one CycleActivity per clock from the pipeline simulator and
// produces energy in joules, split by component.  See params.hpp for the
// modeling conventions and calibration targets.
#pragma once

#include <cstdint>

#include "dualrail/xor_unit.hpp"
#include "energy/activity.hpp"
#include "energy/components.hpp"
#include "energy/maskable.hpp"
#include "energy/params.hpp"
#include "util/rng.hpp"

namespace emask::energy {

/// Whole-processor hiding transform applied on top of the per-instruction
/// secure bits (which still work as before; hiding composes with masking).
enum class HidingMode {
  kNone,
  /// WDDL-style precharge wave: every bus, latch and functional unit runs
  /// its dual-rail secure path every cycle, instruction secure bit or not.
  /// Per-cycle energy is data-independent (modulo the adjacent-line
  /// coupling residue MaskableBus models in secure mode).
  kConstant,
  /// Every structure precharges to a fresh random word from a per-run
  /// deterministic util::Rng stream and pays for the lines that differ:
  /// popcount(value ^ r) is independent of `value` for uniform r, so the
  /// first-order value leakage averages away.  Instructions the masking
  /// policy already secures keep their constant dual-rail path.
  kRandomPrecharge,
};

/// Per-run hiding configuration; `seed` feeds the random-precharge stream
/// and must be a pure function of the run's inputs so BatchRunner's
/// bit-identity contract holds at any thread count.
struct HidingConfig {
  HidingMode mode = HidingMode::kNone;
  std::uint64_t seed = 0;
};

class ProcessorEnergyModel {
 public:
  explicit ProcessorEnergyModel(
      const TechParams& params = TechParams::smartcard_025um(),
      const HidingConfig& hiding = HidingConfig{});

  /// Accounts one clock cycle of activity; returns this cycle's energy in
  /// joules (also accumulated into the running breakdown).
  double cycle(const CycleActivity& activity);

  [[nodiscard]] const Breakdown& breakdown() const { return breakdown_; }
  [[nodiscard]] double total_joules() const { return breakdown_.total(); }
  [[nodiscard]] const TechParams& params() const { return params_; }
  [[nodiscard]] const HidingConfig& hiding() const { return hiding_; }

 private:
  TechParams params_;
  HidingConfig hiding_;
  util::Rng rng_{0};  // random-precharge stream; reseeded per run
  Breakdown breakdown_;

  MaskableBus instr_bus_;
  MaskableBus addr_bus_;
  MaskableBus data_bus_;
  MaskableLatch latch_;
  DynamicUnit adder_;
  DynamicUnit logic_;
  DynamicUnit shifter_;
  dualrail::DualRailXor32 xor_unit_;  // the gate-level circuit of Fig. 5
};

}  // namespace emask::energy
