// 32-bit dual-rail pre-charged ripple-carry adder.
//
// The paper's Fig. 3 routes the *address calculation* through complementary
// logic for secure loads/stores ("ALU Address Calculation" with a parallel
// complementary path).  This is the gate-level model of that structure,
// companion to the XOR unit of Fig. 5: per bit, dynamic nodes for the sum
// and the carry; the complementary rail computes their negations.  In
// secure mode exactly one node of every true/complement pair discharges
// per evaluation — 64 discharges, data-independent — while the normal
// (gated) mode discharges popcount(sum) + popcount(carries) nodes.
//
// The processor energy model keeps its calibrated analytic adder; this
// circuit exists to validate the "secure adder energy is constant"
// assumption at gate level (see dualrail_test and the Fig. 3 discussion in
// docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <vector>

#include "dualrail/dynamic_gate.hpp"
#include "dualrail/xor_unit.hpp"  // CycleEnergy

namespace emask::dualrail {

class DualRailAdder32 {
 public:
  DualRailAdder32(double node_cap_farads, double vdd);

  /// One pre-charge + evaluate cycle computing a + b.
  CycleEnergy cycle(std::uint32_t a, std::uint32_t b, bool secure);

  [[nodiscard]] std::uint32_t result() const { return result_; }
  [[nodiscard]] int discharged_nodes() const { return discharged_; }

 private:
  std::vector<DynamicNode> sum_true_;
  std::vector<DynamicNode> sum_comp_;
  std::vector<DynamicNode> carry_true_;
  std::vector<DynamicNode> carry_comp_;
  std::uint32_t result_ = 0;
  int discharged_ = 0;
};

}  // namespace emask::dualrail
