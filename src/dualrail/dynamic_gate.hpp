// Dynamic (pre-charged / domino style) logic node model.
//
// The paper's countermeasure hardware (Fig. 5) is built from dynamic gates:
// in the first clock phase (v = 0) the output node is pre-charged to 1; in
// the evaluation phase (v = 1) the pull-down network conditionally
// discharges it.  Supply energy is drawn whenever a node is re-charged after
// having been discharged, so per-cycle energy is
//     E = C_node * Vdd^2 * (#nodes recharged this cycle).
// A dual-rail pair (true + complement) guarantees exactly one of the two
// nodes discharges every evaluation, making the count — and the energy —
// input-independent.
#pragma once

namespace emask::dualrail {

/// One pre-charged output node.  Tracks whether the node currently holds
/// charge and meters the supply energy drawn by pre-charging.
class DynamicNode {
 public:
  /// `node_cap_farads` is the output node capacitance, `vdd` the supply.
  DynamicNode(double node_cap_farads, double vdd)
      : recharge_energy_joules_(node_cap_farads * vdd * vdd) {}

  /// Pre-charge phase: recharges the node if it was discharged.
  /// Returns the supply energy drawn, in joules.
  double precharge() {
    if (charged_) return 0.0;
    charged_ = true;
    return recharge_energy_joules_;
  }

  /// Evaluation phase: `pulldown_active` is the value of the pull-down
  /// network (true = node discharges).  Discharging draws no supply energy
  /// (the charge flows to ground); the cost is paid at the next pre-charge.
  void evaluate(bool pulldown_active) {
    if (pulldown_active) charged_ = false;
  }

  [[nodiscard]] bool charged() const { return charged_; }

  /// Logic value at the end of evaluation: 1 if still charged.
  [[nodiscard]] bool output() const { return charged_; }

 private:
  double recharge_energy_joules_;
  bool charged_ = true;  // powered up in the pre-charged state
};

}  // namespace emask::dualrail
