#include "dualrail/xor_unit.hpp"

#include "util/bitops.hpp"

namespace emask::dualrail {

DualRailXor32::DualRailXor32(double node_cap_farads, double vdd) {
  true_rail_.reserve(32);
  complement_rail_.reserve(32);
  for (int i = 0; i < 32; ++i) {
    true_rail_.emplace_back(node_cap_farads, vdd);
    complement_rail_.emplace_back(node_cap_farads, vdd);
  }
}

CycleEnergy DualRailXor32::cycle(std::uint32_t a, std::uint32_t b,
                                 bool secure) {
  CycleEnergy e;
  // Phase 1 (v = 0): pre-charge.  The complementary rail is pre-charged too;
  // if it was never discharged (gated cycles) this costs nothing.
  for (int i = 0; i < 32; ++i) {
    e.precharge += true_rail_[static_cast<std::size_t>(i)].precharge();
    e.precharge += complement_rail_[static_cast<std::size_t>(i)].precharge();
  }
  // Phase 2 (v = 1): evaluate.  The true rail discharges where a^b == 1.
  // The complementary rail's clock is "secure & v": it only evaluates for
  // secure instructions, where it discharges where a^b == 0.
  const std::uint32_t x = a ^ b;
  discharged_ = 0;
  for (unsigned i = 0; i < 32; ++i) {
    const bool bit = util::bit_of(x, i) != 0;
    true_rail_[i].evaluate(bit);
    if (bit) ++discharged_;
    if (secure) {
      complement_rail_[i].evaluate(!bit);
      if (!bit) ++discharged_;
    }
  }
  // Dynamic-logic convention: output reads 1 where the node discharged, via
  // the output inverter; the charged node reads 0.
  std::uint32_t out = 0;
  for (unsigned i = 0; i < 32; ++i) {
    if (!true_rail_[i].output()) out |= (1u << i);
  }
  result_ = out;
  return e;
}

}  // namespace emask::dualrail
