#include "dualrail/adder_unit.hpp"

#include "util/bitops.hpp"

namespace emask::dualrail {

DualRailAdder32::DualRailAdder32(double node_cap_farads, double vdd) {
  for (int i = 0; i < 32; ++i) {
    sum_true_.emplace_back(node_cap_farads, vdd);
    sum_comp_.emplace_back(node_cap_farads, vdd);
    carry_true_.emplace_back(node_cap_farads, vdd);
    carry_comp_.emplace_back(node_cap_farads, vdd);
  }
}

CycleEnergy DualRailAdder32::cycle(std::uint32_t a, std::uint32_t b,
                                   bool secure) {
  CycleEnergy e;
  for (int i = 0; i < 32; ++i) {
    e.precharge += sum_true_[static_cast<std::size_t>(i)].precharge();
    e.precharge += sum_comp_[static_cast<std::size_t>(i)].precharge();
    e.precharge += carry_true_[static_cast<std::size_t>(i)].precharge();
    e.precharge += carry_comp_[static_cast<std::size_t>(i)].precharge();
  }
  // Evaluate: ripple the carries, discharging nodes as values resolve.
  discharged_ = 0;
  std::uint32_t carry = 0;
  std::uint32_t sum = 0;
  for (unsigned i = 0; i < 32; ++i) {
    const std::uint32_t ai = util::bit_of(a, i);
    const std::uint32_t bi = util::bit_of(b, i);
    const std::uint32_t si = ai ^ bi ^ carry;
    const std::uint32_t ci =
        (ai & bi) | (ai & carry) | (bi & carry);  // carry out of bit i
    sum |= si << i;
    sum_true_[i].evaluate(si != 0);
    carry_true_[i].evaluate(ci != 0);
    discharged_ += static_cast<int>(si + ci);
    if (secure) {
      sum_comp_[i].evaluate(si == 0);
      carry_comp_[i].evaluate(ci == 0);
      discharged_ += static_cast<int>((1 - si) + (1 - ci));
    }
    carry = ci;
  }
  result_ = sum;
  return e;
}

}  // namespace emask::dualrail
