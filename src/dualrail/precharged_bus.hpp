// Bus models: a conventional static bus and the paper's pre-charged
// dual-rail bus.
//
// Conventional bus: energy is drawn when a line is driven 0 -> 1
// (E = C_wire * Vdd^2 per rising line), so it depends on the Hamming
// relationship between consecutively transmitted words.  The paper's worked
// example: a 1 pF wire at 2.5 V costs 6.25 pJ more when a bit goes 0,1 in
// successive cycles than when it stays 0,0.
//
// Secure bus (paper Section 4.2): the 32 data lines are doubled to 64
// (normal + complement) and pre-charged to 1 in the first clock phase; in
// the evaluation phase exactly 32 lines discharge.  Every subsequent cycle
// therefore recharges exactly 32 lines: energy is constant and independent
// of the transmitted data.
#pragma once

#include <cstdint>

namespace emask::dualrail {

/// Conventional single-rail static bus of `width` lines.
class StaticBus {
 public:
  StaticBus(int width, double wire_cap_farads, double vdd)
      : width_(width), line_energy_joules_(wire_cap_farads * vdd * vdd) {}

  /// Drives `value` onto the bus; returns supply energy drawn (rising
  /// transitions only), in joules.
  double transfer(std::uint32_t value);

  [[nodiscard]] std::uint32_t last_value() const { return last_; }
  [[nodiscard]] int width() const { return width_; }

 private:
  int width_;
  double line_energy_joules_;
  std::uint32_t last_ = 0;
};

/// Pre-charged dual-rail bus: 2 * `width` physical lines.
class PrechargedDualRailBus {
 public:
  PrechargedDualRailBus(int width, double wire_cap_farads, double vdd)
      : width_(width), line_energy_joules_(wire_cap_farads * vdd * vdd) {}

  /// One full cycle: pre-charge all lines, then evaluate with `value`.
  /// Returns supply energy drawn, in joules — constant after the first
  /// cycle (width_ lines recharge per cycle, independent of `value`).
  double transfer(std::uint32_t value);

  /// Lines recharged during the last transfer (== width_ in steady state).
  [[nodiscard]] int last_recharged() const { return last_recharged_; }

 private:
  int width_;
  double line_energy_joules_;
  bool warm_ = false;  // false until the first evaluation has discharged
  int last_recharged_ = 0;
};

}  // namespace emask::dualrail
