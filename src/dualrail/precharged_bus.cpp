#include "dualrail/precharged_bus.hpp"

#include "util/bitops.hpp"

namespace emask::dualrail {

double StaticBus::transfer(std::uint32_t value) {
  const std::uint32_t mask =
      width_ >= 32 ? 0xFFFFFFFFu : ((1u << width_) - 1u);
  const std::uint32_t rising = (~last_ & value) & mask;
  last_ = value & mask;
  return line_energy_joules_ * util::popcount(rising);
}

double PrechargedDualRailBus::transfer(std::uint32_t value) {
  (void)value;  // by construction the energy does not depend on the data
  // Pre-charge phase: recharge the lines discharged last cycle.  In steady
  // state exactly `width_` of the 2*width_ lines discharged (one per
  // true/complement pair).  On the very first cycle nothing needs charging
  // (power-up leaves all lines high), so only the evaluation discharge
  // happens and the recharge cost appears from the second cycle on.
  last_recharged_ = warm_ ? width_ : 0;
  warm_ = true;
  return line_energy_joules_ * last_recharged_;
}

}  // namespace emask::dualrail
