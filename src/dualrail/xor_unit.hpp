// 32-bit dual-rail pre-charged XOR unit (paper Fig. 5).
//
// The required rail computes a_i XOR b_i per bit with a dynamic gate; the
// complementary rail computes NOT(a_i XOR b_i).  When an instruction's
// secure bit is set, both rails evaluate, so exactly 32 of the 64 nodes
// discharge each cycle and the recharge energy is a constant
// 32 * C_node * Vdd^2 regardless of the operand values.  When the secure bit
// is clear, the complementary rail's evaluation clock is gated off
// ("secure & v" in the paper's figure), halving the energy but making it
// data-dependent again.
#pragma once

#include <cstdint>
#include <vector>

#include "dualrail/dynamic_gate.hpp"

namespace emask::dualrail {

/// Per-cycle energy report of a dual-rail unit, in joules.
struct CycleEnergy {
  double precharge = 0.0;
  double evaluate = 0.0;  // conduction losses are folded into precharge cost
  [[nodiscard]] double total() const { return precharge + evaluate; }
};

class DualRailXor32 {
 public:
  DualRailXor32(double node_cap_farads, double vdd);

  /// Runs one full clock cycle (pre-charge phase then evaluation phase) with
  /// operands `a` and `b`.  `secure` enables the complementary rail.
  /// Returns the supply energy drawn this cycle.
  CycleEnergy cycle(std::uint32_t a, std::uint32_t b, bool secure);

  /// Result latched at the end of the last evaluation (true rail).
  [[nodiscard]] std::uint32_t result() const { return result_; }

  /// Number of nodes (true + complement rails) discharged during the last
  /// evaluation.  With `secure` this is always 32.
  [[nodiscard]] int discharged_nodes() const { return discharged_; }

 private:
  std::vector<DynamicNode> true_rail_;        // 32 nodes: a ^ b
  std::vector<DynamicNode> complement_rail_;  // 32 nodes: ~(a ^ b)
  std::uint32_t result_ = 0;
  int discharged_ = 0;
};

}  // namespace emask::dualrail
