#include "util/json.hpp"

#include <cstdio>

namespace emask::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_item() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": on the same line
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ << ',';
    out_ << '\n';
    indent();
    stack_.back().has_items = true;
  }
}

void JsonWriter::begin_object() {
  before_item();
  out_ << '{';
  stack_.push_back({false, false});
}

void JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_item();
  out_ << '[';
  stack_.push_back({true, false});
}

void JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(const std::string& name) {
  before_item();
  out_ << '"' << escape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_item();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(double v) {
  before_item();
  out_ << format_double(v);
}

void JsonWriter::value(std::uint64_t v) {
  before_item();
  out_ << v;
}

void JsonWriter::value(int v) {
  before_item();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_item();
  out_ << (v ? "true" : "false");
}

void JsonWriter::finish() { out_ << '\n'; }

}  // namespace emask::util
