#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/argparse.hpp"

namespace emask::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_item() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": on the same line
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ << ',';
    out_ << '\n';
    indent();
    stack_.back().has_items = true;
  }
}

void JsonWriter::begin_object() {
  before_item();
  out_ << '{';
  stack_.push_back({false, false});
}

void JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_item();
  out_ << '[';
  stack_.push_back({true, false});
}

void JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(const std::string& name) {
  before_item();
  out_ << '"' << escape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_item();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(double v) {
  before_item();
  // "nan"/"inf" are not JSON; null is the documented non-finite encoding.
  out_ << (std::isfinite(v) ? format_double(v) : "null");
}

void JsonWriter::value(std::uint64_t v) {
  before_item();
  out_ << v;
}

void JsonWriter::value(int v) {
  before_item();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_item();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_item();
  out_ << "null";
}

void JsonWriter::finish() { out_ << '\n'; }

// ---------------------------------------------------------------- parser

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.type = JsonValue::Type::kBool;
          v.boolean = true;
          return v;
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.type = JsonValue::Type::kBool;
          return v;
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (BMP only — all JsonWriter ever emits).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("invalid number");
    if (int_digits > 1 && text_[int_start] == '0') {
      fail("invalid number (leading zero)");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number (no digits after '.')");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number (empty exponent)");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw JsonError(std::string("json: expected ") + wanted + ", got " +
                  kNames[static_cast<int>(got)]);
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type != Type::kObject) type_error("object", type);
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonError("json: missing key '" + key + "'");
  return *v;
}

const std::string& JsonValue::as_string() const {
  if (type != Type::kString) type_error("string", type);
  return text;
}

bool JsonValue::as_bool() const {
  if (type != Type::kBool) type_error("bool", type);
  return boolean;
}

std::uint64_t JsonValue::as_u64() const {
  if (type != Type::kNumber) type_error("number", type);
  try {
    return ArgParser::parse_u64(text, "json number");
  } catch (const ArgError& e) {
    throw JsonError(e.what());
  }
}

long long JsonValue::as_int() const {
  if (type != Type::kNumber) type_error("number", type);
  try {
    return ArgParser::parse_int(text, "json number");
  } catch (const ArgError& e) {
    throw JsonError(e.what());
  }
}

double JsonValue::as_double() const {
  if (type != Type::kNumber) type_error("number", type);
  try {
    return ArgParser::parse_double(text, "json number");
  } catch (const ArgError& e) {
    throw JsonError(e.what());
  }
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace emask::util
