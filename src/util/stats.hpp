// Streaming statistics used by the side-channel analysis toolkit.
#pragma once

#include <cstddef>
#include <vector>

namespace emask::util {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a vector; 0 for an empty vector.
[[nodiscard]] double mean_of(const std::vector<double>& xs);

/// Maximum absolute element; 0 for an empty vector.
[[nodiscard]] double max_abs(const std::vector<double>& xs);

/// Index of the maximum absolute element; 0 for an empty vector.
[[nodiscard]] std::size_t argmax_abs(const std::vector<double>& xs);

/// Pearson correlation of two equally sized vectors; 0 if degenerate.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Welch's t statistic between two accumulated groups; 0 if degenerate.
/// This is the TVLA-style statistic used to assess leakage significance.
[[nodiscard]] double welch_t(const RunningStats& g0, const RunningStats& g1);

}  // namespace emask::util
