// Small filesystem IO helpers shared by every writer that targets a
// user-supplied path (campaign artifacts, bench series, reports).
//
// The contract they enforce: a missing parent directory is created, an
// unwritable path fails loudly with the path in the message, and a partial
// write never passes silently — callers close through `close_or_throw` (or
// check the stream themselves after flushing).
#pragma once

#include <fstream>
#include <string>

namespace emask::util {

/// Opens `path` for writing (binary, truncate), creating any missing
/// parent directories first.  Throws std::runtime_error naming the path
/// when the directory cannot be created or the file cannot be opened —
/// never returns a silently-bad stream.
[[nodiscard]] std::ofstream open_for_write(const std::string& path);

/// Flushes and error-checks `out`; throws std::runtime_error naming
/// `path` if any write (including earlier buffered ones) failed.  The
/// close half of open_for_write's no-silent-truncation contract.
void close_or_throw(std::ofstream& out, const std::string& path);

/// Reads a whole file (binary); throws std::runtime_error naming the path
/// when it cannot be opened or read.
[[nodiscard]] std::string read_text_file(const std::string& path);

}  // namespace emask::util
