#include "util/argparse.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace emask::util {
namespace {

[[noreturn]] void bad_value(const std::string& what, const std::string& kind,
                            const std::string& text) {
  throw ArgError(what + ": expected " + kind + ", got '" + text + "'");
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis)) {}

void ArgParser::add(Option option) {
  options_.push_back(std::move(option));
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const Option& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

void ArgParser::flag(const std::string& name, bool* out,
                     const std::string& help) {
  add({name, "", help, false, [out](const std::string&) { *out = true; }});
}

void ArgParser::opt_string(const std::string& name, std::string* out,
                           const std::string& value_name,
                           const std::string& help) {
  add({name, value_name, help, true,
       [out](const std::string& v) { *out = v; }});
}

void ArgParser::opt_int(const std::string& name, int* out,
                        const std::string& help) {
  add({name, "N", help, true, [name, out](const std::string& v) {
         *out = static_cast<int>(parse_int(v, "--" + name));
       }});
}

void ArgParser::opt_size(const std::string& name, std::size_t* out,
                         const std::string& help) {
  add({name, "N", help, true, [name, out](const std::string& v) {
         *out = static_cast<std::size_t>(parse_u64(v, "--" + name));
       }});
}

void ArgParser::opt_u64(const std::string& name, std::uint64_t* out,
                        const std::string& help) {
  add({name, "N", help, true, [name, out](const std::string& v) {
         *out = parse_u64(v, "--" + name);
       }});
}

void ArgParser::opt_hex(const std::string& name, std::uint64_t* out,
                        const std::string& help) {
  add({name, "HEX", help, true, [name, out](const std::string& v) {
         *out = parse_hex(v, "--" + name);
       }});
}

void ArgParser::opt_double(const std::string& name, double* out,
                           const std::string& help) {
  add({name, "X", help, true, [name, out](const std::string& v) {
         *out = parse_double(v, "--" + name);
       }});
}

void ArgParser::opt_choice(const std::string& name, std::string* out,
                           std::vector<std::string> choices,
                           const std::string& help) {
  std::string value_name;
  for (const std::string& c : choices) {
    if (!value_name.empty()) value_name += '|';
    value_name += c;
  }
  add({name, value_name, help, true,
       [name, out, choices = std::move(choices),
        value_name](const std::string& v) {
         for (const std::string& c : choices) {
           if (v == c) {
             *out = v;
             return;
           }
         }
         throw ArgError("--" + name + ": invalid value '" + v + "' (expected " +
                        value_name + ")");
       }});
}

void ArgParser::positional(const std::string& value_name, std::string* out,
                           bool required, const std::string& help) {
  positionals_.push_back({value_name, help, required, out});
}

void ArgParser::positional_rest(const std::string& value_name,
                                std::vector<std::string>* out,
                                const std::string& help) {
  rest_.push_back({value_name, help, out});
}

bool ArgParser::parse(int argc, char** argv) const {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      const std::string name =
          arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
      const Option* option = find(name);
      if (option == nullptr) {
        throw ArgError(program_ + ": unknown option '--" + name + "'");
      }
      if (option->takes_value) {
        if (eq == std::string::npos) {
          throw ArgError("--" + name + ": expected --" + name + "=" +
                         option->value_name);
        }
        option->apply(arg.substr(eq + 1));
      } else {
        if (eq != std::string::npos) {
          throw ArgError("--" + name + " does not take a value");
        }
        option->apply("");
      }
    } else {
      if (next_positional < positionals_.size()) {
        *positionals_[next_positional++].out = arg;
      } else if (!rest_.empty()) {
        rest_.front().out->push_back(arg);
      } else {
        throw ArgError(program_ + ": unexpected argument '" + arg + "'");
      }
    }
  }
  for (std::size_t p = next_positional; p < positionals_.size(); ++p) {
    if (positionals_[p].required) {
      throw ArgError(program_ + ": missing required argument <" +
                     positionals_[p].value_name + ">");
    }
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  if (!synopsis_.empty()) out << ' ' << synopsis_;
  out << '\n';
  for (const Positional& p : positionals_) {
    out << "  <" << p.value_name << ">";
    for (std::size_t pad = p.value_name.size() + 4; pad < 26; ++pad)
      out << ' ';
    out << p.help << (p.required ? "" : " (optional)") << '\n';
  }
  for (const RestPositional& p : rest_) {
    out << "  <" << p.value_name << ">...";
    for (std::size_t pad = p.value_name.size() + 7; pad < 26; ++pad)
      out << ' ';
    out << p.help << '\n';
  }
  for (const Option& o : options_) {
    std::string lhs = "--" + o.name;
    if (o.takes_value) lhs += "=" + o.value_name;
    out << "  " << lhs;
    for (std::size_t pad = lhs.size() + 2; pad < 26; ++pad) out << ' ';
    out << o.help << '\n';
  }
  out << "  --help                  print this message and exit\n";
  return out.str();
}

long long ArgParser::parse_int(const std::string& text,
                               const std::string& what) {
  if (text.empty()) bad_value(what, "integer", text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE) throw ArgError(what + ": value out of range: " + text);
  if (end == nullptr || *end != '\0') bad_value(what, "integer", text);
  return value;
}

std::uint64_t ArgParser::parse_u64(const std::string& text,
                                   const std::string& what) {
  if (text.empty() || text[0] == '-') {
    bad_value(what, "non-negative integer", text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE) throw ArgError(what + ": value out of range: " + text);
  if (end == nullptr || *end != '\0') {
    bad_value(what, "non-negative integer", text);
  }
  return value;
}

std::uint64_t ArgParser::parse_hex(const std::string& text,
                                   const std::string& what) {
  std::string digits = text;
  if (digits.rfind("0x", 0) == 0 || digits.rfind("0X", 0) == 0) {
    digits = digits.substr(2);
  }
  if (digits.empty()) bad_value(what, "hex integer", text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(digits.c_str(), &end, 16);
  if (errno == ERANGE) throw ArgError(what + ": value out of range: " + text);
  if (end == nullptr || *end != '\0') bad_value(what, "hex integer", text);
  return value;
}

double ArgParser::parse_double(const std::string& text,
                               const std::string& what) {
  if (text.empty()) bad_value(what, "number", text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE) throw ArgError(what + ": value out of range: " + text);
  if (end == nullptr || *end != '\0') bad_value(what, "number", text);
  return value;
}

}  // namespace emask::util
