// Minimal INI / TOML-subset parser for declarative configuration files
// (campaign specs, checkpoint records).  No external dependencies.
//
// Grammar:
//   * `[section]` headers; every key must live inside a section;
//   * `key = value` entries; values are taken verbatim after trimming,
//     or unquoted from `"..."` when the value is double-quoted;
//   * full-line comments start with `#` or `;`; a trailing comment is
//     recognized when `#`/`;` follows whitespace (quote the value to keep
//     a literal hash);
//   * duplicate section names and duplicate keys within a section are
//     hard errors — a spec with two `[axes]` sections is almost certainly
//     a merge accident, not an intent.
//
// Every error carries the 1-based source line.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace emask::util {

class IniError : public std::runtime_error {
 public:
  IniError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

class IniFile {
 public:
  struct Entry {
    std::string key;
    std::string value;
    int line = 0;
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
    int line = 0;

    [[nodiscard]] const Entry* find(const std::string& key) const;
  };

  /// Parses `text`; throws IniError on malformed input.
  [[nodiscard]] static IniFile parse(const std::string& text);

  /// Reads and parses a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static IniFile load_file(const std::string& path);

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }
  [[nodiscard]] const Section* find_section(const std::string& name) const;
  /// Value of section.key, or nullptr when absent.
  [[nodiscard]] const std::string* find(const std::string& section,
                                        const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const;

  /// Splits a comma-separated list value into trimmed items (empty items
  /// are preserved so callers can reject `a,,b` specifically).
  [[nodiscard]] static std::vector<std::string> split_list(
      const std::string& value);

  /// Strips leading/trailing whitespace.
  [[nodiscard]] static std::string trim(const std::string& s);

 private:
  std::vector<Section> sections_;
};

}  // namespace emask::util
