#include "util/csv.hpp"

#include <stdexcept>

namespace emask::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<double> values) {
  write_row(std::vector<double>(values));
}

void CsvWriter::flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("CsvWriter: write failure on " + path_);
  }
}

}  // namespace emask::util
