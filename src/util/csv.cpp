#include "util/csv.hpp"

#include <stdexcept>

#include "util/fsio.hpp"

namespace emask::util {

CsvWriter::CsvWriter(const std::string& path)
    : path_(path), out_(open_for_write(path)) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<double> values) {
  write_row(std::vector<double>(values));
}

void CsvWriter::flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("CsvWriter: write failure on " + path_);
  }
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw CsvError("no column '" + name + "' in CSV header");
}

CsvTable parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // the current record has content
  const auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_record = [&] {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
    cell_started = false;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;
        break;
      case '\r':
        break;  // CRLF: the LF closes the record
      case '\n':
        if (cell_started || !cell.empty() || !record.empty()) end_record();
        break;
      default:
        cell += c;
        cell_started = true;
        break;
    }
  }
  if (in_quotes) {
    throw CsvError("unterminated quoted cell at end of CSV");
  }
  if (cell_started || !cell.empty() || !record.empty()) end_record();

  CsvTable table;
  if (records.empty()) return table;
  table.columns = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.columns.size()) {
      throw CsvError("row " + std::to_string(r) + " has " +
                     std::to_string(records[r].size()) + " cells, header has " +
                     std::to_string(table.columns.size()));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

CsvTable load_csv_file(const std::string& path) {
  try {
    return parse_csv(read_text_file(path));
  } catch (const CsvError& e) {
    throw CsvError(path + ": " + e.what());
  }
}

}  // namespace emask::util
