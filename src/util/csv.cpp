#include "util/csv.hpp"

#include <stdexcept>

namespace emask::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<double> values) {
  write_row(std::vector<double>(values));
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace emask::util
