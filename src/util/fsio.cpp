#include "util/fsio.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace emask::util {

namespace fs = std::filesystem;

std::ofstream open_for_write(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
      throw std::runtime_error("cannot create directory " + parent.string() +
                               " for " + path + " (" + ec.message() + ")");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  return out;
}

void close_or_throw(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out) {
    throw std::runtime_error("write failure on " + path);
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read failure on " + path);
  }
  return buffer.str();
}

}  // namespace emask::util
