// Bit-manipulation helpers shared across the simulator, energy models and DES.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace emask::util {

/// Number of set bits in `x`.
[[nodiscard]] constexpr int popcount(std::uint32_t x) noexcept {
  return std::popcount(x);
}

/// Hamming distance between two 32-bit words: the number of bit positions
/// that toggle when a bus/latch holding `a` is overwritten with `b`.  This is
/// the quantity transition-sensitive energy models charge for.
[[nodiscard]] constexpr int hamming_distance(std::uint32_t a,
                                             std::uint32_t b) noexcept {
  return std::popcount(a ^ b);
}

/// Value of bit `pos` (0 = LSB) of `x`, as 0 or 1.
[[nodiscard]] constexpr std::uint32_t bit_of(std::uint32_t x,
                                             unsigned pos) noexcept {
  return (x >> pos) & 1u;
}

/// Value of bit `pos` (0 = LSB) of a 64-bit word, as 0 or 1.
[[nodiscard]] constexpr std::uint64_t bit_of64(std::uint64_t x,
                                               unsigned pos) noexcept {
  return (x >> pos) & 1u;
}

/// `x` with bit `pos` forced to `value` (0 or 1).
[[nodiscard]] constexpr std::uint32_t with_bit(std::uint32_t x, unsigned pos,
                                               std::uint32_t value) noexcept {
  return (x & ~(1u << pos)) | ((value & 1u) << pos);
}

/// Sign-extend the low `bits` bits of `x` to a full 32-bit word.
[[nodiscard]] constexpr std::uint32_t sign_extend(std::uint32_t x,
                                                  unsigned bits) noexcept {
  const std::uint32_t mask = 1u << (bits - 1);
  x &= (bits >= 32) ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  return (x ^ mask) - mask;
}

/// Unpack a 64-bit block into 64 words of value 0/1, MSB first (bit 63 of
/// `block` becomes element 0).  This is the "one word per bit" data layout
/// the paper's DES implementation uses (Fig. 4: `newL[i] = oldR[i]`).
[[nodiscard]] std::vector<std::uint32_t> unpack_block_msb_first(
    std::uint64_t block);

/// Inverse of unpack_block_msb_first: element 0 becomes bit 63.
[[nodiscard]] std::uint64_t pack_block_msb_first(
    const std::vector<std::uint32_t>& bits);

}  // namespace emask::util
