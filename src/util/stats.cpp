#include "util/stats.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace emask::util {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double max_abs(const std::vector<double>& xs) {
  double best = 0.0;
  for (double x : xs) best = std::max(best, std::abs(x));
  return best;
}

std::size_t argmax_abs(const std::vector<double>& xs) {
  std::size_t best = 0;
  double best_val = -1.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::abs(xs[i]) > best_val) {
      best_val = std::abs(xs[i]);
      best = i;
    }
  }
  return best;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(da * db);
  return denom > 0.0 ? num / denom : 0.0;
}

double welch_t(const RunningStats& g0, const RunningStats& g1) {
  if (g0.count() < 2 || g1.count() < 2) return 0.0;
  const double v0 = g0.variance() / static_cast<double>(g0.count());
  const double v1 = g1.variance() / static_cast<double>(g1.count());
  const double denom = std::sqrt(v0 + v1);
  return denom > 0.0 ? (g0.mean() - g1.mean()) / denom : 0.0;
}

}  // namespace emask::util
