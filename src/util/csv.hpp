// Minimal CSV emission and parsing for experiment outputs (figure series,
// tables, campaign artifacts).
#pragma once

#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace emask::util {

/// Writes rows of comma-separated values to a file.  Throws on IO failure
/// at open time and from flush(); the destructor flushes best-effort, so
/// callers who care about write errors (campaign manifests, checkpoints)
/// must call flush() explicitly before letting the writer die.
///
/// String cells follow RFC 4180: a cell containing a comma, double quote,
/// CR or LF is emitted double-quoted with internal quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  void write_row(std::initializer_list<double> values);
  /// Mixed/textual row (campaign summary tables), RFC 4180-escaped.
  void write_row(const std::vector<std::string>& cells);

  /// Flushes; throws std::runtime_error if any write (including earlier
  /// buffered ones) failed.
  void flush();

  /// RFC 4180 escaping of one cell, exposed for tests.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
};

/// Malformed CSV (unterminated quoted cell, ragged row vs. header).
class CsvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed CSV document: the header row plus data rows, cells kept as
/// raw text (the report layer converts on demand).  Every row must have
/// the header's column count.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Header column index; throws CsvError naming the column when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Parses RFC 4180-style CSV text (the dialect CsvWriter emits): first row
/// is the header, quoted cells may contain commas/quotes/newlines, CRLF
/// and LF line ends both accepted.  Throws CsvError on an unterminated
/// quote or a row whose cell count differs from the header's.
[[nodiscard]] CsvTable parse_csv(const std::string& text);

/// parse_csv over a file; errors are prefixed with the path.
[[nodiscard]] CsvTable load_csv_file(const std::string& path);

}  // namespace emask::util
