// Minimal CSV emission for experiment outputs (figure series, tables).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace emask::util {

/// Writes rows of comma-separated values to a file.  Throws on IO failure at
/// open time; later write failures surface when the stream is flushed in the
/// destructor (best effort) or via flush().
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  void write_row(std::initializer_list<double> values);
  void flush();

 private:
  std::ofstream out_;
};

}  // namespace emask::util
