// Minimal CSV emission for experiment outputs (figure series, tables).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace emask::util {

/// Writes rows of comma-separated values to a file.  Throws on IO failure
/// at open time and from flush(); the destructor flushes best-effort, so
/// callers who care about write errors (campaign manifests, checkpoints)
/// must call flush() explicitly before letting the writer die.
///
/// String cells follow RFC 4180: a cell containing a comma, double quote,
/// CR or LF is emitted double-quoted with internal quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  void write_row(std::initializer_list<double> values);
  /// Mixed/textual row (campaign summary tables), RFC 4180-escaped.
  void write_row(const std::vector<std::string>& cells);

  /// Flushes; throws std::runtime_error if any write (including earlier
  /// buffered ones) failed.
  void flush();

  /// RFC 4180 escaping of one cell, exposed for tests.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace emask::util
