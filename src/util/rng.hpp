// Deterministic random number generation for reproducible experiments.
//
// Every experiment in the repository (DPA trace sets, measurement noise,
// random key/plaintext sweeps) is seeded explicitly so runs are bit-exact
// reproducible.  We use SplitMix64 as the core generator: tiny, fast, and
// statistically adequate for workload generation (not for cryptography).
#pragma once

#include <cmath>
#include <cstdint>

namespace emask::util {

/// SplitMix64 deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// The n-th value (0-based) of the stream Rng(seed) produces, computed in
  /// O(1) without stepping through the first n draws.  SplitMix64's state
  /// advances by a fixed increment, so random access is a seed offset:
  ///
  ///   Rng::nth(seed, n) == the (n+1)-th call to Rng(seed).next_u64()
  ///
  /// This is what lets parallel trace capture hand worker threads
  /// independent indices while reproducing a serial plaintext stream
  /// bit-exactly (see core::BatchRunner).
  [[nodiscard]] static std::uint64_t nth(std::uint64_t seed, std::uint64_t n) {
    return Rng(seed + n * 0x9E3779B97F4A7C15ull).next_u64();
  }

  /// Next 32 uniformly distributed bits.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (Box–Muller; one value per call, the pair's
  /// second member is discarded to keep the generator state simple).
  double next_gaussian() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

 private:
  std::uint64_t state_;
};

}  // namespace emask::util
