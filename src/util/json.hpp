// Deterministic streaming JSON emitter and a minimal parser (no external
// deps, no DOM library).
//
// Built for the campaign manifest, whose byte-identity across interrupted
// and resumed runs is a hard guarantee: keys are emitted in call order,
// indentation is fixed at two spaces, and doubles always use the
// round-trippable "%.17g" format so a value loaded back from a checkpoint
// re-serializes to the same bytes.
//
// Non-finite doubles: JSON has no NaN/Infinity literal, so
// JsonWriter::value(double) emits `null` for any non-finite value instead
// of the invalid `nan`/`inf` tokens "%.17g" would produce.  format_double
// itself keeps the C textual forms — it also feeds the checkpoint INI and
// CSV writers, where "nan"/"inf" round-trip through strtod and JSON
// validity is not at stake.
//
// The parser (`parse_json`) exists so the campaign merge step can read
// shard manifests back.  It accepts exactly the documents JsonWriter
// produces (plus ordinary standards-conforming JSON): numbers keep their
// raw token so integer fields survive a round-trip bit-exactly, and object
// members preserve insertion order.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace emask::util {

class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next value inside an object.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  /// Non-finite doubles (NaN, ±Inf) are emitted as `null`.
  void value(double v);
  void value(std::uint64_t v);
  void value(int v);
  void value(bool v);
  /// Emits a JSON `null`.
  void null();

  /// Finishes the document with a trailing newline.  All containers must
  /// be closed.
  void finish();

  [[nodiscard]] static std::string escape(const std::string& s);
  /// The "%.17g" rendering used for every finite double in the document.
  [[nodiscard]] static std::string format_double(double v);

 private:
  void before_item();
  void indent();

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream& out_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

/// Parse or type error from `parse_json` / `JsonValue` accessors.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value.  Numbers keep their raw source token (`text`),
/// converted on demand, so u64 counters larger than 2^53 and "%.17g"
/// doubles both survive a parse → re-serialize round trip bit-exactly.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  std::string text;  // string value, or the raw number token
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;  // in order

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws JsonError naming the missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  // Typed accessors; each throws JsonError on a type mismatch or (for
  // numbers) a token that does not fit the requested type.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] double as_double() const;
};

/// Parses one JSON document (value plus surrounding whitespace); throws
/// JsonError with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace emask::util
