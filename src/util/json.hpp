// Deterministic streaming JSON emitter (no external deps, no DOM).
//
// Built for the campaign manifest, whose byte-identity across interrupted
// and resumed runs is a hard guarantee: keys are emitted in call order,
// indentation is fixed at two spaces, and doubles always use the
// round-trippable "%.17g" format so a value loaded back from a checkpoint
// re-serializes to the same bytes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace emask::util {

class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next value inside an object.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(int v);
  void value(bool v);

  /// Finishes the document with a trailing newline.  All containers must
  /// be closed.
  void finish();

  [[nodiscard]] static std::string escape(const std::string& s);
  /// The "%.17g" rendering used for every double in the document.
  [[nodiscard]] static std::string format_double(double v);

 private:
  void before_item();
  void indent();

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream& out_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

}  // namespace emask::util
