// Declarative command-line parsing shared by every emask-* tool.
//
// The tools historically hand-rolled their argv loops with inconsistent
// behavior on malformed numbers (silent atoi(0)) and unknown flags (bare
// usage dump, no indication of *what* was wrong).  ArgParser centralizes
// the contract:
//
//   * options are `--name=value` (matching the existing tool idiom) or
//     bare `--name` boolean switches;
//   * numeric values are parsed strictly — trailing garbage, overflow and
//     empty values raise ArgError with the offending option and text;
//   * an unknown option, a missing required positional, or a value outside
//     a declared choice set raises ArgError with a specific message;
//   * `--help` prints the generated usage text and returns false from
//     parse() so the tool can exit 0.
//
// Tools catch ArgError, print `e.what()` plus usage() to stderr, and exit
// non-zero.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace emask::util {

/// A command-line error a tool should report verbatim and exit(1) on.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser {
 public:
  /// `program` prefixes every error message; `synopsis` is the one-line
  /// argument summary shown in usage (e.g. "run SPEC [options]").
  ArgParser(std::string program, std::string synopsis);

  // Option registration.  Each registers `--name` (without dashes in
  // `name`) writing through `out` when present on the command line.
  void flag(const std::string& name, bool* out, const std::string& help);
  void opt_string(const std::string& name, std::string* out,
                  const std::string& value_name, const std::string& help);
  void opt_int(const std::string& name, int* out, const std::string& help);
  void opt_size(const std::string& name, std::size_t* out,
                const std::string& help);
  void opt_u64(const std::string& name, std::uint64_t* out,
               const std::string& help);
  /// Hexadecimal u64 (with or without 0x prefix).
  void opt_hex(const std::string& name, std::uint64_t* out,
               const std::string& help);
  void opt_double(const std::string& name, double* out,
                  const std::string& help);
  /// String restricted to `choices`; anything else is an ArgError listing
  /// the valid values.
  void opt_choice(const std::string& name, std::string* out,
                  std::vector<std::string> choices, const std::string& help);

  /// Positional argument (filled in registration order).  Optional
  /// positionals must be registered after required ones.
  void positional(const std::string& value_name, std::string* out,
                  bool required, const std::string& help);

  /// Variadic tail positional: every non-option argument left after the
  /// fixed positionals are filled is appended to `out` (shown as
  /// "<name>..." in usage).  At most one may be registered, and arity
  /// requirements beyond zero-or-more are the caller's to enforce.
  void positional_rest(const std::string& value_name,
                       std::vector<std::string>* out,
                       const std::string& help);

  /// Parses argv.  Returns false when --help was handled (usage already
  /// printed to stdout; the caller should exit 0).  Throws ArgError on any
  /// malformed input.
  [[nodiscard]] bool parse(int argc, char** argv) const;

  [[nodiscard]] std::string usage() const;

  // Strict scalar parsing, exposed for reuse (spec files, tests).  All
  // throw ArgError mentioning `what` on malformed text.
  [[nodiscard]] static long long parse_int(const std::string& text,
                                           const std::string& what);
  [[nodiscard]] static std::uint64_t parse_u64(const std::string& text,
                                               const std::string& what);
  [[nodiscard]] static std::uint64_t parse_hex(const std::string& text,
                                               const std::string& what);
  [[nodiscard]] static double parse_double(const std::string& text,
                                           const std::string& what);

 private:
  struct Option {
    std::string name;        // without leading dashes
    std::string value_name;  // empty for bare flags
    std::string help;
    bool takes_value = false;
    std::function<void(const std::string&)> apply;  // value or "" for flags
  };
  struct Positional {
    std::string value_name;
    std::string help;
    bool required = false;
    std::string* out = nullptr;
  };
  struct RestPositional {
    std::string value_name;
    std::string help;
    std::vector<std::string>* out = nullptr;
  };

  void add(Option option);
  [[nodiscard]] const Option* find(const std::string& name) const;

  std::string program_;
  std::string synopsis_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
  std::vector<RestPositional> rest_;  // zero or one entries
};

}  // namespace emask::util
