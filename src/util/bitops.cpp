#include "util/bitops.hpp"

#include <stdexcept>

namespace emask::util {

std::vector<std::uint32_t> unpack_block_msb_first(std::uint64_t block) {
  std::vector<std::uint32_t> bits(64);
  for (unsigned i = 0; i < 64; ++i) {
    bits[i] = static_cast<std::uint32_t>(bit_of64(block, 63 - i));
  }
  return bits;
}

std::uint64_t pack_block_msb_first(const std::vector<std::uint32_t>& bits) {
  if (bits.size() != 64) {
    throw std::invalid_argument("pack_block_msb_first: need exactly 64 bits");
  }
  std::uint64_t block = 0;
  for (unsigned i = 0; i < 64; ++i) {
    block |= static_cast<std::uint64_t>(bits[i] & 1u) << (63 - i);
  }
  return block;
}

}  // namespace emask::util
