#include "util/ini.hpp"

#include <fstream>
#include <sstream>

namespace emask::util {
namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Removes a trailing `#`/`;` comment that follows whitespace; text inside
/// double quotes is left alone.
std::string strip_trailing_comment(const std::string& line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && (c == '#' || c == ';') &&
        (i == 0 || is_space(line[i - 1]))) {
      return line.substr(0, i);
    }
  }
  return line;
}

}  // namespace

std::string IniFile::trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> IniFile::split_list(const std::string& value) {
  std::vector<std::string> items;
  std::string current;
  for (const char c : value) {
    if (c == ',') {
      items.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  items.push_back(trim(current));
  return items;
}

const IniFile::Entry* IniFile::Section::find(const std::string& key) const {
  for (const Entry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

const IniFile::Section* IniFile::find_section(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const std::string* IniFile::find(const std::string& section,
                                 const std::string& key) const {
  const Section* s = find_section(section);
  if (s == nullptr) return nullptr;
  const Entry* e = s->find(key);
  return e ? &e->value : nullptr;
}

std::string IniFile::get_or(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  const std::string* v = find(section, key);
  return v ? *v : fallback;
}

IniFile IniFile::parse(const std::string& text) {
  IniFile file;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  Section* current = nullptr;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(strip_trailing_comment(raw));
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        throw IniError(line_no, "unterminated section header: " + line);
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) throw IniError(line_no, "empty section name");
      if (file.find_section(name) != nullptr) {
        throw IniError(line_no, "duplicate section [" + name + "]");
      }
      file.sections_.push_back({name, {}, line_no});
      current = &file.sections_.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw IniError(line_no, "expected 'key = value': " + line);
    }
    if (current == nullptr) {
      throw IniError(line_no, "key outside of any [section]: " + line);
    }
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) throw IniError(line_no, "empty key: " + line);
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    if (current->find(key) != nullptr) {
      throw IniError(line_no, "duplicate key '" + key + "' in [" +
                                  current->name + "]");
    }
    current->entries.push_back({key, value, line_no});
  }
  return file;
}

IniFile IniFile::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("IniFile: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace emask::util
