#include "core/leakage_map.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/tvla.hpp"
#include "des/asm_generator.hpp"
#include "util/rng.hpp"

namespace emask::core {

LeakageMap localize_des_leakage(const MaskingPipeline& pipeline,
                                std::uint64_t fixed_key,
                                std::uint64_t fixed_plaintext, int pairs,
                                std::uint64_t seed, double threshold) {
  // TVLA campaign over the full run.
  analysis::TvlaAssessment tvla;
  util::Rng rng(seed);
  for (int i = 0; i < pairs; ++i) {
    tvla.add_fixed(pipeline.run_des(fixed_key, fixed_plaintext).trace);
    tvla.add_random(pipeline.run_des(fixed_key, rng.next_u64()).trace);
  }
  const analysis::TvlaResult t = tvla.solve();

  // One instrumented run records which instruction retires at each cycle.
  assembler::Program image = pipeline.program();
  des::poke_key(image, fixed_key);
  des::poke_plaintext(image, fixed_plaintext);
  sim::Pipeline machine(image, pipeline.sim_config());
  std::vector<std::int64_t> retire_at_cycle;  // -1 = bubble
  energy::CycleActivity a;
  while (machine.step(a)) {
    retire_at_cycle.push_back(a.retired ? static_cast<std::int64_t>(a.retire_pc)
                                        : -1);
  }

  // Aggregate leaking cycles per source line.
  struct Agg {
    std::uint32_t instr_index = 0;
    std::size_t cycles = 0;
    double max_t = 0.0;
  };
  std::map<int, Agg> by_line;
  LeakageMap out;
  const std::size_t n = std::min(retire_at_cycle.size(), t.t_per_cycle.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double abs_t = std::abs(t.t_per_cycle[i]);
    if (abs_t <= threshold) continue;
    ++out.total_leaking_cycles;
    out.max_abs_t = std::max(out.max_abs_t, abs_t);
    std::int64_t pc = retire_at_cycle[i];
    // Attribute bubbles to the most recent retirement.
    for (std::size_t back = i; pc < 0 && back > 0; --back) {
      pc = retire_at_cycle[back - 1];
    }
    if (pc < 0) continue;
    const auto index = static_cast<std::uint32_t>(pc);
    const int line = index < pipeline.program().text_locs.size()
                         ? pipeline.program().text_locs[index].line
                         : 0;
    Agg& agg = by_line[line];
    if (agg.cycles == 0) agg.instr_index = index;
    ++agg.cycles;
    agg.max_t = std::max(agg.max_t, abs_t);
  }

  for (const auto& [line, agg] : by_line) {
    LeakSite site;
    site.source_line = line;
    site.instr_index = agg.instr_index;
    site.instruction = pipeline.program().text[agg.instr_index].to_string();
    site.leaking_cycles = agg.cycles;
    site.max_abs_t = agg.max_t;
    out.sites.push_back(std::move(site));
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const LeakSite& a_, const LeakSite& b_) {
              return a_.max_abs_t > b_.max_abs_t;
            });
  return out;
}

}  // namespace emask::core
