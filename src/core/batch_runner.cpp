#include "core/batch_runner.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/trace.hpp"
#include "util/rng.hpp"

namespace emask::core {
namespace {

void accumulate(BatchStats& stats, const EncryptionRun& run) {
  ++stats.encryptions;
  stats.total_cycles += run.sim.cycles;
  stats.total_instructions += run.sim.instructions;
  stats.total_energy_uj += run.total_uj();
  for (std::size_t c = 0; c < energy::kNumComponents; ++c) {
    const auto component = static_cast<energy::Component>(c);
    stats.breakdown.add(component, run.breakdown.get(component));
  }
}

}  // namespace

BatchRunner::BatchRunner(const MaskingPipeline& pipeline, BatchConfig config)
    : pipeline_(pipeline), config_(config) {}

std::size_t BatchRunner::effective_threads(std::size_t count) const {
  std::size_t threads = config_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > count) threads = count;
  return threads == 0 ? 1 : threads;
}

void BatchRunner::capture_each(
    std::size_t count, const InputGenerator& generator,
    const std::function<void(std::size_t, const BatchInput&,
                             EncryptionRun&)>& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_ = BatchStats{};
  const std::size_t threads = effective_threads(count);
  stats_.threads_used = threads;
  const auto finish = [&] {
    stats_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  if (config_.snapshot == SnapshotMode::kRequire) {
    if (config_.run_function) {
      throw std::logic_error(
          "BatchRunner: SnapshotMode::kRequire is incompatible with a "
          "custom run_function (the runner cannot prove what it reads "
          "before the fork point)");
    }
    if (!pipeline_.has_fork_point()) {
      throw std::logic_error(
          "BatchRunner: SnapshotMode::kRequire but the program declares no "
          "fork marker (generate with DesAsmOptions::hoist_key_schedule)");
    }
    if (!pipeline_.fork_eligible()) {
      throw std::logic_error(
          "BatchRunner: SnapshotMode::kRequire but the device's " +
          pipeline_.countermeasure().name() +
          " countermeasure draws per-trace randomness from cycle 0 and "
          "cannot share a prefix — use SnapshotMode::kAuto or kOff");
    }
  }

  // Shared-prefix snapshot, captured once for the batch's first key.  Runs
  // with that key fork from it; any other key (and any budget ending at or
  // before the fork point — run_des_from falls back itself) cold-starts.
  // Workers only read the snapshot; memory forks copy-on-write.
  std::optional<DesSnapshot> snap;
  if (count > 0 && !config_.run_function &&
      config_.snapshot != SnapshotMode::kOff && pipeline_.fork_eligible()) {
    snap.emplace(pipeline_.snapshot_des(generator(0).key));
    stats_.snapshot_prefix_cycles = snap->fork_cycle;
  }
  // Whether run index `input` takes the fork path — pure function of the
  // input, evaluated again on the serial emission side for stats.
  const auto forks = [&](const BatchInput& input) {
    return snap.has_value() && input.key == snap->key &&
           !(config_.stop_after_cycles != 0 &&
             config_.stop_after_cycles <= snap->fork_cycle);
  };

  // One encryption, with per-index measurement noise.  The noise RNG is
  // seeded from the batch index (not from a stream shared across traces),
  // so noisy captures honour the determinism contract too.
  const bool chained = !config_.run_function && pipeline_.has_iv();
  const auto run_one = [this, &snap, chained](const MaskingPipeline& device,
                                              const BatchInput& input,
                                              std::size_t index)
      -> EncryptionRun {
    EncryptionRun run =
        config_.run_function
            ? config_.run_function(device, input)
        : (snap.has_value() && input.key == snap->key)
            ? (chained ? device.run_des_cbc_from(*snap, input.plaintext,
                                                 input.iv,
                                                 config_.stop_after_cycles)
                       : device.run_des_from(*snap, input.plaintext,
                                             config_.stop_after_cycles))
        : (chained ? device.run_des_cbc(input.key, input.plaintext, input.iv,
                                        config_.stop_after_cycles)
                   : device.run_des(input.key, input.plaintext,
                                    config_.stop_after_cycles));
    if (config_.noise_sigma_pj > 0.0) {
      analysis::NoiseModel noise(config_.noise_sigma_pj,
                                 util::Rng::nth(config_.noise_seed, index));
      run.trace = noise.apply(run.trace);
    }
    return run;
  };

  if (count == 0) {
    finish();
    return;
  }

  if (threads <= 1) {
    // Serial reference path: the parallel path below is contractually
    // bit-identical to this loop.
    for (std::size_t i = 0; i < count; ++i) {
      const BatchInput input = generator(i);
      EncryptionRun run = run_one(pipeline_, input, i);
      accumulate(stats_, run);
      if (forks(input)) ++stats_.snapshot_forks; else ++stats_.cold_starts;
      sink(i, input, run);
    }
    finish();
    return;
  }

  // Parallel path: workers claim indices from a shared cursor, bounded by a
  // sliding reorder window; the calling thread re-serializes completions in
  // index order.  Slot i lives at slots[i % window]; the window invariant
  // (claimed < emitted + window) guarantees a claimed slot is free.
  const std::size_t window =
      std::max(threads * std::max<std::size_t>(config_.window_per_thread, 1),
               threads);
  struct Slot {
    bool ready = false;
    BatchInput input;
    EncryptionRun run;
  };
  std::vector<Slot> slots(window);
  std::mutex mu;
  std::condition_variable ready_cv;  // consumer waits: slot became ready
  std::condition_variable space_cv;  // workers wait: window advanced
  std::size_t next_index = 0;        // guarded by mu
  std::size_t emitted = 0;           // guarded by mu
  bool abort = false;                // guarded by mu
  std::exception_ptr error;          // guarded by mu

  const auto worker = [&] {
    // Per-worker device instance: a private copy of the compiled pipeline
    // (program image, simulator configuration, energy parameters), so
    // workers share no mutable state at all.
    const MaskingPipeline device(pipeline_);
    while (true) {
      std::size_t i = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        space_cv.wait(lock, [&] {
          return abort || next_index >= count ||
                 next_index < emitted + window;
        });
        if (abort || next_index >= count) return;
        i = next_index++;
      }
      try {
        const BatchInput input = generator(i);
        EncryptionRun run = run_one(device, input, i);
        std::lock_guard<std::mutex> lock(mu);
        Slot& slot = slots[i % window];
        slot.input = input;
        slot.run = std::move(run);
        slot.ready = true;
        ready_cv.notify_all();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        abort = true;
        ready_cv.notify_all();
        space_cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);

  const auto shut_down = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
      ready_cv.notify_all();
      space_cv.notify_all();
    }
    for (std::thread& t : pool) t.join();
  };

  try {
    for (std::size_t e = 0; e < count; ++e) {
      BatchInput input;
      EncryptionRun run;
      {
        std::unique_lock<std::mutex> lock(mu);
        ready_cv.wait(lock, [&] { return abort || slots[e % window].ready; });
        if (abort) break;
        Slot& slot = slots[e % window];
        input = slot.input;
        run = std::move(slot.run);
        slot.ready = false;
        slot.run = EncryptionRun{};
        emitted = e + 1;
        space_cv.notify_all();
      }
      accumulate(stats_, run);
      if (forks(input)) ++stats_.snapshot_forks; else ++stats_.cold_starts;
      sink(e, input, run);
    }
  } catch (...) {
    shut_down();
    throw;
  }
  shut_down();
  if (error) std::rethrow_exception(error);
  finish();
}

analysis::TraceSet BatchRunner::capture(std::size_t count,
                                        const InputGenerator& generator) {
  analysis::TraceSet set;
  set.inputs.reserve(count);
  set.traces.reserve(count);
  capture_each(count, generator,
               [&](std::size_t, const BatchInput& input, EncryptionRun& run) {
                 set.add(input.plaintext, std::move(run.trace));
               });
  return set;
}

analysis::TraceSet BatchRunner::capture(const std::vector<BatchInput>& inputs) {
  return capture(inputs.size(),
                 [&inputs](std::size_t i) { return inputs[i]; });
}

BatchStats BatchRunner::capture_to_file(const std::string& path,
                                        std::size_t count,
                                        const InputGenerator& generator) {
  analysis::TraceSetWriter writer(path, count);
  capture_each(count, generator,
               [&](std::size_t, const BatchInput& input, EncryptionRun& run) {
                 writer.append(input.plaintext, run.trace);
               });
  writer.close();
  return stats_;
}

InputGenerator random_plaintexts(std::uint64_t key, std::uint64_t seed) {
  return [key, seed](std::size_t i) {
    return BatchInput{key, util::Rng::nth(seed, static_cast<std::uint64_t>(i))};
  };
}

}  // namespace emask::core
