// Phase-level energy profiling: energy per labelled program region.
//
// Text labels partition the instruction index space; each cycle's energy
// is attributed to the phase of the instruction retiring that cycle.  For
// the DES program this reproduces, in numbers, what the paper's Fig. 6
// shows as a picture: how much each permutation/round phase consumes, and
// (diffing two policies) where the masking overhead concentrates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/masking_pipeline.hpp"

namespace emask::core {

struct PhaseEnergy {
  std::string label;          // the phase's leading text label
  std::uint32_t begin = 0;    // instruction index range [begin, end)
  std::uint32_t end = 0;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;

  [[nodiscard]] double pj_per_cycle() const {
    return cycles ? energy_uj * 1e6 / static_cast<double>(cycles) : 0.0;
  }
};

/// Profiles one run of `image` (an instance of pipeline.program()) and
/// returns per-phase totals, ordered by first instruction index.  Bubble
/// and stall cycles attribute to the phase of the most recent retirement.
[[nodiscard]] std::vector<PhaseEnergy> profile_phases(
    const MaskingPipeline& pipeline, const assembler::Program& image);

/// Round-1 cycle window [begin, end) of one DES S-box (0..7), located via
/// the retire cycles of the assembly generator's `sbox_loop` /
/// `round_loop` labels with a dry pipeline run (no energy model).  The
/// per-S-box attacks (MLPA, collision) window this tightly because
/// adjacent S-boxes share expansion bits, so their cycles plant ghost
/// correlations for wrong guesses.  Returns begin == end == 0 when the
/// program lacks the labels (non-generator DES source).
struct SboxWindow {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] bool valid() const { return end > begin; }
};

[[nodiscard]] SboxWindow des_round1_sbox_window(
    const assembler::Program& program, int sbox);

/// Shuffle-aware variant: the widest round-1 window of S-box `sbox` over
/// every nop_tab schedule a shuffle_slots program can draw.  `begin` comes
/// from a zero-delay dry run (the earliest the S-box can start), `end` from
/// a run with every slot poked to `max_delay` (the latest it can finish).
/// For programs without a nop_tab this is exactly des_round1_sbox_window.
/// Attacks on shuffled devices must window with these bounds — a
/// fixed-schedule window silently truncates late-shifted traces.
[[nodiscard]] SboxWindow des_round1_sbox_window_bounds(
    const assembler::Program& program, int sbox, std::uint32_t max_delay);

}  // namespace emask::core
