// Phase-level energy profiling: energy per labelled program region.
//
// Text labels partition the instruction index space; each cycle's energy
// is attributed to the phase of the instruction retiring that cycle.  For
// the DES program this reproduces, in numbers, what the paper's Fig. 6
// shows as a picture: how much each permutation/round phase consumes, and
// (diffing two policies) where the masking overhead concentrates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/masking_pipeline.hpp"

namespace emask::core {

struct PhaseEnergy {
  std::string label;          // the phase's leading text label
  std::uint32_t begin = 0;    // instruction index range [begin, end)
  std::uint32_t end = 0;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;

  [[nodiscard]] double pj_per_cycle() const {
    return cycles ? energy_uj * 1e6 / static_cast<double>(cycles) : 0.0;
  }
};

/// Profiles one run of `image` (an instance of pipeline.program()) and
/// returns per-phase totals, ordered by first instruction index.  Bubble
/// and stall cycles attribute to the phase of the most recent retirement.
[[nodiscard]] std::vector<PhaseEnergy> profile_phases(
    const MaskingPipeline& pipeline, const assembler::Program& image);

}  // namespace emask::core
