#include "core/masking_pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "assembler/assembler.hpp"
#include "util/rng.hpp"

namespace emask::core {

MaskingPipeline MaskingPipeline::des(const hiding::Countermeasure& policy,
                                     const energy::TechParams& params,
                                     const des::DesAsmOptions& asm_options) {
  des::DesAsmOptions options = asm_options;
  if (policy.hiding == hiding::HidingPolicy::kShuffleNop) {
    options.shuffle_slots = true;
  }
  // Key/plaintext placeholders; run_des pokes real values per run.
  const std::string source = des::generate_des_asm(0, 0, options);
  return from_source(source, policy, params);
}

MaskingPipeline MaskingPipeline::from_source(const std::string& source,
                                             const hiding::Countermeasure& policy,
                                             const energy::TechParams& params) {
  assembler::Program program = assembler::assemble(source);
  if (policy.hiding == hiding::HidingPolicy::kShuffleNop &&
      !des::has_nop_table(program)) {
    throw std::invalid_argument(
        "from_source: shuffle_nop needs the DES generator's nop_tab delay "
        "slots (generate with DesAsmOptions::shuffle_slots)");
  }
  compiler::MaskResult masked = compiler::apply_masking(program, policy.masking);
  return MaskingPipeline(std::move(masked), policy, params);
}

std::uint64_t MaskingPipeline::run_hiding_seed(std::uint64_t plaintext) const {
  // Pure function of (base seed, plaintext): forked and cold runs of the
  // same input draw identical streams at any thread count.
  return util::Rng(hiding_seed_ ^
                   (plaintext * 0x9E3779B97F4A7C15ull)).next_u64();
}

std::vector<std::uint32_t> MaskingPipeline::shuffle_schedule(
    std::uint64_t run_seed) {
  std::vector<std::uint32_t> delays(des::kShuffleSlotCount);
  util::Rng rng(run_seed);
  for (std::uint32_t& d : delays) {
    d = static_cast<std::uint32_t>(
        rng.next_below(hiding::kShuffleNopMaxDelay + 1));
  }
  return delays;
}

energy::HidingConfig MaskingPipeline::hiding_config(
    std::uint64_t run_seed) const {
  energy::HidingConfig cfg;
  switch (policy_.hiding) {
    case hiding::HidingPolicy::kWddl:
      cfg.mode = energy::HidingMode::kConstant;
      break;
    case hiding::HidingPolicy::kRandomPrecharge:
      cfg.mode = energy::HidingMode::kRandomPrecharge;
      cfg.seed = run_seed;
      break;
    case hiding::HidingPolicy::kNone:
    case hiding::HidingPolicy::kShuffleNop:  // program-level; model untouched
      break;
  }
  return cfg;
}

EncryptionRun MaskingPipeline::simulate(const assembler::Program& program,
                                        std::uint64_t stop_after_cycles,
                                        std::uint64_t run_seed) const {
  EncryptionRun run;
  sim::Pipeline pipeline(program, sim_config_);
  energy::ProcessorEnergyModel model(params_, hiding_config(run_seed));
  if (stop_after_cycles == 0) {
    run.sim = pipeline.run([&](const energy::CycleActivity& activity) {
      run.trace.push(model.cycle(activity) * 1e12);  // J -> pJ
    });
    // The DES convention: a 64-bit-per-word "cipher" symbol.  Other
    // workloads (AES, SHA-1) expose their outputs through their own
    // read_* helpers.
    const assembler::DataSymbol* cipher = program.find_symbol("cipher");
    if (cipher != nullptr && cipher->size_bytes >= 64 * 4) {
      run.cipher = des::read_cipher(pipeline.memory(), program);
    }
  } else {
    energy::CycleActivity activity;
    while (pipeline.cycles() < stop_after_cycles && pipeline.step(activity)) {
      run.trace.push(model.cycle(activity) * 1e12);
    }
    run.sim = pipeline.result();
  }
  run.breakdown = model.breakdown();
  return run;
}

EncryptionRun MaskingPipeline::cold_des(const std::uint64_t* iv,
                                        std::uint64_t key,
                                        std::uint64_t plaintext,
                                        std::uint64_t stop_after_cycles) const {
  assembler::Program program = masked_.program;  // copy, then poke inputs
  des::poke_key(program, key);
  des::poke_plaintext(program, plaintext);
  if (iv != nullptr) des::poke_iv(program, *iv);
  const std::uint64_t run_seed = run_hiding_seed(plaintext);
  if (policy_.hiding == hiding::HidingPolicy::kShuffleNop) {
    des::poke_nop_schedule(program, shuffle_schedule(run_seed));
  }
  return simulate(program, stop_after_cycles, run_seed);
}

EncryptionRun MaskingPipeline::run_des(std::uint64_t key,
                                       std::uint64_t plaintext,
                                       std::uint64_t stop_after_cycles) const {
  return cold_des(nullptr, key, plaintext, stop_after_cycles);
}

EncryptionRun MaskingPipeline::run_des_cbc(
    std::uint64_t key, std::uint64_t plaintext, std::uint64_t iv,
    std::uint64_t stop_after_cycles) const {
  return cold_des(&iv, key, plaintext, stop_after_cycles);
}

DesSnapshot MaskingPipeline::snapshot_des(std::uint64_t key) const {
  if (!masked_.program.fork_point) {
    throw std::logic_error(
        "snapshot_des: program declares no fork marker (generate with "
        "DesAsmOptions::hoist_key_schedule)");
  }
  if (!policy_.fork_compatible()) {
    throw std::logic_error(
        "snapshot_des: " + policy_.name() +
        " draws per-trace randomness from cycle 0, so a shared prefix would "
        "pin every forked trace to the same stream — run cold instead");
  }
  assembler::Program program = masked_.program;  // copy, then poke the key
  des::poke_key(program, key);
  // The plaintext placeholder stays zero: the prefix must be
  // plaintext-independent, and by construction the marker precedes the
  // first `plain` load.
  const std::uint32_t fork_pc = *program.fork_point;
  sim::Pipeline pipeline(program, sim_config_);
  // The prefix is plaintext-independent, so it cannot consume any of the
  // per-run hiding stream; wddl's constant mode is stateless and safe.
  energy::ProcessorEnergyModel model(params_, hiding_config(0));
  analysis::Trace prefix;
  energy::CycleActivity activity;
  bool reached = false;
  while (pipeline.step(activity)) {
    prefix.push(model.cycle(activity) * 1e12);  // J -> pJ
    if (activity.retired && activity.retire_pc == fork_pc) {
      reached = true;
      break;
    }
    if (pipeline.cycles() >= sim_config_.max_cycles) {
      throw std::runtime_error(
          "snapshot_des: fork marker not retired within the cycle budget");
    }
  }
  if (!reached) {
    throw std::runtime_error(
        "snapshot_des: program halted before the fork marker retired");
  }
  // Capture before moving `program` out: Pipeline::snapshot() reads the
  // program it references, and braced-init evaluates left to right.
  sim::Snapshot machine = pipeline.snapshot();
  const std::uint64_t fork_cycle = pipeline.cycles();
  return DesSnapshot{std::move(program), std::move(machine), std::move(model),
                     std::move(prefix), key, fork_cycle};
}

EncryptionRun MaskingPipeline::run_des_from(
    const DesSnapshot& snapshot, std::uint64_t plaintext,
    std::uint64_t stop_after_cycles) const {
  return forked_des(snapshot, nullptr, plaintext, stop_after_cycles);
}

EncryptionRun MaskingPipeline::run_des_cbc_from(
    const DesSnapshot& snapshot, std::uint64_t plaintext, std::uint64_t iv,
    std::uint64_t stop_after_cycles) const {
  return forked_des(snapshot, &iv, plaintext, stop_after_cycles);
}

EncryptionRun MaskingPipeline::forked_des(
    const DesSnapshot& snapshot, const std::uint64_t* iv,
    std::uint64_t plaintext, std::uint64_t stop_after_cycles) const {
  // A budget ending at or before the fork point cannot reuse the captured
  // prefix without overrunning it — fall back to a cold start so the
  // emitted trace is never longer than requested.
  if (stop_after_cycles != 0 && stop_after_cycles <= snapshot.fork_cycle) {
    return cold_des(iv, snapshot.key, plaintext, stop_after_cycles);
  }
  if (snapshot.machine.text_size != masked_.program.text.size()) {
    throw std::invalid_argument(
        "run_des_from: snapshot was captured from a different program");
  }
  EncryptionRun run;
  sim::Pipeline pipeline(snapshot.program, snapshot.machine);
  des::poke_plaintext(pipeline.memory(), snapshot.program, plaintext);
  if (iv != nullptr) des::poke_iv(pipeline.memory(), snapshot.program, *iv);
  if (policy_.hiding == hiding::HidingPolicy::kShuffleNop) {
    // The nop_tab slots are first read after the fork marker, so a forked
    // run can draw the same per-plaintext schedule a cold run would.
    des::poke_nop_schedule(pipeline.memory(), snapshot.program,
                           shuffle_schedule(run_hiding_seed(plaintext)));
  }
  energy::ProcessorEnergyModel model = snapshot.model;  // resume mid-trace
  run.trace = snapshot.prefix;  // splice the shared prefix in front
  if (stop_after_cycles == 0) {
    run.sim = pipeline.run([&](const energy::CycleActivity& activity) {
      run.trace.push(model.cycle(activity) * 1e12);  // J -> pJ
    });
    const assembler::DataSymbol* cipher =
        snapshot.program.find_symbol("cipher");
    if (cipher != nullptr && cipher->size_bytes >= 64 * 4) {
      run.cipher = des::read_cipher(pipeline.memory(), snapshot.program);
    }
  } else {
    energy::CycleActivity activity;
    while (pipeline.cycles() < stop_after_cycles && pipeline.step(activity)) {
      run.trace.push(model.cycle(activity) * 1e12);
    }
    run.sim = pipeline.result();
  }
  run.breakdown = model.breakdown();
  return run;
}

EncryptionRun MaskingPipeline::run_raw() const { return simulate(masked_.program); }

EncryptionRun MaskingPipeline::run_image(const assembler::Program& image,
                                         std::uint64_t stop_after_cycles) const {
  return simulate(image, stop_after_cycles);
}

}  // namespace emask::core
