#include "core/masking_pipeline.hpp"

#include "assembler/assembler.hpp"

namespace emask::core {

MaskingPipeline MaskingPipeline::des(compiler::Policy policy,
                                     const energy::TechParams& params,
                                     const des::DesAsmOptions& asm_options) {
  // Key/plaintext placeholders; run_des pokes real values per run.
  const std::string source = des::generate_des_asm(0, 0, asm_options);
  return from_source(source, policy, params);
}

MaskingPipeline MaskingPipeline::from_source(const std::string& source,
                                             compiler::Policy policy,
                                             const energy::TechParams& params) {
  assembler::Program program = assembler::assemble(source);
  compiler::MaskResult masked = compiler::apply_masking(program, policy);
  return MaskingPipeline(std::move(masked), policy, params);
}

EncryptionRun MaskingPipeline::simulate(const assembler::Program& program,
                                        std::uint64_t stop_after_cycles) const {
  EncryptionRun run;
  sim::Pipeline pipeline(program, sim_config_);
  energy::ProcessorEnergyModel model(params_);
  if (stop_after_cycles == 0) {
    run.sim = pipeline.run([&](const energy::CycleActivity& activity) {
      run.trace.push(model.cycle(activity) * 1e12);  // J -> pJ
    });
    // The DES convention: a 64-bit-per-word "cipher" symbol.  Other
    // workloads (AES, SHA-1) expose their outputs through their own
    // read_* helpers.
    const assembler::DataSymbol* cipher = program.find_symbol("cipher");
    if (cipher != nullptr && cipher->size_bytes >= 64 * 4) {
      run.cipher = des::read_cipher(pipeline.memory(), program);
    }
  } else {
    energy::CycleActivity activity;
    while (pipeline.cycles() < stop_after_cycles && pipeline.step(activity)) {
      run.trace.push(model.cycle(activity) * 1e12);
    }
    run.sim = pipeline.result();
  }
  run.breakdown = model.breakdown();
  return run;
}

EncryptionRun MaskingPipeline::run_des(std::uint64_t key,
                                       std::uint64_t plaintext,
                                       std::uint64_t stop_after_cycles) const {
  assembler::Program program = masked_.program;  // copy, then poke inputs
  des::poke_key(program, key);
  des::poke_plaintext(program, plaintext);
  return simulate(program, stop_after_cycles);
}

EncryptionRun MaskingPipeline::run_raw() const { return simulate(masked_.program); }

EncryptionRun MaskingPipeline::run_image(const assembler::Program& image,
                                         std::uint64_t stop_after_cycles) const {
  return simulate(image, stop_after_cycles);
}

}  // namespace emask::core
