// Leakage localization: from "the device leaks" to "THIS instruction
// leaks".
//
// Runs a fixed-vs-random TVLA campaign, then attributes every leaking
// cycle to the instruction retiring at that cycle and aggregates by source
// line.  This is the developer-facing complement of the paper's compiler
// approach: the forward slice says what *should* be secured; the leakage
// map verifies, on the simulated hardware, what actually still leaks and
// points at the responsible code (e.g. the deliberately unprotected
// initial permutation, or a `.secret` annotation the programmer forgot).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/masking_pipeline.hpp"

namespace emask::core {

/// One leaking program location.
struct LeakSite {
  int source_line = 0;           // 1-based line in the assembly source
  std::uint32_t instr_index = 0; // first instruction index at that line
  std::string instruction;       // disassembly of that instruction
  std::size_t leaking_cycles = 0;
  double max_abs_t = 0.0;
};

struct LeakageMap {
  std::vector<LeakSite> sites;   // sorted by max |t|, descending
  std::size_t total_leaking_cycles = 0;
  double max_abs_t = 0.0;

  [[nodiscard]] bool leaks() const { return total_leaking_cycles > 0; }
};

/// Runs `pairs` fixed-vs-random DES encryptions on `pipeline` and maps
/// cycles with Welch |t| > threshold back to source lines.  `fixed_key` is
/// the device key; the fixed class uses `fixed_plaintext`, the random class
/// draws plaintexts from `seed`.
[[nodiscard]] LeakageMap localize_des_leakage(
    const MaskingPipeline& pipeline, std::uint64_t fixed_key,
    std::uint64_t fixed_plaintext, int pairs = 20,
    std::uint64_t seed = 0x10CA1, double threshold = 4.5);

}  // namespace emask::core
