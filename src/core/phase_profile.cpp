#include "core/phase_profile.hpp"

#include <algorithm>
#include <map>

#include "des/asm_generator.hpp"

namespace emask::core {

std::vector<PhaseEnergy> profile_phases(const MaskingPipeline& pipeline,
                                        const assembler::Program& image) {
  // Build the phase table from the text labels, ordered by address.
  std::vector<PhaseEnergy> phases;
  {
    std::map<std::uint32_t, std::string> by_index;
    for (const auto& [label, index] : image.text_labels) {
      // Keep the first label at each index (multiple labels may alias).
      by_index.emplace(index, label);
    }
    if (by_index.empty() || by_index.begin()->first != 0) {
      by_index.emplace(0, "(entry)");
    }
    for (auto it = by_index.begin(); it != by_index.end(); ++it) {
      PhaseEnergy phase;
      phase.label = it->second;
      phase.begin = it->first;
      const auto next = std::next(it);
      phase.end = next != by_index.end()
                      ? next->first
                      : static_cast<std::uint32_t>(image.text.size());
      phases.push_back(std::move(phase));
    }
  }
  const auto phase_of = [&](std::uint32_t index) -> PhaseEnergy& {
    auto it = std::upper_bound(
        phases.begin(), phases.end(), index,
        [](std::uint32_t i, const PhaseEnergy& p) { return i < p.begin; });
    return *(it == phases.begin() ? it : std::prev(it));
  };

  sim::Pipeline machine(image, pipeline.sim_config());
  energy::ProcessorEnergyModel model(pipeline.params());
  energy::CycleActivity a;
  PhaseEnergy* current = &phases.front();
  while (!machine.halted()) {
    machine.step(a);
    const double joules = model.cycle(a);
    if (a.retired) current = &phase_of(a.retire_pc);
    current->cycles += 1;
    current->energy_uj += joules * 1e6;
  }
  return phases;
}

SboxWindow des_round1_sbox_window(const assembler::Program& program,
                                  int sbox) {
  SboxWindow w;
  if (sbox < 0 || sbox > 7) return w;
  const auto sbox_label = program.text_labels.find("sbox_loop");
  const auto round_label = program.text_labels.find("round_loop");
  if (sbox_label == program.text_labels.end() ||
      round_label == program.text_labels.end()) {
    return w;
  }
  std::vector<std::uint64_t> sboxes;
  std::vector<std::uint64_t> rounds;
  sim::Pipeline p(program);
  energy::CycleActivity a;
  // Round 2's first retirement of round_loop bounds S-box 7's window; no
  // need to simulate further.
  while (p.step(a) && rounds.size() < 2) {
    if (!a.retired) continue;
    if (a.retire_pc == sbox_label->second) sboxes.push_back(p.cycles());
    if (a.retire_pc == round_label->second) rounds.push_back(p.cycles());
  }
  if (sboxes.size() < 8 || rounds.size() < 2) return w;
  w.begin = static_cast<std::size_t>(sboxes[static_cast<std::size_t>(sbox)]);
  w.end = sbox < 7
              ? static_cast<std::size_t>(
                    sboxes[static_cast<std::size_t>(sbox) + 1])
              : static_cast<std::size_t>(rounds[1]);
  return w;
}

SboxWindow des_round1_sbox_window_bounds(const assembler::Program& program,
                                         int sbox, std::uint32_t max_delay) {
  const SboxWindow zero = des_round1_sbox_window(program, sbox);
  if (!zero.valid() || max_delay == 0 || !des::has_nop_table(program)) {
    return zero;
  }
  assembler::Program padded = program;
  des::poke_nop_schedule(
      padded, std::vector<std::uint32_t>(des::kShuffleSlotCount, max_delay));
  const SboxWindow widest = des_round1_sbox_window(padded, sbox);
  if (!widest.valid()) return SboxWindow{};
  return SboxWindow{zero.begin, widest.end};
}

}  // namespace emask::core
