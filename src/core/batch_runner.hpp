// Parallel batch trace-capture engine.
//
// Every attack experiment (DPA key recovery, TVLA, noise sweeps) consumes
// thousands of independent encryption traces.  Each encryption is a pure
// function of its (key, plaintext) input — the compiled program, simulator
// and energy model carry no state across runs — so capture is
// embarrassingly parallel.  BatchRunner fans a batch out across a
// std::thread worker pool (one MaskingPipeline / energy-model instance per
// worker), then re-serializes completions so consumers observe traces in
// input order.
//
// Determinism contract
// --------------------
// The captured TraceSet is **bit-identical to a serial capture regardless
// of thread count**.  Three mechanisms guarantee this:
//
//   1. every per-encryption input is derived from the batch *index* alone
//      (explicit input list, or a deterministic per-index generator —
//      util::Rng::nth gives O(1) random access into a SplitMix64 stream);
//   2. each worker writes its result into the slot reserved for that index;
//      the emission loop hands results to the consumer strictly in index
//      order;
//   3. batch statistics (cycle totals, energy aggregates, per-component
//      breakdown) are accumulated on the emission side, in serial order, so
//      even floating-point sums are schedule-independent.
//
// Large batches stream: a bounded reorder window (a few traces per worker)
// caps resident memory, and capture_to_file() pipes straight into
// analysis::TraceSetWriter so a million-trace acquisition never holds more
// than the window in RAM.
//
// Shared-prefix forking (SnapshotMode): when the compiled program declares
// a `fork` marker, the runner captures the plaintext-independent prefix
// once (MaskingPipeline::snapshot_des) and forks every same-key run from
// the snapshot.  run_des_from is bit-identical to run_des, so the
// determinism contract is unaffected — snapshotting is purely a throughput
// optimization, and fork/cold accounting lands in BatchStats.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/trace_io.hpp"
#include "core/masking_pipeline.hpp"
#include "energy/components.hpp"

namespace emask::core {

/// One encryption job.
struct BatchInput {
  std::uint64_t key = 0;
  std::uint64_t plaintext = 0;
  /// CBC chaining value, poked into the `iv` symbol of cbc_chain programs
  /// (the session layer precomputes the chain via the golden model so every
  /// block stays a pure function of its batch index).  Ignored for programs
  /// without an `iv` symbol.
  std::uint64_t iv = 0;
};

/// Produces the input for batch index `i`.  Must be a pure function of the
/// index (and thread-safe): the determinism contract hangs on it.
using InputGenerator = std::function<BatchInput(std::size_t)>;

/// Custom per-encryption run: lets a batch drive non-DES workloads (poke
/// an AES plaintext or SHA-1 message block into an image copy, then
/// run_image).  Must be a pure function of (device, input) and thread-safe
/// — the determinism contract extends to it.  Measurement noise is still
/// applied by the runner on top of the returned trace.
using RunFunction =
    std::function<EncryptionRun(const MaskingPipeline&, const BatchInput&)>;

/// Shared-prefix snapshot/fork policy for a batch (see
/// MaskingPipeline::snapshot_des).
enum class SnapshotMode {
  /// Snapshot when it applies: default DES runs (no custom run_function)
  /// of a program that declares a `fork` marker.  Anything else falls back
  /// to cold starts — bit-identical either way.
  kAuto,
  /// Never snapshot; every run is a cold start.
  kOff,
  /// Fail loudly (std::logic_error) if the batch cannot snapshot — a
  /// custom run_function is configured, or the program declares no `fork`
  /// marker.  Individual runs may still legitimately fall back cold (a
  /// key differing from the snapshot key, or a stop_after_cycles budget
  /// ending at or before the fork point).
  kRequire,
};

struct BatchConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Truncate each encryption after this many cycles (0 = run to halt) —
  /// an attacker windowing round 1 does not pay for the other fifteen.
  std::uint64_t stop_after_cycles = 0;
  /// Additive Gaussian measurement noise, pJ rms (0 = noise-free).  Seeded
  /// per *index* so noisy batches stay schedule-independent.
  double noise_sigma_pj = 0.0;
  std::uint64_t noise_seed = 0xC0FFEE;
  /// Reorder-window slots per worker (bounds resident traces during
  /// streaming capture).
  std::size_t window_per_thread = 4;
  /// Null = DES: device.run_des(input.key, input.plaintext,
  /// stop_after_cycles).  Non-null overrides the whole simulation step
  /// (stop_after_cycles is then the run function's business) and bypasses
  /// snapshotting — the runner cannot know what a custom run reads before
  /// the fork point.
  RunFunction run_function;
  /// Shared-prefix snapshot/fork policy (ignored for run_function batches
  /// unless kRequire, which then throws).
  SnapshotMode snapshot = SnapshotMode::kAuto;
};

/// Batch observability: what the capture cost, aggregated in serial order.
struct BatchStats {
  std::uint64_t encryptions = 0;
  std::uint64_t total_cycles = 0;       // simulated cycles across the batch
  std::uint64_t total_instructions = 0; // retired
  double total_energy_uj = 0.0;
  energy::Breakdown breakdown;          // per-component energy, joules
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;
  /// Shared-prefix accounting.  total_cycles counts every trace in full
  /// (forked traces splice the prefix, so they report the same cycle count
  /// as a cold run); the cycles *not* re-simulated thanks to forking are
  /// snapshot_forks * snapshot_prefix_cycles.
  std::uint64_t snapshot_forks = 0;          // runs forked from the snapshot
  std::uint64_t cold_starts = 0;             // runs simulated from cycle 0
  std::uint64_t snapshot_prefix_cycles = 0;  // fork_cycle of the snapshot

  [[nodiscard]] double encryptions_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(encryptions) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double cycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_cycles) / wall_seconds
               : 0.0;
  }
};

class BatchRunner {
 public:
  explicit BatchRunner(const MaskingPipeline& pipeline,
                       BatchConfig config = {});

  /// Captures one trace per input, in order.
  [[nodiscard]] analysis::TraceSet capture(
      const std::vector<BatchInput>& inputs);

  /// Captures `count` traces with per-index generated inputs.
  [[nodiscard]] analysis::TraceSet capture(std::size_t count,
                                           const InputGenerator& generator);

  /// Streams the batch through `sink(index, input, run)` in strict index
  /// order with bounded memory — the workhorse behind the other overloads.
  /// The sink runs on the calling thread.
  void capture_each(
      std::size_t count, const InputGenerator& generator,
      const std::function<void(std::size_t, const BatchInput&,
                               EncryptionRun&)>& sink);

  /// Streams the batch straight into an EMTS file (input = plaintext),
  /// never holding more than the reorder window in memory.
  BatchStats capture_to_file(const std::string& path, std::size_t count,
                             const InputGenerator& generator);

  /// Statistics of the most recent capture.
  [[nodiscard]] const BatchStats& stats() const { return stats_; }

  /// Threads the next capture will actually use for `count` jobs.
  [[nodiscard]] std::size_t effective_threads(std::size_t count) const;

 private:
  const MaskingPipeline& pipeline_;
  BatchConfig config_;
  BatchStats stats_;
};

/// Convenience: the uniform-random (key fixed, plaintext = stream of
/// util::Rng(seed)) generator every attack bench uses.  Index i yields
/// plaintext util::Rng::nth(seed, i), reproducing the serial
/// `rng.next_u64()` acquisition loop bit-exactly.
[[nodiscard]] InputGenerator random_plaintexts(std::uint64_t key,
                                               std::uint64_t seed);

}  // namespace emask::core
