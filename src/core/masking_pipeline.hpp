// End-to-end driver: the paper's system, assembled.
//
//   annotated assembly --(compiler: forward slice + secure rewriting)-->
//   secured program --(cycle-accurate pipeline + energy model)-->
//   ciphertext + per-cycle energy trace + component breakdown
//
// This is the top-level public API: every experiment and example builds on
// MaskingPipeline.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/trace.hpp"
#include "assembler/program.hpp"
#include "compiler/masking.hpp"
#include "des/asm_generator.hpp"
#include "energy/model.hpp"
#include "energy/params.hpp"
#include "sim/pipeline.hpp"

namespace emask::core {

/// Result of simulating one encryption.
struct EncryptionRun {
  analysis::Trace trace;          // energy per cycle, picojoules
  energy::Breakdown breakdown;    // per-component totals, joules
  sim::SimResult sim;
  std::uint64_t cipher = 0;

  [[nodiscard]] double total_uj() const { return trace.total_uj(); }
  [[nodiscard]] double mean_pj_per_cycle() const { return trace.mean_pj(); }
};

class MaskingPipeline {
 public:
  /// Builds the DES program and applies `policy`.
  static MaskingPipeline des(
      compiler::Policy policy,
      const energy::TechParams& params = energy::TechParams::smartcard_025um(),
      const des::DesAsmOptions& asm_options = {});

  /// Compiles arbitrary annotated assembly under `policy`.
  static MaskingPipeline from_source(
      const std::string& source, compiler::Policy policy,
      const energy::TechParams& params = energy::TechParams::smartcard_025um());

  /// Simulates one DES encryption: pokes `key`/`plaintext` into the data
  /// image, runs to halt, returns the trace and the ciphertext.
  ///
  /// `stop_after_cycles` truncates the simulation (0 = run to halt): an
  /// attacker capturing only the first round does not need to pay for the
  /// remaining fifteen.  A truncated run reports cipher = 0.
  [[nodiscard]] EncryptionRun run_des(std::uint64_t key,
                                      std::uint64_t plaintext,
                                      std::uint64_t stop_after_cycles = 0) const;

  /// Simulates the program as-is (non-DES sources).
  [[nodiscard]] EncryptionRun run_raw() const;

  /// Simulates an externally patched copy of the compiled program (e.g.
  /// after poking a new SHA-1 message block into its data image).  The
  /// image must come from this pipeline's program().
  [[nodiscard]] EncryptionRun run_image(const assembler::Program& image,
                                        std::uint64_t stop_after_cycles = 0) const;

  [[nodiscard]] const assembler::Program& program() const {
    return masked_.program;
  }
  [[nodiscard]] const compiler::MaskResult& mask_result() const {
    return masked_;
  }
  [[nodiscard]] compiler::Policy policy() const { return policy_; }
  [[nodiscard]] const energy::TechParams& params() const { return params_; }

  /// Overrides the simulator configuration (cycle budget, memory size,
  /// operand-isolation ablation) for subsequent runs.
  void set_sim_config(const sim::SimConfig& config) { sim_config_ = config; }
  [[nodiscard]] const sim::SimConfig& sim_config() const { return sim_config_; }

 private:
  MaskingPipeline(compiler::MaskResult masked, compiler::Policy policy,
                  const energy::TechParams& params)
      : masked_(std::move(masked)), policy_(policy), params_(params) {}

  [[nodiscard]] EncryptionRun simulate(const assembler::Program& program,
                                       std::uint64_t stop_after_cycles = 0) const;

  compiler::MaskResult masked_;
  compiler::Policy policy_;
  energy::TechParams params_;
  sim::SimConfig sim_config_;
};

}  // namespace emask::core
