// End-to-end driver: the paper's system, assembled.
//
//   annotated assembly --(compiler: forward slice + secure rewriting)-->
//   secured program --(cycle-accurate pipeline + energy model)-->
//   ciphertext + per-cycle energy trace + component breakdown
//
// This is the top-level public API: every experiment and example builds on
// MaskingPipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "assembler/program.hpp"
#include "compiler/masking.hpp"
#include "des/asm_generator.hpp"
#include "energy/model.hpp"
#include "energy/params.hpp"
#include "hiding/policy.hpp"
#include "sim/pipeline.hpp"

namespace emask::core {

/// Result of simulating one encryption.
struct EncryptionRun {
  analysis::Trace trace;          // energy per cycle, picojoules
  energy::Breakdown breakdown;    // per-component totals, joules
  sim::SimResult sim;
  std::uint64_t cipher = 0;

  [[nodiscard]] double total_uj() const { return trace.total_uj(); }
  [[nodiscard]] double mean_pj_per_cycle() const { return trace.mean_pj(); }
};

/// The machine captured at the program's `fork` marker, plus everything a
/// forked run needs to resume: the key-poked program copy the simulator
/// references, the energy-model state mid-trace, and the shared prefix
/// trace spliced in front of every forked trace.  Capture once per (key,
/// program) with MaskingPipeline::snapshot_des, then fork any number of
/// per-plaintext runs with run_des_from — each is bit-identical to the
/// corresponding cold run_des call.  Immutable after capture; safe to share
/// read-only across threads (memory forks copy-on-write at page
/// granularity).
struct DesSnapshot {
  assembler::Program program;  // key poked; referenced by restored machines
  sim::Snapshot machine;
  energy::ProcessorEnergyModel model;  // state as of fork_cycle
  analysis::Trace prefix;              // samples for cycles [0, fork_cycle)
  std::uint64_t key = 0;
  std::uint64_t fork_cycle = 0;  // cycle count at capture
};

class MaskingPipeline {
 public:
  /// Builds the DES program and applies `policy` — a masking policy, a
  /// hiding policy, or any masking+hiding combination
  /// (hiding::Countermeasure converts implicitly from compiler::Policy).
  /// A shuffle_nop countermeasure forces DesAsmOptions::shuffle_slots on.
  static MaskingPipeline des(
      const hiding::Countermeasure& policy,
      const energy::TechParams& params = energy::TechParams::smartcard_025um(),
      const des::DesAsmOptions& asm_options = {});

  /// Compiles arbitrary annotated assembly under `policy`.  shuffle_nop
  /// requires the DES generator's nop_tab slots, so non-DES sources accept
  /// only wddl / random_precharge hiding (throws std::invalid_argument).
  static MaskingPipeline from_source(
      const std::string& source, const hiding::Countermeasure& policy,
      const energy::TechParams& params = energy::TechParams::smartcard_025um());

  /// Simulates one DES encryption: pokes `key`/`plaintext` into the data
  /// image, runs to halt, returns the trace and the ciphertext.
  ///
  /// `stop_after_cycles` truncates the simulation (0 = run to halt): an
  /// attacker capturing only the first round does not need to pay for the
  /// remaining fifteen.  A truncated run reports cipher = 0.
  [[nodiscard]] EncryptionRun run_des(std::uint64_t key,
                                      std::uint64_t plaintext,
                                      std::uint64_t stop_after_cycles = 0) const;

  /// run_des for a CBC-chained program (DesAsmOptions::cbc_chain): also
  /// pokes the chaining value into the `iv` symbol.  Throws
  /// std::invalid_argument when the program has no `iv` symbol.
  [[nodiscard]] EncryptionRun run_des_cbc(
      std::uint64_t key, std::uint64_t plaintext, std::uint64_t iv,
      std::uint64_t stop_after_cycles = 0) const;

  /// True when the compiled program carries the cbc_chain `iv` symbol —
  /// its runs must go through run_des_cbc / run_des_cbc_from.
  [[nodiscard]] bool has_iv() const {
    return des::has_iv_symbol(masked_.program);
  }

  /// Simulates the program as-is (non-DES sources).
  [[nodiscard]] EncryptionRun run_raw() const;

  /// True when the compiled program declares a `fork` marker (the DES
  /// generator emits one under DesAsmOptions::hoist_key_schedule).
  [[nodiscard]] bool has_fork_point() const {
    return masked_.program.fork_point.has_value();
  }

  /// True when snapshot/fork capture is both possible (fork marker) and
  /// sound for this device's countermeasure: random_precharge draws its
  /// precharge stream from cycle 0, so a shared prefix would pin every
  /// forked trace to the same randomness — such devices must run cold.
  [[nodiscard]] bool fork_eligible() const {
    return has_fork_point() && policy_.fork_compatible();
  }

  /// Runs the shared, plaintext-independent prefix once — frame setup,
  /// PC-1, the hoisted key schedule — and captures the machine at the cycle
  /// the `fork` marker retires.  Throws if the program has no marker, or if
  /// it halts (or exhausts the cycle budget) before reaching it.
  [[nodiscard]] DesSnapshot snapshot_des(std::uint64_t key) const;

  /// Forks one encryption from a snapshot: pokes `plaintext` into the
  /// forked memory, resumes at the fork point, and returns a run whose
  /// trace, sim counters, breakdown, and cipher are bit-identical to
  /// run_des(snapshot.key, plaintext, stop_after_cycles).  A budget that
  /// ends at or before the fork point falls back to a cold start, so the
  /// trace is never longer than requested.
  [[nodiscard]] EncryptionRun run_des_from(const DesSnapshot& snapshot,
                                           std::uint64_t plaintext,
                                           std::uint64_t stop_after_cycles = 0) const;

  /// run_des_from for a CBC-chained program: pokes both the plaintext and
  /// the chaining value into the forked memory (both symbols are first read
  /// after the fork marker).  Bit-identical to the corresponding
  /// run_des_cbc cold start.
  [[nodiscard]] EncryptionRun run_des_cbc_from(
      const DesSnapshot& snapshot, std::uint64_t plaintext, std::uint64_t iv,
      std::uint64_t stop_after_cycles = 0) const;

  /// Simulates an externally patched copy of the compiled program (e.g.
  /// after poking a new SHA-1 message block into its data image).  The
  /// image must come from this pipeline's program().
  [[nodiscard]] EncryptionRun run_image(const assembler::Program& image,
                                        std::uint64_t stop_after_cycles = 0) const;

  [[nodiscard]] const assembler::Program& program() const {
    return masked_.program;
  }
  [[nodiscard]] const compiler::MaskResult& mask_result() const {
    return masked_;
  }
  /// The masking half of the countermeasure (historical accessor).
  [[nodiscard]] compiler::Policy policy() const { return policy_.masking; }
  /// The full masking+hiding countermeasure.
  [[nodiscard]] const hiding::Countermeasure& countermeasure() const {
    return policy_;
  }
  [[nodiscard]] const energy::TechParams& params() const { return params_; }

  /// Overrides the simulator configuration (cycle budget, memory size,
  /// operand-isolation ablation) for subsequent runs.
  void set_sim_config(const sim::SimConfig& config) { sim_config_ = config; }
  [[nodiscard]] const sim::SimConfig& sim_config() const { return sim_config_; }

  /// Base seed for per-trace hiding randomness (random_precharge stream,
  /// shuffle_nop schedule).  Each run derives its own stream as a pure
  /// function of (base seed, plaintext), preserving BatchRunner's
  /// bit-identity contract at any thread count.  Campaigns set this from
  /// the scenario seed; the default keeps standalone runs deterministic.
  void set_hiding_seed(std::uint64_t seed) { hiding_seed_ = seed; }
  [[nodiscard]] std::uint64_t hiding_seed() const { return hiding_seed_; }

  /// The per-run hiding stream seed for `plaintext` (exposed so tests can
  /// reproduce the schedule a run used).
  [[nodiscard]] std::uint64_t run_hiding_seed(std::uint64_t plaintext) const;

  /// The shuffle_nop delay schedule drawn for one run seed: one entry per
  /// nop_tab slot, each uniform in [0, hiding::kShuffleNopMaxDelay].
  [[nodiscard]] static std::vector<std::uint32_t> shuffle_schedule(
      std::uint64_t run_seed);

 private:
  MaskingPipeline(compiler::MaskResult masked, hiding::Countermeasure policy,
                  const energy::TechParams& params)
      : masked_(std::move(masked)), policy_(policy), params_(params) {}

  [[nodiscard]] energy::HidingConfig hiding_config(
      std::uint64_t run_seed) const;

  [[nodiscard]] EncryptionRun simulate(const assembler::Program& program,
                                       std::uint64_t stop_after_cycles = 0,
                                       std::uint64_t run_seed = 0) const;

  [[nodiscard]] EncryptionRun cold_des(const std::uint64_t* iv,
                                       std::uint64_t key,
                                       std::uint64_t plaintext,
                                       std::uint64_t stop_after_cycles) const;
  [[nodiscard]] EncryptionRun forked_des(const DesSnapshot& snapshot,
                                         const std::uint64_t* iv,
                                         std::uint64_t plaintext,
                                         std::uint64_t stop_after_cycles) const;

  compiler::MaskResult masked_;
  hiding::Countermeasure policy_;
  energy::TechParams params_;
  sim::SimConfig sim_config_;
  std::uint64_t hiding_seed_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace emask::core
