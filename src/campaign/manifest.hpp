// Campaign provenance: checkpoints, the results manifest, and timings.
//
// Determinism contract
// --------------------
// `manifest.json` is **byte-identical** between a campaign run start-to-
// finish and the same campaign interrupted after any scenario and resumed
// with --resume (given the same build of the simulator).  Everything in it
// is therefore a pure function of (spec text, code): spec hash, seeds,
// scenario parameters, energy/cycle aggregates, analysis verdicts.
// Wall-clock measurements cannot satisfy that, so per-scenario wall-time
// and throughput live in `timings.json`, which the manifest references and
// which is explicitly outside the byte-identity guarantee.
//
// Checkpoints are one INI file per completed scenario under
// `checkpoints/`.  Each records the deterministic result fields with
// round-trippable "%.17g" doubles plus the spec hash; on --resume a
// checkpoint whose hash (or id) does not match the current spec is treated
// as stale and the scenario re-runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/spec.hpp"

namespace emask::util {
struct JsonValue;
}

namespace emask::campaign {

/// Deterministic outcome of one scenario (plus the wall-clock fields that
/// only ever reach timings.json).
struct ScenarioResult {
  std::uint64_t encryptions = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_instructions = 0;
  double total_energy_uj = 0.0;
  std::uint64_t secured_count = 0;
  std::uint64_t program_instructions = 0;

  /// Headline number of the analysis: mean uJ/encryption (energy), |DoM|
  /// peak (dpa/second_order), |rho| peak (cpa), max |t| (tvla).
  double metric = 0.0;
  int best_guess = -1;  // recovered key chunk/byte; -1 for non-attacks
  int true_value = -1;
  /// dpa/cpa/second_order: key recovered.  tvla: no leak.  energy: true.
  bool success = false;
  double margin = 0.0;
  std::uint64_t cycles_over_threshold = 0;  // tvla

  // -- non-deterministic; excluded from manifest.json and checkpt compare --
  double wall_seconds = 0.0;
  std::uint64_t threads_used = 0;

  [[nodiscard]] double mean_uj() const {
    return encryptions ? total_energy_uj / static_cast<double>(encryptions)
                       : 0.0;
  }
};

struct ScenarioOutcome {
  Scenario scenario;
  ScenarioResult result;
  bool resumed = false;  // satisfied from a checkpoint, not re-simulated
};

/// Writes the checkpoint INI for a completed scenario (atomically enough
/// for our purposes: temp file + rename).
void save_checkpoint(const std::string& path, const Scenario& scenario,
                     const ScenarioResult& result,
                     const std::string& spec_hash);

/// Loads a checkpoint if present and current (id + spec hash match).
/// Returns false when missing or stale; throws on a malformed file.
[[nodiscard]] bool load_checkpoint(const std::string& path,
                                   const Scenario& scenario,
                                   const std::string& spec_hash,
                                   ScenarioResult* out);

/// Writes the deterministic results manifest.  With a sharded `shard`,
/// writes the per-shard variant instead: format
/// "emask-campaign-shard-manifest-v1" with `shard_index`/`shard_count`
/// fields, covering only the shard's outcomes.  The document layout is
/// otherwise identical, so the merged whole-matrix manifest is produced by
/// the same code path (shard == nullptr or unsharded).
void write_manifest(const std::string& path, const CampaignSpec& spec,
                    const std::vector<ScenarioOutcome>& outcomes,
                    const std::string& git_version,
                    const ShardSpec* shard = nullptr);

/// Reads one manifest "result" object back into a ScenarioResult (the
/// inverse of the scenario block write_manifest emits).  Numbers
/// round-trip bit-exactly ("%.17g" doubles, raw integer tokens); a `null`
/// metric/margin (the JSON encoding of a non-finite double) loads as NaN.
/// Throws util::JsonError on missing keys or type mismatches.
[[nodiscard]] ScenarioResult scenario_result_from_json(
    const util::JsonValue& result);

/// Writes the deterministic per-scenario summary table (one row per
/// outcome, in matrix order).  Shared by the runner and the shard merge so
/// both emit byte-identical summaries.
void write_summary_csv(const std::string& path,
                       const std::vector<ScenarioOutcome>& outcomes);

/// Writes wall-time / throughput observability (non-deterministic).
void write_timings(const std::string& path,
                   const std::vector<ScenarioOutcome>& outcomes);

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git (or the repo) is unavailable.
[[nodiscard]] std::string git_describe();

/// Per-policy mean energy per encryption, averaged over the policy's
/// scenarios (energy-analysis scenarios preferred when the campaign has
/// any — they run the whole program, not an attack window).
struct PolicyRollup {
  hiding::Countermeasure policy;
  std::size_t scenarios = 0;
  double mean_uj = 0.0;
};

[[nodiscard]] std::vector<PolicyRollup> rollup_by_policy(
    const CampaignSpec& spec, const std::vector<ScenarioOutcome>& outcomes);

/// The spec's [reference] value for a policy (matched by canonical
/// countermeasure name), or nullptr.
[[nodiscard]] const double* find_reference(
    const CampaignSpec& spec, const hiding::Countermeasure& policy);

/// Filename of the analysis-specific artifact CSV the runner writes beside
/// result.csv: breakdown.csv (energy), guesses.csv (dpa/cpa/second_order),
/// t_per_cycle.csv (tvla), disclosure.csv (mlpa/collision).
[[nodiscard]] std::string_view analysis_artifact(Analysis a);

/// True for the key-ranking attacks whose scenarios additionally write a
/// traces-to-disclosure curve (disclosure.csv) beside the main artifact.
[[nodiscard]] bool analysis_has_disclosure(Analysis a);

/// Artifact paths relative to a campaign output directory — the layout
/// contract consumers (the report layer) join against.
[[nodiscard]] std::string scenario_result_path(const std::string& id);
[[nodiscard]] std::string scenario_artifact_path(const std::string& id,
                                                 Analysis a);
[[nodiscard]] std::string scenario_disclosure_path(const std::string& id);
/// Session-cipher extras beside result.csv: per-block attribution and the
/// key-schedule amortization accounting.
[[nodiscard]] std::string scenario_blocks_path(const std::string& id);
[[nodiscard]] std::string scenario_session_path(const std::string& id);

}  // namespace emask::campaign
