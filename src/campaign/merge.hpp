// Shard-manifest merge: reassembles a distributed campaign into the
// single-machine result.
//
// A sharded campaign runs `emask-campaign run SPEC --shard=i/N` on N
// machines (or build dirs), each producing an output directory with a
// verbatim spec.ini, per-scenario artifacts/checkpoints for the scenarios
// the shard owns, and a `manifest.shard-i-of-N.json`.  `merge_shards`
// takes those directories and emits a whole-matrix `manifest.json` (plus
// `summary.csv`, and `timings.json` when every shard's timings file is
// present) that is **byte-identical** to what one machine running the
// whole spec would have written — the provenance contract that makes a
// distributed sweep as trustworthy as a local one.
//
// Validation is strict and the errors are specific, because a merge that
// silently mixes incompatible shards would forge provenance:
//   * every directory must hold a spec.ini whose FNV-1a hash matches the
//     first one (same spec text, not merely the same name);
//   * every shard manifest must carry the shard format marker, the same
//     spec hash, and the same shard count N;
//   * the shard set must be disjoint and complete — a duplicate shard
//     index, a missing index, a scenario claimed by a shard that does not
//     own it, a scenario listed twice, an unknown scenario id, and a
//     scenario the owning shard never completed are each distinct errors.
//
// All merge failures throw SpecError; malformed JSON surfaces as
// util::JsonError with the offending file prefixed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/spec.hpp"

namespace emask::campaign {

struct MergeOptions {
  /// Shard output directories, each from `run --shard=i/N`.  Order is
  /// irrelevant; one directory may hold several shards of the same spec.
  std::vector<std::string> shard_dirs;
  std::string out_dir;
  bool quiet = false;
};

struct MergeReport {
  std::size_t shard_count = 0;  // N
  std::size_t scenarios = 0;    // whole-matrix scenario count
  bool timings_merged = false;  // all shard timings files were present
};

/// Validates the shard set and writes the merged manifest.json /
/// summary.csv (and timings.json when possible) into out_dir.  Throws
/// SpecError on any incompatibility.
MergeReport merge_shards(const MergeOptions& options);

}  // namespace emask::campaign
