// Declarative campaign specs: the paper's result matrix as data.
//
// A campaign spec is an INI file describing a grid of scenarios — the
// cross-product of experiment axes — plus fixed settings shared by every
// cell:
//
//   [campaign]
//   name = fig12_overhead          # campaign identifier (manifest, dirs)
//   seed = 0xC0FFEE                # base seed; scenario i uses Rng::nth(seed, i)
//   key = 0x133457799BBCDFF1       # cipher key material
//   key2 = 0x23456789ABCDEF01      # 3DES middle key (tdes_cbc sessions)
//   key3 = 0x456789ABCDEF0123      # 3DES final key (tdes_cbc sessions)
//   fixed_input = 0x0123456789ABCDEF  # fixed-class input (TVLA, energy
//                                  # runs) and the session-cipher IV
//   window_begin = 3000            # analysis window (cycles)
//   window_end = 13000             # also the capture stop_after_cycles
//   save_traces = false            # additionally write traces.emts per scenario
//
//   [axes]                         # each key is one axis; values are lists
//   cipher = des                   # des | aes | sha1 | des_cbc | tdes_cbc
//   policy = original, selective, naive_loadstore, all_secure
//   analysis = energy              # energy | dpa | cpa | tvla |
//                                  # second_order | mlpa | collision
//   noise = 0                      # Gaussian measurement noise sigma, pJ
//   traces = 1                     # encryptions per scenario
//   session_length = 1             # blocks per session (session ciphers)
//   coupling = 0                   # adjacent-line bus coupling, fF
//
// Session ciphers (des_cbc, tdes_cbc) run multi-block CBC sessions through
// src/session: `key2`/`key3` in [campaign] supply the extra 3DES keys and
// `fixed_input` doubles as the IV.  For them the per-block trace is the
// unit of attack data, so `traces` must stay 1 and attacks require
// session_length >= 2.
//
//   [tech]                         # optional TechParams overrides (by field
//   vdd = 2.5                      # name), applied to every scenario
//
//   [reference]                    # optional paper numbers, uJ per policy —
//   original = 46.4                # the summary prints measured ratios next
//   selective = 52.6               # to the paper's and the ratio-normalized
//                                  # energies
//
// Validation is strict: unknown sections/keys, malformed numbers, bad axis
// values, analyses a cipher cannot run (dpa on sha1), and empty axes are
// all SpecError — a campaign that will burn hours of simulation should
// fail in milliseconds, not at scenario 37.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compiler/masking.hpp"
#include "energy/params.hpp"
#include "hiding/policy.hpp"

namespace emask::campaign {

class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Cipher {
  kDes,
  kAes,
  kSha1,
  kDesCbc,   // multi-block DES-CBC session (src/session)
  kTdesCbc,  // multi-block 3DES-EDE outer-CBC session (src/session)
};

/// True for the protocol-scale session workloads (des_cbc / tdes_cbc) that
/// run through session::SessionEngine instead of a single-block device.
[[nodiscard]] constexpr bool is_session_cipher(Cipher c) {
  return c == Cipher::kDesCbc || c == Cipher::kTdesCbc;
}

enum class Analysis {
  kEnergy,
  kDpa,
  kCpa,
  kTvla,
  kSecondOrder,
  kMlpa,       // multi-linear power analysis (DES round 1, per-S-box)
  kCollision,  // correlation-enhanced collision attack (no power model)
};

[[nodiscard]] std::string_view cipher_name(Cipher c);
[[nodiscard]] std::string_view analysis_name(Analysis a);

// Inverses of the *_name functions, shared by the spec parser and every
// consumer that reads names back out of a manifest (shard merge, report).
// Each throws SpecError naming the unknown value.
[[nodiscard]] Cipher cipher_from_name(const std::string& name);
[[nodiscard]] Analysis analysis_from_name(const std::string& name);
// The policy axis accepts the full countermeasure grammar — a masking name,
// a hiding name ("wddl", "random_precharge", "shuffle_nop"), or a
// "masking+hiding" pair — and delegates to hiding::countermeasure_from_name,
// the single source of truth for the names.
[[nodiscard]] hiding::Countermeasure policy_from_name(const std::string& name);

/// One cell of the campaign matrix, fully resolved.
struct Scenario {
  std::size_t index = 0;  // position in expansion order
  std::string id;         // "0003-des-selective-tvla-n25-t60-c0"
  Cipher cipher = Cipher::kDes;
  hiding::Countermeasure policy;  // masking and/or hiding countermeasure
  Analysis analysis = Analysis::kEnergy;
  double noise_sigma_pj = 0.0;
  std::size_t traces = 1;
  double coupling_ff = 0.0;
  /// Blocks per session for session ciphers (des_cbc / tdes_cbc); always 1
  /// for single-block ciphers.  Session scenarios treat the block index —
  /// not `traces` — as the trace axis.
  std::size_t session_length = 1;
  std::uint64_t seed = 0;  // Rng::nth(campaign seed, index)
  std::uint64_t key = 0;
  std::uint64_t key2 = 0;  // 3DES middle key (tdes_cbc only)
  std::uint64_t key3 = 0;  // 3DES final key (tdes_cbc only)
  std::uint64_t fixed_input = 0;
  std::size_t window_begin = 0;
  std::size_t window_end = 0;  // capture stop_after_cycles (0 = to halt)

  /// TechParams for this cell: campaign [tech] overrides + coupling axis.
  [[nodiscard]] energy::TechParams tech_params(
      const std::vector<std::pair<std::string, double>>& overrides) const;
};

struct CampaignSpec {
  std::string name;
  std::uint64_t seed = 0xC0FFEE;
  std::uint64_t key = 0x133457799BBCDFF1ull;
  // 3DES session key material (used by tdes_cbc scenarios only); defaults
  // match examples/triple_des_card.
  std::uint64_t key2 = 0x23456789ABCDEF01ull;
  std::uint64_t key3 = 0x456789ABCDEF0123ull;
  std::uint64_t fixed_input = 0x0123456789ABCDEFull;
  std::size_t window_begin = 3000;
  std::size_t window_end = 13000;
  bool save_traces = false;

  std::vector<Cipher> ciphers;
  std::vector<hiding::Countermeasure> policies;
  std::vector<Analysis> analyses;
  std::vector<double> noise;
  std::vector<std::size_t> traces;
  std::vector<std::size_t> session_lengths;  // session ciphers only
  std::vector<double> coupling_ff;

  std::vector<std::pair<std::string, double>> tech_overrides;
  std::vector<std::pair<std::string, double>> reference_uj;  // policy -> uJ

  std::string text;  // the raw spec, verbatim (copied into the output dir)
  std::string hash;  // FNV-1a 64 of `text`, hex — the resume/checkpoint guard

  /// Parses and validates; throws SpecError with a precise message.
  [[nodiscard]] static CampaignSpec parse(const std::string& text);
  [[nodiscard]] static CampaignSpec load_file(const std::string& path);

  /// Expands the axes into the ordered scenario list (cipher-major,
  /// coupling-minor nesting).  Throws SpecError for combinations no engine
  /// exists for (dpa/second_order off DES, cpa on sha1).
  [[nodiscard]] std::vector<Scenario> expand() const;
};

/// Deterministic partition of the scenario matrix for distributed runs
/// (`--shard=i/N`).  Shard i of N owns every scenario whose canonical
/// expansion index satisfies `index % N == i` — a stable round-robin over
/// the cell ordering, so the shards are balanced across the matrix and the
/// partition depends only on the spec text, never on thread count or
/// execution order.  The default (0/1) is the unsharded whole matrix.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  [[nodiscard]] bool sharded() const { return count > 1; }
  [[nodiscard]] bool owns(std::size_t scenario_index) const {
    return scenario_index % count == index;
  }

  /// "shard-i-of-N" — the suffix used for per-shard output files.
  [[nodiscard]] std::string label() const;

  /// The checkpoint guard hash for this partition: the spec hash itself
  /// when unsharded, otherwise the spec hash with the shard parameters
  /// folded in.  A checkpoint written under a different partition (or by a
  /// single-machine run) therefore never satisfies a sharded --resume.
  [[nodiscard]] std::string checkpoint_hash(
      const std::string& spec_hash) const;

  /// Parses "i/N" (e.g. "0/4"); requires N >= 1 and i < N.  Throws
  /// SpecError with a precise message otherwise.
  [[nodiscard]] static ShardSpec parse(const std::string& text);
};

/// Sets TechParams field `name` to `value`; throws SpecError for an
/// unknown field name.
void apply_tech_override(energy::TechParams& params, const std::string& name,
                         double value);

/// FNV-1a 64-bit hash, lowercase hex.
[[nodiscard]] std::string fnv1a_hex(const std::string& text);

}  // namespace emask::campaign
