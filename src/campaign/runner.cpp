#include "campaign/runner.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "aes/aes128.hpp"
#include "aes/asm_generator.hpp"
#include "analysis/collision.hpp"
#include "analysis/cpa.hpp"
#include "analysis/disclosure.hpp"
#include "analysis/dpa.hpp"
#include "analysis/generic_cpa.hpp"
#include "analysis/mlpa.hpp"
#include "analysis/second_order.hpp"
#include "analysis/trace_io.hpp"
#include "analysis/tvla.hpp"
#include "bitslice/providers.hpp"
#include "core/batch_runner.hpp"
#include "energy/kernels.hpp"
#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "energy/components.hpp"
#include "session/session.hpp"
#include "sha/asm_generator.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace emask::campaign {
namespace {

namespace fs = std::filesystem;

// Second-order preprocessing lag horizon (cycles between the two combined
// leakage samples).
constexpr std::size_t kSecondOrderMaxLag = 4;

std::string fmt(double v) { return util::JsonWriter::format_double(v); }

/// Expands a 64-bit input into the AES key / block / SHA-1 message-block
/// shapes via a private SplitMix64 stream — pure functions of the input,
/// as the BatchRunner determinism contract requires.
aes::Key aes_key_from_u64(std::uint64_t seed) {
  util::Rng rng(seed);
  aes::Key key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
  return key;
}

aes::Block aes_block_from_u64(std::uint64_t seed) {
  util::Rng rng(seed);
  aes::Block block;
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_below(256));
  return block;
}

std::array<std::uint32_t, 16> sha_block_from_u64(std::uint64_t seed) {
  util::Rng rng(seed);
  std::array<std::uint32_t, 16> block;
  for (auto& w : block) w = rng.next_u32();
  return block;
}

/// Builds the scenario's device and configures the batch for its cipher.
core::MaskingPipeline build_device(const Scenario& s,
                                   const energy::TechParams& params,
                                   core::BatchConfig& bc) {
  // Energy scenarios measure the whole encryption; attack scenarios stop
  // at the end of the analysis window (an attacker windowing round 1 does
  // not pay for the other fifteen).
  const std::uint64_t stop =
      s.analysis == Analysis::kEnergy ? 0 : s.window_end;
  bc.stop_after_cycles = stop;
  switch (s.cipher) {
    case Cipher::kDes: {
      core::MaskingPipeline device = core::MaskingPipeline::des(s.policy, params);
      // Per-trace hiding randomness (random_precharge stream, shuffle_nop
      // schedule) derives from the scenario seed, so it is as reproducible
      // as the plaintext sequence.
      device.set_hiding_seed(s.seed ^ 0x48D1D6F0ull);
      return device;
    }
    case Cipher::kAes: {
      const std::string source = aes::generate_aes_asm(
          aes_key_from_u64(s.key), aes::Block{});  // block poked per run
      bc.run_function = [stop](const core::MaskingPipeline& device,
                               const core::BatchInput& input) {
        assembler::Program image = device.program();
        aes::poke_plaintext(image, aes_block_from_u64(input.plaintext));
        return device.run_image(image, stop);
      };
      return core::MaskingPipeline::from_source(source, s.policy, params);
    }
    case Cipher::kSha1: {
      const std::string source =
          sha::generate_sha1_asm(sha_block_from_u64(s.fixed_input));
      bc.run_function = [stop](const core::MaskingPipeline& device,
                               const core::BatchInput& input) {
        assembler::Program image = device.program();
        sha::poke_message(image, sha_block_from_u64(input.plaintext));
        return device.run_image(image, stop);
      };
      return core::MaskingPipeline::from_source(source, s.policy, params);
    }
    case Cipher::kDesCbc:
    case Cipher::kTdesCbc:
      break;  // session ciphers never reach build_device
  }
  throw SpecError("unreachable cipher");
}

void write_result_csv(const std::string& dir, const ScenarioResult& r) {
  util::CsvWriter csv(dir + "/result.csv");
  csv.write_header({"field", "value"});
  csv.write_row({"encryptions", std::to_string(r.encryptions)});
  csv.write_row({"total_cycles", std::to_string(r.total_cycles)});
  csv.write_row(
      {"total_instructions", std::to_string(r.total_instructions)});
  csv.write_row({"total_energy_uj", fmt(r.total_energy_uj)});
  csv.write_row({"mean_uj", fmt(r.mean_uj())});
  csv.write_row({"secured_count", std::to_string(r.secured_count)});
  csv.write_row(
      {"program_instructions", std::to_string(r.program_instructions)});
  csv.write_row({"metric", fmt(r.metric)});
  csv.write_row({"best_guess", std::to_string(r.best_guess)});
  csv.write_row({"true_value", std::to_string(r.true_value)});
  csv.write_row({"success", std::string(r.success ? "1" : "0")});
  csv.write_row({"margin", fmt(r.margin)});
  csv.write_row(
      {"cycles_over_threshold", std::to_string(r.cycles_over_threshold)});
  csv.flush();
}

void write_breakdown_csv(const std::string& dir,
                         const energy::Breakdown& breakdown) {
  util::CsvWriter csv(dir + "/breakdown.csv");
  csv.write_header({"component", "energy_uj"});
  for (std::size_t c = 0; c < energy::kNumComponents; ++c) {
    const auto component = static_cast<energy::Component>(c);
    csv.write_row({std::string(energy::component_name(component)),
                   fmt(breakdown.get(component) * 1e6)});
  }
  csv.flush();
}

template <typename Scores>
void write_guesses_csv(const std::string& dir, const Scores& scores,
                       const char* score_name) {
  util::CsvWriter csv(dir + "/guesses.csv");
  csv.write_header({"guess", score_name});
  for (std::size_t g = 0; g < scores.size(); ++g) {
    csv.write_row({std::to_string(g), fmt(scores[g])});
  }
  csv.flush();
}

/// Samples a streaming attack's per-guess scores at the deterministic
/// DisclosureCurve schedule.  The BatchRunner delivers captures to the
/// sink in batch order regardless of thread count, so the mid-stream
/// solves — and the resulting disclosure.csv — are byte-identical across
/// --jobs values.
class DisclosureRecorder {
 public:
  explicit DisclosureRecorder(std::size_t total)
      : checkpoints_(analysis::DisclosureCurve::schedule(total)) {}

  /// Call once per captured trace; `solve` yields the current 64 scores
  /// and only runs at checkpoint trace counts.
  template <typename Solve>
  void sample(std::size_t index, Solve&& solve) {
    if (next_ == checkpoints_.size() || index + 1 != checkpoints_[next_]) {
      return;
    }
    curve_.add_checkpoint(index + 1, solve());
    ++next_;
  }

  void write(const std::string& dir) const {
    if (!curve_.empty()) curve_.write_csv(dir + "/disclosure.csv");
  }

 private:
  std::vector<std::size_t> checkpoints_;
  analysis::DisclosureCurve curve_;
  std::size_t next_ = 0;
};

template <typename Scores>
std::vector<double> as_scores(const Scores& scores) {
  return std::vector<double>(scores.begin(), scores.end());
}

void fill_batch_stats(ScenarioResult& r, const core::BatchStats& stats) {
  r.encryptions += stats.encryptions;
  r.total_cycles += stats.total_cycles;
  r.total_instructions += stats.total_instructions;
  r.total_energy_uj += stats.total_energy_uj;
  r.threads_used = stats.threads_used;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Session-cipher execution: the scenario runs a multi-block CBC session
/// through session::SessionEngine instead of a single-block device.  The
/// per-block trace is the unit of attack data (the block index plays the
/// role `traces` plays elsewhere), and the effective single-DES input of
/// the chained first pass — plaintext ^ chain, reported by the engine as
/// BlockEvent::des_input — feeds the round-1 hypotheses exactly like an
/// ECB plaintext.  Attack windows come from the compiled stage-0 program
/// (the hoisted key schedule shifts round 1 far past the single-block
/// spec defaults).  Beside result.csv the scenario writes blocks.csv
/// (per-block attribution) and session.csv (amortization accounting).
ScenarioResult run_session_scenario(const CampaignSpec& spec,
                                    const RunnerOptions& options,
                                    const Scenario& s,
                                    const energy::TechParams& params,
                                    const std::string& dir) {
  session::SessionConfig cfg;
  cfg.cipher = s.cipher == Cipher::kDesCbc
                   ? session::SessionCipher::kDesCbc
                   : session::SessionCipher::kTdesEdeCbc;
  cfg.keys = {s.key, s.key2, s.key3};
  cfg.iv = s.fixed_input;
  cfg.policy = s.policy;
  cfg.params = params;
  cfg.threads = options.jobs;
  cfg.noise_sigma_pj = s.noise_sigma_pj;
  cfg.noise_seed = s.seed ^ 0x5EED50FAull;
  cfg.hiding_seed = s.seed ^ 0x48D1D6F0ull;  // matches the single-block path
  session::SessionEngine engine(cfg);

  ScenarioResult r;
  r.secured_count = engine.device(0).mask_result().secured_count;
  r.program_instructions = engine.device(0).program().text.size();
  r.threads_used = options.jobs;

  // Message blocks are pure functions of the scenario seed — the session
  // counterpart of the random-plaintext convention.
  const std::size_t n = s.session_length;
  std::vector<std::uint64_t> blocks(n);
  for (std::size_t i = 0; i < n; ++i) blocks[i] = util::Rng::nth(s.seed, i);
  std::vector<std::uint64_t> des_inputs(n, 0);

  std::unique_ptr<analysis::TraceSetWriter> trace_writer;
  if (spec.save_traces) {
    trace_writer =
        std::make_unique<analysis::TraceSetWriter>(dir + "/traces.emts", n);
  }

  // Stats accumulate over every simulated (block, stage) run; stage-0
  // bookkeeping (des_input, saved traces) is per block.
  const auto accumulate = [&](const session::BlockEvent& ev,
                              core::EncryptionRun& run) {
    ++r.encryptions;
    r.total_cycles += run.sim.cycles;
    r.total_instructions += run.sim.instructions;
    r.total_energy_uj += run.total_uj();
    if (ev.stage == 0) {
      des_inputs[ev.block] = ev.des_input;
      if (trace_writer) trace_writer->append(ev.des_input, run.trace);
    }
  };
  // Attack capture windows round 1 of the chained first pass, located in
  // the compiled program; the session simulates only that pass, truncated
  // at the window's end.
  const auto attack_window = [&](std::size_t sbox, std::size_t& begin,
                                 std::size_t& end) {
    // Shuffled sessions need the widest window over every delay schedule;
    // see the single-block path for the derivation rationale.
    const bool shuffled =
        s.policy.hiding == hiding::HidingPolicy::kShuffleNop;
    const core::SboxWindow w =
        shuffled ? core::des_round1_sbox_window_bounds(
                       engine.device(0).program(), static_cast<int>(sbox),
                       hiding::kShuffleNopMaxDelay)
                 : core::des_round1_sbox_window(engine.device(0).program(),
                                                static_cast<int>(sbox));
    if (shuffled && !w.valid()) {
      throw SpecError(s.id +
                      ": cannot derive a shuffle-aware attack window (the "
                      "program lacks the generator's round_loop/sbox_loop "
                      "labels)");
    }
    begin = w.valid() ? w.begin : s.window_begin;
    end = w.valid() ? w.end
                    : (s.window_end == 0 ? SIZE_MAX : s.window_end);
    engine.set_stop_after_cycles(w.valid() ? w.end : s.window_end);
  };

  session::SessionResult session;
  switch (s.analysis) {
    case Analysis::kEnergy: {
      energy::Breakdown breakdown;
      session = engine.encrypt(
          blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
            accumulate(ev, run);
            for (std::size_t c = 0; c < energy::kNumComponents; ++c) {
              const auto component = static_cast<energy::Component>(c);
              breakdown.add(component, run.breakdown.get(component));
            }
          });
      r.metric = r.mean_uj();
      r.success = true;
      write_breakdown_csv(dir, breakdown);
      break;
    }
    case Analysis::kDpa: {
      analysis::DpaConfig cfg_a;
      attack_window(cfg_a.sbox, cfg_a.window_begin, cfg_a.window_end);
      analysis::DpaAttack dpa(cfg_a);
      if (options.backend != Backend::kScalar) {
        dpa.set_provider(
            std::make_shared<bitslice::DpaProvider>(cfg_a.sbox, cfg_a.bit));
      }
      DisclosureRecorder disclosure(n);
      session = engine.encrypt(
          blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
            accumulate(ev, run);
            dpa.add_trace(ev.des_input, run.trace);
            disclosure.sample(ev.block, [&] {
              return as_scores(dpa.solve().peak_per_guess);
            });
          });
      const analysis::DpaResult result = dpa.solve();
      r.metric = result.best_peak;
      r.best_guess = result.best_guess;
      r.true_value =
          analysis::DpaAttack::true_subkey_chunk(s.key, cfg_a.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.peak_per_guess, "dom_peak_pj");
      disclosure.write(dir);
      break;
    }
    case Analysis::kCpa: {
      analysis::CpaConfig cfg_a;
      attack_window(cfg_a.sbox, cfg_a.window_begin, cfg_a.window_end);
      analysis::CpaAttack cpa(cfg_a);
      if (options.backend != Backend::kScalar) {
        cpa.set_provider(std::make_shared<bitslice::CpaProvider>(cfg_a.sbox));
      }
      DisclosureRecorder disclosure(n);
      session = engine.encrypt(
          blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
            accumulate(ev, run);
            cpa.add_trace(ev.des_input, run.trace);
            disclosure.sample(ev.block, [&] {
              return as_scores(cpa.solve().corr_per_guess);
            });
          });
      const analysis::CpaResult result = cpa.solve();
      r.metric = result.best_corr;
      r.best_guess = result.best_guess;
      r.true_value =
          analysis::DpaAttack::true_subkey_chunk(s.key, cfg_a.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.corr_per_guess, "abs_rho");
      disclosure.write(dir);
      break;
    }
    case Analysis::kMlpa: {
      analysis::MlpaConfig cfg_a;
      attack_window(cfg_a.sbox, cfg_a.window_begin, cfg_a.window_end);
      analysis::MlpaAttack mlpa(cfg_a);
      if (options.backend != Backend::kScalar) {
        std::vector<int> in_masks;
        for (const analysis::LinearApprox& ap : mlpa.approximations()) {
          in_masks.push_back(ap.in_mask);
        }
        mlpa.set_provider(std::make_shared<bitslice::MlpaProvider>(
            cfg_a.sbox, std::move(in_masks)));
      }
      DisclosureRecorder disclosure(n);
      session = engine.encrypt(
          blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
            accumulate(ev, run);
            mlpa.add_trace(ev.des_input, run.trace);
            disclosure.sample(ev.block, [&] {
              return as_scores(mlpa.solve().score_per_guess);
            });
          });
      const analysis::MlpaResult result = mlpa.solve();
      r.metric = result.best_score;
      r.best_guess = result.best_guess;
      r.true_value =
          analysis::DpaAttack::true_subkey_chunk(s.key, cfg_a.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.score_per_guess, "mlpa_score");
      disclosure.write(dir);
      break;
    }
    case Analysis::kCollision: {
      analysis::CollisionConfig cfg_a;
      attack_window(cfg_a.sbox, cfg_a.window_begin, cfg_a.window_end);
      analysis::CollisionAttack collision(cfg_a);
      if (options.backend != Backend::kScalar) {
        collision.set_provider(
            std::make_shared<bitslice::CollisionProvider>(cfg_a.sbox));
      }
      DisclosureRecorder disclosure(n);
      session = engine.encrypt(
          blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
            accumulate(ev, run);
            collision.add_trace(ev.des_input, run.trace);
            disclosure.sample(ev.block, [&] {
              return as_scores(collision.solve().score_per_guess);
            });
          });
      const analysis::CollisionResult result = collision.solve();
      r.metric = result.best_score;
      r.best_guess = result.best_guess;
      r.true_value =
          analysis::DpaAttack::true_subkey_chunk(s.key, cfg_a.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.score_per_guess, "collision_score");
      disclosure.write(dir);
      break;
    }
    default:
      // expand() rejects these; keep the message aligned with its table.
      throw SpecError("analysis '" + std::string(analysis_name(s.analysis)) +
                      "' is not defined for session ciphers "
                      "(expected energy|dpa|cpa|mlpa|collision)");
  }

  if (trace_writer) {
    if (trace_writer->written() == n) trace_writer->close();
    trace_writer.reset();
  }

  // Per-block attribution.  Deliberately snapshot-mode free: the rows are
  // byte-identical whether blocks forked from the key-schedule snapshot or
  // ran cold, which the determinism tests diff.
  util::CsvWriter bcsv(dir + "/blocks.csv");
  bcsv.write_header({"block", "plaintext", "chain", "des_input", "output",
                     "cycles", "energy_uj"});
  for (std::size_t i = 0; i < session.blocks.size(); ++i) {
    const session::BlockResult& b = session.blocks[i];
    bcsv.write_row({std::to_string(i), hex64(b.input), hex64(b.chain),
                    hex64(des_inputs[i]), hex64(b.output),
                    std::to_string(b.cycles), fmt(b.energy_uj)});
  }
  bcsv.flush();

  // Key-schedule amortization accounting (pure cycle math).
  util::CsvWriter scsv(dir + "/session.csv");
  scsv.write_header({"field", "value"});
  scsv.write_row(
      {"cipher", std::string(session::session_cipher_name(cfg.cipher))});
  scsv.write_row({"session_length", std::to_string(n)});
  scsv.write_row({"stages", std::to_string(session.stages)});
  scsv.write_row({"prefix_cycles", std::to_string(session.prefix_cycles)});
  scsv.write_row({"block_cycles", std::to_string(session.block_cycles)});
  scsv.write_row({"session_cycles", std::to_string(session.session_cycles)});
  scsv.write_row({"cold_cycles", std::to_string(session.cold_cycles)});
  scsv.write_row({"amortized_speedup", fmt(session.amortized_speedup())});
  scsv.write_row({"total_uj", fmt(session.total_uj)});
  scsv.write_row({"uj_per_block", fmt(session.uj_per_block())});
  scsv.flush();
  return r;
}

}  // namespace

Backend backend_from_name(const std::string& name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "scalar") return Backend::kScalar;
  if (name == "bitslice") return Backend::kBitslice;
  throw SpecError("unknown backend '" + name +
                  "' (expected auto, scalar, or bitslice)");
}

CampaignRunner::CampaignRunner(CampaignSpec spec, RunnerOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  if (options_.out_dir.empty()) {
    throw SpecError("campaign runner needs an output directory");
  }
  // The energy-kernel toggle is process-global; an explicit --backend
  // pins it, kAuto keeps the default/env selection.
  if (options_.backend == Backend::kScalar) {
    energy::set_hamming_backend(energy::HammingBackend::kScalar);
  } else if (options_.backend == Backend::kBitslice) {
    energy::set_hamming_backend(energy::HammingBackend::kBitslice);
  }
}

ScenarioResult CampaignRunner::execute(const Scenario& s,
                                       const std::string& dir) const {
  const auto t0 = std::chrono::steady_clock::now();
  const energy::TechParams params = s.tech_params(spec_.tech_overrides);
  if (is_session_cipher(s.cipher)) {
    ScenarioResult r = run_session_scenario(spec_, options_, s, params, dir);
    r.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    write_result_csv(dir, r);
    return r;
  }
  core::BatchConfig bc;
  bc.threads = options_.jobs;
  bc.noise_sigma_pj = s.noise_sigma_pj;
  bc.noise_seed = s.seed ^ 0x5EED50FAull;
  const core::MaskingPipeline device = build_device(s, params, bc);

  // Shuffled devices desynchronize the cycle axis, so a fixed-schedule
  // window can silently truncate late-shifted traces.  Derive the widest
  // window — begin from the zero-delay schedule, end from the all-max
  // schedule — from the compiled program, and fail loudly if the program
  // lacks the labels rather than falling back to the spec window.
  const bool shuffled = s.policy.hiding == hiding::HidingPolicy::kShuffleNop;
  const auto sbox_window = [&](std::size_t sbox) -> core::SboxWindow {
    const core::SboxWindow w =
        shuffled ? core::des_round1_sbox_window_bounds(
                       device.program(), static_cast<int>(sbox),
                       hiding::kShuffleNopMaxDelay)
                 : core::des_round1_sbox_window(device.program(),
                                                static_cast<int>(sbox));
    if (shuffled && !w.valid()) {
      throw SpecError(s.id +
                      ": cannot derive a shuffle-aware attack window (the "
                      "program lacks the generator's round_loop/sbox_loop "
                      "labels)");
    }
    return w;
  };
  if (shuffled && s.analysis != Analysis::kEnergy &&
      bc.stop_after_cycles != 0) {
    // The shuffled program runs longer than the classic one; the capture
    // must cover the widest schedule or TraceWindow::admit will throw.
    bc.stop_after_cycles =
        std::max<std::uint64_t>(bc.stop_after_cycles, sbox_window(7).end);
  }
  core::BatchRunner runner(device, bc);

  ScenarioResult r;
  r.secured_count = device.mask_result().secured_count;
  r.program_instructions = device.program().text.size();

  // Input for batch index i: plaintext Rng::nth(scenario seed, i) under the
  // campaign key (for aes/sha1 the u64 is expanded into a block by the run
  // function, so the same generator drives all three ciphers).
  const core::InputGenerator random_inputs =
      core::random_plaintexts(s.key, s.seed);
  const core::InputGenerator fixed_inputs =
      [&s](std::size_t) -> core::BatchInput {
    return {s.key, s.fixed_input};
  };
  const std::size_t window_end =
      s.window_end == 0 ? SIZE_MAX : s.window_end;

  std::unique_ptr<analysis::TraceSetWriter> trace_writer;
  std::size_t trace_writer_count = 0;
  const auto open_trace_writer = [&](std::size_t count) {
    if (!spec_.save_traces) return;
    trace_writer = std::make_unique<analysis::TraceSetWriter>(
        dir + "/traces.emts", count);
    trace_writer_count = count;
  };
  const auto record_trace = [&](const core::BatchInput& input,
                                const analysis::Trace& trace) {
    if (trace_writer) trace_writer->append(input.plaintext, trace);
  };

  switch (s.analysis) {
    case Analysis::kEnergy: {
      open_trace_writer(s.traces);
      runner.capture_each(s.traces, random_inputs,
                          [&](std::size_t, const core::BatchInput& input,
                              core::EncryptionRun& run) {
                            record_trace(input, run.trace);
                          });
      fill_batch_stats(r, runner.stats());
      r.metric = r.mean_uj();
      r.success = true;
      write_breakdown_csv(dir, runner.stats().breakdown);
      break;
    }
    case Analysis::kDpa: {
      analysis::DpaConfig cfg;
      cfg.window_begin = s.window_begin;
      cfg.window_end = window_end;
      analysis::DpaAttack dpa(cfg);
      if (options_.backend != Backend::kScalar) {
        dpa.set_provider(
            std::make_shared<bitslice::DpaProvider>(cfg.sbox, cfg.bit));
      }
      DisclosureRecorder disclosure(s.traces);
      open_trace_writer(s.traces);
      runner.capture_each(s.traces, random_inputs,
                          [&](std::size_t index, const core::BatchInput& input,
                              core::EncryptionRun& run) {
                            record_trace(input, run.trace);
                            dpa.add_trace(input.plaintext, run.trace);
                            disclosure.sample(index, [&] {
                              return as_scores(dpa.solve().peak_per_guess);
                            });
                          });
      fill_batch_stats(r, runner.stats());
      const analysis::DpaResult result = dpa.solve();
      r.metric = result.best_peak;
      r.best_guess = result.best_guess;
      r.true_value = analysis::DpaAttack::true_subkey_chunk(s.key, cfg.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.peak_per_guess, "dom_peak_pj");
      disclosure.write(dir);
      break;
    }
    case Analysis::kCpa: {
      if (s.cipher == Cipher::kDes) {
        analysis::CpaConfig cfg;
        cfg.window_begin = s.window_begin;
        cfg.window_end = window_end;
        analysis::CpaAttack cpa(cfg);
        if (options_.backend != Backend::kScalar) {
          cpa.set_provider(std::make_shared<bitslice::CpaProvider>(cfg.sbox));
        }
        DisclosureRecorder disclosure(s.traces);
        open_trace_writer(s.traces);
        runner.capture_each(s.traces, random_inputs,
                            [&](std::size_t index,
                                const core::BatchInput& input,
                                core::EncryptionRun& run) {
                              record_trace(input, run.trace);
                              cpa.add_trace(input.plaintext, run.trace);
                              disclosure.sample(index, [&] {
                                return as_scores(cpa.solve().corr_per_guess);
                              });
                            });
        fill_batch_stats(r, runner.stats());
        const analysis::CpaResult result = cpa.solve();
        r.metric = result.best_corr;
        r.best_guess = result.best_guess;
        r.true_value =
            analysis::DpaAttack::true_subkey_chunk(s.key, cfg.sbox);
        r.success = r.best_guess == r.true_value;
        r.margin = result.margin();
        write_guesses_csv(dir, result.corr_per_guess, "abs_rho");
        disclosure.write(dir);
      } else {
        // AES: classic first-round CPA on the Hamming weight of
        // sbox(pt[0] ^ guess), 256 guesses.
        analysis::GenericCpa cpa(256, s.window_begin, window_end);
        open_trace_writer(s.traces);
        runner.capture_each(
            s.traces, random_inputs,
            [&](std::size_t, const core::BatchInput& input,
                core::EncryptionRun& run) {
              record_trace(input, run.trace);
              const aes::Block pt = aes_block_from_u64(input.plaintext);
              std::vector<int> hypotheses(256);
              for (int g = 0; g < 256; ++g) {
                hypotheses[static_cast<std::size_t>(g)] =
                    std::popcount(static_cast<unsigned>(aes::sbox(
                        static_cast<std::uint8_t>(pt[0] ^ g))));
              }
              cpa.add_trace(hypotheses, run.trace);
            });
        fill_batch_stats(r, runner.stats());
        const analysis::GenericCpaResult result = cpa.solve();
        r.metric = result.best_corr;
        r.best_guess = result.best_guess;
        r.true_value = aes_key_from_u64(s.key)[0];
        r.success = r.best_guess == r.true_value;
        r.margin = result.margin();
        write_guesses_csv(dir, result.corr_per_guess, "abs_rho");
      }
      break;
    }
    case Analysis::kTvla: {
      // Fixed-vs-random Welch t: each class gets traces/2 encryptions,
      // both with per-index measurement noise (distinct noise seeds, so
      // the fixed class is not one trace copied N times under noise).
      const std::size_t per_class = s.traces / 2;
      analysis::TvlaAssessment tvla(s.window_begin, window_end);
      core::BatchConfig fixed_bc = bc;
      fixed_bc.noise_seed = bc.noise_seed ^ 0xF1DEF1DEull;
      core::BatchRunner fixed_runner(device, fixed_bc);
      fixed_runner.capture_each(per_class, fixed_inputs,
                                [&](std::size_t, const core::BatchInput&,
                                    core::EncryptionRun& run) {
                                  tvla.add_fixed(run.trace);
                                });
      fill_batch_stats(r, fixed_runner.stats());
      open_trace_writer(per_class);  // random class only
      runner.capture_each(per_class, random_inputs,
                          [&](std::size_t, const core::BatchInput& input,
                              core::EncryptionRun& run) {
                            record_trace(input, run.trace);
                            tvla.add_random(run.trace);
                          });
      fill_batch_stats(r, runner.stats());
      const analysis::TvlaResult result = tvla.solve();
      r.metric = result.max_abs_t;
      r.cycles_over_threshold = result.cycles_over_threshold;
      r.success = !result.leaks();
      util::CsvWriter csv(dir + "/t_per_cycle.csv");
      csv.write_header({"cycle", "t"});
      for (std::size_t i = 0; i < result.t_per_cycle.size(); ++i) {
        csv.write_row({std::to_string(s.window_begin + i),
                       fmt(result.t_per_cycle[i])});
      }
      csv.flush();
      break;
    }
    case Analysis::kSecondOrder: {
      // Two passes over the same captured set: fit per-cycle means, then
      // DPA over centered-product combined traces.
      open_trace_writer(s.traces);
      analysis::TraceSet set;
      runner.capture_each(s.traces, random_inputs,
                          [&](std::size_t, const core::BatchInput& input,
                              core::EncryptionRun& run) {
                            record_trace(input, run.trace);
                            set.add(input.plaintext, std::move(run.trace));
                          });
      fill_batch_stats(r, runner.stats());
      const std::size_t end =
          window_end == SIZE_MAX && !set.traces.empty()
              ? set.traces.front().size()
              : window_end;
      analysis::SecondOrderPreprocessor pre(s.window_begin, end,
                                            kSecondOrderMaxLag);
      for (const analysis::Trace& t : set.traces) pre.fit(t);
      analysis::DpaAttack dpa(analysis::DpaConfig{});  // combined layout
      for (std::size_t i = 0; i < set.size(); ++i) {
        dpa.add_trace(set.inputs[i], pre.combine(set.traces[i]));
      }
      const analysis::DpaResult result = dpa.solve();
      r.metric = result.best_peak;
      r.best_guess = result.best_guess;
      r.true_value = analysis::DpaAttack::true_subkey_chunk(s.key, 0);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.peak_per_guess, "dom_peak_pj");
      break;
    }
    case Analysis::kMlpa: {
      analysis::MlpaConfig cfg;
      const core::SboxWindow w = sbox_window(cfg.sbox);
      cfg.window_begin = w.valid() ? w.begin : s.window_begin;
      cfg.window_end = w.valid() ? w.end : window_end;
      analysis::MlpaAttack mlpa(cfg);
      if (options_.backend != Backend::kScalar) {
        std::vector<int> in_masks;
        for (const analysis::LinearApprox& ap : mlpa.approximations()) {
          in_masks.push_back(ap.in_mask);
        }
        mlpa.set_provider(std::make_shared<bitslice::MlpaProvider>(
            cfg.sbox, std::move(in_masks)));
      }
      DisclosureRecorder disclosure(s.traces);
      open_trace_writer(s.traces);
      runner.capture_each(s.traces, random_inputs,
                          [&](std::size_t index, const core::BatchInput& input,
                              core::EncryptionRun& run) {
                            record_trace(input, run.trace);
                            mlpa.add_trace(input.plaintext, run.trace);
                            disclosure.sample(index, [&] {
                              return as_scores(mlpa.solve().score_per_guess);
                            });
                          });
      fill_batch_stats(r, runner.stats());
      const analysis::MlpaResult result = mlpa.solve();
      r.metric = result.best_score;
      r.best_guess = result.best_guess;
      r.true_value = analysis::DpaAttack::true_subkey_chunk(s.key, cfg.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.score_per_guess, "mlpa_score");
      disclosure.write(dir);
      break;
    }
    case Analysis::kCollision: {
      analysis::CollisionConfig cfg;
      const core::SboxWindow w = sbox_window(cfg.sbox);
      cfg.window_begin = w.valid() ? w.begin : s.window_begin;
      cfg.window_end = w.valid() ? w.end : window_end;
      analysis::CollisionAttack collision(cfg);
      if (options_.backend != Backend::kScalar) {
        collision.set_provider(
            std::make_shared<bitslice::CollisionProvider>(cfg.sbox));
      }
      DisclosureRecorder disclosure(s.traces);
      open_trace_writer(s.traces);
      runner.capture_each(
          s.traces, random_inputs,
          [&](std::size_t index, const core::BatchInput& input,
              core::EncryptionRun& run) {
            record_trace(input, run.trace);
            collision.add_trace(input.plaintext, run.trace);
            disclosure.sample(index, [&] {
              return as_scores(collision.solve().score_per_guess);
            });
          });
      fill_batch_stats(r, runner.stats());
      const analysis::CollisionResult result = collision.solve();
      r.metric = result.best_score;
      r.best_guess = result.best_guess;
      r.true_value = analysis::DpaAttack::true_subkey_chunk(s.key, cfg.sbox);
      r.success = r.best_guess == r.true_value;
      r.margin = result.margin();
      write_guesses_csv(dir, result.score_per_guess, "collision_score");
      disclosure.write(dir);
      break;
    }
  }

  if (trace_writer) {
    if (trace_writer->written() == trace_writer_count) trace_writer->close();
    trace_writer.reset();
  }
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  write_result_csv(dir, r);
  return r;
}

CampaignReport CampaignRunner::run() {
  const std::vector<Scenario> matrix = spec_.expand();
  const ShardSpec& shard = options_.shard;
  if (shard.index >= shard.count) {
    throw SpecError("shard: index " + std::to_string(shard.index) +
                    " out of range for N=" + std::to_string(shard.count));
  }
  std::vector<Scenario> scenarios;
  for (const Scenario& s : matrix) {
    if (shard.owns(s.index)) scenarios.push_back(s);
  }
  if (scenarios.empty()) {
    throw SpecError("--shard=" + std::to_string(shard.index) + "/" +
                    std::to_string(shard.count) +
                    " owns no scenarios (matrix has " +
                    std::to_string(matrix.size()) + ")");
  }
  // Checkpoints are valid only under the partition that wrote them.
  const std::string guard_hash = shard.checkpoint_hash(spec_.hash);
  const fs::path out(options_.out_dir);
  fs::create_directories(out / "scenarios");
  fs::create_directories(out / "checkpoints");

  // Spec guard: an output directory belongs to exactly one spec.
  const fs::path spec_copy = out / "spec.ini";
  if (fs::exists(spec_copy)) {
    std::ifstream in(spec_copy);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (fnv1a_hex(buffer.str()) != spec_.hash) {
      throw SpecError(options_.out_dir +
                      " already holds a different campaign (spec hash " +
                      fnv1a_hex(buffer.str()) + " != " + spec_.hash +
                      "); use a fresh --out directory");
    }
  } else {
    std::ofstream copy(spec_copy);
    copy << spec_.text;
    copy.flush();
    if (!copy) {
      throw std::runtime_error("cannot write " + spec_copy.string());
    }
  }

  CampaignReport report;
  report.total_scenarios = scenarios.size();
  for (const Scenario& s : scenarios) {
    const std::size_t position = report.outcomes.size() + 1;
    const std::string checkpoint =
        (out / "checkpoints" / (s.id + ".ini")).string();
    const std::string dir = (out / "scenarios" / s.id).string();
    ScenarioOutcome outcome;
    outcome.scenario = s;
    if (options_.resume &&
        load_checkpoint(checkpoint, s, guard_hash, &outcome.result) &&
        fs::exists(dir + "/result.csv")) {
      outcome.resumed = true;
      ++report.resumed;
      if (!options_.quiet) {
        std::printf("[%zu/%zu] %s: resumed from checkpoint\n", position,
                    scenarios.size(), s.id.c_str());
      }
    } else {
      if (options_.limit != 0 && report.executed >= options_.limit) break;
      fs::create_directories(dir);
      outcome.result = execute(s, dir);
      save_checkpoint(checkpoint, s, outcome.result, guard_hash);
      ++report.executed;
      if (!options_.quiet) {
        std::printf(
            "[%zu/%zu] %s: %llu enc, %.3f uJ/enc, metric %.4f%s (%.2fs, %zu "
            "threads)\n",
            position, scenarios.size(), s.id.c_str(),
            static_cast<unsigned long long>(outcome.result.encryptions),
            outcome.result.mean_uj(), outcome.result.metric,
            outcome.result.success ? "" : " [FAILED]",
            outcome.result.wall_seconds,
            static_cast<std::size_t>(outcome.result.threads_used));
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }

  report.complete = report.outcomes.size() == scenarios.size();
  if (!report.complete) {
    if (!options_.quiet) {
      std::printf("campaign interrupted: %zu/%zu scenarios done; rerun "
                  "with --resume to continue\n",
                  report.outcomes.size(), scenarios.size());
    }
    return report;
  }

  const std::string suffix =
      shard.sharded() ? "." + shard.label() : std::string();
  write_manifest((out / ("manifest" + suffix + ".json")).string(), spec_,
                 report.outcomes, git_describe(), &shard);
  write_timings((out / ("timings" + suffix + ".json")).string(),
                report.outcomes);
  write_summary_csv((out / ("summary" + suffix + ".csv")).string(),
                    report.outcomes);
  if (!options_.quiet) print_summary(spec_, report, stdout);
  return report;
}

void CampaignRunner::print_matrix(const CampaignSpec& spec,
                                  const std::vector<Scenario>& scenarios,
                                  std::FILE* out) {
  std::fprintf(out, "campaign %s: %zu scenarios (spec hash %s)\n",
               spec.name.c_str(), scenarios.size(), spec.hash.c_str());
  std::fprintf(out, "%-40s %6s %16s %12s %8s\n", "id", "cipher", "policy",
               "analysis", "traces");
  std::uint64_t encryptions = 0;
  for (const Scenario& s : scenarios) {
    std::fprintf(out, "%-40s %6s %16s %12s %8zu\n", s.id.c_str(),
                 std::string(cipher_name(s.cipher)).c_str(),
                 s.policy.name().c_str(),
                 std::string(analysis_name(s.analysis)).c_str(), s.traces);
    encryptions += s.traces;
  }
  std::fprintf(out, "total encryptions: %llu\n",
               static_cast<unsigned long long>(encryptions));
}

void CampaignRunner::print_summary(const CampaignSpec& spec,
                                   const CampaignReport& report,
                                   std::FILE* out) {
  const std::vector<PolicyRollup> rollups =
      rollup_by_policy(spec, report.outcomes);
  if (rollups.empty()) return;
  const double baseline = rollups.front().mean_uj;
  const double* ref_baseline = find_reference(spec, rollups.front().policy);
  std::fprintf(out, "\n%-16s %12s %8s", "policy", "mean uJ/enc", "ratio");
  const bool with_reference = !spec.reference_uj.empty();
  if (with_reference) {
    std::fprintf(out, " %10s %8s %14s", "paper uJ", "ratio", "normalized uJ");
  }
  std::fprintf(out, "\n");
  for (const PolicyRollup& r : rollups) {
    // A missing baseline makes the ratio undefined; print n/a, never a
    // misleading 0.000.
    std::fprintf(out, "%-16s %12.3f", r.policy.name().c_str(), r.mean_uj);
    if (baseline > 0.0) {
      std::fprintf(out, " %8.3f", r.mean_uj / baseline);
    } else {
      std::fprintf(out, " %8s", "n/a");
    }
    const double* ref = find_reference(spec, r.policy);
    if (with_reference && ref_baseline != nullptr && *ref_baseline > 0.0 &&
        baseline > 0.0) {
      const double ratio = r.mean_uj / baseline;
      if (ref != nullptr) {
        std::fprintf(out, " %10.1f %8.3f %14.2f", *ref, *ref / *ref_baseline,
                     ratio * *ref_baseline);
      } else {
        // The paper has no number for this policy (hiding countermeasures
        // postdate it); only the projected energy is meaningful.
        std::fprintf(out, " %10s %8s %14.2f", "n/a", "n/a",
                     ratio * *ref_baseline);
      }
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace emask::campaign
