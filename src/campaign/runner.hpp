// Campaign execution: the scenario matrix, run through core::BatchRunner
// with per-scenario checkpointing.
//
// Output directory layout:
//
//   <out>/spec.ini                     verbatim copy of the spec (guard:
//                                      re-running with a different spec in
//                                      the same directory is an error)
//   <out>/scenarios/<id>/result.csv    deterministic per-scenario summary
//   <out>/scenarios/<id>/*.csv         analysis artifact (breakdown,
//                                      guesses, t_per_cycle)
//   <out>/scenarios/<id>/traces.emts   optional raw trace set
//   <out>/checkpoints/<id>.ini         resume record (see manifest.hpp)
//   <out>/manifest.json                deterministic results manifest
//   <out>/timings.json                 wall-time / throughput (excluded
//                                      from the byte-identity guarantee)
//   <out>/summary.csv                  one row per scenario
//
// Resume semantics: with `resume`, a scenario whose checkpoint matches the
// current spec hash (and whose result.csv exists) is loaded instead of
// re-simulated; everything it would have written is already on disk from
// the run that completed it.  manifest.json / timings.json / summary.csv
// are only written when every scenario is complete, so an interrupted
// campaign resumed to completion produces a manifest byte-identical to an
// uninterrupted run.
//
// Sharded runs (`--shard=i/N`, see ShardSpec) execute only the scenarios
// the shard owns and emit manifest.<shard>.json / timings.<shard>.json /
// summary.<shard>.csv instead of the whole-matrix files; `emask-campaign
// merge` reassembles N such directories into a manifest.json byte-identical
// to a single-machine run.  Checkpoints are guarded by the shard-folded
// spec hash, so a checkpoint written under a different partition (or
// unsharded) never satisfies a sharded --resume.  Per-scenario artifacts
// keep their normal paths — shards own disjoint scenario sets.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/spec.hpp"

namespace emask::campaign {

/// Which hypothesis/energy implementation executes a campaign.  Results
/// and every artifact are bit-identical across backends (enforced by
/// tests); the choice only affects throughput, so it is a runner option
/// (like --jobs), never a scenario axis, and is not recorded in the
/// manifest.
enum class Backend {
  /// Bitsliced hypothesis providers + word-parallel energy kernels
  /// honoring an EMASK_HAMMING_BACKEND env override (default).
  kAuto,
  /// Scalar hypothesis loops + scalar energy kernels.
  kScalar,
  /// Bitsliced everywhere, overriding the environment.
  kBitslice,
};

[[nodiscard]] Backend backend_from_name(const std::string& name);

struct RunnerOptions {
  std::string out_dir;
  /// Worker threads per scenario batch; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Reuse checkpoints from a previous (interrupted) run.
  bool resume = false;
  /// Stop after this many *executed* (non-resumed) scenarios; 0 = no
  /// limit.  This is the controlled interruption the resume tests use.
  std::size_t limit = 0;
  /// Suppress per-scenario progress output.
  bool quiet = false;
  /// Partition of the scenario matrix this run executes (default: all).
  ShardSpec shard;
  /// Hypothesis/energy backend (`--backend=scalar|bitslice`).
  Backend backend = Backend::kAuto;
};

struct CampaignReport {
  std::vector<ScenarioOutcome> outcomes;  // completed scenarios, in order
  std::size_t total_scenarios = 0;
  std::size_t executed = 0;  // simulated this run
  std::size_t resumed = 0;   // satisfied from checkpoints
  bool complete = false;     // manifest/summary written
};

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, RunnerOptions options);

  /// Runs (or resumes) the campaign.  Throws on spec/IO errors; an
  /// interrupted campaign (limit reached) returns complete = false.
  CampaignReport run();

  /// Prints the expanded scenario matrix without running anything
  /// (`--dry-run`).
  static void print_matrix(const CampaignSpec& spec,
                           const std::vector<Scenario>& scenarios,
                           std::FILE* out);

  /// Prints the per-policy roll-up (with the spec's [reference] paper
  /// numbers when present).
  static void print_summary(const CampaignSpec& spec,
                            const CampaignReport& report, std::FILE* out);

 private:
  [[nodiscard]] ScenarioResult execute(const Scenario& scenario,
                                       const std::string& dir) const;

  CampaignSpec spec_;
  RunnerOptions options_;
};

}  // namespace emask::campaign
