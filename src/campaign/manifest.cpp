#include "campaign/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/argparse.hpp"
#include "util/csv.hpp"
#include "util/ini.hpp"
#include "util/json.hpp"

namespace emask::campaign {
namespace {

using util::ArgParser;
using util::IniFile;
using util::JsonWriter;

std::string hex_u64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llX",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::vector<PolicyRollup> rollup_by_policy(
    const CampaignSpec& spec, const std::vector<ScenarioOutcome>& outcomes) {
  bool any_energy = false;
  for (const ScenarioOutcome& o : outcomes) {
    if (o.scenario.analysis == Analysis::kEnergy) any_energy = true;
  }
  std::vector<PolicyRollup> rollups;
  for (const hiding::Countermeasure& policy : spec.policies) {
    PolicyRollup r;
    r.policy = policy;
    double sum = 0.0;
    for (const ScenarioOutcome& o : outcomes) {
      if (o.scenario.policy != policy) continue;
      if (any_energy && o.scenario.analysis != Analysis::kEnergy) continue;
      sum += o.result.mean_uj();
      ++r.scenarios;
    }
    if (r.scenarios > 0) sum /= static_cast<double>(r.scenarios);
    r.mean_uj = sum;
    rollups.push_back(r);
  }
  return rollups;
}

const double* find_reference(const CampaignSpec& spec,
                             const hiding::Countermeasure& policy) {
  for (const auto& [name, uj] : spec.reference_uj) {
    if (name == policy.name()) return &uj;
  }
  return nullptr;
}

std::string_view analysis_artifact(Analysis a) {
  switch (a) {
    case Analysis::kEnergy: return "breakdown.csv";
    case Analysis::kDpa:
    case Analysis::kCpa:
    case Analysis::kSecondOrder: return "guesses.csv";
    case Analysis::kTvla: return "t_per_cycle.csv";
    case Analysis::kMlpa:
    case Analysis::kCollision: return "disclosure.csv";
  }
  return "?";
}

bool analysis_has_disclosure(Analysis a) {
  switch (a) {
    case Analysis::kDpa:
    case Analysis::kCpa:
    case Analysis::kMlpa:
    case Analysis::kCollision: return true;
    default: return false;
  }
}

std::string scenario_disclosure_path(const std::string& id) {
  return "scenarios/" + id + "/disclosure.csv";
}

std::string scenario_result_path(const std::string& id) {
  return "scenarios/" + id + "/result.csv";
}

std::string scenario_artifact_path(const std::string& id, Analysis a) {
  return "scenarios/" + id + "/" + std::string(analysis_artifact(a));
}

std::string scenario_blocks_path(const std::string& id) {
  return "scenarios/" + id + "/blocks.csv";
}

std::string scenario_session_path(const std::string& id) {
  return "scenarios/" + id + "/session.csv";
}

void save_checkpoint(const std::string& path, const Scenario& scenario,
                     const ScenarioResult& result,
                     const std::string& spec_hash) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("cannot write checkpoint " + tmp);
    const auto d = [](double v) { return JsonWriter::format_double(v); };
    out << "[checkpoint]\n";
    out << "id = " << scenario.id << '\n';
    out << "spec_hash = " << spec_hash << '\n';
    out << "encryptions = " << result.encryptions << '\n';
    out << "total_cycles = " << result.total_cycles << '\n';
    out << "total_instructions = " << result.total_instructions << '\n';
    out << "total_energy_uj = " << d(result.total_energy_uj) << '\n';
    out << "secured_count = " << result.secured_count << '\n';
    out << "program_instructions = " << result.program_instructions << '\n';
    out << "metric = " << d(result.metric) << '\n';
    out << "best_guess = " << result.best_guess << '\n';
    out << "true_value = " << result.true_value << '\n';
    out << "success = " << (result.success ? 1 : 0) << '\n';
    out << "margin = " << d(result.margin) << '\n';
    out << "cycles_over_threshold = " << result.cycles_over_threshold << '\n';
    out << "wall_seconds = " << d(result.wall_seconds) << '\n';
    out << "threads_used = " << result.threads_used << '\n';
    out.flush();
    if (!out) throw std::runtime_error("write failure on " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

bool load_checkpoint(const std::string& path, const Scenario& scenario,
                     const std::string& spec_hash, ScenarioResult* out) {
  if (!std::filesystem::exists(path)) return false;
  const IniFile ini = IniFile::load_file(path);
  const IniFile::Section* cp = ini.find_section("checkpoint");
  if (cp == nullptr) {
    throw std::runtime_error(path + ": not a checkpoint file");
  }
  const auto get = [&](const char* key) -> const std::string& {
    const IniFile::Entry* e = cp->find(key);
    if (e == nullptr) {
      throw std::runtime_error(path + ": missing checkpoint key '" +
                               std::string(key) + "'");
    }
    return e->value;
  };
  if (get("id") != scenario.id || get("spec_hash") != spec_hash) {
    return false;  // stale: different spec or renumbered matrix
  }
  ScenarioResult r;
  r.encryptions = ArgParser::parse_u64(get("encryptions"), "encryptions");
  r.total_cycles = ArgParser::parse_u64(get("total_cycles"), "total_cycles");
  r.total_instructions =
      ArgParser::parse_u64(get("total_instructions"), "total_instructions");
  r.total_energy_uj =
      ArgParser::parse_double(get("total_energy_uj"), "total_energy_uj");
  r.secured_count =
      ArgParser::parse_u64(get("secured_count"), "secured_count");
  r.program_instructions = ArgParser::parse_u64(get("program_instructions"),
                                                "program_instructions");
  r.metric = ArgParser::parse_double(get("metric"), "metric");
  r.best_guess =
      static_cast<int>(ArgParser::parse_int(get("best_guess"), "best_guess"));
  r.true_value =
      static_cast<int>(ArgParser::parse_int(get("true_value"), "true_value"));
  r.success = get("success") == "1";
  r.margin = ArgParser::parse_double(get("margin"), "margin");
  r.cycles_over_threshold = ArgParser::parse_u64(get("cycles_over_threshold"),
                                                 "cycles_over_threshold");
  r.wall_seconds =
      ArgParser::parse_double(get("wall_seconds"), "wall_seconds");
  r.threads_used = ArgParser::parse_u64(get("threads_used"), "threads_used");
  *out = r;
  return true;
}

std::string git_describe() {
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {};
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return (status == 0 && !out.empty()) ? out : "unknown";
#endif
}

void write_manifest(const std::string& path, const CampaignSpec& spec,
                    const std::vector<ScenarioOutcome>& outcomes,
                    const std::string& git_version, const ShardSpec* shard) {
  const bool sharded = shard != nullptr && shard->sharded();
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write manifest " + path);
  JsonWriter j(file);
  j.begin_object();
  j.key("format");
  j.value(sharded ? "emask-campaign-shard-manifest-v1"
                  : "emask-campaign-manifest-v1");
  j.key("campaign");
  j.value(spec.name);
  j.key("spec_hash");
  j.value(spec.hash);
  if (sharded) {
    j.key("shard_index");
    j.value(static_cast<std::uint64_t>(shard->index));
    j.key("shard_count");
    j.value(static_cast<std::uint64_t>(shard->count));
  }
  j.key("generator");
  j.value(git_version);
  j.key("seed");
  j.value(hex_u64(spec.seed));
  j.key("key");
  j.value(hex_u64(spec.key));
  // 3DES session keys appear only when the campaign has a tdes_cbc axis
  // value, so legacy manifests stay byte-identical.
  bool any_tdes = false;
  for (const Cipher c : spec.ciphers) {
    if (c == Cipher::kTdesCbc) any_tdes = true;
  }
  if (any_tdes) {
    j.key("key2");
    j.value(hex_u64(spec.key2));
    j.key("key3");
    j.value(hex_u64(spec.key3));
  }
  j.key("fixed_input");
  j.value(hex_u64(spec.fixed_input));
  j.key("window_begin");
  j.value(static_cast<std::uint64_t>(spec.window_begin));
  j.key("window_end");
  j.value(static_cast<std::uint64_t>(spec.window_end));
  j.key("timings");  // wall-clock lives there, outside byte-identity
  j.value(sharded ? "timings." + shard->label() + ".json" : "timings.json");
  j.key("scenario_count");
  j.value(static_cast<std::uint64_t>(outcomes.size()));

  j.key("scenarios");
  j.begin_array();
  for (const ScenarioOutcome& o : outcomes) {
    const Scenario& s = o.scenario;
    const ScenarioResult& r = o.result;
    j.begin_object();
    j.key("id");
    j.value(s.id);
    j.key("cipher");
    j.value(std::string(cipher_name(s.cipher)));
    j.key("policy");
    j.value(s.policy.name());
    j.key("analysis");
    j.value(std::string(analysis_name(s.analysis)));
    j.key("noise_sigma_pj");
    j.value(s.noise_sigma_pj);
    j.key("traces");
    j.value(static_cast<std::uint64_t>(s.traces));
    if (is_session_cipher(s.cipher)) {
      j.key("session_length");
      j.value(static_cast<std::uint64_t>(s.session_length));
    }
    j.key("coupling_ff");
    j.value(s.coupling_ff);
    j.key("seed");
    j.value(hex_u64(s.seed));
    j.key("result");
    j.begin_object();
    j.key("encryptions");
    j.value(r.encryptions);
    j.key("total_cycles");
    j.value(r.total_cycles);
    j.key("total_instructions");
    j.value(r.total_instructions);
    j.key("total_energy_uj");
    j.value(r.total_energy_uj);
    j.key("mean_uj");
    j.value(r.mean_uj());
    j.key("secured_count");
    j.value(r.secured_count);
    j.key("program_instructions");
    j.value(r.program_instructions);
    j.key("metric");
    j.value(r.metric);
    j.key("best_guess");
    j.value(r.best_guess);
    j.key("true_value");
    j.value(r.true_value);
    j.key("success");
    j.value(r.success);
    j.key("margin");
    j.value(r.margin);
    j.key("cycles_over_threshold");
    j.value(r.cycles_over_threshold);
    j.end_object();
    j.end_object();
  }
  j.end_array();

  std::uint64_t total_encryptions = 0;
  std::uint64_t total_cycles = 0;
  double total_energy_uj = 0.0;
  for (const ScenarioOutcome& o : outcomes) {
    total_encryptions += o.result.encryptions;
    total_cycles += o.result.total_cycles;
    total_energy_uj += o.result.total_energy_uj;
  }
  j.key("rollup");
  j.begin_object();
  j.key("total_encryptions");
  j.value(total_encryptions);
  j.key("total_cycles");
  j.value(total_cycles);
  j.key("total_energy_uj");
  j.value(total_energy_uj);
  const std::vector<PolicyRollup> rollups = rollup_by_policy(spec, outcomes);
  const double baseline = rollups.empty() ? 0.0 : rollups.front().mean_uj;
  const double* ref_baseline =
      rollups.empty() ? nullptr : find_reference(spec, rollups.front().policy);
  j.key("by_policy");
  j.begin_array();
  for (const PolicyRollup& r : rollups) {
    j.begin_object();
    j.key("policy");
    j.value(r.policy.name());
    j.key("scenarios");
    j.value(static_cast<std::uint64_t>(r.scenarios));
    j.key("mean_uj");
    j.value(r.mean_uj);
    // A zero baseline (no energy data for the first policy) makes the
    // ratio undefined — emit null (NaN serializes as null), never a
    // misleading 0.0.
    const double ratio =
        baseline > 0.0 ? r.mean_uj / baseline : std::nan("");
    j.key("ratio");
    j.value(ratio);
    if (const double* ref = find_reference(spec, r.policy)) {
      j.key("paper_uj");
      j.value(*ref);
      if (ref_baseline != nullptr && *ref_baseline > 0.0) {
        j.key("paper_ratio");
        j.value(*ref / *ref_baseline);
        // Paper-normalized energy: measured ratio on the paper's absolute
        // scale (our compiler emits denser code, so absolute uJ differ by
        // a constant factor while the policy ratios match).
        j.key("normalized_uj");
        j.value(ratio * *ref_baseline);
      }
    } else if (ref_baseline != nullptr && *ref_baseline > 0.0 &&
               std::isfinite(ratio)) {
      // No paper number for this policy (the paper predates the hiding
      // countermeasures), but its measured ratio still projects onto the
      // paper's absolute scale for side-by-side comparison.
      j.key("normalized_uj");
      j.value(ratio * *ref_baseline);
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();

  j.end_object();
  j.finish();
  file.flush();
  if (!file) throw std::runtime_error("write failure on " + path);
}

ScenarioResult scenario_result_from_json(const util::JsonValue& result) {
  // Doubles that were emitted as null (non-finite) load back as NaN so a
  // re-serialization produces null again.
  const auto as_double_or_nan = [](const util::JsonValue& v) {
    return v.is_null() ? std::nan("") : v.as_double();
  };
  ScenarioResult r;
  r.encryptions = result.at("encryptions").as_u64();
  r.total_cycles = result.at("total_cycles").as_u64();
  r.total_instructions = result.at("total_instructions").as_u64();
  r.total_energy_uj = as_double_or_nan(result.at("total_energy_uj"));
  r.secured_count = result.at("secured_count").as_u64();
  r.program_instructions = result.at("program_instructions").as_u64();
  r.metric = as_double_or_nan(result.at("metric"));
  r.best_guess = static_cast<int>(result.at("best_guess").as_int());
  r.true_value = static_cast<int>(result.at("true_value").as_int());
  r.success = result.at("success").as_bool();
  r.margin = as_double_or_nan(result.at("margin"));
  r.cycles_over_threshold = result.at("cycles_over_threshold").as_u64();
  return r;
}

void write_summary_csv(const std::string& path,
                       const std::vector<ScenarioOutcome>& outcomes) {
  const auto fmt = [](double v) { return JsonWriter::format_double(v); };
  util::CsvWriter summary(path);
  summary.write_header({"id", "cipher", "policy", "analysis",
                        "noise_sigma_pj", "traces", "coupling_ff", "mean_uj",
                        "metric", "success", "margin"});
  for (const ScenarioOutcome& o : outcomes) {
    const Scenario& s = o.scenario;
    summary.write_row({s.id, std::string(cipher_name(s.cipher)),
                       s.policy.name(),
                       std::string(analysis_name(s.analysis)),
                       fmt(s.noise_sigma_pj), std::to_string(s.traces),
                       fmt(s.coupling_ff), fmt(o.result.mean_uj()),
                       fmt(o.result.metric), o.result.success ? "1" : "0",
                       fmt(o.result.margin)});
  }
  summary.flush();
}

void write_timings(const std::string& path,
                   const std::vector<ScenarioOutcome>& outcomes) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write timings " + path);
  JsonWriter j(file);
  j.begin_object();
  j.key("format");
  j.value("emask-campaign-timings-v1");
  double wall = 0.0;
  for (const ScenarioOutcome& o : outcomes) wall += o.result.wall_seconds;
  j.key("total_wall_seconds");
  j.value(wall);
  j.key("scenarios");
  j.begin_array();
  for (const ScenarioOutcome& o : outcomes) {
    j.begin_object();
    j.key("id");
    j.value(o.scenario.id);
    j.key("resumed");
    j.value(o.resumed);
    j.key("wall_seconds");
    j.value(o.result.wall_seconds);
    j.key("threads");
    j.value(o.result.threads_used);
    const double throughput =
        o.result.wall_seconds > 0.0
            ? static_cast<double>(o.result.encryptions) /
                  o.result.wall_seconds
            : 0.0;
    j.key("encryptions_per_sec");
    j.value(throughput);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.finish();
}

}  // namespace emask::campaign
