#include "campaign/merge.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.hpp"

namespace emask::campaign {
namespace {

namespace fs = std::filesystem;

std::string read_text(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

util::JsonValue parse_json_file(const fs::path& path) {
  try {
    return util::parse_json(read_text(path));
  } catch (const util::JsonError& e) {
    throw util::JsonError(path.string() + ": " + e.what());
  }
}

/// One manifest.shard-i-of-N.json found under a shard directory.
struct ShardManifest {
  fs::path dir;
  fs::path path;
  ShardSpec shard;
  util::JsonValue doc;
};

constexpr const char* kShardFormat = "emask-campaign-shard-manifest-v1";

/// Loads and validates the shard manifests of one directory (a directory
/// may hold several shards of the same spec).
std::vector<ShardManifest> load_shard_manifests(const fs::path& dir,
                                                const std::string& spec_hash) {
  std::vector<ShardManifest> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("manifest.shard-", 0) != 0 ||
        name.size() < 5 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    ShardManifest m;
    m.dir = dir;
    m.path = entry.path();
    m.doc = parse_json_file(entry.path());
    try {
      const std::string format = m.doc.at("format").as_string();
      if (format != kShardFormat) {
        throw SpecError(m.path.string() + ": not a shard manifest (format '" +
                        format + "', expected " + kShardFormat + ")");
      }
      const std::string hash = m.doc.at("spec_hash").as_string();
      if (hash != spec_hash) {
        throw SpecError(m.path.string() + ": spec hash mismatch (" + hash +
                        " != " + spec_hash + " from the first shard's "
                        "spec.ini); shards must run the identical spec text");
      }
      m.shard.index = static_cast<std::size_t>(
          m.doc.at("shard_index").as_u64());
      m.shard.count = static_cast<std::size_t>(
          m.doc.at("shard_count").as_u64());
    } catch (const util::JsonError& e) {
      throw util::JsonError(m.path.string() + ": " + e.what());
    }
    if (m.shard.count < 2 || m.shard.index >= m.shard.count) {
      throw SpecError(m.path.string() + ": invalid shard " +
                      std::to_string(m.shard.index) + "/" +
                      std::to_string(m.shard.count));
    }
    found.push_back(std::move(m));
  }
  if (found.empty()) {
    throw SpecError(dir.string() +
                    ": no shard manifest (manifest.shard-i-of-N.json) — "
                    "shard still incomplete, or an unsharded run?");
  }
  return found;
}

/// Copies the spec into the merged directory with the same one-spec-per-
/// directory guard the runner applies.
void place_spec_copy(const fs::path& out, const CampaignSpec& spec) {
  const fs::path spec_copy = out / "spec.ini";
  if (fs::exists(spec_copy)) {
    const std::string existing = fnv1a_hex(read_text(spec_copy));
    if (existing != spec.hash) {
      throw SpecError(out.string() +
                      " already holds a different campaign (spec hash " +
                      existing + " != " + spec.hash +
                      "); use a fresh --out directory");
    }
    return;
  }
  std::ofstream copy(spec_copy);
  copy << spec.text;
  copy.flush();
  if (!copy) throw std::runtime_error("cannot write " + spec_copy.string());
}

/// Folds per-scenario wall-clock data from the shard timings files into
/// the outcomes; returns false (leaving outcomes untouched) when any shard
/// timings file is absent — timings sit outside the byte-identity
/// guarantee, so a missing one degrades, never fails, the merge.
bool fold_timings(const std::vector<ShardManifest>& shards,
                  std::vector<ScenarioOutcome>& outcomes) {
  std::map<std::string, const util::JsonValue*> by_id;
  std::vector<util::JsonValue> docs;
  docs.reserve(shards.size());
  for (const ShardManifest& m : shards) {
    const fs::path path =
        m.dir / ("timings." + m.shard.label() + ".json");
    if (!fs::exists(path)) return false;
    docs.push_back(parse_json_file(path));
  }
  for (const util::JsonValue& doc : docs) {
    for (const util::JsonValue& entry : doc.at("scenarios").array) {
      by_id.emplace(entry.at("id").as_string(), &entry);
    }
  }
  for (ScenarioOutcome& o : outcomes) {
    const auto it = by_id.find(o.scenario.id);
    if (it == by_id.end()) return false;
    const util::JsonValue& entry = *it->second;
    o.resumed = entry.at("resumed").as_bool();
    o.result.wall_seconds = entry.at("wall_seconds").as_double();
    o.result.threads_used = entry.at("threads").as_u64();
  }
  return true;
}

}  // namespace

MergeReport merge_shards(const MergeOptions& options) {
  if (options.shard_dirs.empty()) {
    throw SpecError("merge needs at least one shard directory");
  }
  if (options.out_dir.empty()) {
    throw SpecError("merge needs an output directory");
  }

  // The first directory's spec is the reference; every other directory
  // must carry byte-identical spec text (hash compare).
  const fs::path first_dir(options.shard_dirs.front());
  if (!fs::exists(first_dir / "spec.ini")) {
    throw SpecError(first_dir.string() +
                    ": no spec.ini (not a campaign output directory)");
  }
  const CampaignSpec spec =
      CampaignSpec::load_file((first_dir / "spec.ini").string());

  std::vector<ShardManifest> shards;
  for (const std::string& dir_name : options.shard_dirs) {
    const fs::path dir(dir_name);
    if (!fs::exists(dir / "spec.ini")) {
      throw SpecError(dir.string() +
                      ": no spec.ini (not a campaign output directory)");
    }
    const std::string hash = fnv1a_hex(read_text(dir / "spec.ini"));
    if (hash != spec.hash) {
      throw SpecError("spec hash mismatch: " + dir.string() + " has " +
                      hash + ", expected " + spec.hash + " (from " +
                      first_dir.string() + "); shards must run the "
                      "identical spec text");
    }
    for (ShardManifest& m : load_shard_manifests(dir, spec.hash)) {
      shards.push_back(std::move(m));
    }
  }

  // Disjoint and complete shard set under one N.
  const std::size_t count = shards.front().shard.count;
  std::vector<const ShardManifest*> by_index(count, nullptr);
  for (const ShardManifest& m : shards) {
    if (m.shard.count != count) {
      throw SpecError("shard count mismatch: " + m.path.string() +
                      " says N=" + std::to_string(m.shard.count) +
                      ", expected N=" + std::to_string(count) + " (from " +
                      shards.front().path.string() + ")");
    }
    if (by_index[m.shard.index] != nullptr) {
      throw SpecError("duplicate shard " + std::to_string(m.shard.index) +
                      "/" + std::to_string(count) + ": " +
                      by_index[m.shard.index]->path.string() + " and " +
                      m.path.string());
    }
    by_index[m.shard.index] = &m;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (by_index[i] == nullptr) {
      throw SpecError("incomplete shard set: missing shard " +
                      std::to_string(i) + " of " + std::to_string(count));
    }
  }

  // Reassemble the whole matrix in canonical expansion order.  Scenario
  // parameters come from the re-expanded spec — the shard manifests only
  // contribute results, so a merged manifest is a pure function of (spec
  // text, per-scenario results), exactly like a single-machine run.
  const std::vector<Scenario> matrix = spec.expand();
  std::map<std::string, std::size_t> index_by_id;
  for (const Scenario& s : matrix) index_by_id.emplace(s.id, s.index);

  std::vector<ScenarioOutcome> outcomes(matrix.size());
  std::vector<bool> filled(matrix.size(), false);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    outcomes[i].scenario = matrix[i];
  }

  for (const ShardManifest& m : shards) {
    try {
      for (const util::JsonValue& entry : m.doc.at("scenarios").array) {
        const std::string& id = entry.at("id").as_string();
        const auto it = index_by_id.find(id);
        if (it == index_by_id.end()) {
          throw SpecError(m.path.string() + ": unknown scenario '" + id +
                          "' (not in this spec's matrix)");
        }
        const std::size_t index = it->second;
        if (!m.shard.owns(index)) {
          throw SpecError(m.path.string() + ": scenario '" + id +
                          "' belongs to shard " +
                          std::to_string(index % count) + ", not shard " +
                          std::to_string(m.shard.index));
        }
        if (filled[index]) {
          throw SpecError(m.path.string() + ": duplicate scenario '" + id +
                          "'");
        }
        outcomes[index].result =
            scenario_result_from_json(entry.at("result"));
        filled[index] = true;
      }
    } catch (const util::JsonError& e) {
      throw util::JsonError(m.path.string() + ": " + e.what());
    }
  }
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    if (!filled[i]) {
      throw SpecError("shard " + std::to_string(i % count) + " (" +
                      by_index[i % count]->path.string() +
                      ") is missing scenario '" + matrix[i].id + "'");
    }
  }

  const fs::path out(options.out_dir);
  fs::create_directories(out);
  place_spec_copy(out, spec);

  MergeReport report;
  report.shard_count = count;
  report.scenarios = matrix.size();
  report.timings_merged = fold_timings(shards, outcomes);
  write_manifest((out / "manifest.json").string(), spec, outcomes,
                 git_describe());
  write_summary_csv((out / "summary.csv").string(), outcomes);
  if (report.timings_merged) {
    write_timings((out / "timings.json").string(), outcomes);
  } else if (!options.quiet) {
    std::printf("merge: shard timings incomplete; skipping timings.json "
                "(outside the byte-identity guarantee)\n");
  }
  if (!options.quiet) {
    std::printf("merged %zu shards (%zu scenarios) -> %s/manifest.json\n",
                count, matrix.size(), options.out_dir.c_str());
  }
  return report;
}

}  // namespace emask::campaign
