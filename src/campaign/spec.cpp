#include "campaign/spec.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/argparse.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"

namespace emask::campaign {
namespace {

using util::ArgParser;
using util::IniFile;

std::vector<std::string> axis_items(const IniFile::Section& axes,
                                    const std::string& key) {
  const IniFile::Entry* entry = axes.find(key);
  if (entry == nullptr) return {};
  std::vector<std::string> items = IniFile::split_list(entry->value);
  for (const std::string& item : items) {
    if (item.empty()) {
      throw SpecError("axes." + key + ": empty item in list '" + entry->value +
                      "'");
    }
  }
  return items;
}

/// Parses a scalar via ArgParser's strict parsers, rebadging the error as a
/// SpecError naming section.key.
template <typename Parse>
auto spec_scalar(const std::string& where, const std::string& text,
                 Parse parse) {
  try {
    return parse(text, where);
  } catch (const util::ArgError& e) {
    throw SpecError(e.what());
  }
}

std::uint64_t spec_u64_or_hex(const std::string& where,
                              const std::string& text) {
  if (text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0) {
    return spec_scalar(where, text, ArgParser::parse_hex);
  }
  return spec_scalar(where, text, ArgParser::parse_u64);
}

bool spec_bool(const std::string& where, const std::string& text) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw SpecError(where + ": expected true/false, got '" + text + "'");
}

void check_known_keys(const IniFile::Section& section,
                      std::initializer_list<const char*> known) {
  for (const IniFile::Entry& e : section.entries) {
    bool ok = false;
    for (const char* k : known) {
      if (e.key == k) ok = true;
    }
    if (!ok) {
      throw SpecError("line " + std::to_string(e.line) + ": unknown key '" +
                      e.key + "' in [" + section.name + "]");
    }
  }
}

}  // namespace

// Single source of truth for every axis value: the *_name functions, the
// *_from_name inverses, and the accepted-values list in their error
// messages are all derived from these tables, so a new axis value added
// here is automatically parseable and self-documenting.
namespace {

template <typename T>
struct AxisName {
  T value;
  std::string_view name;
};

constexpr AxisName<Cipher> kCipherNames[] = {
    {Cipher::kDes, "des"},
    {Cipher::kAes, "aes"},
    {Cipher::kSha1, "sha1"},
    {Cipher::kDesCbc, "des_cbc"},
    {Cipher::kTdesCbc, "tdes_cbc"},
};

constexpr AxisName<Analysis> kAnalysisNames[] = {
    {Analysis::kEnergy, "energy"},
    {Analysis::kDpa, "dpa"},
    {Analysis::kCpa, "cpa"},
    {Analysis::kTvla, "tvla"},
    {Analysis::kSecondOrder, "second_order"},
    {Analysis::kMlpa, "mlpa"},
    {Analysis::kCollision, "collision"},
};

template <typename T, typename Table>
T axis_from_name(const Table& table, const std::string& name,
                 const char* what) {
  for (const AxisName<T>& entry : table) {
    if (name == entry.name) return entry.value;
  }
  std::string accepted;
  for (const AxisName<T>& entry : table) {
    if (!accepted.empty()) accepted += '|';
    accepted += entry.name;
  }
  throw SpecError("unknown " + std::string(what) + " '" + name +
                  "' (expected " + accepted + ")");
}

template <typename T, typename Table>
std::string_view axis_name(const Table& table, T value) {
  for (const AxisName<T>& entry : table) {
    if (value == entry.value) return entry.name;
  }
  return "?";
}

}  // namespace

std::string_view cipher_name(Cipher c) {
  return axis_name<Cipher>(kCipherNames, c);
}

std::string_view analysis_name(Analysis a) {
  return axis_name<Analysis>(kAnalysisNames, a);
}

Cipher cipher_from_name(const std::string& name) {
  return axis_from_name<Cipher>(kCipherNames, name, "cipher");
}

Analysis analysis_from_name(const std::string& name) {
  return axis_from_name<Analysis>(kAnalysisNames, name, "analysis");
}

hiding::Countermeasure policy_from_name(const std::string& name) {
  // The countermeasure tables (src/hiding) are the single source of truth
  // for the names; here we only rebadge their error as a SpecError.
  try {
    return hiding::countermeasure_from_name(name);
  } catch (const std::invalid_argument& e) {
    throw SpecError(e.what());
  }
}

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string ShardSpec::label() const {
  return "shard-" + std::to_string(index) + "-of-" + std::to_string(count);
}

std::string ShardSpec::checkpoint_hash(const std::string& spec_hash) const {
  if (!sharded()) return spec_hash;
  return fnv1a_hex(spec_hash + "#shard=" + std::to_string(index) + "/" +
                   std::to_string(count));
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    throw SpecError("shard: expected i/N (e.g. 0/4), got '" + text + "'");
  }
  ShardSpec shard;
  try {
    shard.index = static_cast<std::size_t>(
        ArgParser::parse_u64(text.substr(0, slash), "shard index"));
    shard.count = static_cast<std::size_t>(
        ArgParser::parse_u64(text.substr(slash + 1), "shard count"));
  } catch (const util::ArgError& e) {
    throw SpecError(std::string("shard: ") + e.what());
  }
  if (shard.count == 0) throw SpecError("shard: N must be >= 1");
  if (shard.index >= shard.count) {
    throw SpecError("shard: index " + std::to_string(shard.index) +
                    " out of range for N=" + std::to_string(shard.count) +
                    " (need 0 <= i < N)");
  }
  return shard;
}

void apply_tech_override(energy::TechParams& params, const std::string& name,
                         double value) {
  struct Field {
    const char* name;
    double energy::TechParams::* member;
  };
  static const Field kFields[] = {
      {"vdd", &energy::TechParams::vdd},
      {"c_instr_bus_line", &energy::TechParams::c_instr_bus_line},
      {"c_addr_bus_line", &energy::TechParams::c_addr_bus_line},
      {"c_data_bus_line", &energy::TechParams::c_data_bus_line},
      {"c_latch_bit", &energy::TechParams::c_latch_bit},
      {"c_adder_node", &energy::TechParams::c_adder_node},
      {"c_logic_node", &energy::TechParams::c_logic_node},
      {"c_shift_node", &energy::TechParams::c_shift_node},
      {"c_xor_node", &energy::TechParams::c_xor_node},
      {"c_bus_coupling", &energy::TechParams::c_bus_coupling},
      {"e_clock_tree", &energy::TechParams::e_clock_tree},
      {"e_fetch_array", &energy::TechParams::e_fetch_array},
      {"e_decode", &energy::TechParams::e_decode},
      {"e_rf_read", &energy::TechParams::e_rf_read},
      {"e_rf_write", &energy::TechParams::e_rf_write},
      {"e_mem_read", &energy::TechParams::e_mem_read},
      {"e_mem_write", &energy::TechParams::e_mem_write},
      {"e_unit_base", &energy::TechParams::e_unit_base},
      {"e_dummy_load", &energy::TechParams::e_dummy_load},
  };
  for (const Field& f : kFields) {
    if (name == f.name) {
      params.*f.member = value;
      return;
    }
  }
  throw SpecError("tech: unknown TechParams field '" + name + "'");
}

energy::TechParams Scenario::tech_params(
    const std::vector<std::pair<std::string, double>>& overrides) const {
  energy::TechParams params = energy::TechParams::smartcard_025um();
  for (const auto& [name, value] : overrides) {
    apply_tech_override(params, name, value);
  }
  if (coupling_ff > 0.0) params.c_bus_coupling = coupling_ff * 1e-15;
  return params;
}

CampaignSpec CampaignSpec::parse(const std::string& text) {
  IniFile ini;
  try {
    ini = IniFile::parse(text);
  } catch (const util::IniError& e) {
    throw SpecError(std::string("spec: ") + e.what());
  }

  for (const IniFile::Section& s : ini.sections()) {
    if (s.name != "campaign" && s.name != "axes" && s.name != "tech" &&
        s.name != "reference") {
      throw SpecError("line " + std::to_string(s.line) +
                      ": unknown section [" + s.name + "]");
    }
  }

  CampaignSpec spec;
  spec.text = text;
  spec.hash = fnv1a_hex(text);

  const IniFile::Section* campaign = ini.find_section("campaign");
  if (campaign == nullptr) {
    throw SpecError("spec: missing [campaign] section");
  }
  check_known_keys(*campaign,
                   {"name", "seed", "key", "key2", "key3", "fixed_input",
                    "window_begin", "window_end", "save_traces"});
  const IniFile::Entry* name = campaign->find("name");
  if (name == nullptr || name->value.empty()) {
    throw SpecError("campaign.name is required");
  }
  spec.name = name->value;
  if (const auto* v = ini.find("campaign", "seed")) {
    spec.seed = spec_u64_or_hex("campaign.seed", *v);
  }
  if (const auto* v = ini.find("campaign", "key")) {
    spec.key = spec_u64_or_hex("campaign.key", *v);
  }
  if (const auto* v = ini.find("campaign", "key2")) {
    spec.key2 = spec_u64_or_hex("campaign.key2", *v);
  }
  if (const auto* v = ini.find("campaign", "key3")) {
    spec.key3 = spec_u64_or_hex("campaign.key3", *v);
  }
  if (const auto* v = ini.find("campaign", "fixed_input")) {
    spec.fixed_input = spec_u64_or_hex("campaign.fixed_input", *v);
  }
  if (const auto* v = ini.find("campaign", "window_begin")) {
    spec.window_begin = static_cast<std::size_t>(
        spec_scalar("campaign.window_begin", *v, ArgParser::parse_u64));
  }
  if (const auto* v = ini.find("campaign", "window_end")) {
    spec.window_end = static_cast<std::size_t>(
        spec_scalar("campaign.window_end", *v, ArgParser::parse_u64));
  }
  if (const auto* v = ini.find("campaign", "save_traces")) {
    spec.save_traces = spec_bool("campaign.save_traces", *v);
  }
  if (spec.window_end != 0 && spec.window_begin >= spec.window_end) {
    throw SpecError("campaign: window_begin must be < window_end");
  }

  const IniFile::Section* axes = ini.find_section("axes");
  if (axes == nullptr) throw SpecError("spec: missing [axes] section");
  check_known_keys(*axes, {"cipher", "policy", "analysis", "noise", "traces",
                           "session_length", "coupling"});

  for (const std::string& item : axis_items(*axes, "cipher")) {
    spec.ciphers.push_back(cipher_from_name(item));
  }
  for (const std::string& item : axis_items(*axes, "policy")) {
    spec.policies.push_back(policy_from_name(item));
  }
  for (const std::string& item : axis_items(*axes, "analysis")) {
    spec.analyses.push_back(analysis_from_name(item));
  }
  for (const std::string& item : axis_items(*axes, "noise")) {
    const double sigma =
        spec_scalar("axes.noise", item, ArgParser::parse_double);
    if (sigma < 0.0) throw SpecError("axes.noise: sigma must be >= 0");
    spec.noise.push_back(sigma);
  }
  for (const std::string& item : axis_items(*axes, "traces")) {
    const auto count = static_cast<std::size_t>(
        spec_scalar("axes.traces", item, ArgParser::parse_u64));
    if (count == 0) throw SpecError("axes.traces: must be >= 1");
    spec.traces.push_back(count);
  }
  for (const std::string& item : axis_items(*axes, "session_length")) {
    const auto length = static_cast<std::size_t>(
        spec_scalar("axes.session_length", item, ArgParser::parse_u64));
    if (length == 0) throw SpecError("axes.session_length: must be >= 1");
    spec.session_lengths.push_back(length);
  }
  for (const std::string& item : axis_items(*axes, "coupling")) {
    const double ff =
        spec_scalar("axes.coupling", item, ArgParser::parse_double);
    if (ff < 0.0) throw SpecError("axes.coupling: must be >= 0 fF");
    spec.coupling_ff.push_back(ff);
  }

  // Defaults for unlisted axes: a single neutral value.
  if (spec.ciphers.empty()) spec.ciphers = {Cipher::kDes};
  if (spec.policies.empty()) {
    throw SpecError("axes.policy is required (the matrix would be empty)");
  }
  if (spec.analyses.empty()) spec.analyses = {Analysis::kEnergy};
  if (spec.noise.empty()) spec.noise = {0.0};
  if (spec.traces.empty()) spec.traces = {1};
  if (spec.session_lengths.empty()) spec.session_lengths = {1};
  if (spec.coupling_ff.empty()) spec.coupling_ff = {0.0};

  if (const IniFile::Section* tech = ini.find_section("tech")) {
    for (const IniFile::Entry& e : tech->entries) {
      const double value =
          spec_scalar("tech." + e.key, e.value, ArgParser::parse_double);
      // Validate the field name now, not at scenario 37.
      energy::TechParams probe;
      apply_tech_override(probe, e.key, value);
      spec.tech_overrides.emplace_back(e.key, value);
    }
  }

  if (const IniFile::Section* reference = ini.find_section("reference")) {
    for (const IniFile::Entry& e : reference->entries) {
      static_cast<void>(policy_from_name(e.key));  // keys are policy names
      spec.reference_uj.emplace_back(
          e.key,
          spec_scalar("reference." + e.key, e.value, ArgParser::parse_double));
    }
  }

  return spec;
}

CampaignSpec CampaignSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError("cannot open spec file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::vector<Scenario> CampaignSpec::expand() const {
  std::vector<Scenario> scenarios;
  std::size_t index = 0;
  for (const Cipher cipher : ciphers) {
    for (const hiding::Countermeasure& policy : policies) {
      for (const Analysis analysis : analyses) {
        for (const double sigma : noise) {
          for (const std::size_t count : traces) {
            for (const std::size_t length : session_lengths) {
              for (const double coupling : coupling_ff) {
                const bool session = is_session_cipher(cipher);
                const bool attack = analysis == Analysis::kDpa ||
                                    analysis == Analysis::kCpa ||
                                    analysis == Analysis::kSecondOrder ||
                                    analysis == Analysis::kTvla ||
                                    analysis == Analysis::kMlpa ||
                                    analysis == Analysis::kCollision;
                // Session ciphers get their own table-driven analysis
                // message (checked first so it wins over the generic
                // DES-only errors below).
                if (session && (analysis == Analysis::kTvla ||
                                analysis == Analysis::kSecondOrder)) {
                  throw SpecError(
                      "analysis '" + std::string(analysis_name(analysis)) +
                      "' is not defined for session cipher '" +
                      std::string(cipher_name(cipher)) +
                      "' (expected energy|dpa|cpa|mlpa|collision)");
                }
                if (analysis == Analysis::kDpa && cipher != Cipher::kDes &&
                    !session) {
                  throw SpecError(
                      "analysis 'dpa' is DES-only (no hypothesis engine "
                      "for " +
                      std::string(cipher_name(cipher)) + ")");
                }
                if (analysis == Analysis::kSecondOrder &&
                    cipher != Cipher::kDes) {
                  throw SpecError("analysis 'second_order' is DES-only");
                }
                if ((analysis == Analysis::kMlpa ||
                     analysis == Analysis::kCollision) &&
                    cipher != Cipher::kDes && !session) {
                  throw SpecError("analysis '" +
                                  std::string(analysis_name(analysis)) +
                                  "' is DES-only (round-1 S-box target)");
                }
                if (analysis == Analysis::kCpa && cipher == Cipher::kSha1) {
                  throw SpecError(
                      "analysis 'cpa' needs a keyed hypothesis — sha1 "
                      "supports energy|tvla only");
                }
                if (length > 1 && !session) {
                  throw SpecError(
                      "axes.session_length > 1 requires a session cipher "
                      "(expected des_cbc|tdes_cbc, got " +
                      std::string(cipher_name(cipher)) + ")");
                }
                if (session && count != 1) {
                  throw SpecError(
                      "session cipher '" +
                      std::string(cipher_name(cipher)) +
                      "' requires traces = 1 — session_length is the "
                      "per-block trace axis");
                }
                if (session && attack && length < 2) {
                  throw SpecError(std::string("analysis '") +
                                  std::string(analysis_name(analysis)) +
                                  "' on a session cipher needs "
                                  "session_length >= 2");
                }
                if (attack && !session && count < 2) {
                  throw SpecError(std::string("analysis '") +
                                  std::string(analysis_name(analysis)) +
                                  "' needs traces >= 2");
                }
                // Hiding countermeasures are DES-device features: wddl and
                // random_precharge live in the DES device's energy model
                // wiring, shuffle_nop in the DES generator's nop_tab slots.
                if (policy.hiding != hiding::HidingPolicy::kNone &&
                    cipher != Cipher::kDes && !session) {
                  throw SpecError(
                      "policy '" + policy.name() +
                      "': hiding countermeasures are DES-only (expected "
                      "des|des_cbc|tdes_cbc, got " +
                      std::string(cipher_name(cipher)) + ")");
                }
                Scenario s;
                s.index = index;
                s.cipher = cipher;
                s.policy = policy;
                s.analysis = analysis;
                s.noise_sigma_pj = sigma;
                s.traces = count;
                s.session_length = session ? length : 1;
                s.coupling_ff = coupling;
                s.seed = util::Rng::nth(seed, index);
                s.key = key;
                s.key2 = key2;
                s.key3 = key3;
                s.fixed_input = fixed_input;
                s.window_begin = window_begin;
                s.window_end = window_end;
                char buf[192];
                char noise_buf[32];
                char coupling_buf[32];
                char session_buf[32] = "";
                std::snprintf(noise_buf, sizeof noise_buf, "%g", sigma);
                std::snprintf(coupling_buf, sizeof coupling_buf, "%g",
                              coupling);
                // Non-session ids keep the historical shape so existing
                // fixtures and resume checkpoints stay valid.
                if (session) {
                  std::snprintf(session_buf, sizeof session_buf, "-s%zu",
                                length);
                }
                std::snprintf(
                    buf, sizeof buf, "%04zu-%s-%s-%s-n%s-t%zu%s-c%s", index,
                    std::string(cipher_name(cipher)).c_str(),
                    policy.name().c_str(),
                    std::string(analysis_name(analysis)).c_str(), noise_buf,
                    count, session_buf, coupling_buf);
                s.id = buf;
                scenarios.push_back(std::move(s));
                ++index;
              }
            }
          }
        }
      }
    }
  }
  if (scenarios.empty()) {
    throw SpecError("spec expands to an empty scenario matrix");
  }
  return scenarios;
}

}  // namespace emask::campaign
