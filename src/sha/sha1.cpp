#include "sha/sha1.hpp"

namespace emask::sha {
namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

constexpr std::array<std::uint32_t, 4> kK = {0x5A827999u, 0x6ED9EBA1u,
                                             0x8F1BBCDCu, 0xCA62C1D6u};

}  // namespace

Sha1State sha1_init() {
  return Sha1State{
      {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u}};
}

void sha1_compress(Sha1State& state,
                   const std::array<std::uint32_t, 16>& block) {
  std::array<std::uint32_t, 80> w;
  for (int i = 0; i < 16; ++i) w[static_cast<std::size_t>(i)] = block[static_cast<std::size_t>(i)];
  for (int i = 16; i < 80; ++i) {
    w[static_cast<std::size_t>(i)] =
        rotl(w[static_cast<std::size_t>(i - 3)] ^
                 w[static_cast<std::size_t>(i - 8)] ^
                 w[static_cast<std::size_t>(i - 14)] ^
                 w[static_cast<std::size_t>(i - 16)],
             1);
  }
  std::uint32_t a = state.h[0], b = state.h[1], c = state.h[2],
                d = state.h[3], e = state.h[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    if (t < 20) {
      f = (b & c) | (~b & d);
    } else if (t < 40) {
      f = b ^ c ^ d;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
    } else {
      f = b ^ c ^ d;
    }
    const std::uint32_t temp =
        rotl(a, 5) + f + e + w[static_cast<std::size_t>(t)] +
        kK[static_cast<std::size_t>(t / 20)];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  state.h[0] += a;
  state.h[1] += b;
  state.h[2] += c;
  state.h[3] += d;
  state.h[4] += e;
}

std::array<std::uint8_t, 20> sha1(const std::vector<std::uint8_t>& data) {
  Sha1State state = sha1_init();
  std::vector<std::uint8_t> padded = data;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0x00);
  for (int i = 7; i >= 0; --i) {
    padded.push_back(static_cast<std::uint8_t>((bit_len >> (8 * i)) & 0xFF));
  }
  for (std::size_t off = 0; off < padded.size(); off += 64) {
    std::array<std::uint32_t, 16> block;
    for (int i = 0; i < 16; ++i) {
      const std::size_t p = off + static_cast<std::size_t>(i) * 4;
      block[static_cast<std::size_t>(i)] =
          (static_cast<std::uint32_t>(padded[p]) << 24) |
          (static_cast<std::uint32_t>(padded[p + 1]) << 16) |
          (static_cast<std::uint32_t>(padded[p + 2]) << 8) |
          static_cast<std::uint32_t>(padded[p + 3]);
    }
    sha1_compress(state, block);
  }
  std::array<std::uint8_t, 20> out;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(i * 4 + j)] = static_cast<std::uint8_t>(
          (state.h[static_cast<std::size_t>(i)] >> (24 - 8 * j)) & 0xFF);
    }
  }
  return out;
}

std::string sha1_hex(const std::string& text) {
  const auto digest =
      sha1(std::vector<std::uint8_t>(text.begin(), text.end()));
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace emask::sha
