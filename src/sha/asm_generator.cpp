#include "sha/asm_generator.hpp"

#include <sstream>
#include <stdexcept>

namespace emask::sha {
namespace {

void poke_words(assembler::Program& program, const char* symbol,
                const std::uint32_t* words, unsigned count) {
  const assembler::DataSymbol* s = program.find_symbol(symbol);
  if (s == nullptr || s->size_bytes < count * 4) {
    throw std::invalid_argument(std::string("sha: no symbol ") + symbol);
  }
  for (unsigned i = 0; i < count; ++i) {
    program.poke_word(s->address + i * 4, words[i]);
  }
}

/// Emits "rd = rotl(rsrc, n)" using the securable shift/or sequence.
void emit_rotl(std::ostringstream& os, const char* rd, const char* rsrc,
               int n) {
  os << "  sll  $at, " << rsrc << ", " << n << "\n";
  os << "  srl  " << rd << ", " << rsrc << ", " << (32 - n) << "\n";
  os << "  or   " << rd << ", " << rd << ", $at\n";
}

}  // namespace

std::string generate_sha1_asm(const std::array<std::uint32_t, 16>& block,
                              const Sha1AsmOptions& options) {
  std::ostringstream os;
  os << "# SHA-1 compression, one 512-bit block (generated)\n";
  os << ".data\n";
  os << "msg:\n";
  for (int i = 0; i < 16; ++i) {
    os << "  .word " << block[static_cast<std::size_t>(i)] << "\n";
  }
  if (options.secret_message) os << ".secret msg\n";
  os << "w:      .space 320\n";
  os << "hinit:  .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, "
        "0xC3D2E1F0\n";
  os << "kconst: .word 0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6\n";
  os << "digest: .space 20\n";
  os << ".declassified digest\n";
  // -O0-style locals: t counter, scratch, and spilled base pointers.
  os << "sha_t:   .space 4\n";
  os << "sha_tmp: .space 4\n";
  os << "w_pt:    .space 4\n";
  os << "msg_pt:  .space 4\n";
  os << "kc_pt:   .space 4\n";

  os << "\n.text\nmain:\n";
  os << "  la   $gp, sha_t\n";
  os << "  la   $t0, w\n";
  os << "  sw   $t0, 8($gp)\n";    // w_pt
  os << "  la   $t0, msg\n";
  os << "  sw   $t0, 12($gp)\n";   // msg_pt
  os << "  la   $t0, kconst\n";
  os << "  sw   $t0, 16($gp)\n";   // kc_pt

  os << "# W[0..15] = msg[i]\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "wcopy:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  lw   $t0, 12($gp)\n";
  os << "  addu $t0, $t0, $t8\n";
  os << "  lw   $t1, 0($t0)\n";       // message word (secret)
  os << "  lw   $t2, 8($gp)\n";
  os << "  addu $t2, $t2, $t8\n";
  os << "  sw   $t1, 0($t2)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, wcopy\n";

  os << "# W[16..79] = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16])\n";
  os << "wexpand:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  lw   $t0, 8($gp)\n";
  os << "  addu $t0, $t0, $t8\n";     // &W[t]
  os << "  lw   $t1, -12($t0)\n";
  os << "  lw   $t2, -32($t0)\n";
  os << "  xor  $t1, $t1, $t2\n";
  os << "  lw   $t2, -56($t0)\n";
  os << "  xor  $t1, $t1, $t2\n";
  os << "  lw   $t2, -64($t0)\n";
  os << "  xor  $t1, $t1, $t2\n";
  emit_rotl(os, "$t3", "$t1", 1);
  os << "  sw   $t3, 0($t0)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 80\n";
  os << "  bne  $t9, $k1, wexpand\n";

  os << "# chaining variables a..e in $s0..$s4 (public until round 1)\n";
  os << "  la   $t0, hinit\n";
  os << "  lw   $s0, 0($t0)\n";
  os << "  lw   $s1, 4($t0)\n";
  os << "  lw   $s2, 8($t0)\n";
  os << "  lw   $s3, 12($t0)\n";
  os << "  lw   $s4, 16($t0)\n";
  os << "  sw   $zero, 0($gp)\n";   // t = 0

  struct Segment {
    const char* label;
    int bound;
    int k_offset;
    int f_kind;  // 0 = Ch, 1 = parity, 2 = Maj
  };
  const Segment segments[] = {{"rounds_ch", 20, 0, 0},
                              {"rounds_par1", 40, 4, 1},
                              {"rounds_maj", 60, 8, 2},
                              {"rounds_par2", 80, 12, 1}};
  for (const Segment& seg : segments) {
    os << "# rounds " << (seg.bound - 20) << ".." << (seg.bound - 1) << "\n";
    os << seg.label << ":\n";
    // f(b, c, d) -> $t2
    switch (seg.f_kind) {
      case 0:  // Ch: (b & c) | (~b & d)
        os << "  and  $t2, $s1, $s2\n";
        os << "  nor  $t5, $s1, $zero\n";
        os << "  and  $t5, $t5, $s3\n";
        os << "  or   $t2, $t2, $t5\n";
        break;
      case 1:  // parity
        os << "  xor  $t2, $s1, $s2\n";
        os << "  xor  $t2, $t2, $s3\n";
        break;
      default:  // Maj: (b & c) | (b & d) | (c & d)
        os << "  and  $t2, $s1, $s2\n";
        os << "  and  $t5, $s1, $s3\n";
        os << "  or   $t2, $t2, $t5\n";
        os << "  and  $t5, $s2, $s3\n";
        os << "  or   $t2, $t2, $t5\n";
        break;
    }
    // temp = rotl5(a) + f + e + W[t] + K
    emit_rotl(os, "$t0", "$s0", 5);
    os << "  addu $t0, $t0, $t2\n";
    os << "  addu $t0, $t0, $s4\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  lw   $t3, 8($gp)\n";
    os << "  addu $t3, $t3, $t8\n";
    os << "  lw   $t3, 0($t3)\n";       // W[t] (secret-derived)
    os << "  addu $t0, $t0, $t3\n";
    os << "  lw   $t4, 16($gp)\n";
    os << "  lw   $t4, " << seg.k_offset << "($t4)\n";  // K (public constant)
    os << "  addu $t0, $t0, $t4\n";
    // e = d; d = c; c = rotl30(b); b = a; a = temp
    os << "  move $s4, $s3\n";
    os << "  move $s3, $s2\n";
    emit_rotl(os, "$s2", "$s1", 30);
    os << "  move $s1, $s0\n";
    os << "  move $s0, $t0\n";
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, " << seg.bound << "\n";
    os << "  bne  $t9, $k1, " << seg.label << "\n";
  }

  os << "# digest[i] = H[i] + {a..e}  (public output, Fig. 2(b) style)\n";
  os << "  la   $t6, hinit\n";
  os << "  la   $t7, digest\n";
  const char* vars[] = {"$s0", "$s1", "$s2", "$s3", "$s4"};
  for (int i = 0; i < 5; ++i) {
    os << "  lw   $t0, " << i * 4 << "($t6)\n";
    os << "  addu $t0, $t0, " << vars[i] << "\n";
    os << "  sw   $t0, " << i * 4 << "($t7)\n";
  }
  os << "  halt\n";
  return os.str();
}

void poke_message(assembler::Program& program,
                  const std::array<std::uint32_t, 16>& block) {
  poke_words(program, "msg", block.data(), 16);
}

std::array<std::uint32_t, 5> read_digest(const sim::DataMemory& memory,
                                         const assembler::Program& program) {
  const assembler::DataSymbol* s = program.find_symbol("digest");
  if (s == nullptr || s->size_bytes < 20) {
    throw std::invalid_argument("sha: no digest symbol");
  }
  std::array<std::uint32_t, 5> out;
  for (unsigned i = 0; i < 5; ++i) {
    out[i] = memory.load_word(s->address + i * 4);
  }
  return out;
}

}  // namespace emask::sha
