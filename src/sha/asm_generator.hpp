// Generates a SHA-1 compression-function program in the target assembly
// language: the "other algorithms" workload for the masking framework.
//
// The program absorbs one 512-bit block into the FIPS initial state.  With
// `secret_message` set, the block is annotated `.secret` — the prefix-key
// MAC setting, where the absorbed block contains key material — and the
// compiler's forward slice must cover the whole 80-round computation.
// Unlike DES (bit-per-word, table-driven), SHA-1 is a word-level kernel
// with rotates and the Ch/Maj logic functions, exercising the secure
// and/nor instructions that DES never needs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "assembler/program.hpp"
#include "sim/memory.hpp"

namespace emask::sha {

struct Sha1AsmOptions {
  bool secret_message = true;  // emit `.secret msg`
};

[[nodiscard]] std::string generate_sha1_asm(
    const std::array<std::uint32_t, 16>& block,
    const Sha1AsmOptions& options = {});

/// Replaces the 16 message words in an assembled program image.
void poke_message(assembler::Program& program,
                  const std::array<std::uint32_t, 16>& block);

/// Reads the five digest words from simulated memory.
[[nodiscard]] std::array<std::uint32_t, 5> read_digest(
    const sim::DataMemory& memory, const assembler::Program& program);

}  // namespace emask::sha
