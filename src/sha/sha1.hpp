// Golden SHA-1 (FIPS 180-1, the "Secure Hash Standard" the paper cites as
// reference [10]).
//
// Used by the keyed-hash generality experiment: the paper argues its
// masking approach "is general and can be extended to other algorithms";
// SHA-1's compression function is the natural second workload (secret-
// prefixed MAC construction) and — unlike DES — exercises the logic unit
// (Ch/Maj), motivating the secure and/nor extension of the ISA.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace emask::sha {

/// The five 32-bit chaining variables.
struct Sha1State {
  std::array<std::uint32_t, 5> h;
};

/// FIPS initial state H0..H4.
[[nodiscard]] Sha1State sha1_init();

/// One compression: absorbs a 512-bit block (16 big-endian words).
void sha1_compress(Sha1State& state,
                   const std::array<std::uint32_t, 16>& block);

/// Full padded hash of a byte string.
[[nodiscard]] std::array<std::uint8_t, 20> sha1(
    const std::vector<std::uint8_t>& data);

/// Convenience: hash of an ASCII string, hex-encoded.
[[nodiscard]] std::string sha1_hex(const std::string& text);

}  // namespace emask::sha
