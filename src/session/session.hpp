// Protocol-scale multi-block sessions: DES-CBC and 3DES-EDE-CBC as
// first-class workloads.
//
// The paper measures one ECB block per transaction; real smart-card traffic
// (PuTTY's des_cbc_encrypt / des_3cbc_encrypt shape) is a *session* — many
// blocks chained through CBC under one key.  This subsystem promotes that
// shape from hand-rolled example loops into an engine:
//
//   * chaining happens ON THE DEVICE: the DES generator's cbc_chain option
//     adds an `iv` data symbol and a chaining XOR (plain ^= iv before IP
//     for encryption, cipher ^= iv after the output permutation for
//     decryption), so the simulated trace includes the chaining energy;
//   * the key schedule is hoisted (DesAsmOptions::hoist_key_schedule) and
//     computed ONCE per session: block 2..N fork from the post-key-schedule
//     snapshot (core::MaskingPipeline::snapshot_des), amortizing the
//     schedule across the session;
//   * capture goes through core::BatchRunner.  CBC is sequential on the
//     device but the chain values are *public* (each block's iv is the
//     previous ciphertext), so the engine precomputes the chain with the
//     des:: golden model and every block stays a pure function of its batch
//     index — the runner's determinism contract (bit-identical at any
//     thread count, fork vs cold) carries over to sessions unchanged.  The
//     device output of every block is verified against the golden chain.
//
// Padding contract (pack_message / unpack_message): PKCS#7 over 8-byte
// blocks.  A message of n bytes gains p = 8 - (n mod 8) trailing bytes of
// value p (so a whole-block message gains a full block of 0x08) — never a
// silent zero-pad, and unpack_message rejects malformed padding with a
// SessionError.  Bytes pack big-endian into the std::uint64_t blocks, first
// message byte in the most significant byte.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/masking.hpp"
#include "core/batch_runner.hpp"
#include "core/masking_pipeline.hpp"
#include "energy/params.hpp"
#include "hiding/policy.hpp"

namespace emask::session {

class SessionError : public std::runtime_error {
 public:
  explicit SessionError(const std::string& what) : std::runtime_error(what) {}
};

/// Session cipher-axis values.  kDesCbc is single DES in CBC; kTdesEdeCbc
/// is triple-DES EDE with outer CBC (one chaining XOR per block around the
/// whole E-D-E cascade, PuTTY's des_3cbc shape).
enum class SessionCipher {
  kDesCbc,
  kTdesEdeCbc,
};

/// Name table — the one source of truth for spec parsing and errors.
inline constexpr struct {
  SessionCipher value;
  std::string_view name;
} kSessionCipherNames[] = {
    {SessionCipher::kDesCbc, "des_cbc"},
    {SessionCipher::kTdesEdeCbc, "tdes_cbc"},
};

[[nodiscard]] std::string_view session_cipher_name(SessionCipher cipher);
/// Throws SessionError listing the accepted names.
[[nodiscard]] SessionCipher session_cipher_from_name(std::string_view name);

/// Keys of a session.  DES-CBC uses k1 only; 3DES-EDE uses all three.
struct SessionKeys {
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  std::uint64_t k3 = 0;
};

// ---- Padding / packing (the session byte contract) ----------------------

/// PKCS#7-pads `bytes` and packs them into big-endian 64-bit blocks.
[[nodiscard]] std::vector<std::uint64_t> pack_message(
    const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::vector<std::uint64_t> pack_message(std::string_view text);

/// Unpacks blocks and strips PKCS#7 padding.  Throws SessionError on an
/// empty block vector or malformed padding (pad byte 0, > 8, or trailing
/// bytes that do not all equal the pad value).
[[nodiscard]] std::vector<std::uint8_t> unpack_message(
    const std::vector<std::uint64_t>& blocks);

// ---- Golden model at session level --------------------------------------

/// CBC over whole blocks with the des:: golden model (single DES or EDE3
/// by cipher).  The engine validates every device output against these.
[[nodiscard]] std::vector<std::uint64_t> golden_encrypt(
    SessionCipher cipher, const SessionKeys& keys, std::uint64_t iv,
    const std::vector<std::uint64_t>& blocks);
[[nodiscard]] std::vector<std::uint64_t> golden_decrypt(
    SessionCipher cipher, const SessionKeys& keys, std::uint64_t iv,
    const std::vector<std::uint64_t>& blocks);

// ---- The engine ----------------------------------------------------------

struct SessionConfig {
  SessionCipher cipher = SessionCipher::kDesCbc;
  SessionKeys keys;
  std::uint64_t iv = 0;
  /// Masking and/or hiding countermeasure for every stage device (converts
  /// implicitly from a bare compiler::Policy).  A non-fork-compatible
  /// hiding policy (random_precharge) silently disables the shared-prefix
  /// amortization — every block runs cold — under SnapshotMode::kAuto.
  hiding::Countermeasure policy = compiler::Policy::kSelective;
  energy::TechParams params = energy::TechParams::smartcard_025um();
  /// Worker threads for block capture (0 = hardware concurrency).  Any
  /// value produces bit-identical results.
  std::size_t threads = 1;
  /// Additive Gaussian measurement noise per block trace (pJ rms), seeded
  /// per block index.
  double noise_sigma_pj = 0.0;
  std::uint64_t noise_seed = 0xC0FFEE;
  /// Truncate each first-stage block run after this many cycles (0 = run
  /// to halt).  Attack captures window round 1 of the first DES pass; a
  /// truncated session simulates ONLY that pass (3DES stages 2-3 are
  /// skipped) and skips ciphertext validation, since truncated runs report
  /// cipher = 0.
  std::uint64_t stop_after_cycles = 0;
  /// Snapshot/fork policy for the capture (kAuto forks whenever the
  /// hoisted program allows; kOff forces per-block cold starts — traces
  /// are bit-identical either way, which the equality tests assert).
  core::SnapshotMode snapshot = core::SnapshotMode::kAuto;
  /// Hoist the key schedule ahead of the fork marker so it is computed
  /// once per session.  Off reproduces the paper's per-block in-round
  /// schedule (no fork point, every block cold).
  bool hoist_key_schedule = true;
  /// Base seed for per-trace hiding randomness; each stage device gets a
  /// distinct derived seed (still a pure function of this value).
  std::uint64_t hiding_seed = 0x9E3779B97F4A7C15ull;
};

/// Per-block view delivered to the capture sink, in strict block order.
struct BlockEvent {
  std::size_t block = 0;       // block index within the session
  std::size_t stage = 0;       // DES pass (0 for DES-CBC; 0..2 for 3DES)
  std::uint64_t stage_input = 0;  // value poked as `plain` for this pass
  std::uint64_t chain = 0;        // chaining value into this block
  /// Effective single-DES input of the pass: stage_input ^ chain for the
  /// chained pass, stage_input otherwise.  Round-1 attack hypotheses use
  /// this exactly like an ECB plaintext.
  std::uint64_t des_input = 0;
};

using BlockSink =
    std::function<void(const BlockEvent&, core::EncryptionRun&)>;

/// One block's attribution, summed over the session's stages.
struct BlockResult {
  std::uint64_t input = 0;   // session-level input block
  std::uint64_t chain = 0;   // chaining value into the block
  std::uint64_t output = 0;  // session-level output block (0 if truncated)
  std::uint64_t cycles = 0;  // full spliced cycle count across stages
  double energy_uj = 0.0;    // full energy across stages (prefix included)
};

struct SessionResult {
  std::vector<std::uint64_t> output;  // ciphertext (encrypt) or plaintext
  std::vector<BlockResult> blocks;
  std::size_t stages = 1;        // DES passes per block actually simulated
  /// Amortization accounting, pure cycle math (schedule- and snapshot-mode
  /// independent).  A cold session pays the key-schedule prefix on every
  /// block of every stage; the hoisted session pays it once per stage.
  std::uint64_t prefix_cycles = 0;     // summed across simulated stages
  std::uint64_t block_cycles = 0;      // full cycles of one block, all stages
  std::uint64_t session_cycles = 0;    // amortized: prefix + N * body
  std::uint64_t cold_cycles = 0;       // N * block_cycles
  double total_uj = 0.0;               // summed full block energies

  [[nodiscard]] double amortized_speedup() const {
    return session_cycles > 0 ? static_cast<double>(cold_cycles) /
                                    static_cast<double>(session_cycles)
                              : 1.0;
  }
  [[nodiscard]] double uj_per_block() const {
    return blocks.empty() ? 0.0
                          : total_uj / static_cast<double>(blocks.size());
  }
};

/// Builds the per-stage devices once (assembly + masking compile), then
/// encrypts or decrypts any number of block vectors.  3DES-EDE-CBC runs
/// stage-major: all blocks through pass 1, then pass 2, then pass 3 — each
/// pass is one BatchRunner batch forking from that stage's own
/// post-key-schedule snapshot.
class SessionEngine {
 public:
  explicit SessionEngine(SessionConfig config);

  [[nodiscard]] const SessionConfig& config() const { return config_; }
  /// Adjusts the attack truncation window after construction — campaign
  /// attack windows are derived from the compiled stage-0 program, which
  /// only exists once the engine is built.
  void set_stop_after_cycles(std::uint64_t cycles) {
    config_.stop_after_cycles = cycles;
  }
  /// DES passes per block (1 for DES-CBC, 3 for 3DES-EDE-CBC).
  [[nodiscard]] std::size_t stages() const { return devices_.size(); }
  /// The compiled device of a pass (0-based; encrypt-order stages).
  [[nodiscard]] const core::MaskingPipeline& device(std::size_t stage) const;

  /// Encrypts `blocks` (whole 64-bit blocks; use pack_message for bytes).
  /// The sink, when set, receives every simulated (block, stage) run in
  /// strict block order within each stage.  Device outputs are validated
  /// against the golden model chain; a mismatch throws SessionError.
  SessionResult encrypt(const std::vector<std::uint64_t>& blocks,
                        const BlockSink& sink = {});
  /// Decrypts `blocks`; same contract.
  SessionResult decrypt(const std::vector<std::uint64_t>& blocks,
                        const BlockSink& sink = {});

 private:
  SessionResult run(const std::vector<std::uint64_t>& blocks, bool decrypt,
                    const BlockSink& sink);

  SessionConfig config_;
  // Encrypt-order devices: [chained E(k1)] for DES-CBC; [chained E(k1),
  // plain D(k2), plain E(k3)] for 3DES.  Decryption reverses the order and
  // swaps each stage's direction; those devices are built lazily.
  std::vector<core::MaskingPipeline> devices_;
  std::vector<core::MaskingPipeline> decrypt_devices_;
  void build_devices(bool decrypt);
};

}  // namespace emask::session
