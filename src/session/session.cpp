#include "session/session.hpp"

#include <utility>

#include "des/des.hpp"

namespace emask::session {
namespace {

std::string accepted_cipher_names() {
  std::string out;
  for (const auto& entry : kSessionCipherNames) {
    if (!out.empty()) out += "|";
    out += entry.name;
  }
  return out;
}

/// One DES pass over the whole session: the device key, the per-block
/// BatchRunner inputs, the golden-model expected outputs, and the
/// effective single-DES inputs the attack hypotheses consume.
struct StagePlan {
  std::vector<core::BatchInput> inputs;
  std::vector<std::uint64_t> expected;
  std::vector<std::uint64_t> des_inputs;
  std::vector<std::uint64_t> chains;  // 0 where the stage is unchained
};

}  // namespace

std::string_view session_cipher_name(SessionCipher cipher) {
  for (const auto& entry : kSessionCipherNames) {
    if (entry.value == cipher) return entry.name;
  }
  throw SessionError("session_cipher_name: unknown cipher value");
}

SessionCipher session_cipher_from_name(std::string_view name) {
  for (const auto& entry : kSessionCipherNames) {
    if (entry.name == name) return entry.value;
  }
  throw SessionError("unknown session cipher '" + std::string(name) +
                     "' (expected " + accepted_cipher_names() + ")");
}

std::vector<std::uint64_t> pack_message(
    const std::vector<std::uint8_t>& bytes) {
  const std::size_t pad = 8 - bytes.size() % 8;  // 1..8, never 0
  std::vector<std::uint8_t> padded = bytes;
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  std::vector<std::uint64_t> blocks;
  blocks.reserve(padded.size() / 8);
  for (std::size_t i = 0; i < padded.size(); i += 8) {
    std::uint64_t block = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      block = (block << 8) | padded[i + j];
    }
    blocks.push_back(block);
  }
  return blocks;
}

std::vector<std::uint64_t> pack_message(std::string_view text) {
  return pack_message(std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::vector<std::uint8_t> unpack_message(
    const std::vector<std::uint64_t>& blocks) {
  if (blocks.empty()) {
    throw SessionError("unpack_message: empty block vector (a padded "
                       "message is never shorter than one block)");
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(blocks.size() * 8);
  for (const std::uint64_t block : blocks) {
    for (int j = 7; j >= 0; --j) {
      bytes.push_back(static_cast<std::uint8_t>(block >> (8 * j)));
    }
  }
  const std::uint8_t pad = bytes.back();
  if (pad == 0 || pad > 8) {
    throw SessionError("unpack_message: malformed PKCS#7 padding (pad byte " +
                       std::to_string(static_cast<int>(pad)) +
                       ", expected 1..8)");
  }
  for (std::size_t i = bytes.size() - pad; i < bytes.size(); ++i) {
    if (bytes[i] != pad) {
      throw SessionError(
          "unpack_message: malformed PKCS#7 padding (trailing bytes do not "
          "all equal the pad value)");
    }
  }
  bytes.resize(bytes.size() - pad);
  return bytes;
}

std::vector<std::uint64_t> golden_encrypt(
    SessionCipher cipher, const SessionKeys& keys, std::uint64_t iv,
    const std::vector<std::uint64_t>& blocks) {
  switch (cipher) {
    case SessionCipher::kDesCbc:
      return des::cbc_encrypt(blocks, keys.k1, iv);
    case SessionCipher::kTdesEdeCbc:
      return des::cbc_encrypt_ede3(blocks, keys.k1, keys.k2, keys.k3, iv);
  }
  throw SessionError("golden_encrypt: unknown cipher value");
}

std::vector<std::uint64_t> golden_decrypt(
    SessionCipher cipher, const SessionKeys& keys, std::uint64_t iv,
    const std::vector<std::uint64_t>& blocks) {
  switch (cipher) {
    case SessionCipher::kDesCbc:
      return des::cbc_decrypt(blocks, keys.k1, iv);
    case SessionCipher::kTdesEdeCbc:
      return des::cbc_decrypt_ede3(blocks, keys.k1, keys.k2, keys.k3, iv);
  }
  throw SessionError("golden_decrypt: unknown cipher value");
}

SessionEngine::SessionEngine(SessionConfig config)
    : config_(std::move(config)) {
  build_devices(/*decrypt=*/false);
}

void SessionEngine::build_devices(bool decrypt) {
  std::vector<core::MaskingPipeline>& devs =
      decrypt ? decrypt_devices_ : devices_;
  if (!devs.empty()) return;
  const auto make = [&](bool dec, bool chained) {
    des::DesAsmOptions opt;
    opt.decrypt = dec;
    opt.cbc_chain = chained;
    opt.hoist_key_schedule = config_.hoist_key_schedule;
    return core::MaskingPipeline::des(config_.policy, config_.params, opt);
  };
  if (config_.cipher == SessionCipher::kDesCbc) {
    devs.push_back(make(decrypt, /*chained=*/true));
  }
  // 3DES-EDE outer CBC.  Encrypt: chained E(k1), D(k2), E(k3).  Decrypt:
  // D(k3), E(k2), chained D(k1) — the chaining XOR lands on the plaintext
  // side in both directions.
  else if (!decrypt) {
    devs.push_back(make(false, true));
    devs.push_back(make(true, false));
    devs.push_back(make(false, false));
  } else {
    devs.push_back(make(true, false));
    devs.push_back(make(false, false));
    devs.push_back(make(true, true));
  }
  for (std::size_t i = 0; i < devs.size(); ++i) {
    devs[i].set_hiding_seed(config_.hiding_seed +
                            0x9E3779B97F4A7C15ull * (i + 1));
  }
}

const core::MaskingPipeline& SessionEngine::device(std::size_t stage) const {
  if (stage >= devices_.size()) {
    throw SessionError("SessionEngine::device: stage out of range");
  }
  return devices_[stage];
}

SessionResult SessionEngine::encrypt(const std::vector<std::uint64_t>& blocks,
                                     const BlockSink& sink) {
  return run(blocks, /*decrypt=*/false, sink);
}

SessionResult SessionEngine::decrypt(const std::vector<std::uint64_t>& blocks,
                                     const BlockSink& sink) {
  return run(blocks, /*decrypt=*/true, sink);
}

SessionResult SessionEngine::run(const std::vector<std::uint64_t>& blocks,
                                 bool decrypt, const BlockSink& sink) {
  build_devices(decrypt);
  std::vector<core::MaskingPipeline>& devs =
      decrypt ? decrypt_devices_ : devices_;
  const std::size_t n = blocks.size();
  const bool truncated = config_.stop_after_cycles != 0;
  const std::size_t stages = truncated ? 1 : devs.size();
  const SessionKeys& k = config_.keys;

  SessionResult result;
  result.stages = stages;
  result.output = decrypt
                      ? golden_decrypt(config_.cipher, k, config_.iv, blocks)
                      : golden_encrypt(config_.cipher, k, config_.iv, blocks);

  // Chaining values are public (iv, then the previous *ciphertext* block),
  // so they come straight from the golden model and every per-block input
  // below is a pure function of its index — BatchRunner's determinism
  // contract applies unchanged.
  std::vector<std::uint64_t> chain(n);
  const std::vector<std::uint64_t>& cipher_blocks =
      decrypt ? blocks : result.output;
  for (std::size_t i = 0; i < n; ++i) {
    chain[i] = i == 0 ? config_.iv : cipher_blocks[i - 1];
  }

  // Per-stage plans: device key, inputs, golden expectations.
  std::vector<std::uint64_t> plan_keys;
  std::vector<StagePlan> plans;
  const auto add_stage = [&](std::uint64_t key, bool chained, bool dec_core,
                             const std::vector<std::uint64_t>& stage_in) {
    StagePlan plan;
    plan.inputs.reserve(n);
    plan.expected.reserve(n);
    plan.des_inputs.reserve(n);
    plan.chains.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t cv = chained ? chain[i] : 0;
      // Encrypt-side chaining XORs into the DES core's input; decrypt-side
      // chaining XORs into its output.
      const std::uint64_t core_in =
          (chained && !dec_core) ? (stage_in[i] ^ cv) : stage_in[i];
      const std::uint64_t core_out =
          dec_core ? des::decrypt_block(core_in, key)
                   : des::encrypt_block(core_in, key);
      plan.inputs.push_back(core::BatchInput{key, stage_in[i], cv});
      plan.expected.push_back((chained && dec_core) ? (core_out ^ cv)
                                                    : core_out);
      plan.des_inputs.push_back(core_in);
      plan.chains.push_back(cv);
    }
    plan_keys.push_back(key);
    plans.push_back(std::move(plan));
    return plans.back().expected;  // the next stage's input
  };

  if (config_.cipher == SessionCipher::kDesCbc) {
    add_stage(k.k1, /*chained=*/true, /*dec_core=*/decrypt, blocks);
  } else if (!decrypt) {
    std::vector<std::uint64_t> s1 = add_stage(k.k1, true, false, blocks);
    std::vector<std::uint64_t> s2 = add_stage(k.k2, false, true, s1);
    add_stage(k.k3, false, false, s2);
  } else {
    std::vector<std::uint64_t> t1 = add_stage(k.k3, false, true, blocks);
    std::vector<std::uint64_t> t2 = add_stage(k.k2, false, false, t1);
    add_stage(k.k1, true, true, t2);
  }

  result.blocks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.blocks[i].input = blocks[i];
    result.blocks[i].chain = chain[i];
    result.blocks[i].output = truncated ? 0 : result.output[i];
  }
  if (truncated) result.output.assign(n, 0);
  if (n == 0) return result;

  for (std::size_t s = 0; s < stages; ++s) {
    const StagePlan& plan = plans[s];
    core::BatchConfig bc;
    bc.threads = config_.threads;
    bc.stop_after_cycles = config_.stop_after_cycles;
    bc.noise_sigma_pj = config_.noise_sigma_pj;
    // Distinct per-stage noise streams, still pure functions of the index.
    bc.noise_seed = config_.noise_seed + 0x9E3779B97F4A7C15ull * s;
    bc.snapshot = config_.snapshot;
    core::BatchRunner runner(devs[s], bc);
    runner.capture_each(
        n, [&plan](std::size_t i) { return plan.inputs[i]; },
        [&](std::size_t i, const core::BatchInput&, core::EncryptionRun& r) {
          if (!truncated && r.cipher != plan.expected[i]) {
            throw SessionError(
                "session block " + std::to_string(i) + " stage " +
                std::to_string(s) +
                ": device output disagrees with the golden model");
          }
          result.blocks[i].cycles += r.sim.cycles;
          result.blocks[i].energy_uj += r.total_uj();
          if (sink) {
            BlockEvent ev;
            ev.block = i;
            ev.stage = s;
            ev.stage_input = plan.inputs[i].plaintext;
            ev.chain = plan.chains[i];
            ev.des_input = plan.des_inputs[i];
            sink(ev, r);
          }
        });
    // Amortization math is snapshot-mode independent: the prefix length is
    // a property of the program, reused from the runner's snapshot when it
    // took one and measured once otherwise.  Non-fork-eligible devices
    // (random_precharge) have no shareable prefix — every block pays the
    // schedule, so no prefix cycles are credited.
    if (devs[s].fork_eligible()) {
      const std::uint64_t pc =
          runner.stats().snapshot_prefix_cycles != 0
              ? runner.stats().snapshot_prefix_cycles
              : devs[s].snapshot_des(plan_keys[s]).fork_cycle;
      if (!truncated || pc < config_.stop_after_cycles) {
        result.prefix_cycles += pc;
      }
    }
  }

  result.block_cycles = result.blocks.front().cycles;
  for (const BlockResult& b : result.blocks) {
    result.cold_cycles += b.cycles;
    result.total_uj += b.energy_uj;
  }
  result.session_cycles =
      result.cold_cycles -
      result.prefix_cycles * static_cast<std::uint64_t>(n - 1);
  return result;
}

}  // namespace emask::session
