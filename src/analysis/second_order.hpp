// Second-order DPA preprocessing.
//
// The paper notes that "higher-order power analysis techniques can be used
// to circumvent these protection mechanisms" — specifically, *Boolean*
// masking (splitting a secret into two random shares) falls to second-order
// attacks that combine the two shares' leakage samples.  The classic
// combination function is the centered product
//
//     c_{i,j} = (t_i - E[t_i]) * (t_j - E[t_j])
//
// whose mean correlates with the XOR of the bits leaking at cycles i and j.
//
// This module provides the preprocessing; the combined trace feeds the
// ordinary first-order engines (DpaAttack / GenericCpa).  Against the
// paper's dual-rail masking the combined trace is identically zero — there
// is no variance at any cycle to combine — which is the structural
// advantage of constant-power hardware over share-based software masking.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/trace.hpp"

namespace emask::analysis {

class SecondOrderPreprocessor {
 public:
  /// Combines cycles within [window_begin, window_end) at lags 1..max_lag:
  /// the output trace has (width - lag) entries per lag, concatenated.
  SecondOrderPreprocessor(std::size_t window_begin, std::size_t window_end,
                          std::size_t max_lag);

  /// Profiling pass: accumulates per-cycle means.
  void fit(const Trace& trace);

  /// Attack pass: centered products against the fitted means.
  [[nodiscard]] Trace combine(const Trace& trace) const;

  [[nodiscard]] std::size_t traces_fitted() const { return fitted_; }

 private:
  std::size_t begin_;
  std::size_t end_;
  std::size_t max_lag_;
  std::size_t width_ = 0;
  std::size_t fitted_ = 0;
  std::vector<double> mean_;
};

}  // namespace emask::analysis
