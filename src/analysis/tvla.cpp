#include "analysis/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emask::analysis {

void TvlaAssessment::add(std::vector<util::RunningStats>& group,
                         const Trace& trace) {
  const std::size_t begin = std::min(begin_, trace.size());
  const std::size_t end = std::min(end_, trace.size());
  const std::size_t w = end > begin ? end - begin : 0;
  if (width_ == 0 && fixed_.empty() && random_.empty()) {
    width_ = w;
    fixed_.resize(width_);
    random_.resize(width_);
  }
  if (w < width_) {
    throw std::invalid_argument("TvlaAssessment: trace shorter than window");
  }
  for (std::size_t i = 0; i < width_; ++i) group[i].add(trace[begin + i]);
}

TvlaResult TvlaAssessment::solve() const {
  TvlaResult result;
  result.t_per_cycle.resize(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    const double t = util::welch_t(fixed_[i], random_[i]);
    result.t_per_cycle[i] = t;
    if (std::abs(t) > result.max_abs_t) {
      result.max_abs_t = std::abs(t);
      result.worst_cycle = i;
    }
    if (std::abs(t) > TvlaResult::kTvlaThreshold) {
      ++result.cycles_over_threshold;
    }
  }
  return result;
}

}  // namespace emask::analysis
