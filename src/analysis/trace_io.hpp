// Trace-set persistence: capture once, attack offline.
//
// Binary format "EMTS" (eMask Trace Set), little-endian:
//   magic "EMTS"  u32 version  u64 n_traces  u64 trace_len
//   then per trace: u64 input (e.g. the plaintext)  +  trace_len float32
//   samples (pJ).
//
// float32 halves the footprint; the quantization (~1e-5 relative) is far
// below any attack's decision margin.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/trace.hpp"

namespace emask::analysis {

struct TraceSet {
  std::vector<std::uint64_t> inputs;  // parallel to traces
  std::vector<Trace> traces;

  [[nodiscard]] std::size_t size() const { return traces.size(); }
  void add(std::uint64_t input, Trace trace) {
    inputs.push_back(input);
    traces.push_back(std::move(trace));
  }
};

/// Writes the set; throws std::runtime_error on IO failure or if the
/// traces are not all the same length.
void save_trace_set(const std::string& path, const TraceSet& set);

/// Reads a set; throws std::runtime_error on IO failure, bad magic,
/// unsupported version, a header that does not match the file's actual
/// size (truncation, trailing bytes, or a corrupted count), or short
/// reads.
[[nodiscard]] TraceSet load_trace_set(const std::string& path);

/// Incremental EMTS writer: streams a trace set of known cardinality to
/// disk one trace at a time, so arbitrarily large capture batches never
/// need to be resident in memory (core::BatchRunner streams through this).
///
/// The header's trace length is taken from the first appended trace; every
/// later trace must match it.  `close()` (or the destructor) finishes the
/// file; close() throws if the number of appended traces differs from the
/// `n_traces` promised at construction, guaranteeing a well-formed file or
/// an error — never a silently short one.  Appends must arrive in the
/// final (serial) trace order; the writer performs no reordering.
class TraceSetWriter {
 public:
  TraceSetWriter(const std::string& path, std::uint64_t n_traces);
  TraceSetWriter(const TraceSetWriter&) = delete;
  TraceSetWriter& operator=(const TraceSetWriter&) = delete;
  ~TraceSetWriter() noexcept;

  void append(std::uint64_t input, const Trace& trace);

  /// Flushes and validates; throws on IO failure or a trace-count
  /// mismatch.  Idempotent.
  void close();

  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  void write_header(std::uint64_t trace_len);

  std::string path_;
  std::ofstream out_;
  std::uint64_t expected_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t trace_len_ = 0;
  bool header_written_ = false;
  bool closed_ = false;
  std::vector<float> row_;
};

}  // namespace emask::analysis
