// Trace-set persistence: capture once, attack offline.
//
// Binary format "EMTS" (eMask Trace Set), little-endian:
//   magic "EMTS"  u32 version  u64 n_traces  u64 trace_len
//   then per trace: u64 input (e.g. the plaintext)  +  trace_len float32
//   samples (pJ).
//
// float32 halves the footprint; the quantization (~1e-5 relative) is far
// below any attack's decision margin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/trace.hpp"

namespace emask::analysis {

struct TraceSet {
  std::vector<std::uint64_t> inputs;  // parallel to traces
  std::vector<Trace> traces;

  [[nodiscard]] std::size_t size() const { return traces.size(); }
  void add(std::uint64_t input, Trace trace) {
    inputs.push_back(input);
    traces.push_back(std::move(trace));
  }
};

/// Writes the set; throws std::runtime_error on IO failure or if the
/// traces are not all the same length.
void save_trace_set(const std::string& path, const TraceSet& set);

/// Reads a set; throws std::runtime_error on IO failure, bad magic,
/// unsupported version, or truncation.
[[nodiscard]] TraceSet load_trace_set(const std::string& path);

}  // namespace emask::analysis
