// Multi-Linear cryptanalysis in Power Analysis attacks (MLPA), after
// Roche & Tavernier: instead of predicting one intermediate bit exactly
// (DPA) or a Hamming weight (CPA), combine *several linear approximations*
// of the S-box.  For S-box S and masks (a, b), the approximation
//
//   parity(a & x)  ==  parity(b & S(x))      with probability 1/2 + eps
//
// turns the public expanded-input chunk e into a biased predictor of a
// keyed output bit: under key chunk k the S-box input is x = e ^ k, so
// parity(a & e) = parity(a & x) ^ parity(a & k) — a selection function the
// attacker can evaluate without knowing k, whose correlation with the
// target bit's leakage carries sign (-1)^parity(a & k).
//
// Each approximation j therefore needs only ONE hypothesis sequence —
// parity(a_j & e) — tracked by a single-guess GenericCpa engine.  Its
// per-cycle signed correlation series rho_j is the evidence; guess g
// claims the match direction f_j(g) = parity(a_j & g) ^ (eps_j < 0) and
// the combined statistic sums, per target output bit, the best cycle of
// the coherently signed series:
//
//   T(g) = sum_bit max_c sum_{j: out bit} (-1)^f_j(g) * rho_j(c)
//
// At g = k every term targeting a bit is positive at the cycle where that
// bit's leakage lives; a wrong guess d = g ^ k != 0 flips the terms with
// parity(a_j & d) = 1 and cancels at every cycle, provided the in_masks
// {a_j} span GF(2)^6 so at least one term flips for every d.
// select_approximations() guarantees the span and restricts the table to
// approximations that can actually see this device's leakage:
//
//   * out_mask is a single bit — the card stores each S-box output bit in
//     its own word, and the parity of two independent uniform bits has
//     zero correlation with either bit's individual leakage;
//   * in_mask has >= 2 bits — a single-bit in_mask makes the selection
//     function a raw bit of the *public* input e, which correlates
//     strongly and key-independently with the card's input-handling
//     cycles, swamping the keyed signal.
//
// Where single-bit DPA needs the exact S-box model, MLPA degrades
// gracefully with model error (each approximation is only 1/2 + eps right
// to begin with) — the stronger 2009-era adversary the paper's 2003
// selective-masking evaluation never faced.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/generic_cpa.hpp"
#include "analysis/hypothesis.hpp"
#include "analysis/trace.hpp"

namespace emask::analysis {

/// One linear approximation of a DES S-box.
struct LinearApprox {
  int sbox = 0;      // 0..7
  int in_mask = 0;   // 6-bit mask a over the S-box input
  int out_mask = 0;  // 4-bit mask b over the S-box output (bit 3 = MSB)
  double bias = 0.0; // signed eps in [-1/2, 1/2]
};

/// The exact bias eps of parity(in_mask & x) == parity(out_mask & S(x))
/// over the 64 S-box inputs (a scaled Walsh coefficient of the S-box).
[[nodiscard]] double sbox_linear_bias(int sbox, int in_mask, int out_mask);

/// The approximation set MLPA runs with: per multi-bit in_mask, its
/// dominant single-output-bit coefficient (same-in_mask approximations
/// share one selection function, so only the interpretation differs).
/// The `max_count` highest-|bias| candidates (deterministic tie-break by
/// mask) are extended greedily until the in_masks span GF(2)^6 so every
/// wrong guess is distinguished from the key.
[[nodiscard]] std::vector<LinearApprox> select_approximations(
    int sbox, std::size_t max_count);

struct MlpaConfig {
  int sbox = 0;  // target S-box of round 1, 0..7
  std::size_t window_begin = 0;
  std::size_t window_end = SIZE_MAX;
  /// Approximations to combine (before the span-completing extension).
  std::size_t max_approx = 10;
};

struct MlpaResult {
  int best_guess = -1;
  double best_score = 0.0;  // combined statistic T of the best guess
  std::array<double, 64> score_per_guess{};
  std::size_t traces_used = 0;

  [[nodiscard]] double margin() const;
};

/// Streaming MLPA accumulator: feed (plaintext, trace) pairs, then solve.
class MlpaAttack {
 public:
  explicit MlpaAttack(const MlpaConfig& config);

  /// The selection function: parity(in_mask & e) for the public round-1
  /// expanded-input chunk e of `sbox` (exposed for tests).
  [[nodiscard]] static int selection_parity(std::uint64_t plaintext, int sbox,
                                            int in_mask);

  /// Installs a batched hypothesis backend supplying one selection parity
  /// per approximation (in approximations() order).  Null restores the
  /// scalar path.
  void set_provider(std::shared_ptr<HypothesisProvider> provider);

  void add_trace(std::uint64_t plaintext, const Trace& trace);
  [[nodiscard]] MlpaResult solve() const;

  [[nodiscard]] const std::vector<LinearApprox>& approximations() const {
    return approx_;
  }

 private:
  MlpaConfig config_;
  std::vector<LinearApprox> approx_;
  std::shared_ptr<HypothesisProvider> provider_;
  std::vector<int> parities_;
  /// One single-hypothesis engine per approximation tracking the
  /// selection parity's per-cycle correlation.
  std::vector<GenericCpa> engines_;
};

}  // namespace emask::analysis
