#include "analysis/key_recovery.hpp"

#include <vector>

#include "des/des.hpp"
#include "des/tables.hpp"
#include "util/bitops.hpp"

namespace emask::analysis {

int k1_source_key_bit(int k1_bit_index) {
  // K1[i] = CD1[PC2[i] - 1], CD1 = (C0 <<< 1) || (D0 <<< 1) (round 1 shift
  // is 1), CD0 = PC1(key).  Walk the indices backwards.
  const int p = des::kPc2[static_cast<std::size_t>(k1_bit_index)] - 1;
  // Position in CD0: a left-rotate by one of each 28-bit half means
  // CD1[j] = CD0[j + 1 mod 28 within the half].
  const int q = p < 28 ? (p + 1) % 28 : 28 + ((p - 28 + 1) % 28);
  return des::kPc1[static_cast<std::size_t>(q)];  // 1-based key bit
}

std::optional<std::uint64_t> reconstruct_key(std::uint64_t recovered_k1,
                                             std::uint64_t plaintext,
                                             std::uint64_t ciphertext) {
  // Place the 48 exposed bits.
  std::uint64_t key = 0;
  bool exposed[65] = {};
  for (int i = 0; i < 48; ++i) {
    const int kpos = k1_source_key_bit(i);  // 1-based, MSB-first
    exposed[kpos] = true;
    const std::uint64_t bit = (recovered_k1 >> (47 - i)) & 1u;
    key |= bit << (64 - kpos);
  }
  // The unexposed effective bits: everything PC-1 selects that K1 misses.
  std::vector<int> missing;
  for (const int kpos : des::kPc1) {
    if (!exposed[kpos]) missing.push_back(kpos);
  }
  // 2^missing search (8 for standard DES).
  const auto trials = 1u << missing.size();
  for (std::uint32_t assignment = 0; assignment < trials; ++assignment) {
    std::uint64_t candidate = key;
    for (std::size_t b = 0; b < missing.size(); ++b) {
      const std::uint64_t bit = (assignment >> b) & 1u;
      candidate |= bit << (64 - missing[b]);
    }
    candidate = des::with_odd_parity(candidate);
    if (des::encrypt_block(plaintext, candidate) == ciphertext) {
      return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace emask::analysis
