// Correlation Power Analysis (Brier-Clavier-Olivier style) against DES,
// the stronger successor to difference-of-means DPA: correlate per-cycle
// energy with the Hamming weight of the predicted 4-bit S-box output under
// each of the 64 subkey-chunk guesses.  Built on the algorithm-agnostic
// GenericCpa engine (which the AES attack reuses with 256 guesses).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/generic_cpa.hpp"
#include "analysis/hypothesis.hpp"
#include "analysis/trace.hpp"

namespace emask::analysis {

struct CpaConfig {
  int sbox = 0;  // target S-box of round 1, 0..7
  std::size_t window_begin = 0;
  std::size_t window_end = SIZE_MAX;
};

struct CpaResult {
  int best_guess = -1;
  double best_corr = 0.0;                    // |rho| peak of the best guess
  std::array<double, 64> corr_per_guess{};   // |rho| peak for every guess
  std::size_t traces_used = 0;

  [[nodiscard]] double margin() const;
};

class CpaAttack {
 public:
  explicit CpaAttack(const CpaConfig& config);

  /// Hamming weight (0..4) of the predicted S-box output for `guess`.
  [[nodiscard]] static int predict_weight(std::uint64_t plaintext, int sbox,
                                          int guess);

  /// Installs a batched hypothesis backend (64-entry rows; see
  /// analysis/hypothesis.hpp).  Null restores the scalar path.
  void set_provider(std::shared_ptr<HypothesisProvider> provider);

  void add_trace(std::uint64_t plaintext, const Trace& trace);
  [[nodiscard]] CpaResult solve() const;

 private:
  CpaConfig config_;
  GenericCpa engine_;
  std::shared_ptr<HypothesisProvider> provider_;
  std::vector<int> hypotheses_;
};

}  // namespace emask::analysis
