// TVLA-style non-specific leakage assessment (fixed-vs-random Welch t).
//
// The methodology the industry settled on for certifying countermeasures
// like this paper's: capture one trace population with a FIXED plaintext
// and one with RANDOM plaintexts, compute Welch's t per cycle, and flag any
// |t| above the 4.5 threshold as statistically significant leakage.  A
// perfectly masked region yields |t| = 0 on this simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/trace.hpp"
#include "util/stats.hpp"

namespace emask::analysis {

struct TvlaResult {
  double max_abs_t = 0.0;
  std::size_t worst_cycle = 0;
  std::size_t cycles_over_threshold = 0;  // |t| > kTvlaThreshold
  std::vector<double> t_per_cycle;

  static constexpr double kTvlaThreshold = 4.5;
  [[nodiscard]] bool leaks() const { return cycles_over_threshold > 0; }
};

class TvlaAssessment {
 public:
  /// `window_begin`/`window_end` restrict the assessed cycle range.
  TvlaAssessment(std::size_t window_begin = 0,
                 std::size_t window_end = SIZE_MAX)
      : begin_(window_begin), end_(window_end) {}

  void add_fixed(const Trace& trace) { add(fixed_, trace); }
  void add_random(const Trace& trace) { add(random_, trace); }

  [[nodiscard]] TvlaResult solve() const;

 private:
  void add(std::vector<util::RunningStats>& group, const Trace& trace);

  std::size_t begin_;
  std::size_t end_;
  std::size_t width_ = 0;
  std::vector<util::RunningStats> fixed_;
  std::vector<util::RunningStats> random_;
};

}  // namespace emask::analysis
