#include "analysis/generic_cpa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace emask::analysis {

std::size_t TraceWindow::admit(const Trace& trace, const char* who) {
  // A bounded window is a hard contract: a first trace too short to fill
  // [begin_, end_) must not silently narrow the window for every later
  // (full-length) trace — it gets the same rejection a short later trace
  // always got.  Only the open-ended default (end_ == SIZE_MAX, "to the
  // end of the trace") clamps, because there the first trace *defines*
  // the width.
  if (end_ != SIZE_MAX && trace.size() < end_) {
    throw std::invalid_argument(std::string(who) +
                                ": trace shorter than the window");
  }
  const std::size_t begin = std::min(begin_, trace.size());
  const std::size_t end = std::min(end_, trace.size());
  const std::size_t w = end > begin ? end - begin : 0;
  if (admitted_ == 0) {
    width_ = w;
  } else if (w < width_) {
    throw std::invalid_argument(std::string(who) +
                                ": trace shorter than the window");
  }
  ++admitted_;
  return begin;
}

void accumulate_window(const Trace& trace, std::size_t begin,
                       std::size_t width, double* sums) {
  for (std::size_t i = 0; i < width; ++i) sums[i] += trace[begin + i];
}

double margin_over_runner_up(const double* scores, std::size_t count,
                             int best_guess, double best_score) {
  double runner_up = 0.0;
  for (std::size_t g = 0; g < count; ++g) {
    if (static_cast<int>(g) == best_guess) continue;
    runner_up = std::max(runner_up, scores[g]);
  }
  // No positive runner-up means the winner is infinitely separated; +inf
  // keeps that distinguishable from a genuine zero margin (best_score 0
  // over a positive runner-up).  Reports render non-finite as "n/a" and
  // manifests serialize it as null.
  if (runner_up <= 0.0) return std::numeric_limits<double>::infinity();
  return best_score / runner_up;
}

double GenericCpaResult::margin() const {
  return margin_over_runner_up(corr_per_guess.data(), corr_per_guess.size(),
                               best_guess, best_corr);
}

GenericCpa::GenericCpa(int num_guesses, std::size_t window_begin,
                       std::size_t window_end, bool signed_correlation)
    : num_guesses_(num_guesses),
      window_(window_begin, window_end),
      signed_correlation_(signed_correlation) {
  if (num_guesses <= 0) {
    throw std::invalid_argument("GenericCpa: need at least one guess");
  }
  sum_h_.resize(static_cast<std::size_t>(num_guesses), 0.0);
  sum_h2_.resize(static_cast<std::size_t>(num_guesses), 0.0);
}

void GenericCpa::add_trace(const std::vector<int>& hypotheses,
                           const Trace& trace) {
  if (hypotheses.size() != static_cast<std::size_t>(num_guesses_)) {
    throw std::invalid_argument("GenericCpa: hypothesis count mismatch");
  }
  const std::size_t begin = window_.admit(trace, "GenericCpa");
  if (traces_ == 0) {
    sum_t_.assign(window_.width(), 0.0);
    sum_t2_.assign(window_.width(), 0.0);
    sum_ht_.assign(window_.width() * static_cast<std::size_t>(num_guesses_),
                   0.0);
  }
  ++traces_;
  for (int g = 0; g < num_guesses_; ++g) {
    const double h = hypotheses[static_cast<std::size_t>(g)];
    sum_h_[static_cast<std::size_t>(g)] += h;
    sum_h2_[static_cast<std::size_t>(g)] += h * h;
  }
  const std::size_t width = window_.width();
  for (std::size_t i = 0; i < width; ++i) {
    const double t = trace[begin + i];
    sum_t_[i] += t;
    sum_t2_[i] += t * t;
    double* row = &sum_ht_[i * static_cast<std::size_t>(num_guesses_)];
    for (int g = 0; g < num_guesses_; ++g) {
      row[g] += hypotheses[static_cast<std::size_t>(g)] * t;
    }
  }
}

std::vector<double> GenericCpa::correlation_series(int guess) const {
  if (guess < 0 || guess >= num_guesses_) {
    throw std::invalid_argument("GenericCpa: guess out of range");
  }
  const std::size_t width = window_.width();
  std::vector<double> series(width, 0.0);
  if (traces_ < 2) return series;
  const auto n = static_cast<double>(traces_);
  const double sh = sum_h_[static_cast<std::size_t>(guess)];
  const double var_h = sum_h2_[static_cast<std::size_t>(guess)] - sh * sh / n;
  if (var_h <= 0.0) return series;
  for (std::size_t i = 0; i < width; ++i) {
    const double st = sum_t_[i];
    const double var_t = sum_t2_[i] - st * st / n;
    if (var_t <= 1e-10 * sum_t2_[i]) continue;
    const double cov =
        sum_ht_[i * static_cast<std::size_t>(num_guesses_) +
                static_cast<std::size_t>(guess)] -
        sh * st / n;
    series[i] = cov / std::sqrt(var_h * var_t);
  }
  return series;
}

GenericCpaResult GenericCpa::solve() const {
  GenericCpaResult result;
  result.traces_used = traces_;
  result.corr_per_guess.assign(static_cast<std::size_t>(num_guesses_), 0.0);
  if (traces_ < 2) return result;
  const auto n = static_cast<double>(traces_);
  const std::size_t width = window_.width();
  for (int g = 0; g < num_guesses_; ++g) {
    const double sh = sum_h_[static_cast<std::size_t>(g)];
    const double var_h = sum_h2_[static_cast<std::size_t>(g)] - sh * sh / n;
    if (var_h <= 0.0) continue;
    // True max over the window, not max against a 0.0 seed: in signed
    // mode an all-negative guess must report its (negative) peak, or it
    // could never rank below a true-zero guess.
    bool any_cycle = false;
    double peak = 0.0;
    for (std::size_t i = 0; i < width; ++i) {
      const double st = sum_t_[i];
      const double var_t = sum_t2_[i] - st * st / n;
      // Relative threshold: constant-energy (masked) cycles leave only
      // floating-point cancellation residue.
      if (var_t <= 1e-10 * sum_t2_[i]) continue;
      const double cov =
          sum_ht_[i * static_cast<std::size_t>(num_guesses_) +
                  static_cast<std::size_t>(g)] -
          sh * st / n;
      const double rho = cov / std::sqrt(var_h * var_t);
      const double score = signed_correlation_ ? rho : std::abs(rho);
      if (!any_cycle || score > peak) peak = score;
      any_cycle = true;
    }
    // No cycle had variance (fully masked window): the guess is
    // unrankable and keeps the 0.0 placeholder without contending.
    if (!any_cycle) continue;
    result.corr_per_guess[static_cast<std::size_t>(g)] = peak;
    if (result.best_guess < 0 || peak > result.best_corr) {
      result.best_corr = peak;
      result.best_guess = g;
    }
  }
  return result;
}

}  // namespace emask::analysis
