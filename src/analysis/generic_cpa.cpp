#include "analysis/generic_cpa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emask::analysis {

double GenericCpaResult::margin() const {
  double runner_up = 0.0;
  for (std::size_t g = 0; g < corr_per_guess.size(); ++g) {
    if (static_cast<int>(g) == best_guess) continue;
    runner_up = std::max(runner_up, corr_per_guess[g]);
  }
  return runner_up > 0.0 ? best_corr / runner_up : 0.0;
}

GenericCpa::GenericCpa(int num_guesses, std::size_t window_begin,
                       std::size_t window_end, bool signed_correlation)
    : num_guesses_(num_guesses),
      begin_(window_begin),
      end_(window_end),
      signed_correlation_(signed_correlation) {
  if (num_guesses <= 0) {
    throw std::invalid_argument("GenericCpa: need at least one guess");
  }
  sum_h_.resize(static_cast<std::size_t>(num_guesses), 0.0);
  sum_h2_.resize(static_cast<std::size_t>(num_guesses), 0.0);
}

void GenericCpa::add_trace(const std::vector<int>& hypotheses,
                           const Trace& trace) {
  if (hypotheses.size() != static_cast<std::size_t>(num_guesses_)) {
    throw std::invalid_argument("GenericCpa: hypothesis count mismatch");
  }
  const std::size_t begin = std::min(begin_, trace.size());
  const std::size_t end = std::min(end_, trace.size());
  const std::size_t w = end > begin ? end - begin : 0;
  if (traces_ == 0) {
    width_ = w;
    sum_t_.assign(width_, 0.0);
    sum_t2_.assign(width_, 0.0);
    sum_ht_.assign(width_ * static_cast<std::size_t>(num_guesses_), 0.0);
  }
  if (w < width_) {
    throw std::invalid_argument("GenericCpa: trace shorter than the window");
  }
  ++traces_;
  for (int g = 0; g < num_guesses_; ++g) {
    const double h = hypotheses[static_cast<std::size_t>(g)];
    sum_h_[static_cast<std::size_t>(g)] += h;
    sum_h2_[static_cast<std::size_t>(g)] += h * h;
  }
  for (std::size_t i = 0; i < width_; ++i) {
    const double t = trace[begin + i];
    sum_t_[i] += t;
    sum_t2_[i] += t * t;
    double* row = &sum_ht_[i * static_cast<std::size_t>(num_guesses_)];
    for (int g = 0; g < num_guesses_; ++g) {
      row[g] += hypotheses[static_cast<std::size_t>(g)] * t;
    }
  }
}

GenericCpaResult GenericCpa::solve() const {
  GenericCpaResult result;
  result.traces_used = traces_;
  result.corr_per_guess.assign(static_cast<std::size_t>(num_guesses_), 0.0);
  if (traces_ < 2) return result;
  const auto n = static_cast<double>(traces_);
  for (int g = 0; g < num_guesses_; ++g) {
    const double sh = sum_h_[static_cast<std::size_t>(g)];
    const double var_h = sum_h2_[static_cast<std::size_t>(g)] - sh * sh / n;
    if (var_h <= 0.0) continue;
    double peak = 0.0;
    for (std::size_t i = 0; i < width_; ++i) {
      const double st = sum_t_[i];
      const double var_t = sum_t2_[i] - st * st / n;
      // Relative threshold: constant-energy (masked) cycles leave only
      // floating-point cancellation residue.
      if (var_t <= 1e-10 * sum_t2_[i]) continue;
      const double cov =
          sum_ht_[i * static_cast<std::size_t>(num_guesses_) +
                  static_cast<std::size_t>(g)] -
          sh * st / n;
      const double rho = cov / std::sqrt(var_h * var_t);
      peak = std::max(peak, signed_correlation_ ? rho : std::abs(rho));
    }
    result.corr_per_guess[static_cast<std::size_t>(g)] = peak;
    if (peak > result.best_corr) {
      result.best_corr = peak;
      result.best_guess = g;
    }
  }
  return result;
}

}  // namespace emask::analysis
