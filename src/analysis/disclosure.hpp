// Traces-to-disclosure curves: how a key-ranking attack converges.
//
// A single end-of-acquisition verdict ("guess 33 wins after 500 traces")
// hides the question defenders actually ask: *how many traces until the
// key is exposed?*  A DisclosureCurve records, at a deterministic schedule
// of trace-count checkpoints, every guess's score and rank under the
// attack statistic.  From that the traces-to-disclosure metric falls out:
// the earliest checkpoint from which the true guess holds rank 0 through
// the end of the acquisition (a guess that briefly leads at 50 traces but
// is overtaken later has not been disclosed at 50).
//
// The curve is attack-agnostic — DPA difference-of-means peaks, CPA/MLPA
// correlations and collision scores all rank the same way — and is the
// per-scenario `disclosure.csv` artifact of campaign attack runs, which
// the report layer turns into rank-evolution charts and per-policy
// traces-to-disclosure tables.
//
// Determinism: ranks break score ties by guess index, checkpoints are a
// pure function of the total trace count, and the CSV serializes doubles
// through util::JsonWriter::format_double — so the artifact is
// byte-identical across thread counts and checkpoint/resume, like every
// other campaign output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emask::analysis {

/// One sampled point of the curve: every guess's score and rank after
/// `traces` traces.
struct DisclosureCheckpoint {
  std::size_t traces = 0;
  std::vector<double> scores;  // [guess], the attack statistic
  std::vector<int> ranks;      // [guess], 0 = current best
};

class DisclosureCurve {
 public:
  explicit DisclosureCurve(std::size_t num_guesses = 64);

  /// Records a checkpoint.  `scores[g]` is the attack statistic for guess
  /// g (higher = more likely); ranks are assigned by descending score with
  /// ties broken by guess index.  Checkpoints must be added in increasing
  /// trace order.
  void add_checkpoint(std::size_t traces, const std::vector<double>& scores);

  /// The deterministic checkpoint schedule for an acquisition of `total`
  /// traces: ~`points` counts evenly spaced over [2, total], always
  /// including `total` itself.  Pure function of (total, points).
  [[nodiscard]] static std::vector<std::size_t> schedule(
      std::size_t total, std::size_t points = 10);

  /// Earliest checkpoint trace count from which `guess` holds rank 0
  /// through the last checkpoint; 0 when the guess never stabilizes at
  /// rank 0 (not disclosed within the acquisition).
  [[nodiscard]] std::size_t traces_to_disclosure(int guess) const;

  /// Rank of `guess` at the last checkpoint; -1 with no checkpoints.
  [[nodiscard]] int final_rank(int guess) const;

  [[nodiscard]] const std::vector<DisclosureCheckpoint>& checkpoints() const {
    return checkpoints_;
  }
  [[nodiscard]] std::size_t num_guesses() const { return num_guesses_; }
  [[nodiscard]] bool empty() const { return checkpoints_.empty(); }

  /// Writes the curve as CSV (`traces,guess,rank,score`), one row per
  /// (checkpoint, guess) in checkpoint-major order.
  void write_csv(const std::string& path) const;

 private:
  std::size_t num_guesses_;
  std::vector<DisclosureCheckpoint> checkpoints_;
};

}  // namespace emask::analysis
