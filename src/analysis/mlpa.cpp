#include "analysis/mlpa.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "des/des.hpp"

namespace emask::analysis {
namespace {

int parity6(int v) { return std::popcount(static_cast<unsigned>(v)) & 1; }

/// GF(2) rank of the in_masks in `set`, treating each 6-bit mask as a row.
int mask_rank(const std::vector<LinearApprox>& set) {
  std::array<int, 6> basis{};
  int rank = 0;
  for (const LinearApprox& ap : set) {
    int v = ap.in_mask;
    for (int b = 5; b >= 0; --b) {
      if (((v >> b) & 1) == 0) continue;
      if (basis[static_cast<std::size_t>(b)] == 0) {
        basis[static_cast<std::size_t>(b)] = v;
        ++rank;
        v = 0;
        break;
      }
      v ^= basis[static_cast<std::size_t>(b)];
    }
  }
  return rank;
}

bool raises_rank(std::vector<LinearApprox> set, const LinearApprox& ap) {
  const int before = mask_rank(set);
  set.push_back(ap);
  return mask_rank(set) > before;
}

}  // namespace

double sbox_linear_bias(int sbox, int in_mask, int out_mask) {
  int agree = 0;
  for (int x = 0; x < 64; ++x) {
    const int in_parity = parity6(in_mask & x);
    const int out_parity = parity6(
        out_mask & des::sbox_lookup(sbox, static_cast<std::uint8_t>(x)));
    agree += (in_parity == out_parity) ? 1 : 0;
  }
  return (static_cast<double>(agree) - 32.0) / 64.0;
}

std::vector<LinearApprox> select_approximations(int sbox,
                                                std::size_t max_count) {
  if (sbox < 0 || sbox > 7) {
    throw std::invalid_argument("select_approximations: sbox in 0..7");
  }
  if (max_count == 0) {
    throw std::invalid_argument(
        "select_approximations: need at least one approximation");
  }
  // Candidates: one approximation per multi-bit input mask — its dominant
  // single-output-bit coefficient (see the header for why other shapes are
  // blind here).  One per mask, because every (a, b) pair with the same a
  // shares the same selection function and thus the same correlation
  // series: a second out_mask adds no evidence, only a second (possibly
  // contradictory) interpretation of the same series.
  std::vector<LinearApprox> candidates;
  for (int a = 1; a < 64; ++a) {
    if (std::popcount(static_cast<unsigned>(a)) < 2) continue;
    LinearApprox ap;
    ap.sbox = sbox;
    ap.in_mask = a;
    for (int bit = 3; bit >= 0; --bit) {
      const double bias = sbox_linear_bias(sbox, a, 1 << bit);
      if (std::abs(bias) > std::abs(ap.bias)) {
        ap.out_mask = 1 << bit;
        ap.bias = bias;
      }
    }
    if (ap.bias != 0.0) candidates.push_back(ap);
  }
  // Highest |bias| first; ties resolve by (in_mask, out_mask) so the set is
  // a pure function of (sbox, max_count).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const LinearApprox& x, const LinearApprox& y) {
                     const double ax = std::abs(x.bias);
                     const double ay = std::abs(y.bias);
                     if (ax != ay) return ax > ay;
                     if (x.in_mask != y.in_mask) return x.in_mask < y.in_mask;
                     return x.out_mask < y.out_mask;
                   });
  std::vector<LinearApprox> selected;
  for (const LinearApprox& ap : candidates) {
    if (selected.size() >= max_count) break;
    selected.push_back(ap);
  }
  // Span completion: keep walking down the ranking, taking any candidate
  // whose in_mask grows the GF(2) span, until the span is all of GF(2)^6 —
  // otherwise some wrong guess would tie the true key exactly.
  for (const LinearApprox& ap : candidates) {
    if (mask_rank(selected) == 6) break;
    if (raises_rank(selected, ap)) selected.push_back(ap);
  }
  if (mask_rank(selected) != 6) {
    throw std::logic_error(
        "select_approximations: candidate in_masks do not span GF(2)^6");
  }
  return selected;
}

double MlpaResult::margin() const {
  return margin_over_runner_up(score_per_guess.data(), score_per_guess.size(),
                               best_guess, best_score);
}

MlpaAttack::MlpaAttack(const MlpaConfig& config)
    : config_(config),
      approx_(select_approximations(config.sbox, config.max_approx)),
      parities_(approx_.size()) {
  engines_.reserve(approx_.size());
  for (std::size_t j = 0; j < approx_.size(); ++j) {
    engines_.emplace_back(1, config.window_begin, config.window_end);
  }
}

void MlpaAttack::set_provider(std::shared_ptr<HypothesisProvider> provider) {
  if (provider &&
      provider->count() != static_cast<int>(approx_.size())) {
    throw std::invalid_argument(
        "MlpaAttack: provider must supply one parity per approximation");
  }
  provider_ = std::move(provider);
}

int MlpaAttack::selection_parity(std::uint64_t plaintext, int sbox,
                                 int in_mask) {
  return parity6(in_mask & des::round1_sbox_input(plaintext, sbox));
}

void MlpaAttack::add_trace(std::uint64_t plaintext, const Trace& trace) {
  if (provider_) {
    provider_->fill(plaintext, parities_);
  } else {
    const std::uint8_t six = des::round1_sbox_input(plaintext, config_.sbox);
    for (std::size_t j = 0; j < approx_.size(); ++j) {
      parities_[j] = parity6(approx_[j].in_mask & six);
    }
  }
  std::vector<int> hyp(1);
  for (std::size_t j = 0; j < approx_.size(); ++j) {
    hyp[0] = parities_[j];
    engines_[j].add_trace(hyp, trace);
  }
}

MlpaResult MlpaAttack::solve() const {
  MlpaResult result;
  // Per-output-bit coherent combining.  For each approximation, guess g
  // claims the match direction f_j(g) = parity(a_j & g) ^ (eps_j < 0); its
  // correlation series contributes (-1)^f_j(g) * rho_j(c) at every cycle.
  // Summing those signed series over all approximations that target the
  // same output bit, then taking the best cycle of the sum, makes the
  // statistic a *coherent* one: at g = k every term is positive at the
  // cycle where that bit's leakage lives, while any wrong guess flips a
  // subset of the terms and cancels at every cycle.  Reading each series
  // at its own peak cycle instead would trust single-mask peaks, and a
  // mask whose second-largest LAT coefficient has the opposite sign can
  // peak (through noise) on the *other* bit's cycle and vote backwards.
  std::vector<std::vector<double>> series(approx_.size());
  for (std::size_t j = 0; j < approx_.size(); ++j) {
    const GenericCpaResult r = engines_[j].solve();
    result.traces_used = r.traces_used;
    if (r.traces_used < 2) return result;
    series[j] = engines_[j].correlation_series(0);
  }
  const std::size_t width = series.empty() ? 0 : series[0].size();
  std::vector<double> combined(width);
  for (int g = 0; g < 64; ++g) {
    double total = 0.0;
    for (int bit = 0; bit < 4; ++bit) {
      std::fill(combined.begin(), combined.end(), 0.0);
      bool any = false;
      for (std::size_t j = 0; j < approx_.size(); ++j) {
        if (approx_[j].out_mask != (1 << bit)) continue;
        any = true;
        const int sign_bit = approx_[j].bias < 0.0 ? 1 : 0;
        const int f = (parity6(approx_[j].in_mask & g) ^ sign_bit) & 1;
        const double s = (f == 0) ? 1.0 : -1.0;
        for (std::size_t c = 0; c < width; ++c) combined[c] += s * series[j][c];
      }
      if (!any) continue;
      double best = 0.0;
      for (const double v : combined) best = std::max(best, v);
      total += best;
    }
    result.score_per_guess[static_cast<std::size_t>(g)] = total;
  }
  result.best_guess = 0;
  result.best_score = result.score_per_guess[0];
  for (int g = 1; g < 64; ++g) {
    if (result.score_per_guess[static_cast<std::size_t>(g)] >
        result.best_score) {
      result.best_score = result.score_per_guess[static_cast<std::size_t>(g)];
      result.best_guess = g;
    }
  }
  return result;
}

}  // namespace emask::analysis
