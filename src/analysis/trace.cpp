#include "analysis/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"

namespace emask::analysis {

double Trace::total_uj() const {
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum * 1e-6;  // pJ -> uJ
}

double Trace::mean_pj() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

Trace Trace::difference(const Trace& other) const {
  const std::size_t n = std::min(size(), other.size());
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = samples_[i] - other.samples_[i];
  return Trace(std::move(out));
}

Trace Trace::windowed_average(std::size_t window) const {
  if (window == 0) window = 1;
  std::vector<double> out;
  out.reserve(size() / window + 1);
  for (std::size_t begin = 0; begin < size(); begin += window) {
    const std::size_t end = std::min(size(), begin + window);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += samples_[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return Trace(std::move(out));
}

Trace Trace::slice(std::size_t begin, std::size_t end) const {
  begin = std::min(begin, size());
  end = std::min(end, size());
  if (end < begin) end = begin;
  return Trace(std::vector<double>(samples_.begin() + static_cast<long>(begin),
                                   samples_.begin() + static_cast<long>(end)));
}

double Trace::max_abs() const {
  double best = 0.0;
  for (double s : samples_) best = std::max(best, std::abs(s));
  return best;
}

Trace NoiseModel::apply(const Trace& trace) {
  std::vector<double> out(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out[i] = trace[i] + sigma_pj_ * rng_.next_gaussian();
  }
  return Trace(std::move(out));
}

void write_traces_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<const Trace*>& traces) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{"cycle"};
  header.insert(header.end(), names.begin(), names.end());
  csv.write_header(header);
  std::size_t n = 0;
  for (const Trace* t : traces) n = std::max(n, t->size());
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row{static_cast<double>(i)};
    for (const Trace* t : traces) {
      row.push_back(i < t->size() ? (*t)[i] : 0.0);
    }
    csv.write_row(row);
  }
}

}  // namespace emask::analysis
