// Correlation-enhanced collision attack (Moradi-style, adapted to DES
// round 1): no hypothetical power model at all.
//
// The public expanded-input chunk e feeding the target S-box takes 64
// values; the attack averages every trace with the same e into a class
// mean M_e.  Two classes e1 != e2 *collide* under key chunk k when
// S(e1 ^ k) == S(e2 ^ k) — the card then computes identical S-box outputs
// and their mean traces agree on every output-handling cycle.  DES S-boxes
// are 4-to-1, so each key guess g predicts a partition of the 64 classes
// into 16 cells of 4; the guess statistic is the average Pearson
// correlation (across cycles, after removing the class-independent mean
// trace shape) over the 96 predicted-collision pairs.  The true key
// predicts exactly the pairs that really collide; every wrong guess mixes
// colliding and non-colliding pairs.
//
// Because the statistic never models *how* the device leaks — only that
// equal intermediates leak equally — it transfers across power models.
// The flip side is that it needs class-mean variation to exist: on a
// masked device the class means coincide and every guess scores zero.
//
// Caveat inherited from the S-boxes' affine self-equivalences: S4 obeys
// S4(x ^ 0x2F) = ~S4(x), so its collision partition is identical for g
// and g ^ 0x2F and S-box 4 cannot be resolved by collisions alone (the
// default target is S-box 0, which has no such structure).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/generic_cpa.hpp"
#include "analysis/hypothesis.hpp"
#include "analysis/trace.hpp"

namespace emask::analysis {

struct CollisionConfig {
  int sbox = 0;  // target S-box of round 1, 0..7
  std::size_t window_begin = 0;
  std::size_t window_end = SIZE_MAX;
};

struct CollisionResult {
  int best_guess = -1;
  double best_score = 0.0;  // mean collision-pair correlation
  std::array<double, 64> score_per_guess{};
  std::size_t traces_used = 0;
  std::size_t classes_seen = 0;  // distinct e values observed (<= 64)

  [[nodiscard]] double margin() const;
};

/// Streaming collision accumulator: feed (plaintext, trace) pairs, then
/// solve.
class CollisionAttack {
 public:
  explicit CollisionAttack(const CollisionConfig& config);

  /// Installs a batched backend supplying the single input-class index e
  /// per trace (count() == 1).  Null restores the scalar path.
  void set_provider(std::shared_ptr<HypothesisProvider> provider);

  void add_trace(std::uint64_t plaintext, const Trace& trace);
  [[nodiscard]] CollisionResult solve() const;

 private:
  CollisionConfig config_;
  TraceWindow window_;
  std::shared_ptr<HypothesisProvider> provider_;
  std::vector<int> class_row_;
  std::size_t traces_ = 0;
  std::array<std::vector<double>, 64> class_sum_;  // [e][cycle]
  std::array<std::size_t, 64> class_count_{};
};

}  // namespace emask::analysis
