#include "analysis/second_order.hpp"

#include <algorithm>
#include <stdexcept>

namespace emask::analysis {

SecondOrderPreprocessor::SecondOrderPreprocessor(std::size_t window_begin,
                                                 std::size_t window_end,
                                                 std::size_t max_lag)
    : begin_(window_begin), end_(window_end), max_lag_(max_lag) {
  if (max_lag == 0) {
    throw std::invalid_argument("SecondOrderPreprocessor: max_lag >= 1");
  }
}

void SecondOrderPreprocessor::fit(const Trace& trace) {
  const std::size_t begin = std::min(begin_, trace.size());
  const std::size_t end = std::min(end_, trace.size());
  const std::size_t w = end > begin ? end - begin : 0;
  if (fitted_ == 0) {
    width_ = w;
    mean_.assign(width_, 0.0);
  }
  if (w < width_) {
    throw std::invalid_argument("SecondOrderPreprocessor: short trace");
  }
  ++fitted_;
  // Streaming mean update.
  for (std::size_t i = 0; i < width_; ++i) {
    mean_[i] += (trace[begin + i] - mean_[i]) / static_cast<double>(fitted_);
  }
}

Trace SecondOrderPreprocessor::combine(const Trace& trace) const {
  if (fitted_ == 0) {
    throw std::logic_error("SecondOrderPreprocessor: fit() first");
  }
  const std::size_t begin = std::min(begin_, trace.size());
  std::vector<double> out;
  const std::size_t lags = std::min(max_lag_, width_ ? width_ - 1 : 0);
  out.reserve(width_ * lags);
  for (std::size_t lag = 1; lag <= lags; ++lag) {
    for (std::size_t i = 0; i + lag < width_; ++i) {
      const double a = trace[begin + i] - mean_[i];
      const double b = trace[begin + i + lag] - mean_[i + lag];
      out.push_back(a * b);
    }
  }
  return Trace(std::move(out));
}

}  // namespace emask::analysis
