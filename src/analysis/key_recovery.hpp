// From a recovered round subkey to the full DES key.
//
// A first-round attack yields the 48 bits of K1.  PC-2 discarded 8 of the
// 56 effective key bits on the way to K1, so the attacker finishes with a
// 2^8 search over the missing bits, validated against one known
// plaintext/ciphertext pair — the standard DPA end game the paper's
// countermeasure is meant to prevent.
#pragma once

#include <cstdint>
#include <optional>

namespace emask::analysis {

/// Positions (1-based FIPS key bit numbers, parity bits excluded) of the
/// original key bits that K1 exposes, per K1 bit index 0..47.
/// kpos = k1_source_key_bit(i) means K1 bit i equals key bit kpos.
[[nodiscard]] int k1_source_key_bit(int k1_bit_index);

/// Reconstructs the full 64-bit key (odd parity) from a recovered K1 and
/// one known plaintext/ciphertext pair.  Returns nullopt if no assignment
/// of the 8 unexposed bits encrypts `plaintext` to `ciphertext` — i.e. the
/// recovered K1 is wrong.
[[nodiscard]] std::optional<std::uint64_t> reconstruct_key(
    std::uint64_t recovered_k1, std::uint64_t plaintext,
    std::uint64_t ciphertext);

}  // namespace emask::analysis
