// Simple Power Analysis: structure recovery from a single trace.
//
// The paper's Fig. 6 shows that one energy trace of the unmasked DES
// "reveals clearly the 16 rounds of operation".  This module quantifies
// that: an autocorrelation-based period detector recovers the round length
// and count from a single trace, which is precisely what an SPA attacker
// does to locate operations before inducing glitches or mounting DPA.
#pragma once

#include <cstddef>

#include "analysis/trace.hpp"

namespace emask::analysis {

struct SpaResult {
  std::size_t best_period = 0;   // cycles per repeating unit (one round)
  double periodicity = 0.0;      // autocorrelation at best_period, [-1, 1]
  int repetitions = 0;           // how many whole periods fit in the trace
};

/// Finds the strongest repeating period of `trace` in
/// [min_period, max_period] by normalized autocorrelation.
[[nodiscard]] SpaResult detect_rounds(const Trace& trace,
                                      std::size_t min_period,
                                      std::size_t max_period);

/// Normalized autocorrelation of the trace at a fixed lag.
[[nodiscard]] double autocorrelation(const Trace& trace, std::size_t lag);

}  // namespace emask::analysis
