#include "analysis/dpa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "analysis/generic_cpa.hpp"
#include "des/des.hpp"

namespace emask::analysis {

double DpaResult::margin() const {
  return margin_over_runner_up(peak_per_guess.data(), peak_per_guess.size(),
                               best_guess, best_peak);
}

DpaAttack::DpaAttack(const DpaConfig& config)
    : config_(config), window_(config.window_begin, config.window_end) {
  if (config.sbox < 0 || config.sbox > 7 || config.bit < 0 || config.bit > 3) {
    throw std::invalid_argument("DpaAttack: sbox in 0..7, bit in 0..3");
  }
  group1_sum_.resize(64);
  group1_count_.resize(64, 0);
  predicted_.resize(64);
}

void DpaAttack::set_provider(std::shared_ptr<HypothesisProvider> provider) {
  if (provider && provider->count() != 64) {
    throw std::invalid_argument("DpaAttack: provider must supply 64 guesses");
  }
  provider_ = std::move(provider);
}

int DpaAttack::predict_bit(std::uint64_t plaintext, int sbox, int bit,
                           int guess) {
  const std::uint8_t six = des::round1_sbox_input(plaintext, sbox);
  const std::uint8_t out = des::sbox_lookup(
      sbox, static_cast<std::uint8_t>(six ^ static_cast<std::uint8_t>(guess)));
  return (out >> (3 - bit)) & 1;
}

int DpaAttack::true_subkey_chunk(std::uint64_t key, int sbox) {
  const des::KeySchedule ks = des::key_schedule(key);
  return static_cast<int>((ks.subkeys[0] >> (42 - 6 * sbox)) & 0x3F);
}

void DpaAttack::add_trace(std::uint64_t plaintext, const Trace& trace) {
  const std::size_t begin = window_.admit(trace, "DpaAttack");
  if (traces_ == 0) {
    total_sum_.assign(window_.width(), 0.0);
    for (auto& g : group1_sum_) g.assign(window_.width(), 0.0);
  }
  ++traces_;
  accumulate_window(trace, begin, window_.width(), total_sum_.data());
  if (provider_) {
    provider_->fill(plaintext, predicted_);
  } else {
    for (int guess = 0; guess < 64; ++guess) {
      predicted_[static_cast<std::size_t>(guess)] =
          predict_bit(plaintext, config_.sbox, config_.bit, guess);
    }
  }
  for (int guess = 0; guess < 64; ++guess) {
    if (predicted_[static_cast<std::size_t>(guess)] == 1) {
      ++group1_count_[static_cast<std::size_t>(guess)];
      accumulate_window(trace, begin, window_.width(),
                        group1_sum_[static_cast<std::size_t>(guess)].data());
    }
  }
}

DpaResult DpaAttack::solve() const {
  DpaResult result;
  result.traces_used = traces_;
  if (traces_ == 0) return result;
  const std::size_t width = window_.width();
  for (int guess = 0; guess < 64; ++guess) {
    const std::size_t n1 = group1_count_[static_cast<std::size_t>(guess)];
    const std::size_t n0 = traces_ - n1;
    if (n1 == 0 || n0 == 0) continue;  // degenerate partition
    const auto& sums = group1_sum_[static_cast<std::size_t>(guess)];
    double peak = 0.0;
    std::vector<double> dom(width);
    for (std::size_t i = 0; i < width; ++i) {
      const double mean1 = sums[i] / static_cast<double>(n1);
      const double mean0 =
          (total_sum_[i] - sums[i]) / static_cast<double>(n0);
      dom[i] = mean1 - mean0;
      peak = std::max(peak, std::abs(dom[i]));
    }
    result.peak_per_guess[static_cast<std::size_t>(guess)] = peak;
    if (peak > result.best_peak) {
      result.best_peak = peak;
      result.best_guess = guess;
      result.dom_best = std::move(dom);
    }
  }
  return result;
}

}  // namespace emask::analysis
