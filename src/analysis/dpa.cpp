#include "analysis/dpa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "des/des.hpp"

namespace emask::analysis {

double DpaResult::margin() const {
  double runner_up = 0.0;
  for (int g = 0; g < 64; ++g) {
    if (g == best_guess) continue;
    runner_up = std::max(runner_up, peak_per_guess[static_cast<std::size_t>(g)]);
  }
  return runner_up > 0.0 ? best_peak / runner_up : 0.0;
}

DpaAttack::DpaAttack(const DpaConfig& config) : config_(config) {
  if (config.sbox < 0 || config.sbox > 7 || config.bit < 0 || config.bit > 3) {
    throw std::invalid_argument("DpaAttack: sbox in 0..7, bit in 0..3");
  }
  group1_sum_.resize(64);
  group1_count_.resize(64, 0);
}

int DpaAttack::predict_bit(std::uint64_t plaintext, int sbox, int bit,
                           int guess) {
  const std::uint64_t ip = des::initial_permutation(plaintext);
  const auto r0 = static_cast<std::uint32_t>(ip & 0xFFFFFFFFu);
  const std::uint64_t er = des::expand(r0);
  const auto six =
      static_cast<std::uint8_t>((er >> (42 - 6 * sbox)) & 0x3F);
  const std::uint8_t out = des::sbox_lookup(
      sbox, static_cast<std::uint8_t>(six ^ static_cast<std::uint8_t>(guess)));
  return (out >> (3 - bit)) & 1;
}

int DpaAttack::true_subkey_chunk(std::uint64_t key, int sbox) {
  const des::KeySchedule ks = des::key_schedule(key);
  return static_cast<int>((ks.subkeys[0] >> (42 - 6 * sbox)) & 0x3F);
}

void DpaAttack::add_trace(std::uint64_t plaintext, const Trace& trace) {
  const std::size_t begin = std::min(config_.window_begin, trace.size());
  const std::size_t end = std::min(config_.window_end, trace.size());
  const std::size_t w = end > begin ? end - begin : 0;
  if (traces_ == 0) {
    width_ = w;
    total_sum_.assign(width_, 0.0);
    for (auto& g : group1_sum_) g.assign(width_, 0.0);
  }
  if (w < width_) {
    throw std::invalid_argument("DpaAttack: trace shorter than the window");
  }
  ++traces_;
  for (std::size_t i = 0; i < width_; ++i) total_sum_[i] += trace[begin + i];
  for (int guess = 0; guess < 64; ++guess) {
    if (predict_bit(plaintext, config_.sbox, config_.bit, guess) == 1) {
      auto& sums = group1_sum_[static_cast<std::size_t>(guess)];
      ++group1_count_[static_cast<std::size_t>(guess)];
      for (std::size_t i = 0; i < width_; ++i) sums[i] += trace[begin + i];
    }
  }
}

DpaResult DpaAttack::solve() const {
  DpaResult result;
  result.traces_used = traces_;
  if (traces_ == 0) return result;
  for (int guess = 0; guess < 64; ++guess) {
    const std::size_t n1 = group1_count_[static_cast<std::size_t>(guess)];
    const std::size_t n0 = traces_ - n1;
    if (n1 == 0 || n0 == 0) continue;  // degenerate partition
    const auto& sums = group1_sum_[static_cast<std::size_t>(guess)];
    double peak = 0.0;
    std::vector<double> dom(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      const double mean1 = sums[i] / static_cast<double>(n1);
      const double mean0 =
          (total_sum_[i] - sums[i]) / static_cast<double>(n0);
      dom[i] = mean1 - mean0;
      peak = std::max(peak, std::abs(dom[i]));
    }
    result.peak_per_guess[static_cast<std::size_t>(guess)] = peak;
    if (peak > result.best_peak) {
      result.best_peak = peak;
      result.best_guess = guess;
      result.dom_best = std::move(dom);
    }
  }
  return result;
}

}  // namespace emask::analysis
