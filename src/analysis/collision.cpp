#include "analysis/collision.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "des/des.hpp"

namespace emask::analysis {

double CollisionResult::margin() const {
  return margin_over_runner_up(score_per_guess.data(), score_per_guess.size(),
                               best_guess, best_score);
}

CollisionAttack::CollisionAttack(const CollisionConfig& config)
    : config_(config),
      window_(config.window_begin, config.window_end),
      class_row_(1) {
  if (config.sbox < 0 || config.sbox > 7) {
    throw std::invalid_argument("CollisionAttack: sbox in 0..7");
  }
}

void CollisionAttack::set_provider(
    std::shared_ptr<HypothesisProvider> provider) {
  if (provider && provider->count() != 1) {
    throw std::invalid_argument(
        "CollisionAttack: provider must supply one class index");
  }
  provider_ = std::move(provider);
}

void CollisionAttack::add_trace(std::uint64_t plaintext, const Trace& trace) {
  const std::size_t begin = window_.admit(trace, "CollisionAttack");
  std::uint8_t e;
  if (provider_) {
    provider_->fill(plaintext, class_row_);
    e = static_cast<std::uint8_t>(class_row_[0] & 0x3F);
  } else {
    e = des::round1_sbox_input(plaintext, config_.sbox);
  }
  auto& sums = class_sum_[e];
  if (sums.empty()) sums.assign(window_.width(), 0.0);
  ++traces_;
  ++class_count_[e];
  accumulate_window(trace, begin, window_.width(), sums.data());
}

CollisionResult CollisionAttack::solve() const {
  CollisionResult result;
  result.traces_used = traces_;
  const std::size_t width = window_.width();
  for (const std::size_t count : class_count_) {
    if (count > 0) ++result.classes_seen;
  }
  if (result.classes_seen < 2 || width == 0) return result;

  // Class means, then remove the per-cycle mean across observed classes:
  // what is left of M'_e is only the part of the trace that *depends on e*
  // — the common program shape (identical for every class) cancels, so the
  // pairwise correlations below compare data-dependent behavior only.
  std::array<std::vector<double>, 64> mean;
  std::vector<double> grand(width, 0.0);
  for (int e = 0; e < 64; ++e) {
    if (class_count_[static_cast<std::size_t>(e)] == 0) continue;
    const auto n =
        static_cast<double>(class_count_[static_cast<std::size_t>(e)]);
    auto& m = mean[static_cast<std::size_t>(e)];
    m.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      m[i] = class_sum_[static_cast<std::size_t>(e)][i] / n;
      grand[i] += m[i];
    }
  }
  const auto classes = static_cast<double>(result.classes_seen);
  for (std::size_t i = 0; i < width; ++i) grand[i] /= classes;
  std::array<double, 64> norm{};  // centered means' L2 norms
  for (int e = 0; e < 64; ++e) {
    auto& m = mean[static_cast<std::size_t>(e)];
    if (m.empty()) continue;
    double mean_of_m = 0.0;
    for (std::size_t i = 0; i < width; ++i) {
      m[i] -= grand[i];
      mean_of_m += m[i];
    }
    mean_of_m /= static_cast<double>(width);
    double ss = 0.0;
    for (std::size_t i = 0; i < width; ++i) {
      m[i] -= mean_of_m;  // Pearson: center across cycles too
      ss += m[i] * m[i];
    }
    norm[static_cast<std::size_t>(e)] = std::sqrt(ss);
  }

  // All C(64,2) pairwise correlations once; every guess then averages 96
  // table lookups.  A pair with a (near-)zero-variation member — a masked
  // device levels all classes — contributes 0, never NaN.
  std::array<std::array<double, 64>, 64> rho{};
  for (int e1 = 0; e1 < 64; ++e1) {
    const auto& m1 = mean[static_cast<std::size_t>(e1)];
    if (m1.empty()) continue;
    for (int e2 = e1 + 1; e2 < 64; ++e2) {
      const auto& m2 = mean[static_cast<std::size_t>(e2)];
      if (m2.empty()) continue;
      const double nn = norm[static_cast<std::size_t>(e1)] *
                        norm[static_cast<std::size_t>(e2)];
      if (nn <= 0.0) continue;
      double dot = 0.0;
      for (std::size_t i = 0; i < width; ++i) dot += m1[i] * m2[i];
      const double r = dot / nn;
      rho[static_cast<std::size_t>(e1)][static_cast<std::size_t>(e2)] = r;
      rho[static_cast<std::size_t>(e2)][static_cast<std::size_t>(e1)] = r;
    }
  }

  for (int g = 0; g < 64; ++g) {
    // Partition classes by the S-box output this guess predicts.
    std::array<std::vector<int>, 16> cells;
    for (int e = 0; e < 64; ++e) {
      if (class_count_[static_cast<std::size_t>(e)] == 0) continue;
      const std::uint8_t v = des::sbox_lookup(
          config_.sbox, static_cast<std::uint8_t>(e ^ g));
      cells[v].push_back(e);
    }
    double sum = 0.0;
    std::size_t pairs = 0;
    for (const auto& cell : cells) {
      for (std::size_t i = 0; i < cell.size(); ++i) {
        for (std::size_t j = i + 1; j < cell.size(); ++j) {
          sum += rho[static_cast<std::size_t>(cell[i])]
                    [static_cast<std::size_t>(cell[j])];
          ++pairs;
        }
      }
    }
    const double score = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
    result.score_per_guess[static_cast<std::size_t>(g)] = score;
    if (result.best_guess < 0 || score > result.best_score) {
      result.best_score = score;
      result.best_guess = g;
    }
  }
  return result;
}

}  // namespace emask::analysis
