#include "analysis/disclosure.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace emask::analysis {

DisclosureCurve::DisclosureCurve(std::size_t num_guesses)
    : num_guesses_(num_guesses) {
  if (num_guesses == 0) {
    throw std::invalid_argument("DisclosureCurve: need at least one guess");
  }
}

void DisclosureCurve::add_checkpoint(std::size_t traces,
                                     const std::vector<double>& scores) {
  if (scores.size() != num_guesses_) {
    throw std::invalid_argument("DisclosureCurve: score count mismatch");
  }
  if (!checkpoints_.empty() && traces <= checkpoints_.back().traces) {
    throw std::invalid_argument(
        "DisclosureCurve: checkpoints must be added in increasing trace "
        "order");
  }
  DisclosureCheckpoint cp;
  cp.traces = traces;
  cp.scores = scores;
  // Rank by descending score; equal scores rank by guess index so the
  // ordering (and the CSV) is a pure function of the scores.
  std::vector<std::size_t> order(num_guesses_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  cp.ranks.assign(num_guesses_, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    cp.ranks[order[pos]] = static_cast<int>(pos);
  }
  checkpoints_.push_back(std::move(cp));
}

std::vector<std::size_t> DisclosureCurve::schedule(std::size_t total,
                                                   std::size_t points) {
  std::vector<std::size_t> counts;
  if (total < 2) return counts;
  if (points == 0) points = 1;
  for (std::size_t i = 1; i <= points; ++i) {
    // Evenly spaced, rounded; correlation statistics need >= 2 traces.
    const std::size_t count = (total * i + points / 2) / points;
    if (count < 2) continue;
    if (counts.empty() || count != counts.back()) counts.push_back(count);
  }
  if (counts.empty() || counts.back() != total) counts.push_back(total);
  return counts;
}

std::size_t DisclosureCurve::traces_to_disclosure(int guess) const {
  const auto g = static_cast<std::size_t>(guess);
  if (guess < 0 || g >= num_guesses_) return 0;
  std::size_t disclosed_at = 0;
  for (const DisclosureCheckpoint& cp : checkpoints_) {
    if (cp.ranks[g] == 0) {
      if (disclosed_at == 0) disclosed_at = cp.traces;
    } else {
      disclosed_at = 0;  // overtaken: earlier leads don't count
    }
  }
  return disclosed_at;
}

int DisclosureCurve::final_rank(int guess) const {
  const auto g = static_cast<std::size_t>(guess);
  if (checkpoints_.empty() || guess < 0 || g >= num_guesses_) return -1;
  return checkpoints_.back().ranks[g];
}

void DisclosureCurve::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_header({"traces", "guess", "rank", "score"});
  for (const DisclosureCheckpoint& cp : checkpoints_) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      csv.write_row({std::to_string(cp.traces), std::to_string(g),
                     std::to_string(cp.ranks[g]),
                     util::JsonWriter::format_double(cp.scores[g])});
    }
  }
  csv.flush();
}

}  // namespace emask::analysis
