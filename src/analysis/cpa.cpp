#include "analysis/cpa.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "des/des.hpp"

namespace emask::analysis {

double CpaResult::margin() const {
  return margin_over_runner_up(corr_per_guess.data(), corr_per_guess.size(),
                               best_guess, best_corr);
}

CpaAttack::CpaAttack(const CpaConfig& config)
    : config_(config),
      engine_(64, config.window_begin, config.window_end),
      hypotheses_(64) {
  if (config.sbox < 0 || config.sbox > 7) {
    throw std::invalid_argument("CpaAttack: sbox in 0..7");
  }
}

void CpaAttack::set_provider(std::shared_ptr<HypothesisProvider> provider) {
  if (provider && provider->count() != 64) {
    throw std::invalid_argument("CpaAttack: provider must supply 64 guesses");
  }
  provider_ = std::move(provider);
}

int CpaAttack::predict_weight(std::uint64_t plaintext, int sbox, int guess) {
  const std::uint8_t six = des::round1_sbox_input(plaintext, sbox);
  const std::uint8_t out = des::sbox_lookup(
      sbox, static_cast<std::uint8_t>(six ^ static_cast<std::uint8_t>(guess)));
  return std::popcount(static_cast<unsigned>(out));
}

void CpaAttack::add_trace(std::uint64_t plaintext, const Trace& trace) {
  if (provider_) {
    provider_->fill(plaintext, hypotheses_);
  } else {
    for (int g = 0; g < 64; ++g) {
      hypotheses_[static_cast<std::size_t>(g)] =
          predict_weight(plaintext, config_.sbox, g);
    }
  }
  engine_.add_trace(hypotheses_, trace);
}

CpaResult CpaAttack::solve() const {
  const GenericCpaResult r = engine_.solve();
  CpaResult out;
  out.best_guess = r.best_guess;
  out.best_corr = r.best_corr;
  out.traces_used = r.traces_used;
  for (int g = 0; g < 64; ++g) {
    out.corr_per_guess[static_cast<std::size_t>(g)] =
        r.corr_per_guess[static_cast<std::size_t>(g)];
  }
  return out;
}

}  // namespace emask::analysis
