#include "analysis/trace_io.hpp"

#include <cstring>
#include <stdexcept>

namespace emask::analysis {
namespace {

constexpr char kMagic[4] = {'E', 'M', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;
// magic + version + n_traces + trace_len
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8 + 8;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const std::string& path) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("trace set: truncated header in " + path);
  }
  return value;
}

}  // namespace

void save_trace_set(const std::string& path, const TraceSet& set) {
  const std::size_t len = set.traces.empty() ? 0 : set.traces.front().size();
  for (const Trace& t : set.traces) {
    if (t.size() != len) {
      throw std::runtime_error("trace set: traces must share a length");
    }
  }
  if (set.inputs.size() != set.traces.size()) {
    throw std::runtime_error("trace set: inputs/traces size mismatch");
  }
  TraceSetWriter writer(path, set.traces.size());
  for (std::size_t i = 0; i < set.traces.size(); ++i) {
    writer.append(set.inputs[i], set.traces[i]);
  }
  writer.close();
}

TraceSet load_trace_set(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace set: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("trace set: bad magic in " + path +
                             " (not an EMTS file)");
  }
  const auto version = read_pod<std::uint32_t>(in, path);
  if (version != kVersion) {
    throw std::runtime_error("trace set: unsupported version " +
                             std::to_string(version) + " in " + path +
                             " (this build reads version " +
                             std::to_string(kVersion) + ")");
  }
  const auto n = read_pod<std::uint64_t>(in, path);
  const auto len = read_pod<std::uint64_t>(in, path);

  // Validate the header against the file's actual size before trusting it
  // to size allocations: a corrupted count would otherwise either OOM the
  // loader or hand the attack code a short set that looks complete.
  const std::uint64_t row_bytes = 8 + len * sizeof(float);
  if (len != 0 && row_bytes / sizeof(float) < len) {
    throw std::runtime_error("trace set: corrupt trace length in " + path);
  }
  const std::uint64_t expected = kHeaderBytes + n * row_bytes;
  if (n != 0 && (expected - kHeaderBytes) / n != row_bytes) {
    throw std::runtime_error("trace set: corrupt trace count in " + path);
  }
  if (file_bytes < expected) {
    throw std::runtime_error(
        "trace set: truncated file " + path + " (header promises " +
        std::to_string(expected) + " bytes, file has " +
        std::to_string(file_bytes) + ")");
  }
  if (file_bytes > expected) {
    throw std::runtime_error(
        "trace set: trailing bytes in " + path + " (header promises " +
        std::to_string(expected) + " bytes, file has " +
        std::to_string(file_bytes) + ")");
  }

  TraceSet set;
  set.inputs.reserve(n);
  set.traces.reserve(n);
  std::vector<float> row(len);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto input = read_pod<std::uint64_t>(in, path);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(len * sizeof(float)));
    if (!in) throw std::runtime_error("trace set: truncated file " + path);
    std::vector<double> samples(row.begin(), row.end());
    set.add(input, Trace(std::move(samples)));
  }
  return set;
}

TraceSetWriter::TraceSetWriter(const std::string& path, std::uint64_t n_traces)
    : path_(path), out_(path, std::ios::binary), expected_(n_traces) {
  if (!out_) throw std::runtime_error("trace set: cannot open " + path);
}

TraceSetWriter::~TraceSetWriter() noexcept {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an incomplete file is detected on load
    // by the size check.  Call close() explicitly to observe the error.
  }
}

void TraceSetWriter::write_header(std::uint64_t trace_len) {
  trace_len_ = trace_len;
  out_.write(kMagic, 4);
  write_pod(out_, kVersion);
  write_pod(out_, expected_);
  write_pod(out_, trace_len_);
  row_.resize(trace_len_);
  header_written_ = true;
}

void TraceSetWriter::append(std::uint64_t input, const Trace& trace) {
  if (closed_) {
    throw std::runtime_error("trace set: append after close on " + path_);
  }
  if (!header_written_) write_header(trace.size());
  if (trace.size() != trace_len_) {
    throw std::runtime_error("trace set: traces must share a length (got " +
                             std::to_string(trace.size()) + ", expected " +
                             std::to_string(trace_len_) + ")");
  }
  if (written_ == expected_) {
    throw std::runtime_error("trace set: more traces than promised for " +
                             path_);
  }
  write_pod(out_, input);
  for (std::size_t j = 0; j < trace_len_; ++j) {
    row_[j] = static_cast<float>(trace[j]);
  }
  out_.write(reinterpret_cast<const char*>(row_.data()),
             static_cast<std::streamsize>(trace_len_ * sizeof(float)));
  if (!out_) throw std::runtime_error("trace set: write failed for " + path_);
  ++written_;
}

void TraceSetWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (!header_written_) write_header(0);
  out_.flush();
  if (!out_) throw std::runtime_error("trace set: write failed for " + path_);
  out_.close();
  if (written_ != expected_) {
    throw std::runtime_error(
        "trace set: promised " + std::to_string(expected_) +
        " traces for " + path_ + " but " + std::to_string(written_) +
        " were appended");
  }
}

}  // namespace emask::analysis
