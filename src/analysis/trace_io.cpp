#include "analysis/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace emask::analysis {
namespace {

constexpr char kMagic[4] = {'E', 'M', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace set: truncated file");
  return value;
}

}  // namespace

void save_trace_set(const std::string& path, const TraceSet& set) {
  const std::size_t len = set.traces.empty() ? 0 : set.traces.front().size();
  for (const Trace& t : set.traces) {
    if (t.size() != len) {
      throw std::runtime_error("trace set: traces must share a length");
    }
  }
  if (set.inputs.size() != set.traces.size()) {
    throw std::runtime_error("trace set: inputs/traces size mismatch");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace set: cannot open " + path);
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(set.traces.size()));
  write_pod(out, static_cast<std::uint64_t>(len));
  std::vector<float> row(len);
  for (std::size_t i = 0; i < set.traces.size(); ++i) {
    write_pod(out, set.inputs[i]);
    for (std::size_t j = 0; j < len; ++j) {
      row[j] = static_cast<float>(set.traces[i][j]);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(len * sizeof(float)));
  }
  if (!out) throw std::runtime_error("trace set: write failed for " + path);
}

TraceSet load_trace_set(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace set: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("trace set: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("trace set: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<std::uint64_t>(in);
  const auto len = read_pod<std::uint64_t>(in);
  TraceSet set;
  std::vector<float> row(len);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto input = read_pod<std::uint64_t>(in);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(len * sizeof(float)));
    if (!in) throw std::runtime_error("trace set: truncated file");
    std::vector<double> samples(row.begin(), row.end());
    set.add(input, Trace(std::move(samples)));
  }
  return set;
}

}  // namespace emask::analysis
