// Algorithm-agnostic correlation power analysis engine.
//
// The caller supplies, per trace, a hypothesis value (e.g. a predicted
// Hamming weight) for every candidate guess; the engine maintains the
// sufficient statistics for the Pearson correlation between hypothesis and
// measured energy at every cycle, per guess.  DES (64 subkey guesses) and
// AES (256 key-byte guesses) attacks are thin wrappers over this, and the
// shared TraceWindow / accumulate_window / margin helpers below carry the
// windowed-accumulation idiom into the mean-based attacks (DPA, collision)
// without a third copy of the inner loops.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/trace.hpp"

namespace emask::analysis {

/// Shared trace-window bookkeeping for every streaming attack.  A bounded
/// [begin, end) range is a hard contract: every trace (including the
/// first) must cover it or admit() throws — a short first trace must not
/// silently narrow the window every later full-length trace is analyzed
/// over.  The open-ended default (end = SIZE_MAX) runs "to the end of the
/// trace": the first trace fixes the width, later traces must cover it.
class TraceWindow {
 public:
  TraceWindow(std::size_t begin = 0, std::size_t end = SIZE_MAX)
      : begin_(begin), end_(end) {}

  /// Admits one trace: returns the absolute cycle index the window starts
  /// at.  Throws if the trace cannot cover the bounded range (or, for the
  /// open-ended default, the width fixed by the first trace).
  std::size_t admit(const Trace& trace, const char* who);

  /// Window length in cycles; 0 until the first trace is admitted.
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t admitted() const { return admitted_; }

 private:
  std::size_t begin_;
  std::size_t end_;
  std::size_t width_ = 0;
  std::size_t admitted_ = 0;
};

/// sums[i] += trace[begin + i] for i in [0, width): the windowed
/// accumulation inner loop shared by the mean-based attacks.
void accumulate_window(const Trace& trace, std::size_t begin,
                       std::size_t width, double* sums);

/// Winner's score over the runner-up's (>1 = clean recovery).  When no
/// runner-up scores positive the winner is infinitely separated and the
/// margin is +inf — distinguishable from a genuine zero margin (zero best
/// score over a positive runner-up).  Reports render non-finite margins
/// as "n/a"; manifest JSON serializes them as null.
[[nodiscard]] double margin_over_runner_up(const double* scores,
                                           std::size_t count, int best_guess,
                                           double best_score);

struct GenericCpaResult {
  int best_guess = -1;
  double best_corr = 0.0;
  std::vector<double> corr_per_guess;
  std::size_t traces_used = 0;

  /// Winner's |rho| over the runner-up's (>1 = clean recovery).
  [[nodiscard]] double margin() const;
};

class GenericCpa {
 public:
  /// `signed_correlation`: score each guess by its maximum *signed* rho
  /// instead of |rho|.  When the power model's polarity is known (more
  /// asserted bits => more energy, as here), this resolves complement
  /// ambiguities — e.g. DES S-box 4's linear structure S4(x ^ 2F) = ~S4(x)
  /// makes a key guess and its complement-partner tie under |rho|.
  GenericCpa(int num_guesses, std::size_t window_begin = 0,
             std::size_t window_end = SIZE_MAX,
             bool signed_correlation = false);

  /// `hypotheses[g]` is this trace's predicted leakage for guess g; must
  /// have exactly num_guesses entries.
  void add_trace(const std::vector<int>& hypotheses, const Trace& trace);

  [[nodiscard]] GenericCpaResult solve() const;
  [[nodiscard]] int num_guesses() const { return num_guesses_; }

  /// Per-cycle Pearson rho for one guess over the admitted window
  /// (constant-energy cycles report 0).  Lets callers reason about *where*
  /// a hypothesis correlates — MLPA reads the signed rho at the peak-|rho|
  /// cycle, where solve()'s window-max would blur sign information.
  [[nodiscard]] std::vector<double> correlation_series(int guess) const;

 private:
  int num_guesses_;
  TraceWindow window_;
  bool signed_correlation_;
  std::size_t traces_ = 0;
  std::vector<double> sum_t_;
  std::vector<double> sum_t2_;
  std::vector<double> sum_h_;   // [guess]
  std::vector<double> sum_h2_;  // [guess]
  std::vector<double> sum_ht_;  // [cycle * num_guesses + guess]
};

}  // namespace emask::analysis
