// Algorithm-agnostic correlation power analysis engine.
//
// The caller supplies, per trace, a hypothesis value (e.g. a predicted
// Hamming weight) for every candidate guess; the engine maintains the
// sufficient statistics for the Pearson correlation between hypothesis and
// measured energy at every cycle, per guess.  DES (64 subkey guesses) and
// AES (256 key-byte guesses) attacks are thin wrappers over this.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/trace.hpp"

namespace emask::analysis {

struct GenericCpaResult {
  int best_guess = -1;
  double best_corr = 0.0;
  std::vector<double> corr_per_guess;
  std::size_t traces_used = 0;

  /// Winner's |rho| over the runner-up's (>1 = clean recovery).
  [[nodiscard]] double margin() const;
};

class GenericCpa {
 public:
  /// `signed_correlation`: score each guess by its maximum *signed* rho
  /// instead of |rho|.  When the power model's polarity is known (more
  /// asserted bits => more energy, as here), this resolves complement
  /// ambiguities — e.g. DES S-box 4's linear structure S4(x ^ 2F) = ~S4(x)
  /// makes a key guess and its complement-partner tie under |rho|.
  GenericCpa(int num_guesses, std::size_t window_begin = 0,
             std::size_t window_end = SIZE_MAX,
             bool signed_correlation = false);

  /// `hypotheses[g]` is this trace's predicted leakage for guess g; must
  /// have exactly num_guesses entries.
  void add_trace(const std::vector<int>& hypotheses, const Trace& trace);

  [[nodiscard]] GenericCpaResult solve() const;
  [[nodiscard]] int num_guesses() const { return num_guesses_; }

 private:
  int num_guesses_;
  std::size_t begin_;
  std::size_t end_;
  bool signed_correlation_;
  std::size_t traces_ = 0;
  std::size_t width_ = 0;
  std::vector<double> sum_t_;
  std::vector<double> sum_t2_;
  std::vector<double> sum_h_;   // [guess]
  std::vector<double> sum_h2_;  // [guess]
  std::vector<double> sum_ht_;  // [cycle * num_guesses + guess]
};

}  // namespace emask::analysis
