// Power traces: the attacker's view of the device.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace emask::analysis {

/// Energy per clock cycle, in picojoules — what the paper plots in all of
/// Figures 6-12.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<double> samples) : samples_(std::move(samples)) {}

  void push(double pj) { samples_.push_back(pj); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Total energy of the trace, in microjoules.
  [[nodiscard]] double total_uj() const;

  /// Mean energy per cycle, in picojoules.
  [[nodiscard]] double mean_pj() const;

  /// Pointwise difference (this - other) over the common prefix — the
  /// "difference between energy consumption profiles" of Figures 7-11.
  [[nodiscard]] Trace difference(const Trace& other) const;

  /// Non-overlapping window averages (Fig. 6 plots the profile "every 100
  /// cycles" to make the 16 rounds visible).
  [[nodiscard]] Trace windowed_average(std::size_t window) const;

  /// Sub-trace [begin, end).
  [[nodiscard]] Trace slice(std::size_t begin, std::size_t end) const;

  /// Largest absolute sample value.
  [[nodiscard]] double max_abs() const;

 private:
  std::vector<double> samples_;
};

/// Additive white Gaussian measurement noise, emulating oscilloscope /
/// current-probe imperfection.  The paper's simulator is noise-free (and
/// argues that is conservative); the noise model lets us study DPA
/// sample-count behaviour.
class NoiseModel {
 public:
  NoiseModel(double sigma_pj, std::uint64_t seed)
      : sigma_pj_(sigma_pj), rng_(seed) {}

  [[nodiscard]] Trace apply(const Trace& trace);

 private:
  double sigma_pj_;
  util::Rng rng_;
};

/// Writes traces as CSV (cycle, value ...), one column per trace.
void write_traces_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<const Trace*>& traces);

}  // namespace emask::analysis
