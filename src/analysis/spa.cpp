#include "analysis/spa.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace emask::analysis {

double autocorrelation(const Trace& trace, std::size_t lag) {
  if (lag == 0 || lag >= trace.size()) return 0.0;
  const std::size_t n = trace.size() - lag;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = trace[i];
    b[i] = trace[i + lag];
  }
  return util::pearson(a, b);
}

SpaResult detect_rounds(const Trace& trace, std::size_t min_period,
                        std::size_t max_period) {
  SpaResult result;
  max_period = std::min(max_period, trace.size() / 2);
  for (std::size_t p = min_period; p <= max_period; ++p) {
    const double r = autocorrelation(trace, p);
    if (r > result.periodicity) {
      result.periodicity = r;
      result.best_period = p;
    }
  }
  if (result.best_period > 0) {
    result.repetitions =
        static_cast<int>(trace.size() / result.best_period);
  }
  return result;
}

}  // namespace emask::analysis
