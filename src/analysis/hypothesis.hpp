// Hypothesis-provider seam: a batched backend can take over the
// per-trace hypothesis computation of any streaming attack.
//
// The scalar attacks compute their hypothesis row inline (64 sbox_lookup
// calls per CPA trace, one per guess).  A provider produces the whole row
// at once — the bitsliced backend in src/bitslice evaluates the S-box as
// 64 one-bit lanes and caches rows per distinct public input — while the
// attack's statistics code stays backend-agnostic.  Providers must be
// *pure* in the plaintext (same plaintext -> same row) so results are
// bit-identical to the scalar path; equivalence is enforced by
// tests/bitslice_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

namespace emask::analysis {

class HypothesisProvider {
 public:
  virtual ~HypothesisProvider() = default;

  /// Entries per row; the attack validates it against its own layout
  /// (64 guesses for CPA/DPA, one per approximation for MLPA, the single
  /// input-class index for collisions).
  [[nodiscard]] virtual int count() const = 0;

  /// Fills out[0..count) with the hypothesis row for `plaintext`.
  /// `out` is pre-sized by the attack; providers must not resize it.
  virtual void fill(std::uint64_t plaintext, std::vector<int>& out) = 0;
};

}  // namespace emask::analysis
