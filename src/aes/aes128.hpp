// Golden AES-128 (FIPS 197).
//
// Third workload for the masking framework (the paper's related work cites
// power analysis of the AES candidates [Biham-Shamir]).  AES is the
// interesting stress case for the *secure indexing* instruction: its
// S-box and xtime lookups are all table accesses at secret-derived
// addresses, exactly the pattern the paper secures for the DES S-boxes.
#pragma once

#include <array>
#include <cstdint>

namespace emask::aes {

using Block = std::array<std::uint8_t, 16>;
using Key = std::array<std::uint8_t, 16>;

/// 11 round keys of 16 bytes each, flattened.
struct KeySchedule {
  std::array<std::uint8_t, 176> bytes;
};

[[nodiscard]] KeySchedule expand_key(const Key& key);

[[nodiscard]] Block encrypt_block(const Block& plaintext, const Key& key);
[[nodiscard]] Block decrypt_block(const Block& ciphertext, const Key& key);

/// Forward S-box (exposed: tables for the assembly generator and the
/// attacker's hypothesis engine).
[[nodiscard]] std::uint8_t sbox(std::uint8_t x);
[[nodiscard]] std::uint8_t inv_sbox(std::uint8_t x);

/// GF(2^8) doubling (xtime), the MixColumns primitive.
[[nodiscard]] std::uint8_t xtime(std::uint8_t x);

/// GF(2^8) multiplication (used by InvMixColumns: factors 9, 11, 13, 14).
[[nodiscard]] std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

}  // namespace emask::aes
