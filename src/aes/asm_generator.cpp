#include "aes/asm_generator.hpp"

#include <sstream>
#include <stdexcept>

namespace emask::aes {
namespace {

void emit_byte_words(std::ostringstream& os, const char* label,
                     const std::uint8_t* bytes, int count) {
  os << label << ":\n";
  for (int i = 0; i < count; ++i) {
    os << (i % 16 == 0 ? "  .word " : ", ")
       << static_cast<unsigned>(bytes[i]);
    if (i % 16 == 15 || i + 1 == count) os << '\n';
  }
}

void poke_byte_words(assembler::Program& program, const char* symbol,
                     const std::uint8_t* bytes, unsigned count) {
  const assembler::DataSymbol* s = program.find_symbol(symbol);
  if (s == nullptr || s->size_bytes < count * 4) {
    throw std::invalid_argument(std::string("aes: no symbol ") + symbol);
  }
  for (unsigned i = 0; i < count; ++i) {
    program.poke_word(s->address + i * 4, bytes[i]);
  }
}

/// Emits one MixColumns column (offsets are byte offsets of the column's
/// four state words).  Reads srbuf, writes state.  $s0 = state base,
/// $s1 = srbuf base, $s4 = xtime table base.
///
///   t = a0^a1^a2^a3
///   out_i = a_i ^ t ^ xtime(a_i ^ a_{i+1 mod 4})
void emit_mix_column(std::ostringstream& os, int column) {
  const int base = column * 16;  // 4 words of 4 bytes
  // a0..a3 -> $t0..$t3 (all secret-derived: secure loads).
  for (int r = 0; r < 4; ++r) {
    os << "  lw   $t" << r << ", " << (base + r * 4) << "($s1)\n";
  }
  os << "  xor  $t4, $t0, $t1\n";
  os << "  xor  $t4, $t4, $t2\n";
  os << "  xor  $t4, $t4, $t3\n";  // t
  for (int r = 0; r < 4; ++r) {
    const int next = (r + 1) % 4;
    os << "  xor  $t5, $t" << r << ", $t" << next << "\n";  // a_r ^ a_next
    os << "  sll  $t5, $t5, 2\n";                           // table offset
    os << "  addu $t5, $s4, $t5\n";  // secret-derived address
    os << "  lw   $t5, 0($t5)\n";    // xtime(...) — secure indexing
    os << "  xor  $t5, $t5, $t4\n";
    os << "  xor  $t5, $t5, $t" << r << "\n";
    os << "  sw   $t5, " << (base + r * 4) << "($s0)\n";
  }
}

}  // namespace

std::string generate_aes_asm(const Key& key, const Block& plaintext,
                             const AesAsmOptions& options) {
  std::ostringstream os;
  os << "# AES-128 encryption, byte-per-word layout (generated)\n";
  os << ".data\n";
  emit_byte_words(os, "key", key.data(), 16);
  if (options.secret_key) os << ".secret key\n";
  emit_byte_words(os, "plain", plaintext.data(), 16);
  os << "cipher:  .space 64\n";
  if (options.declassify_output) os << ".declassified cipher\n";
  os << "state:   .space 64\n";
  os << "srbuf:   .space 64\n";   // ShiftRows output
  os << "rk:      .space 704\n";  // 176 round-key bytes
  os << "temp4:   .space 16\n";   // key-expansion word
  os << "aes_i:   .space 4\n";    // loop counters (-O0 style)
  os << "aes_w:   .space 4\n";
  os << "aes_r:   .space 4\n";

  // S-box, xtime and Rcon tables (word per byte value).
  std::array<std::uint8_t, 256> sbox_bytes, xtime_bytes;
  for (int i = 0; i < 256; ++i) {
    sbox_bytes[static_cast<std::size_t>(i)] =
        sbox(static_cast<std::uint8_t>(i));
    xtime_bytes[static_cast<std::size_t>(i)] =
        xtime(static_cast<std::uint8_t>(i));
  }
  emit_byte_words(os, "sbox_tab", sbox_bytes.data(), 256);
  emit_byte_words(os, "xtime_tab", xtime_bytes.data(), 256);
  if (options.decrypt) {
    std::array<std::uint8_t, 256> inv_sbox_bytes, g9, g11, g13, g14;
    for (int i = 0; i < 256; ++i) {
      const auto b = static_cast<std::uint8_t>(i);
      inv_sbox_bytes[static_cast<std::size_t>(i)] = inv_sbox(b);
      g9[static_cast<std::size_t>(i)] = gf_mul(b, 9);
      g11[static_cast<std::size_t>(i)] = gf_mul(b, 11);
      g13[static_cast<std::size_t>(i)] = gf_mul(b, 13);
      g14[static_cast<std::size_t>(i)] = gf_mul(b, 14);
    }
    emit_byte_words(os, "isbox_tab", inv_sbox_bytes.data(), 256);
    emit_byte_words(os, "g9_tab", g9.data(), 256);
    emit_byte_words(os, "g11_tab", g11.data(), 256);
    emit_byte_words(os, "g13_tab", g13.data(), 256);
    emit_byte_words(os, "g14_tab", g14.data(), 256);
    // Inverse ShiftRows source map: out[i] = in[isr[i]].
    os << "isr_tab:\n  .word ";
    for (int i = 0; i < 16; ++i) {
      const int r = i % 4, c = i / 4;
      os << (i ? ", " : "") << (r + 4 * ((c - r + 4) % 4)) * 4;
    }
    os << "\n";
  }
  std::array<std::uint8_t, 10> rcon_bytes;
  std::uint8_t rcon = 1;
  for (auto& b : rcon_bytes) {
    b = rcon;
    rcon = xtime(rcon);
  }
  emit_byte_words(os, "rcon_tab", rcon_bytes.data(), 10);
  // ShiftRows source map, as byte offsets: out[r+4c] = in[r + 4((c+r)%4)].
  os << "sr_tab:\n  .word ";
  for (int i = 0; i < 16; ++i) {
    const int r = i % 4, c = i / 4;
    os << (i ? ", " : "") << (r + 4 * ((c + r) % 4)) * 4;
  }
  os << "\n";

  os << "\n.text\nmain:\n";
  os << "  la   $gp, aes_i\n";
  os << "  la   $s0, state\n";
  os << "  la   $s1, srbuf\n";
  os << "  la   $s2, rk\n";
  os << "  la   $s3, sbox_tab\n";
  os << "  la   $s4, xtime_tab\n";
  os << "  la   $s5, temp4\n";

  os << "# round key 0 = the key itself\n";
  os << "  la   $t6, key\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "rk0_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $t6, $t8\n";
  os << "  lw   $t1, 0($t0)\n";       // key byte (secret)
  os << "  addu $t2, $s2, $t8\n";
  os << "  sw   $t1, 0($t2)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, rk0_loop\n";

  os << "# key expansion: words w = 4..43\n";
  os << "  li   $t9, 4\n";
  os << "  sw   $t9, 4($gp)\n";
  os << "kexp_loop:\n";
  os << "  lw   $t9, 4($gp)\n";
  os << "# temp[j] = rk[4(w-1)+j]\n";
  os << "  sll  $t8, $t9, 4\n";       // 16 bytes per key word
  os << "  addu $t0, $s2, $t8\n";
  os << "  addiu $t0, $t0, -16\n";    // &rk[4(w-1)]
  for (int j = 0; j < 4; ++j) {
    os << "  lw   $t1, " << j * 4 << "($t0)\n";
    os << "  sw   $t1, " << j * 4 << "($s5)\n";
  }
  os << "# every 4th word: rotate, substitute, fold in Rcon\n";
  os << "  andi $t1, $t9, 3\n";
  os << "  bne  $t1, $zero, kexp_noperm\n";
  // temp -> (sbox[t1]^rcon, sbox[t2], sbox[t3], sbox[t0])
  os << "  lw   $t0, 0($s5)\n";       // old temp[0] (saved in $t7)
  os << "  move $t7, $t0\n";
  for (int j = 0; j < 4; ++j) {
    const int src = (j + 1) % 4;
    if (src == 0) {
      os << "  move $t1, $t7\n";  // wrapped-around original temp[0]
    } else {
      os << "  lw   $t1, " << src * 4 << "($s5)\n";
    }
    os << "  sll  $t1, $t1, 2\n";
    os << "  addu $t1, $s3, $t1\n";
    os << "  lw   $t1, 0($t1)\n";     // sbox lookup (secure indexing)
    if (j == 0) {
      os << "  lw   $t2, 4($gp)\n";   // w
      os << "  srl  $t2, $t2, 2\n";
      os << "  addiu $t2, $t2, -1\n";  // rcon index (public)
      os << "  sll  $t2, $t2, 2\n";
      os << "  la   $t3, rcon_tab\n";
      os << "  addu $t3, $t3, $t2\n";
      os << "  lw   $t3, 0($t3)\n";   // rcon (public value)
      os << "  xor  $t1, $t1, $t3\n";
    }
    os << "  sw   $t1, " << j * 4 << "($s5)\n";
  }
  os << "kexp_noperm:\n";
  os << "# rk[4w+j] = rk[4(w-4)+j] ^ temp[j]\n";
  os << "  lw   $t9, 4($gp)\n";
  os << "  sll  $t8, $t9, 4\n";
  os << "  addu $t0, $s2, $t8\n";     // &rk[4w]
  for (int j = 0; j < 4; ++j) {
    os << "  lw   $t1, " << (j * 4 - 64) << "($t0)\n";  // rk[4(w-4)+j]
    os << "  lw   $t2, " << j * 4 << "($s5)\n";
    os << "  xor  $t1, $t1, $t2\n";
    os << "  sw   $t1, " << j * 4 << "($t0)\n";
  }
  os << "  lw   $t9, 4($gp)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 4($gp)\n";
  os << "  li   $k1, 44\n";
  os << "  bne  $t9, $k1, kexp_loop\n";

  if (options.decrypt) {
    os << "# initial AddRoundKey with rk[10]: state[i] = plain[i] ^ rk[160+i]\n";
    os << "  la   $t6, plain\n";
    os << "  la   $a0, g9_tab\n";
    os << "  la   $a1, g11_tab\n";
    os << "  la   $a2, g13_tab\n";
    os << "  la   $a3, g14_tab\n";
    os << "  sw   $zero, 0($gp)\n";
    os << "ark10_loop:\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  addu $t0, $t6, $t8\n";
    os << "  lw   $t1, 0($t0)\n";
    os << "  addu $t2, $s2, $t8\n";
    os << "  lw   $t3, 640($t2)\n";
    os << "  xor  $t1, $t1, $t3\n";
    os << "  addu $t4, $s0, $t8\n";
    os << "  sw   $t1, 0($t4)\n";
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, 16\n";
    os << "  bne  $t9, $k1, ark10_loop\n";

    os << "# rounds r = 9 down to 1\n";
    os << "  li   $t9, 9\n";
    os << "  sw   $t9, 8($gp)\n";
    os << "dround_loop:\n";
    os << "# InvShiftRows: srbuf[i] = state[isr_tab[i]]\n";
    os << "  la   $t6, isr_tab\n";
    os << "  sw   $zero, 0($gp)\n";
    os << "disr_loop:\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  addu $t0, $t6, $t8\n";
    os << "  lw   $t1, 0($t0)\n";
    os << "  addu $t1, $s0, $t1\n";
    os << "  lw   $t2, 0($t1)\n";
    os << "  addu $t3, $s1, $t8\n";
    os << "  sw   $t2, 0($t3)\n";
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, 16\n";
    os << "  bne  $t9, $k1, disr_loop\n";
    os << "# InvSubBytes (srbuf, in place) + AddRoundKey rk[r]\n";
    os << "  la   $t6, isbox_tab\n";
    os << "  lw   $t9, 8($gp)\n";
    os << "  sll  $t7, $t9, 6\n";
    os << "  addu $t7, $s2, $t7\n";
    os << "  sw   $zero, 0($gp)\n";
    os << "dsub_loop:\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  addu $t0, $s1, $t8\n";
    os << "  lw   $t1, 0($t0)\n";
    os << "  sll  $t1, $t1, 2\n";
    os << "  addu $t1, $t6, $t1\n";
    os << "  lw   $t1, 0($t1)\n";       // secure indexing
    os << "  addu $t2, $t7, $t8\n";
    os << "  lw   $t3, 0($t2)\n";
    os << "  xor  $t1, $t1, $t3\n";
    os << "  sw   $t1, 0($t0)\n";
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, 16\n";
    os << "  bne  $t9, $k1, dsub_loop\n";
    os << "# InvMixColumns (srbuf -> state) via the g-tables\n";
    for (int c = 0; c < 4; ++c) {
      const int base = c * 16;
      for (int r = 0; r < 4; ++r) {
        os << "  lw   $t" << r << ", " << (base + r * 4) << "($s1)\n";
      }
      static const int kFactors[4][4] = {{14, 11, 13, 9},
                                         {9, 14, 11, 13},
                                         {13, 9, 14, 11},
                                         {11, 13, 9, 14}};
      static const char* kTableReg[15] = {};
      for (int row = 0; row < 4; ++row) {
        for (int j = 0; j < 4; ++j) {
          const int f = kFactors[row][j];
          const char* tab = f == 9 ? "$a0" : f == 11 ? "$a1"
                            : f == 13 ? "$a2" : "$a3";
          os << "  sll  $t5, $t" << j << ", 2\n";
          os << "  addu $t5, " << tab << ", $t5\n";
          os << "  lw   $t5, 0($t5)\n";   // secure indexing
          if (j == 0) {
            os << "  move $t4, $t5\n";
          } else {
            os << "  xor  $t4, $t4, $t5\n";
          }
        }
        os << "  sw   $t4, " << (base + row * 4) << "($s0)\n";
      }
      (void)kTableReg;
    }
    os << "  lw   $t9, 8($gp)\n";
    os << "  addiu $t9, $t9, -1\n";
    os << "  sw   $t9, 8($gp)\n";
    os << "  bne  $t9, $zero, dround_loop\n";

    os << "# final: InvShiftRows, InvSubBytes, AddRoundKey rk[0] -> cipher\n";
    os << "  la   $t6, isr_tab\n";
    os << "  sw   $zero, 0($gp)\n";
    os << "fisr_loop:\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  addu $t0, $t6, $t8\n";
    os << "  lw   $t1, 0($t0)\n";
    os << "  addu $t1, $s0, $t1\n";
    os << "  lw   $t2, 0($t1)\n";
    os << "  addu $t3, $s1, $t8\n";
    os << "  sw   $t2, 0($t3)\n";
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, 16\n";
    os << "  bne  $t9, $k1, fisr_loop\n";
    os << "  la   $t6, isbox_tab\n";
    os << "  la   $t5, cipher\n";
    os << "  sw   $zero, 0($gp)\n";
    os << "dout_loop:\n";
    os << "  lw   $t9, 0($gp)\n";
    os << "  sll  $t8, $t9, 2\n";
    os << "  addu $t0, $s1, $t8\n";
    os << "  lw   $t1, 0($t0)\n";
    os << "  sll  $t1, $t1, 2\n";
    os << "  addu $t1, $t6, $t1\n";
    os << "  lw   $t1, 0($t1)\n";
    os << "  addu $t2, $s2, $t8\n";
    os << "  lw   $t3, 0($t2)\n";       // rk[0] bytes
    os << "  xor  $t1, $t1, $t3\n";
    os << "  addu $t4, $t5, $t8\n";
    os << "  sw   $t1, 0($t4)\n";       // recovered plaintext: public
    os << "  addiu $t9, $t9, 1\n";
    os << "  sw   $t9, 0($gp)\n";
    os << "  li   $k1, 16\n";
    os << "  bne  $t9, $k1, dout_loop\n";
    os << "  halt\n";
    return os.str();
  }

  os << "# initial AddRoundKey: state[i] = plain[i] ^ rk[i]\n";
  os << "  la   $t6, plain\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "ark0_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $t6, $t8\n";
  os << "  lw   $t1, 0($t0)\n";       // plaintext byte (public)
  os << "  addu $t2, $s2, $t8\n";
  os << "  lw   $t3, 0($t2)\n";       // key byte (secret)
  os << "  xor  $t1, $t1, $t3\n";
  os << "  addu $t4, $s0, $t8\n";
  os << "  sw   $t1, 0($t4)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, ark0_loop\n";

  os << "# rounds 1..9\n";
  os << "  li   $t9, 1\n";
  os << "  sw   $t9, 8($gp)\n";
  os << "round_loop:\n";
  os << "# SubBytes (in place)\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "sub_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $s0, $t8\n";
  os << "  lw   $t1, 0($t0)\n";
  os << "  sll  $t1, $t1, 2\n";
  os << "  addu $t1, $s3, $t1\n";
  os << "  lw   $t1, 0($t1)\n";       // sbox (secure indexing)
  os << "  sw   $t1, 0($t0)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, sub_loop\n";
  os << "# ShiftRows: srbuf[i] = state[sr_tab[i]]\n";
  os << "  la   $t6, sr_tab\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "sr_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $t6, $t8\n";
  os << "  lw   $t1, 0($t0)\n";       // source offset (public)
  os << "  addu $t1, $s0, $t1\n";
  os << "  lw   $t2, 0($t1)\n";
  os << "  addu $t3, $s1, $t8\n";
  os << "  sw   $t2, 0($t3)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, sr_loop\n";
  os << "# MixColumns (srbuf -> state)\n";
  for (int c = 0; c < 4; ++c) emit_mix_column(os, c);
  os << "# AddRoundKey: state[i] ^= rk[16r + i]\n";
  os << "  lw   $t9, 8($gp)\n";
  os << "  sll  $t7, $t9, 6\n";       // 64 bytes per round key
  os << "  addu $t7, $s2, $t7\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "ark_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $s0, $t8\n";
  os << "  lw   $t1, 0($t0)\n";
  os << "  addu $t2, $t7, $t8\n";
  os << "  lw   $t3, 0($t2)\n";
  os << "  xor  $t1, $t1, $t3\n";
  os << "  sw   $t1, 0($t0)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, ark_loop\n";
  os << "  lw   $t9, 8($gp)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 8($gp)\n";
  os << "  li   $k1, 10\n";
  os << "  bne  $t9, $k1, round_loop\n";

  os << "# final round: SubBytes, ShiftRows, AddRoundKey -> cipher\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "fsub_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $s0, $t8\n";
  os << "  lw   $t1, 0($t0)\n";
  os << "  sll  $t1, $t1, 2\n";
  os << "  addu $t1, $s3, $t1\n";
  os << "  lw   $t1, 0($t1)\n";
  os << "  sw   $t1, 0($t0)\n";
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, fsub_loop\n";
  os << "  la   $t6, sr_tab\n";
  os << "  la   $t5, cipher\n";
  os << "  sw   $zero, 0($gp)\n";
  os << "fout_loop:\n";
  os << "  lw   $t9, 0($gp)\n";
  os << "  sll  $t8, $t9, 2\n";
  os << "  addu $t0, $t6, $t8\n";
  os << "  lw   $t1, 0($t0)\n";       // ShiftRows source offset
  os << "  addu $t1, $s0, $t1\n";
  os << "  lw   $t2, 0($t1)\n";       // shifted state byte (secret-derived)
  os << "  addu $t3, $s2, $t8\n";
  os << "  lw   $t3, 640($t3)\n";     // rk[160 + i]
  os << "  xor  $t2, $t2, $t3\n";
  os << "  addu $t4, $t5, $t8\n";
  os << "  sw   $t2, 0($t4)\n";       // ciphertext byte: public, insecure
  os << "  addiu $t9, $t9, 1\n";
  os << "  sw   $t9, 0($gp)\n";
  os << "  li   $k1, 16\n";
  os << "  bne  $t9, $k1, fout_loop\n";
  os << "  halt\n";
  return os.str();
}

void poke_key(assembler::Program& program, const Key& key) {
  poke_byte_words(program, "key", key.data(), 16);
}

void poke_plaintext(assembler::Program& program, const Block& plaintext) {
  poke_byte_words(program, "plain", plaintext.data(), 16);
}

Block read_cipher(const sim::DataMemory& memory,
                  const assembler::Program& program) {
  const assembler::DataSymbol* s = program.find_symbol("cipher");
  if (s == nullptr || s->size_bytes < 64) {
    throw std::invalid_argument("aes: no cipher symbol");
  }
  Block out;
  for (unsigned i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(memory.load_word(s->address + i * 4));
  }
  return out;
}

}  // namespace emask::aes
