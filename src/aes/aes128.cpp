#include "aes/aes128.hpp"

namespace emask::aes {
namespace {

/// S-box tables generated from the GF(2^8) definition at startup (and
/// validated against the FIPS 197 known-answer vectors in the test suite) —
/// no 256-entry constant block to mistype.
struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  Tables() {
    const auto rotl8 = [](std::uint8_t x, int n) {
      return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
    };
    std::uint8_t p = 1, q = 1;
    do {
      // p runs over all nonzero field elements (multiply by 3);
      // q tracks its inverse (divide by 3).
      p = static_cast<std::uint8_t>(p ^ (p << 1) ^ ((p & 0x80) ? 0x1B : 0));
      q ^= static_cast<std::uint8_t>(q << 1);
      q ^= static_cast<std::uint8_t>(q << 2);
      q ^= static_cast<std::uint8_t>(q << 4);
      if (q & 0x80) q ^= 0x09;
      const std::uint8_t s = static_cast<std::uint8_t>(
          q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4) ^ 0x63);
      sbox[p] = s;
      inv_sbox[s] = p;
    } while (p != 1);
    sbox[0] = 0x63;
    inv_sbox[0x63] = 0;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) { return gf_mul(a, b); }

void add_round_key(Block& s, const KeySchedule& ks, int round) {
  for (int i = 0; i < 16; ++i) {
    s[static_cast<std::size_t>(i)] ^=
        ks.bytes[static_cast<std::size_t>(round * 16 + i)];
  }
}

void sub_bytes(Block& s) {
  for (auto& b : s) b = sbox(b);
}

void inv_sub_bytes(Block& s) {
  for (auto& b : s) b = inv_sbox(b);
}

// State layout: s[r + 4c] (column-major, FIPS Fig. 3).
void shift_rows(Block& s) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[static_cast<std::size_t>(r + 4 * c)] =
          s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
  s = out;
}

void inv_shift_rows(Block& s) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
          s[static_cast<std::size_t>(r + 4 * c)];
    }
  }
  s = out;
}

void mix_columns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t t = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    col[0] = static_cast<std::uint8_t>(a0 ^ t ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    col[1] = static_cast<std::uint8_t>(a1 ^ t ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    col[2] = static_cast<std::uint8_t>(a2 ^ t ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    col[3] = static_cast<std::uint8_t>(a3 ^ t ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

void inv_mix_columns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

}  // namespace

std::uint8_t sbox(std::uint8_t x) { return tables().sbox[x]; }
std::uint8_t inv_sbox(std::uint8_t x) { return tables().inv_sbox[x]; }

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) out ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return out;
}

KeySchedule expand_key(const Key& key) {
  KeySchedule ks;
  for (int i = 0; i < 16; ++i) ks.bytes[static_cast<std::size_t>(i)] = key[static_cast<std::size_t>(i)];
  std::uint8_t rcon = 1;
  for (int w = 4; w < 44; ++w) {
    std::array<std::uint8_t, 4> temp;
    for (int j = 0; j < 4; ++j) {
      temp[static_cast<std::size_t>(j)] =
          ks.bytes[static_cast<std::size_t>(4 * (w - 1) + j)];
    }
    if (w % 4 == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox(temp[1]) ^ rcon);
      temp[1] = sbox(temp[2]);
      temp[2] = sbox(temp[3]);
      temp[3] = sbox(t0);
      rcon = xtime(rcon);
    }
    for (int j = 0; j < 4; ++j) {
      ks.bytes[static_cast<std::size_t>(4 * w + j)] = static_cast<std::uint8_t>(
          ks.bytes[static_cast<std::size_t>(4 * (w - 4) + j)] ^
          temp[static_cast<std::size_t>(j)]);
    }
  }
  return ks;
}

Block encrypt_block(const Block& plaintext, const Key& key) {
  const KeySchedule ks = expand_key(key);
  Block s = plaintext;
  add_round_key(s, ks, 0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, ks, round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, ks, 10);
  return s;
}

Block decrypt_block(const Block& ciphertext, const Key& key) {
  const KeySchedule ks = expand_key(key);
  Block s = ciphertext;
  add_round_key(s, ks, 10);
  inv_shift_rows(s);
  inv_sub_bytes(s);
  for (int round = 9; round >= 1; --round) {
    add_round_key(s, ks, round);
    inv_mix_columns(s);
    inv_shift_rows(s);
    inv_sub_bytes(s);
  }
  add_round_key(s, ks, 0);
  return s;
}

}  // namespace emask::aes
