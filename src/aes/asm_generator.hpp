// Generates an AES-128 encryption program in the target assembly language.
//
// Byte-per-word data layout (the AES analogue of the paper's bit-per-word
// DES): every state/key byte lives in its own 32-bit word, S-box and xtime
// are 256-entry word tables indexed by secret-derived bytes — the *secure
// indexing* pattern the paper introduces for the DES S-boxes, exercised
// here at AES scale (200 S-box lookups + 144 xtime lookups + full key
// expansion per block).
#pragma once

#include <cstdint>
#include <string>

#include "aes/aes128.hpp"
#include "assembler/program.hpp"
#include "sim/memory.hpp"

namespace emask::aes {

struct AesAsmOptions {
  bool secret_key = true;          // emit `.secret key`
  bool declassify_output = true;   // emit `.declassified cipher`
  /// Generate the inverse cipher.  Symbol convention is unchanged: `plain`
  /// is the input block (here: the ciphertext) and `cipher` the output
  /// (here: the recovered plaintext), so poke_plaintext/read_cipher work
  /// for both directions.
  bool decrypt = false;
};

[[nodiscard]] std::string generate_aes_asm(const Key& key,
                                           const Block& plaintext,
                                           const AesAsmOptions& options = {});

void poke_key(assembler::Program& program, const Key& key);
void poke_plaintext(assembler::Program& program, const Block& plaintext);
[[nodiscard]] Block read_cipher(const sim::DataMemory& memory,
                                const assembler::Program& program);

}  // namespace emask::aes
