#include "bitslice/providers.hpp"

#include <stdexcept>
#include <string>

#include "bitslice/des_round1.hpp"

namespace emask::bitslice {
namespace {

void check_out(const std::vector<int>& out, std::size_t want,
               const char* who) {
  if (out.size() != want) {
    throw std::invalid_argument(std::string(who) +
                                ": output row size mismatch");
  }
}

}  // namespace

CpaProvider::CpaProvider(int sbox) : sbox_(sbox) {
  (void)round1_source_bit(sbox, 0);  // validates sbox
}

void CpaProvider::fill(std::uint64_t plaintext, std::vector<int>& out) {
  check_out(out, 64, "CpaProvider");
  const std::uint8_t six = round1_six(plaintext, sbox_);
  auto& row = rows_[six];
  if (!cached_[six]) {
    cpa_hypothesis_row(sbox_, six, row);
    cached_[six] = true;
  }
  for (int g = 0; g < 64; ++g) {
    out[static_cast<std::size_t>(g)] = row[static_cast<std::size_t>(g)];
  }
}

DpaProvider::DpaProvider(int sbox, int bit) : sbox_(sbox), bit_(bit) {
  if (bit < 0 || bit > 3) {
    throw std::invalid_argument("DpaProvider: bit in 0..3");
  }
  (void)round1_source_bit(sbox, 0);  // validates sbox
}

void DpaProvider::fill(std::uint64_t plaintext, std::vector<int>& out) {
  check_out(out, 64, "DpaProvider");
  const std::uint8_t six = round1_six(plaintext, sbox_);
  auto& row = rows_[six];
  if (!cached_[six]) {
    dpa_hypothesis_row(sbox_, bit_, six, row);
    cached_[six] = true;
  }
  for (int g = 0; g < 64; ++g) {
    out[static_cast<std::size_t>(g)] = row[static_cast<std::size_t>(g)];
  }
}

MlpaProvider::MlpaProvider(int sbox, std::vector<int> in_masks)
    : sbox_(sbox) {
  (void)round1_source_bit(sbox, 0);  // validates sbox
  parity_planes_.reserve(in_masks.size());
  for (const int mask : in_masks) {
    parity_planes_.push_back(selection_parity_plane(mask));
  }
}

void MlpaProvider::fill(std::uint64_t plaintext, std::vector<int>& out) {
  check_out(out, parity_planes_.size(), "MlpaProvider");
  const std::uint8_t six = round1_six(plaintext, sbox_);
  for (std::size_t j = 0; j < parity_planes_.size(); ++j) {
    out[j] = static_cast<int>((parity_planes_[j] >> six) & 1);
  }
}

CollisionProvider::CollisionProvider(int sbox) : sbox_(sbox) {
  (void)round1_source_bit(sbox, 0);  // validates sbox
}

void CollisionProvider::fill(std::uint64_t plaintext,
                             std::vector<int>& out) {
  check_out(out, 1, "CollisionProvider");
  out[0] = round1_six(plaintext, sbox_);
}

}  // namespace emask::bitslice
