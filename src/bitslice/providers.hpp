// analysis::HypothesisProvider implementations backed by the bitsliced
// DES round-1 generators.
//
// Each provider keys a row cache on the 6-bit public expanded-input chunk
// e: there are only 64 distinct values, and one sliced evaluation fills
// the entire 64-guess row for an e, so a long capture does 64 sliced
// S-box evaluations total where the scalar path does 64 lookups *per
// trace*.  Rows are plain int copies after the first hit — identical
// values to the scalar predict_* functions, verified bit-for-bit in
// tests/bitslice_test.cpp.
//
// Providers are not thread-safe; campaign scenarios accumulate traces
// in-order on one thread (BatchRunner reorders behind the seam).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/hypothesis.hpp"
#include "bitslice/slice.hpp"

namespace emask::bitslice {

/// row[g] = popcount(S(e ^ g)): CpaAttack's hypothesis row.
class CpaProvider : public analysis::HypothesisProvider {
 public:
  explicit CpaProvider(int sbox);
  [[nodiscard]] int count() const override { return 64; }
  void fill(std::uint64_t plaintext, std::vector<int>& out) override;

 private:
  int sbox_;
  std::array<bool, 64> cached_{};
  std::array<std::array<int, 64>, 64> rows_{};  // [e][guess]
};

/// row[g] = target output bit of S(e ^ g): DpaAttack's partition row.
class DpaProvider : public analysis::HypothesisProvider {
 public:
  DpaProvider(int sbox, int bit);
  [[nodiscard]] int count() const override { return 64; }
  void fill(std::uint64_t plaintext, std::vector<int>& out) override;

 private:
  int sbox_;
  int bit_;
  std::array<bool, 64> cached_{};
  std::array<std::array<int, 64>, 64> rows_{};  // [e][guess]
};

/// row[j] = parity(in_mask_j & e): MlpaAttack's selection parities, one
/// entry per approximation.  The per-mask parity tables are evaluated for
/// all 64 e values at once via selection_parity_plane.
class MlpaProvider : public analysis::HypothesisProvider {
 public:
  MlpaProvider(int sbox, std::vector<int> in_masks);
  [[nodiscard]] int count() const override {
    return static_cast<int>(parity_planes_.size());
  }
  void fill(std::uint64_t plaintext, std::vector<int>& out) override;

 private:
  int sbox_;
  std::vector<Word> parity_planes_;  // [approx]; bit e = parity(mask & e)
};

/// row[0] = e itself: CollisionAttack's input-class index.
class CollisionProvider : public analysis::HypothesisProvider {
 public:
  explicit CollisionProvider(int sbox);
  [[nodiscard]] int count() const override { return 1; }
  void fill(std::uint64_t plaintext, std::vector<int>& out) override;

 private:
  int sbox_;
};

}  // namespace emask::bitslice
