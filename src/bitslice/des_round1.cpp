#include "bitslice/des_round1.hpp"

#include <stdexcept>

#include "des/des.hpp"

namespace emask::bitslice {
namespace {

struct SboxTables {
  // tt[s][b] bit x = bit b of S_s(x).
  std::uint64_t tt[8][4];
  // src[s][i] = plaintext bit feeding bit i of round1_sbox_input(pt, s).
  int src[8][6];
};

SboxTables probe_tables() {
  SboxTables t{};
  for (int s = 0; s < 8; ++s) {
    for (int x = 0; x < 64; ++x) {
      const std::uint8_t out =
          des::sbox_lookup(s, static_cast<std::uint8_t>(x));
      for (int b = 0; b < 4; ++b) {
        t.tt[s][b] |= static_cast<std::uint64_t>((out >> b) & 1) << x;
      }
    }
    for (int i = 0; i < 6; ++i) t.src[s][i] = -1;
    for (int k = 0; k < 64; ++k) {
      const std::uint8_t six =
          des::round1_sbox_input(std::uint64_t{1} << k, s);
      for (int i = 0; i < 6; ++i) {
        if ((six >> i) & 1) {
          // IP + E select each expanded bit from exactly one plaintext
          // bit; a second source would mean the map is not a selection.
          if (t.src[s][i] >= 0 && t.src[s][i] != k) {
            throw std::logic_error(
                "bitslice: round1_sbox_input is not a bit-selection");
          }
          t.src[s][i] = k;
        }
      }
    }
    for (int i = 0; i < 6; ++i) {
      if (t.src[s][i] < 0) {
        throw std::logic_error("bitslice: unmapped round-1 input bit");
      }
    }
  }
  return t;
}

const SboxTables& tables() {
  static const SboxTables t = probe_tables();
  return t;
}

void check_sbox(int sbox) {
  if (sbox < 0 || sbox > 7) {
    throw std::invalid_argument("bitslice: sbox in 0..7");
  }
}

}  // namespace

std::uint64_t sbox_truth_table(int sbox, int b) {
  check_sbox(sbox);
  if (b < 0 || b > 3) {
    throw std::invalid_argument("bitslice: output bit in 0..3");
  }
  return tables().tt[sbox][b];
}

void sbox_planes(int sbox, const Word x[6], Word out[4]) {
  check_sbox(sbox);
  for (int b = 0; b < 4; ++b) out[b] = eval_tt(tables().tt[sbox][b], x, 6);
}

int round1_source_bit(int sbox, int i) {
  check_sbox(sbox);
  if (i < 0 || i > 5) {
    throw std::invalid_argument("bitslice: input bit in 0..5");
  }
  return tables().src[sbox][i];
}

std::uint8_t round1_six(std::uint64_t plaintext, int sbox) {
  check_sbox(sbox);
  const auto& src = tables().src[sbox];
  std::uint8_t six = 0;
  for (int i = 0; i < 6; ++i) {
    six |= static_cast<std::uint8_t>(((plaintext >> src[i]) & 1) << i);
  }
  return six;
}

void plaintext_planes(const std::uint64_t pts[64], Word planes[64]) {
  for (int l = 0; l < 64; ++l) planes[l] = pts[l];
  transpose64(planes);
}

void six_planes_from(const Word pt_planes[64], int sbox, Word x[6]) {
  check_sbox(sbox);
  for (int i = 0; i < 6; ++i) x[i] = pt_planes[tables().src[sbox][i]];
}

namespace {

/// Input planes for the guess-in-the-lane layout: lane g carries six ^ g.
void guess_lane_planes(std::uint8_t six, Word x[6]) {
  for (int i = 0; i < 6; ++i) {
    x[i] = ((six >> i) & 1) ? ~kLaneIndex[static_cast<std::size_t>(i)]
                            : kLaneIndex[static_cast<std::size_t>(i)];
  }
}

}  // namespace

void cpa_hypothesis_row(int sbox, std::uint8_t six,
                        std::array<int, 64>& row) {
  Word x[6];
  guess_lane_planes(six, x);
  Word out[4];
  sbox_planes(sbox, x, out);
  Word w[3];
  hamming4_planes(out, w);
  for (int g = 0; g < 64; ++g) {
    row[static_cast<std::size_t>(g)] = decode_weight(w, g);
  }
}

void dpa_hypothesis_row(int sbox, int bit, std::uint8_t six,
                        std::array<int, 64>& row) {
  if (bit < 0 || bit > 3) {
    throw std::invalid_argument("bitslice: dpa bit in 0..3");
  }
  Word x[6];
  guess_lane_planes(six, x);
  // DpaAttack counts bits from the MSB; the truth tables are LSB-first.
  const Word plane = eval_tt(sbox_truth_table(sbox, 3 - bit), x, 6);
  for (int g = 0; g < 64; ++g) {
    row[static_cast<std::size_t>(g)] = static_cast<int>((plane >> g) & 1);
  }
}

void cpa_hypothesis_block(int sbox, const std::uint64_t pts[64],
                          std::array<std::array<int, 64>, 64>& matrix) {
  Word planes[64];
  plaintext_planes(pts, planes);
  Word e[6];
  six_planes_from(planes, sbox, e);
  Word x[6];
  for (int g = 0; g < 64; ++g) {
    for (int i = 0; i < 6; ++i) {
      x[i] = ((g >> i) & 1) ? ~e[i] : e[i];
    }
    Word out[4];
    sbox_planes(sbox, x, out);
    Word w[3];
    hamming4_planes(out, w);
    for (int p = 0; p < 64; ++p) {
      matrix[static_cast<std::size_t>(p)][static_cast<std::size_t>(g)] =
          decode_weight(w, p);
    }
  }
}

Word selection_parity_plane(int in_mask) {
  if (in_mask < 0 || in_mask > 63) {
    throw std::invalid_argument("bitslice: in_mask in 0..63");
  }
  Word plane = kAllZeros;
  for (int i = 0; i < 6; ++i) {
    if ((in_mask >> i) & 1) plane ^= kLaneIndex[static_cast<std::size_t>(i)];
  }
  return plane;
}

}  // namespace emask::bitslice
