// Word-parallel Hamming / coupling kernels for the energy model's
// per-component bus loops.
//
// The paper's coupling model (MaskableBus) walks every adjacent line pair
// per transfer — O(width) branches per bus per cycle, the hot loop of a
// coupling-enabled capture.  Each kernel below computes the *same integer
// event count* from one or two popcounts over shifted XOR planes, so the
// swapped-in path is bit-identical (the double result is the identical
// integer times the identical energy constant).  Header-only and
// dependency-free so src/energy can include it without a link edge.
//
// Derivations (verified exhaustively in tests/bitslice_test.cpp):
//
//  * normal mode: delta_i in {-1, 0, +1} decomposes into rising r_i and
//    falling f_i planes (mutually exclusive), and
//      |delta_i - delta_{i+1}| = (r_i ^ r_{i+1}) + (f_i ^ f_{i+1})
//    for all nine cases, so the pair sum is two popcounts of self-shifted
//    XORs over the width-1 adjacent-pair positions.
//
//  * secure mode: opposing = width (within-pair, constant) plus the count
//    of adjacent equal bits, i.e. popcount of the complemented
//    self-shifted XOR over the same pair positions.
#pragma once

#include <bit>
#include <cstdint>

namespace emask::bitslice {

/// Bits 0..width-2 set: the adjacent-pair positions of a width-bit bus.
[[nodiscard]] constexpr std::uint64_t pair_mask(int width) {
  return width <= 1 ? 0ull : ((std::uint64_t{1} << (width - 1)) - 1ull);
}

/// Normal-mode coupling events between two successive bus words (both
/// already masked to `width` bits): sum over adjacent pairs of
/// |delta_i - delta_{i+1}|.
[[nodiscard]] inline int coupling_events(std::uint64_t last,
                                         std::uint64_t value, int width) {
  const std::uint64_t pm = pair_mask(width);
  const std::uint64_t rising = ~last & value;
  const std::uint64_t falling = last & ~value;
  return std::popcount((rising ^ (rising >> 1)) & pm) +
         std::popcount((falling ^ (falling >> 1)) & pm);
}

/// Scalar reference for coupling_events (the original per-pair loop).
[[nodiscard]] inline int coupling_events_scalar(std::uint64_t last,
                                                std::uint64_t value,
                                                int width) {
  int events = 0;
  for (int i = 0; i + 1 < width; ++i) {
    const int was_i = static_cast<int>((last >> i) & 1);
    const int was_j = static_cast<int>((last >> (i + 1)) & 1);
    const int now_i = static_cast<int>((value >> i) & 1);
    const int now_j = static_cast<int>((value >> (i + 1)) & 1);
    const int d = (now_i - was_i) - (now_j - was_j);
    events += d < 0 ? -d : d;
  }
  return events;
}

/// Secure-mode opposing-transition count for a dual-rail evaluation of
/// `value` (already masked to `width` bits).
[[nodiscard]] inline int secure_opposing(std::uint64_t value, int width) {
  return width + std::popcount(~(value ^ (value >> 1)) & pair_mask(width));
}

/// Scalar reference for secure_opposing (the original per-pair loop).
[[nodiscard]] inline int secure_opposing_scalar(std::uint64_t value,
                                                int width) {
  int opposing = width;
  for (int i = 0; i + 1 < width; ++i) {
    if (((value >> i) & 1) == ((value >> (i + 1)) & 1)) ++opposing;
  }
  return opposing;
}

}  // namespace emask::bitslice
