// Bitsliced DES round-1 hypothesis generators.
//
// Every first-round attack in src/analysis predicts, per (plaintext,
// guess) pair, something about S(e ^ g) where e = round1_sbox_input(pt)
// is public.  The scalar paths call des::sbox_lookup 64 times per trace;
// here the S-box is evaluated as a sliced truth table so one pass over
// ~4 * 63 word muxes produces an entire 64-entry hypothesis row (or, in
// block mode, a 64x64 plaintext-by-guess matrix):
//
//   * row mode — "guess in the lane": feed input planes kLaneIndex[i]
//     XOR e_i so lane g carries e ^ g, evaluate once, read all guesses.
//   * block mode — "plaintext in the lane": transpose 64 plaintexts into
//     bit-planes, select the six source bits feeding the target S-box
//     (round1_sbox_input is a pure bit-selection through IP + E, probed
//     once against the golden model), then evaluate once per guess.
//
// Both layouts are exercised against the scalar des:: model bit-for-bit
// in tests/bitslice_test.cpp; the attack-facing providers that cache rows
// per distinct e live in bitslice/providers.hpp.
#pragma once

#include <array>
#include <cstdint>

#include "bitslice/slice.hpp"

namespace emask::bitslice {

/// Truth-table planes of output bit `b` (LSB-first: b=0 is the S-box
/// output's least significant bit) for S-box `sbox` (0..7).
[[nodiscard]] std::uint64_t sbox_truth_table(int sbox, int b);

/// Sliced S-box: x[i] = plane of input bit i (LSB-first), out[b] = plane
/// of output bit b, for all 64 lanes at once.
void sbox_planes(int sbox, const Word x[6], Word out[4]);

/// The plaintext bit feeding bit `i` (LSB-first) of round1_sbox_input(pt,
/// sbox) — IP + E is a fixed bit-selection, probed once from the golden
/// model with single-bit plaintexts.
[[nodiscard]] int round1_source_bit(int sbox, int i);

/// Scalar round-1 expanded-input chunk reconstructed from the probed
/// source-bit map (equals des::round1_sbox_input; used by the row caches
/// so the bitslice layer never diverges from its own plane selection).
[[nodiscard]] std::uint8_t round1_six(std::uint64_t plaintext, int sbox);

/// Transposes 64 plaintexts into 64 bit-planes (planes[b] bit l = bit b
/// of pts[l]).
void plaintext_planes(const std::uint64_t pts[64], Word planes[64]);

/// Selects the six input planes feeding `sbox` out of a transposed
/// plaintext block.
void six_planes_from(const Word pt_planes[64], int sbox, Word x[6]);

/// Row mode: row[g] = popcount(S(six ^ g)) for all 64 guesses — the CPA
/// hypothesis row — in one sliced evaluation.
void cpa_hypothesis_row(int sbox, std::uint8_t six, std::array<int, 64>& row);

/// Row mode: row[g] = bit `bit` (0 = MSB, matching DpaAttack) of
/// S(six ^ g) for all 64 guesses.
void dpa_hypothesis_row(int sbox, int bit, std::uint8_t six,
                        std::array<int, 64>& row);

/// Block mode: matrix[p][g] = popcount(S(e_p ^ g)) for 64 plaintexts and
/// all 64 guesses (one transpose + 64 sliced evaluations).
void cpa_hypothesis_block(int sbox, const std::uint64_t pts[64],
                          std::array<std::array<int, 64>, 64>& matrix);

/// parity(in_mask & e) for every 6-bit e at once: bit e of the returned
/// plane is the MLPA selection parity — computed by XOR-folding the
/// kLaneIndex planes selected by `in_mask` (lane e carries e itself).
[[nodiscard]] Word selection_parity_plane(int in_mask);

}  // namespace emask::bitslice
