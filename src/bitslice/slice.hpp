// Bit-slicing primitives (Biham's "a new paradigm" trick, the idiom behind
// OpenSSL/libdes): treat a 64-bit word as 64 one-bit lanes and evaluate 64
// independent scenarios per word operation.  Data moves between the normal
// ("one value per word") and sliced ("one *bit position* per word, one
// value per *lane*") layouts through a 64x64 bit-matrix transpose.
//
// Everything here is generic machinery — plane transposes, truth-table
// evaluation, lane-parallel Hamming weights.  The DES-specific layer that
// turns these into hypothesis matrices lives in bitslice/des_round1.hpp.
#pragma once

#include <array>
#include <cstdint>

namespace emask::bitslice {

/// One bit-plane: bit `l` carries lane `l`'s value of a single bit.
using Word = std::uint64_t;

/// All-ones / all-zeros planes (every lane carries the same constant bit).
constexpr Word kAllOnes = ~Word{0};
constexpr Word kAllZeros = Word{0};

/// kLaneIndex[i] is the plane of bit i of the lane index itself: bit g of
/// kLaneIndex[i] equals bit i of g.  Feeding these planes into a sliced
/// function evaluates it on all 64 lane indices at once — the "guess in
/// the lane" layout the hypothesis generators use (lane g = key guess g).
constexpr std::array<Word, 6> kLaneIndex = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3, LSB-first
/// columns): after the call, bit l of a[b] is what bit b of a[l] was.
/// Turns 64 values (one per word) into 64 bit-planes (one per word) and
/// back — the layout conversion at the edge of every sliced computation.
void transpose64(Word a[64]);

/// Evaluates an n-input boolean function given as a 2^n-bit truth table
/// (bit x of `tt` = f(x)) over bit-planes x[0..n-1] (x[i] = plane of input
/// bit i), for all 64 lanes at once.  Implemented as the mux tree
///   f(x) = ~x[n-1] & f_lo(x)  |  x[n-1] & f_hi(x)
/// — 2^n - 1 muxes, independent of the function, so arbitrary S-box truth
/// tables slice without hand-optimized gate networks.
[[nodiscard]] Word eval_tt(std::uint64_t tt, const Word* x, int n);

/// Per-lane Hamming weight of four one-bit planes via a carry-save adder:
/// w[0..2] are the weight's bit-planes, so lane l's weight (0..4) is
/// bit l of w[0] + 2 * bit l of w[1] + 4 * bit l of w[2].
void hamming4_planes(const Word o[4], Word w[3]);

/// Decodes lane l's value from weight planes produced by hamming4_planes.
[[nodiscard]] inline int decode_weight(const Word w[3], int lane) {
  return static_cast<int>((w[0] >> lane) & 1) |
         (static_cast<int>((w[1] >> lane) & 1) << 1) |
         (static_cast<int>((w[2] >> lane) & 1) << 2);
}

}  // namespace emask::bitslice
