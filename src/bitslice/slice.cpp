#include "bitslice/slice.hpp"

namespace emask::bitslice {

void transpose64(Word a[64]) {
  // LSB-first variant of the classic recursive block swap: at step j,
  // every element (r, c) with bit j of r clear and bit j of c set trades
  // places with (r | 1<<j, c & ~(1<<j)).  m masks the bit-j-clear columns.
  Word m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const Word t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

Word eval_tt(std::uint64_t tt, const Word* x, int n) {
  if (n == 0) return (tt & 1) ? kAllOnes : kAllZeros;
  const int half = 1 << (n - 1);
  const std::uint64_t lo_mask =
      half >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << half) - 1);
  const Word lo = eval_tt(tt & lo_mask, x, n - 1);
  const Word hi = eval_tt(half >= 64 ? 0 : (tt >> half), x, n - 1);
  const Word sel = x[n - 1];
  return (lo & ~sel) | (hi & sel);
}

void hamming4_planes(const Word o[4], Word w[3]) {
  // Carry-save: add the four one-bit planes pairwise, propagating carries
  // as planes.  c and c2 are never simultaneously set (c = o0 & o1 forces
  // s = o0 ^ o1 = 0, hence c2 = s & o2 = 0), so their sum needs no third
  // bit; the final weight is s3 + 2*(d0 + c3) with d0 + c3 <= 2.
  const Word s = o[0] ^ o[1];
  const Word c = o[0] & o[1];
  const Word s2 = s ^ o[2];
  const Word c2 = s & o[2];
  const Word d0 = c ^ c2;
  const Word s3 = s2 ^ o[3];
  const Word c3 = s2 & o[3];
  w[0] = s3;
  w[1] = d0 ^ c3;
  w[2] = d0 & c3;
}

}  // namespace emask::bitslice
