// FIPS 46-3 DES tables.
//
// All permutation tables use the standard's 1-based, MSB-first bit
// numbering: an entry value v selects bit v of the input, where bit 1 is
// the most significant bit.
#pragma once

#include <array>
#include <cstdint>

namespace emask::des {

extern const std::array<int, 64> kIp;        // initial permutation
extern const std::array<int, 64> kIpInv;     // final permutation (IP^-1)
extern const std::array<int, 48> kE;         // expansion
extern const std::array<int, 32> kP;         // round permutation
extern const std::array<int, 56> kPc1;       // permuted choice 1
extern const std::array<int, 48> kPc2;       // permuted choice 2
extern const std::array<int, 16> kShifts;    // per-round key rotations

// S-boxes: kSbox[s][row*16 + col], s in [0,8), row in [0,4), col in [0,16).
extern const std::array<std::array<std::uint8_t, 64>, 8> kSbox;

}  // namespace emask::des
