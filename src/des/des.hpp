// Bit-exact golden model of the Data Encryption Standard (FIPS 46-3).
//
// Used as (a) the reference the simulated assembly implementation is
// validated against, and (b) the attacker's hypothesis engine in the DPA
// toolkit (predicting intermediate S-box bits for key guesses).
//
// Conventions: 64-bit blocks and keys are std::uint64_t with FIPS bit 1 as
// the most significant bit (bit 63).  Subkeys are 48 bits right-aligned.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace emask::des {

/// The 16 round subkeys, each 48 bits (right-aligned).
struct KeySchedule {
  std::array<std::uint64_t, 16> subkeys{};
};

/// Derives the key schedule from a 64-bit key (the 8 parity bits are
/// ignored, as in the standard).
[[nodiscard]] KeySchedule key_schedule(std::uint64_t key);

/// Encrypts / decrypts one 64-bit block in ECB mode.
[[nodiscard]] std::uint64_t encrypt_block(std::uint64_t plaintext,
                                          std::uint64_t key);
[[nodiscard]] std::uint64_t decrypt_block(std::uint64_t ciphertext,
                                          std::uint64_t key);

/// Triple DES, EDE (encrypt-decrypt-encrypt) with three independent keys.
[[nodiscard]] std::uint64_t encrypt_block_ede3(std::uint64_t plaintext,
                                               std::uint64_t k1,
                                               std::uint64_t k2,
                                               std::uint64_t k3);
[[nodiscard]] std::uint64_t decrypt_block_ede3(std::uint64_t ciphertext,
                                               std::uint64_t k1,
                                               std::uint64_t k2,
                                               std::uint64_t k3);

/// CBC mode over whole blocks.
[[nodiscard]] std::vector<std::uint64_t> cbc_encrypt(
    const std::vector<std::uint64_t>& blocks, std::uint64_t key,
    std::uint64_t iv);
[[nodiscard]] std::vector<std::uint64_t> cbc_decrypt(
    const std::vector<std::uint64_t>& blocks, std::uint64_t key,
    std::uint64_t iv);

/// Triple-DES EDE CBC ("outer CBC", as in PuTTY's des_3cbc_encrypt): one
/// chaining XOR per block around the full EDE cascade.
[[nodiscard]] std::vector<std::uint64_t> cbc_encrypt_ede3(
    const std::vector<std::uint64_t>& blocks, std::uint64_t k1,
    std::uint64_t k2, std::uint64_t k3, std::uint64_t iv);
[[nodiscard]] std::vector<std::uint64_t> cbc_decrypt_ede3(
    const std::vector<std::uint64_t>& blocks, std::uint64_t k1,
    std::uint64_t k2, std::uint64_t k3, std::uint64_t iv);

// ---- Exposed internals (tests, DPA hypothesis engine, asm generator) ----

/// Initial permutation IP and its inverse.
[[nodiscard]] std::uint64_t initial_permutation(std::uint64_t block);
[[nodiscard]] std::uint64_t final_permutation(std::uint64_t block);

/// The cipher function f(R, K): 32-bit R, 48-bit subkey -> 32 bits.
[[nodiscard]] std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey48);

/// E expansion of a 32-bit half to 48 bits (right-aligned).
[[nodiscard]] std::uint64_t expand(std::uint32_t r);

/// Output of S-box `s` (0..7) for a 6-bit input (standard row/column
/// indexing: bits 1 and 6 select the row, bits 2..5 the column).
[[nodiscard]] std::uint8_t sbox_lookup(int s, std::uint8_t six_bits);

/// The public 6-bit expanded-input chunk feeding S-box `s` (0..7) in round
/// 1: bits 42-6s..47-6s of E(R0).  Every first-round attack hypothesis
/// (DPA, CPA, MLPA, collision) xors this with a guessed subkey chunk.
[[nodiscard]] std::uint8_t round1_sbox_input(std::uint64_t plaintext, int s);

/// L/R halves after `round` (1..16) of encrypting `plaintext` with `key`;
/// used by the DPA engine to predict intermediate bits.
struct RoundState {
  std::uint32_t l = 0;
  std::uint32_t r = 0;
};
[[nodiscard]] RoundState round_state(std::uint64_t plaintext,
                                     std::uint64_t key, int round);

/// DES with parity bits set correctly on an arbitrary 56-bit value (helper
/// for workload generators that sweep keys).
[[nodiscard]] std::uint64_t with_odd_parity(std::uint64_t key);

}  // namespace emask::des
