#include "des/des.hpp"

#include "des/tables.hpp"

namespace emask::des {
namespace {

/// Applies a 1-based MSB-first permutation table: output bit i (MSB first)
/// becomes input bit table[i] of a `width_in`-bit input.
template <std::size_t N>
std::uint64_t permute(std::uint64_t input, const std::array<int, N>& table,
                      int width_in) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < N; ++i) {
    const int src = table[i];  // 1-based from the MSB
    const std::uint64_t bit = (input >> (width_in - src)) & 1u;
    out = (out << 1) | bit;
  }
  return out;
}

std::uint64_t rotate_left28(std::uint64_t half, int n) {
  constexpr std::uint64_t kMask28 = (1ull << 28) - 1;
  return ((half << n) | (half >> (28 - n))) & kMask28;
}

}  // namespace

KeySchedule key_schedule(std::uint64_t key) {
  KeySchedule ks;
  const std::uint64_t cd = permute(key, kPc1, 64);  // 56 bits
  std::uint64_t c = (cd >> 28) & ((1ull << 28) - 1);
  std::uint64_t d = cd & ((1ull << 28) - 1);
  for (int round = 0; round < 16; ++round) {
    c = rotate_left28(c, kShifts[static_cast<std::size_t>(round)]);
    d = rotate_left28(d, kShifts[static_cast<std::size_t>(round)]);
    ks.subkeys[static_cast<std::size_t>(round)] =
        permute((c << 28) | d, kPc2, 56);
  }
  return ks;
}

std::uint64_t initial_permutation(std::uint64_t block) {
  return permute(block, kIp, 64);
}

std::uint64_t final_permutation(std::uint64_t block) {
  return permute(block, kIpInv, 64);
}

std::uint64_t expand(std::uint32_t r) { return permute(r, kE, 32); }

std::uint8_t sbox_lookup(int s, std::uint8_t six_bits) {
  const int row = ((six_bits >> 4) & 2) | (six_bits & 1);
  const int col = (six_bits >> 1) & 0xF;
  return kSbox[static_cast<std::size_t>(s)]
              [static_cast<std::size_t>(row * 16 + col)];
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey48) {
  const std::uint64_t x = expand(r) ^ subkey48;
  std::uint32_t sboxed = 0;
  for (int s = 0; s < 8; ++s) {
    const auto six =
        static_cast<std::uint8_t>((x >> (42 - 6 * s)) & 0x3F);
    sboxed = (sboxed << 4) | sbox_lookup(s, six);
  }
  return static_cast<std::uint32_t>(permute(sboxed, kP, 32));
}

namespace {

std::uint64_t crypt(std::uint64_t block, const KeySchedule& ks, bool decrypt) {
  const std::uint64_t ip = initial_permutation(block);
  auto l = static_cast<std::uint32_t>(ip >> 32);
  auto r = static_cast<std::uint32_t>(ip & 0xFFFFFFFFu);
  for (int round = 0; round < 16; ++round) {
    const std::size_t k =
        static_cast<std::size_t>(decrypt ? 15 - round : round);
    const std::uint32_t next_r = l ^ feistel(r, ks.subkeys[k]);
    l = r;
    r = next_r;
  }
  // Pre-output is R16 || L16 (the halves are swapped).
  return final_permutation((static_cast<std::uint64_t>(r) << 32) | l);
}

}  // namespace

std::uint64_t encrypt_block(std::uint64_t plaintext, std::uint64_t key) {
  return crypt(plaintext, key_schedule(key), /*decrypt=*/false);
}

std::uint64_t decrypt_block(std::uint64_t ciphertext, std::uint64_t key) {
  return crypt(ciphertext, key_schedule(key), /*decrypt=*/true);
}

std::uint64_t encrypt_block_ede3(std::uint64_t plaintext, std::uint64_t k1,
                                 std::uint64_t k2, std::uint64_t k3) {
  return encrypt_block(decrypt_block(encrypt_block(plaintext, k1), k2), k3);
}

std::uint64_t decrypt_block_ede3(std::uint64_t ciphertext, std::uint64_t k1,
                                 std::uint64_t k2, std::uint64_t k3) {
  return decrypt_block(encrypt_block(decrypt_block(ciphertext, k3), k2), k1);
}

std::vector<std::uint64_t> cbc_encrypt(
    const std::vector<std::uint64_t>& blocks, std::uint64_t key,
    std::uint64_t iv) {
  std::vector<std::uint64_t> out;
  out.reserve(blocks.size());
  std::uint64_t chain = iv;
  for (const std::uint64_t block : blocks) {
    chain = encrypt_block(block ^ chain, key);
    out.push_back(chain);
  }
  return out;
}

std::vector<std::uint64_t> cbc_decrypt(
    const std::vector<std::uint64_t>& blocks, std::uint64_t key,
    std::uint64_t iv) {
  std::vector<std::uint64_t> out;
  out.reserve(blocks.size());
  std::uint64_t chain = iv;
  for (const std::uint64_t block : blocks) {
    out.push_back(decrypt_block(block, key) ^ chain);
    chain = block;
  }
  return out;
}

std::vector<std::uint64_t> cbc_encrypt_ede3(
    const std::vector<std::uint64_t>& blocks, std::uint64_t k1,
    std::uint64_t k2, std::uint64_t k3, std::uint64_t iv) {
  std::vector<std::uint64_t> out;
  out.reserve(blocks.size());
  std::uint64_t chain = iv;
  for (const std::uint64_t block : blocks) {
    chain = encrypt_block_ede3(block ^ chain, k1, k2, k3);
    out.push_back(chain);
  }
  return out;
}

std::vector<std::uint64_t> cbc_decrypt_ede3(
    const std::vector<std::uint64_t>& blocks, std::uint64_t k1,
    std::uint64_t k2, std::uint64_t k3, std::uint64_t iv) {
  std::vector<std::uint64_t> out;
  out.reserve(blocks.size());
  std::uint64_t chain = iv;
  for (const std::uint64_t block : blocks) {
    out.push_back(decrypt_block_ede3(block, k1, k2, k3) ^ chain);
    chain = block;
  }
  return out;
}

std::uint8_t round1_sbox_input(std::uint64_t plaintext, int s) {
  const std::uint64_t ip = initial_permutation(plaintext);
  const auto r0 = static_cast<std::uint32_t>(ip & 0xFFFFFFFFu);
  const std::uint64_t er = expand(r0);
  return static_cast<std::uint8_t>((er >> (42 - 6 * s)) & 0x3F);
}

RoundState round_state(std::uint64_t plaintext, std::uint64_t key, int round) {
  const KeySchedule ks = key_schedule(key);
  const std::uint64_t ip = initial_permutation(plaintext);
  RoundState st{static_cast<std::uint32_t>(ip >> 32),
                static_cast<std::uint32_t>(ip & 0xFFFFFFFFu)};
  for (int m = 0; m < round; ++m) {
    const std::uint32_t next_r =
        st.l ^ feistel(st.r, ks.subkeys[static_cast<std::size_t>(m)]);
    st.l = st.r;
    st.r = next_r;
  }
  return st;
}

std::uint64_t with_odd_parity(std::uint64_t key) {
  std::uint64_t out = 0;
  for (int byte = 0; byte < 8; ++byte) {
    auto b = static_cast<std::uint8_t>((key >> (8 * byte)) & 0xFF);
    b &= 0xFE;
    int ones = 0;
    for (int i = 1; i < 8; ++i) ones += (b >> i) & 1;
    b = static_cast<std::uint8_t>(b | ((ones % 2 == 0) ? 1 : 0));
    out |= static_cast<std::uint64_t>(b) << (8 * byte);
  }
  return out;
}

}  // namespace emask::des
