// Generates the DES encryption program in the target assembly language.
//
// The program follows the paper's software structure exactly (Fig. 2):
// bit-per-word data layout ("newL[i] = oldR[i]", Fig. 4), table-driven
// permutations, sixteen identical rounds with in-round key generation, and
// S-box lookups implemented as table indexing with a key-derived offset.
//
// Annotations emitted:
//   * `.secret key`           — the seed for the compiler's forward slice;
//   * `.declassified preout`  +
//     `.declassified cipher`  — the output inverse permutation carries only
//     information already public in the ciphertext (Sec. 4.1), so its
//     assignments stay insecure exactly as in Fig. 2(b).
//
// Secret-dependent computation is restricted, by construction, to the four
// operation classes the paper defines secure versions for — assignment
// (lw/sw), XOR, shift, and indexing — so the selective compiler can cover
// the whole slice (tests assert there are no diagnostics).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hpp"
#include "sim/memory.hpp"

namespace emask::des {

struct DesAsmOptions {
  bool secret_key = true;          // emit `.secret key`
  bool declassify_output = true;   // emit `.declassified preout/cipher`
  /// Generate the decryption program: the key schedule runs in reverse
  /// (rotate-right with the shift schedule 0,1,2,2,... so round m uses
  /// K(17-m)); everything else is identical to encryption.
  bool decrypt = false;
  /// Hoist the complete key schedule (PC-1 plus all sixteen rotate/PC-2
  /// rounds, stored to a `subkeys` array) ahead of any plaintext use, and
  /// emit a `fork` marker between the schedule and the initial
  /// permutation.  For a fixed key every trace then shares an identical,
  /// plaintext-independent prefix up to the marker, which snapshot/fork
  /// capture (core::MaskingPipeline::snapshot_des) amortizes across a
  /// batch.  Off by default: the paper's program shape interleaves key
  /// generation with the rounds (Fig. 2), and the figure reproductions
  /// depend on that shape.
  bool hoist_key_schedule = false;
  /// Random-delay (NOP-insertion) shuffle slots: the program grows a
  /// `nop_tab` data table (kShuffleSlotCount public words, zero by
  /// default) and data-driven delay loops that spin `nop_tab[m]` times at
  /// the top of round m and `nop_tab[16 + s]` times before S-box s in
  /// every round.  Poking a fresh per-trace schedule (poke_nop_schedule)
  /// desynchronizes the cycle axis across traces without changing the
  /// program text, the architectural result, or (for zero delays) the
  /// trace itself.  The slots read only public data, so no masking policy
  /// secures them.  Off by default: the classic program is byte-identical
  /// without it.
  bool shuffle_slots = false;
  /// CBC chaining on the device: the program grows an `iv` data symbol (64
  /// bit-words, poked per block via poke_iv).  Encryption XORs the chaining
  /// value into `plain` before the initial permutation; decryption XORs it
  /// into `cipher` after the output permutation.  Both sides of the XOR are
  /// public (the chaining value is the previous ciphertext), so the loop
  /// stays insecure under every masking policy.  With hoist_key_schedule
  /// the loop sits after the `fork` marker, so snapshot/fork capture can
  /// poke a fresh iv per forked block.  Off by default: the classic
  /// single-block program is byte-identical without it.
  bool cbc_chain = false;
};

/// Emits the complete assembly source for encrypting one block.
[[nodiscard]] std::string generate_des_asm(std::uint64_t key,
                                           std::uint64_t plaintext,
                                           const DesAsmOptions& options = {});

/// Replaces the 64 bit-words of `key` / `plain` in an assembled program
/// image (so one assembly + compilation can serve many runs).
void poke_key(assembler::Program& program, std::uint64_t key);
void poke_plaintext(assembler::Program& program, std::uint64_t plaintext);

/// Pokes the plaintext directly into a live simulator memory (used by the
/// snapshot/fork path, where the machine is already past initialization and
/// the program image can no longer seed it).
void poke_plaintext(sim::DataMemory& memory, const assembler::Program& program,
                    std::uint64_t plaintext);

/// Replaces the 64 bit-words of the `iv` symbol (cbc_chain programs only;
/// throws std::invalid_argument when the program was generated without
/// cbc_chain).  Same program-image / live-memory split as poke_plaintext.
void poke_iv(assembler::Program& program, std::uint64_t iv);
void poke_iv(sim::DataMemory& memory, const assembler::Program& program,
             std::uint64_t iv);

/// True when the program carries the cbc_chain `iv` symbol.
[[nodiscard]] bool has_iv_symbol(const assembler::Program& program);

/// Number of shuffle delay slots in `nop_tab`: one per round (indices
/// 0..15) plus one per S-box position (indices 16..23, applied in every
/// round).
inline constexpr std::size_t kShuffleSlotCount = 24;

/// Replaces the `nop_tab` delay schedule (shuffle_slots programs only;
/// throws std::invalid_argument when the program was generated without
/// shuffle_slots or `delays` is not kShuffleSlotCount entries).  Same
/// program-image / live-memory split as poke_plaintext.
void poke_nop_schedule(assembler::Program& program,
                       const std::vector<std::uint32_t>& delays);
void poke_nop_schedule(sim::DataMemory& memory,
                       const assembler::Program& program,
                       const std::vector<std::uint32_t>& delays);

/// True when the program carries the shuffle_slots `nop_tab` symbol.
[[nodiscard]] bool has_nop_table(const assembler::Program& program);

/// Packs the 64 bit-words of the `cipher` symbol from simulated memory.
[[nodiscard]] std::uint64_t read_cipher(const sim::DataMemory& memory,
                                        const assembler::Program& program);

}  // namespace emask::des
