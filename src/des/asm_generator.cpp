#include "des/asm_generator.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "des/tables.hpp"
#include "util/bitops.hpp"

namespace emask::des {
namespace {

/// Emits a `.word` table of byte offsets: entry v (1-based bit number)
/// becomes (v-1)*4, so the program indexes bit arrays without runtime
/// subtraction or scaling.
template <std::size_t N>
void emit_offset_table(std::ostringstream& os, const char* label,
                       const std::array<int, N>& table) {
  os << label << ":\n";
  for (std::size_t i = 0; i < N; ++i) {
    os << (i % 8 == 0 ? "  .word " : ", ") << (table[i] - 1) * 4;
    if (i % 8 == 7 || i + 1 == N) os << '\n';
  }
}

void emit_bit_words(std::ostringstream& os, const char* label,
                    std::uint64_t block) {
  os << label << ":\n";
  for (unsigned i = 0; i < 64; ++i) {
    os << (i % 16 == 0 ? "  .word " : ", ")
       << util::bit_of64(block, 63 - i);
    if (i % 16 == 15) os << '\n';
  }
}

void poke_block(assembler::Program& program, const char* symbol,
                std::uint64_t block) {
  const assembler::DataSymbol* s = program.find_symbol(symbol);
  if (s == nullptr || s->size_bytes < 64 * 4) {
    throw std::invalid_argument(std::string("poke_block: no symbol ") +
                                symbol);
  }
  for (unsigned i = 0; i < 64; ++i) {
    program.poke_word(s->address + i * 4,
                      static_cast<std::uint32_t>(util::bit_of64(block, 63 - i)));
  }
}

// The program text reproduces the *shape* of the paper's compiled code
// (Fig. 4): unoptimized output with memory-resident locals.  Every loop
// iteration reloads its counter ("lw $2,i"), reloads its spilled base
// pointers, recomputes addresses, and stores the counter back before the
// backedge.  This shape is load-bearing for the evaluation — it is why the
// selective scheme secures only a fraction of the executed loads/stores
// ("we increase the energy cost of only one of the four load operations
// executed in the segment") while the naive scheme pays for all of them.
//
// Locals and spilled pointers live in individual 4-byte data symbols laid
// out consecutively and addressed as fixed offsets from $gp (which holds
// the first local's address).  One symbol per slot keeps the compiler's
// region-level points-to summaries precise.
class Slots {
 public:
  int declare(const std::string& name) {
    const int off = next_;
    next_ += 4;
    order_.push_back(name);
    offsets_[name] = off;
    return off;
  }
  [[nodiscard]] std::string at(const std::string& name) const {
    return std::to_string(offsets_.at(name)) + "($gp)";
  }
  void emit_data(std::ostringstream& os) const {
    for (const std::string& n : order_) os << n << ": .space 4\n";
  }
  [[nodiscard]] const std::string& first() const { return order_.front(); }

 private:
  int next_ = 0;
  std::vector<std::string> order_;
  std::map<std::string, int> offsets_;
};

class TextEmitter {
 public:
  TextEmitter(std::ostringstream& os, const Slots& slots)
      : os_(os), slots_(slots) {}

  void line(const std::string& s) { os_ << "  " << s << '\n'; }
  void label(const std::string& l) { os_ << l << ":\n"; }
  void comment(const std::string& c) { os_ << "# " << c << '\n'; }

  /// Spills the address of data symbol `sym` (+ byte offset) into a slot.
  void spill(const std::string& slot, const std::string& sym, int offset = 0) {
    line("la   $t0, " + sym);
    if (offset != 0) {
      line("addiu $t0, $t0, " + std::to_string(offset));
    }
    line("sw   $t0, " + slots_.at(slot));
  }

  /// for (i = 0; i < n; ++i) dst[i] = src[tab[i]];  all bases spilled.
  void perm_loop(const std::string& name, int n, const std::string& tab_slot,
                 const std::string& src_slot, const std::string& dst_slot) {
    line("sw   $zero, " + slots_.at("var_i"));
    label(name);
    line("lw   $t9, " + slots_.at("var_i"));
    line("sll  $t8, $t9, 2");
    line("lw   $t0, " + slots_.at(tab_slot));
    line("addu $t0, $t0, $t8");
    line("lw   $t1, 0($t0)");          // table entry: public byte offset
    line("lw   $t2, " + slots_.at(src_slot));
    line("addu $t2, $t2, $t1");
    line("lw   $t3, 0($t2)");          // the data bit
    line("lw   $t4, " + slots_.at(dst_slot));
    line("addu $t4, $t4, $t8");
    line("sw   $t3, 0($t4)");
    step_i(name, n);
  }

  /// for (i = 0; i < n; ++i) dst[i] = src[i];
  void copy_loop(const std::string& name, int n, const std::string& src_slot,
                 const std::string& dst_slot) {
    line("sw   $zero, " + slots_.at("var_i"));
    label(name);
    line("lw   $t9, " + slots_.at("var_i"));
    line("sll  $t8, $t9, 2");
    line("lw   $t0, " + slots_.at(src_slot));
    line("addu $t0, $t0, $t8");
    line("lw   $t1, 0($t0)");
    line("lw   $t2, " + slots_.at(dst_slot));
    line("addu $t2, $t2, $t8");
    line("sw   $t1, 0($t2)");
    step_i(name, n);
  }

  /// for (i = 0; i < n; ++i) dst[i] ^= src[i];  (CBC chaining XOR)
  void xor_into_loop(const std::string& name, int n,
                     const std::string& src_slot,
                     const std::string& dst_slot) {
    line("sw   $zero, " + slots_.at("var_i"));
    label(name);
    line("lw   $t9, " + slots_.at("var_i"));
    line("sll  $t8, $t9, 2");
    line("lw   $t0, " + slots_.at(dst_slot));
    line("addu $t0, $t0, $t8");
    line("lw   $t1, 0($t0)");
    line("lw   $t2, " + slots_.at(src_slot));
    line("addu $t2, $t2, $t8");
    line("lw   $t3, 0($t2)");
    line("xor  $t4, $t1, $t3");
    line("sw   $t4, 0($t0)");
    step_i(name, n);
  }

  /// Rotates the 28 words whose base address is in `base_slot` left by one.
  void rotate_once(const std::string& name, const std::string& base_slot) {
    line("lw   $t0, " + slots_.at(base_slot));
    line("lw   $v1, 0($t0)");  // saved element 0 (key-derived)
    line("sw   $zero, " + slots_.at("var_i"));
    label(name);
    line("lw   $t9, " + slots_.at("var_i"));
    line("sll  $t8, $t9, 2");
    line("lw   $t0, " + slots_.at(base_slot));
    line("addu $t0, $t0, $t8");
    line("lw   $t1, 4($t0)");
    line("sw   $t1, 0($t0)");
    step_i(name, 27);
    line("lw   $t0, " + slots_.at(base_slot));
    line("sw   $v1, 108($t0)");
  }

  /// Rotates the 28 words whose base address is in `base_slot` RIGHT by
  /// one (decryption key schedule): cd[i] = cd[i-1] for i = 27..1, then
  /// cd[0] = saved cd[27].
  void rotate_once_right(const std::string& name,
                         const std::string& base_slot) {
    line("lw   $t0, " + slots_.at(base_slot));
    line("lw   $v1, 108($t0)");  // saved element 27 (key-derived)
    line("li   $t9, 27");
    line("sw   $t9, " + slots_.at("var_i"));
    label(name);
    line("lw   $t9, " + slots_.at("var_i"));
    line("sll  $t8, $t9, 2");
    line("lw   $t0, " + slots_.at(base_slot));
    line("addu $t0, $t0, $t8");
    line("lw   $t1, -4($t0)");
    line("sw   $t1, 0($t0)");
    o0_filler();
    line("sw   $t8, " + slots_.at("var_t"));
    line("lw   $at, " + slots_.at("var_t"));
    line("addiu $t9, $t9, -1");
    line("sw   $t9, " + slots_.at("var_i"));
    line("bne  $t9, $zero, " + name);
    line("lw   $t0, " + slots_.at(base_slot));
    line("sw   $v1, 0($t0)");
  }

  /// Register-shuffle filler in the style of unoptimized compiler output
  /// (cf. the paper's Fig. 4: "addu $3,$2,$4 / move $2,$3 / sll $3,$4,2").
  /// Touches only public values, so no masking policy ever secures it.
  void o0_filler() {
    line("move $v0, $t8");
    line("sll  $at, $v0, 1");
    line("addu $v0, $at, $t9");
    line("move $at, $v0");
  }

  void step_i(const std::string& loop, int n) {
    o0_filler();
    line("sw   $t8, " + slots_.at("var_t"));  // -O0 scratch spill
    line("lw   $at, " + slots_.at("var_t"));
    line("addiu $t9, $t9, 1");
    line("sw   $t9, " + slots_.at("var_i"));
    line("li   $k1, " + std::to_string(n));
    line("bne  $t9, $k1, " + loop);
  }

 private:
  std::ostringstream& os_;
  const Slots& slots_;
};

}  // namespace

std::string generate_des_asm(std::uint64_t key, std::uint64_t plaintext,
                             const DesAsmOptions& options) {
  const bool hoist = options.hoist_key_schedule;
  Slots slots;
  for (const char* counter : {"var_i", "var_m", "var_n", "var_s", "var_t"}) {
    slots.declare(counter);
  }
  for (const char* slot :
       {"ip_pt",  "ip_ps",  "ip_pd",  "pc1_pt", "pc1_ps", "pc1_pd",
        "pc2_pt", "pc2_ps", "pc2_pd", "e_pt",   "e_ps",   "e_pd",
        "p_pt",   "p_ps",   "p_pd",   "fp_pt",  "fp_ps",  "fp_pd",
        "xor_pa", "xor_pb", "sb_pe",  "sb_po",  "sb_pb",  "upd_pl",
        "upd_pr", "upd_pf", "rotc_pb", "rotd_pb", "prer_ps", "prer_pd",
        "prel_ps", "prel_pd", "sh_pt"}) {
    slots.declare(slot);
  }
  if (hoist) slots.declare("ks_pb");  // base of the precomputed subkeys
  if (options.cbc_chain) {
    slots.declare("cbc_ps");  // iv base
    slots.declare("cbc_pd");  // chain destination (plain or cipher)
  }
  if (options.shuffle_slots) slots.declare("nop_pb");  // delay table base

  std::ostringstream os;
  os << "# DES encryption, bit-per-word layout (generated)\n";
  os << ".data\n";
  emit_bit_words(os, "key", key);
  if (options.secret_key) os << ".secret key\n";
  emit_bit_words(os, "plain", plaintext);
  if (options.cbc_chain) os << "iv:      .space 256\n";  // chaining value
  os << "cipher:  .space 256\n";
  if (options.declassify_output) os << ".declassified cipher\n";
  os << "lr:      .space 256\n";   // L = lr[0..31], R = lr[32..63]
  os << "cd:      .space 224\n";   // C = cd[0..27], D = cd[28..55]
  os << "subkey:  .space 192\n";   // 48 bits of Km
  if (hoist) os << "subkeys: .space 3072\n";  // all 16 x 48 bits, hoisted
  os << "er:      .space 192\n";   // E(R), then E(R) xor Km
  os << "sbval:   .space 128\n";   // raw S-box output bits
  os << "sout:    .space 128\n";   // f(R,K) after P
  os << "preout:  .space 256\n";   // R16 || L16
  if (options.declassify_output) os << ".declassified preout\n";
  if (options.shuffle_slots) {
    // Per-trace random-delay schedule: 16 per-round + 8 per-S-box slots,
    // zero by default (a zero schedule reproduces the unshuffled trace).
    os << "nop_tab: .space " << kShuffleSlotCount * 4 << "\n";
  }
  slots.emit_data(os);
  emit_offset_table(os, "ip_tab", kIp);
  emit_offset_table(os, "fp_tab", kIpInv);
  emit_offset_table(os, "e_tab", kE);
  emit_offset_table(os, "p_tab", kP);
  emit_offset_table(os, "pc1_tab", kPc1);
  emit_offset_table(os, "pc2_tab", kPc2);
  // Encryption rotates left by kShifts[m]; decryption rotates right by the
  // reversed schedule shifted one round (round 1 uses K16 with the C/D
  // halves exactly as PC-1 left them, since the 16 encryption rotations sum
  // to a full 28-bit revolution).
  os << "shift_tab:\n  .word ";
  for (std::size_t i = 0; i < kShifts.size(); ++i) {
    const int amount =
        options.decrypt ? (i == 0 ? 0 : kShifts[kShifts.size() - i]) : kShifts[i];
    os << (i ? ", " : "") << amount;
  }
  os << '\n';
  // S-box bit table: word at ((s*64 + idx)*4 + j)*4 bytes is bit j (MSB
  // first) of S_s[idx], idx = row*16 + col.
  os << "sbox_tab:\n";
  for (int s = 0; s < 8; ++s) {
    for (int idx = 0; idx < 64; ++idx) {
      const std::uint8_t v = kSbox[static_cast<std::size_t>(s)]
                                  [static_cast<std::size_t>(idx)];
      os << "  .word " << ((v >> 3) & 1) << ", " << ((v >> 2) & 1) << ", "
         << ((v >> 1) & 1) << ", " << (v & 1) << '\n';
    }
  }

  os << "\n.text\nmain:\n";
  TextEmitter e(os, slots);
  e.comment("frame setup: spill every base pointer to its local slot");
  e.line("la   $gp, " + slots.first());
  e.spill("ip_pt", "ip_tab");
  e.spill("ip_ps", "plain");
  e.spill("ip_pd", "lr");
  e.spill("pc1_pt", "pc1_tab");
  e.spill("pc1_ps", "key");
  e.spill("pc1_pd", "cd");
  e.spill("pc2_pt", "pc2_tab");
  e.spill("pc2_ps", "cd");
  e.spill("pc2_pd", "subkey");
  e.spill("e_pt", "e_tab");
  e.spill("e_ps", "lr", 128);  // R half
  e.spill("e_pd", "er");
  e.spill("p_pt", "p_tab");
  e.spill("p_ps", "sbval");
  e.spill("p_pd", "sout");
  e.spill("fp_pt", "fp_tab");
  e.spill("fp_ps", "preout");
  e.spill("fp_pd", "cipher");
  e.spill("xor_pa", "er");
  e.spill("xor_pb", "subkey");
  e.spill("sb_pe", "er");
  e.spill("sb_po", "sbval");
  e.spill("sb_pb", "sbox_tab");
  e.spill("upd_pl", "lr");
  e.spill("upd_pr", "lr", 128);
  e.spill("upd_pf", "sout");
  e.spill("rotc_pb", "cd");
  e.spill("rotd_pb", "cd", 112);  // D half
  e.spill("prer_ps", "lr", 128);
  e.spill("prer_pd", "preout");
  e.spill("prel_ps", "lr");
  e.spill("prel_pd", "preout", 128);
  e.spill("sh_pt", "shift_tab");
  if (hoist) e.spill("ks_pb", "subkeys");
  if (options.shuffle_slots) e.spill("nop_pb", "nop_tab");
  if (options.cbc_chain) {
    e.spill("cbc_ps", "iv");
    e.spill("cbc_pd", options.decrypt ? "cipher" : "plain");
  }

  // Rotate C and D by shift_tab[var_m]; `prefix` disambiguates the loop
  // labels between the in-round and the hoisted key-schedule placement
  // (empty prefix reproduces the classic program byte for byte).
  const auto emit_rotations = [&](const std::string& prefix) {
    e.line("lw   $t9, " + slots.at("var_m"));
    e.line("sll  $t8, $t9, 2");
    e.line("lw   $t0, " + slots.at("sh_pt"));
    e.line("addu $t0, $t0, $t8");
    e.line("lw   $t1, 0($t0)");  // rotation count (public; 0 in round 1 of
    e.line("sw   $t1, " + slots.at("var_n"));  // the decryption schedule)
    e.line("beq  $t1, $zero, " + prefix + "rot_done");
    e.label(prefix + "rot_loop");
    if (options.decrypt) {
      e.rotate_once_right(prefix + "rot_c", "rotc_pb");
      e.rotate_once_right(prefix + "rot_d", "rotd_pb");
    } else {
      e.rotate_once(prefix + "rot_c", "rotc_pb");
      e.rotate_once(prefix + "rot_d", "rotd_pb");
    }
    e.line("lw   $t1, " + slots.at("var_n"));
    e.line("addiu $t1, $t1, -1");
    e.line("sw   $t1, " + slots.at("var_n"));
    e.line("bne  $t1, $zero, " + prefix + "rot_loop");
    e.label(prefix + "rot_done");
  };

  // var_m += 1; loop back while var_m != 16.
  const auto emit_m_step = [&](const std::string& loop) {
    e.line("lw   $t9, " + slots.at("var_m"));
    e.line("addiu $t9, $t9, 1");
    e.line("sw   $t9, " + slots.at("var_m"));
    e.line("li   $k1, 16");
    e.line("bne  $t9, $k1, " + loop);
  };

  // slots[dst_slot] = subkeys + var_m * 192 (the 48-word subkey of round m).
  const auto emit_round_subkey_ptr = [&](const std::string& dst_slot) {
    e.line("lw   $t9, " + slots.at("var_m"));
    e.line("sll  $t0, $t9, 6");   // m * 64
    e.line("sll  $t1, $t9, 7");   // m * 128
    e.line("addu $t0, $t0, $t1");
    e.line("lw   $t1, " + slots.at("ks_pb"));
    e.line("addu $t0, $t0, $t1");
    e.line("sw   $t0, " + slots.at(dst_slot));
  };

  // Data-driven shuffle delay: spin nop_tab[$t9] times.  The slot value is
  // public (the schedule hides, it is not secret), so the loop stays
  // insecure under every masking policy; a zero slot costs a handful of
  // data-independent cycles and keeps the unshuffled trace shape.
  const auto emit_delay = [&](const std::string& name) {
    e.line("sll  $t8, $t9, 2");
    e.line("lw   $t0, " + slots.at("nop_pb"));
    e.line("addu $t0, $t0, $t8");
    e.line("lw   $t1, 0($t0)");  // delay count (public schedule entry)
    e.line("beq  $t1, $zero, " + name + "_done");
    e.label(name + "_loop");
    e.line("addiu $t1, $t1, -1");
    e.line("bne  $t1, $zero, " + name + "_loop");
    e.label(name + "_done");
  };

  // CBC input chaining (encryption): plain[i] ^= iv[i] before IP.  Both
  // operands are public — the iv is the previous ciphertext block — so no
  // masking policy secures the loop.  Placed after the fork marker in the
  // hoisted shape so forked blocks can poke a fresh chaining value.
  const auto emit_cbc_in = [&] {
    if (!options.cbc_chain || options.decrypt) return;
    e.comment("CBC chaining: plain[i] ^= iv[i] (public previous cipher)");
    e.xor_into_loop("cbc_loop", 64, "cbc_ps", "cbc_pd");
  };

  if (!hoist) {
    emit_cbc_in();
    e.comment("initial permutation: lr[i] = plain[IP[i]]  (no secret involved)");
    e.perm_loop("ip_loop", 64, "ip_pt", "ip_ps", "ip_pd");
  }

  e.comment("key permutation PC-1: cd[i] = key[PC1[i]]  (secure: reads key)");
  e.perm_loop("pc1_loop", 56, "pc1_pt", "pc1_ps", "pc1_pd");

  if (hoist) {
    e.comment("hoisted key schedule: subkeys[m*48..] = PC2(rotate(C, D))");
    e.comment("for every round, before any plaintext use");
    e.line("sw   $zero, " + slots.at("var_m"));
    e.label("ks_loop");
    emit_rotations("ks_");
    emit_round_subkey_ptr("pc2_pd");
    e.comment("PC-2: subkeys[m*48 + i] = cd[PC2[i]]");
    e.perm_loop("pc2_loop", 48, "pc2_pt", "pc2_ps", "pc2_pd");
    emit_m_step("ks_loop");

    e.comment("fork point: key schedule complete, plaintext untouched —");
    e.comment("snapshot capture resumes per-plaintext runs from here");
    e.line("fork");

    emit_cbc_in();
    e.comment("initial permutation: lr[i] = plain[IP[i]]  (no secret involved)");
    e.perm_loop("ip_loop", 64, "ip_pt", "ip_ps", "ip_pd");
  }

  e.comment("sixteen rounds; m lives in var_m");
  e.line("sw   $zero, " + slots.at("var_m"));
  e.label("round_loop");

  if (options.shuffle_slots) {
    e.comment("shuffle: random delay nop_tab[m] before the round body");
    e.line("lw   $t9, " + slots.at("var_m"));
    emit_delay("nop_round");
  }

  if (hoist) {
    e.comment("select the precomputed round subkey: xor_pb = &subkeys[m*48]");
    emit_round_subkey_ptr("xor_pb");
  } else {
    e.comment(options.decrypt
                  ? "key generation: rotate C and D right by shift_tab[m]"
                  : "key generation: rotate C and D left by shift_tab[m]");
    emit_rotations("");

    e.comment("PC-2: subkey[i] = cd[PC2[i]]");
    e.perm_loop("pc2_loop", 48, "pc2_pt", "pc2_ps", "pc2_pd");
  }

  e.comment("expansion: er[i] = R[E[i]]");
  e.perm_loop("e_loop", 48, "e_pt", "e_ps", "e_pd");

  e.comment("er[i] = er[i] (+) subkey[i]");
  e.line("sw   $zero, " + slots.at("var_i"));
  e.label("xor_loop");
  e.line("lw   $t9, " + slots.at("var_i"));
  e.line("sll  $t8, $t9, 2");
  e.line("lw   $t0, " + slots.at("xor_pa"));
  e.line("addu $t0, $t0, $t8");
  e.line("lw   $t1, 0($t0)");  // er[i]
  e.line("lw   $t2, " + slots.at("xor_pb"));
  e.line("addu $t2, $t2, $t8");
  e.line("lw   $t3, 0($t2)");  // subkey[i]
  e.line("xor  $t4, $t1, $t3");
  e.line("sw   $t4, 0($t0)");
  e.step_i("xor_loop", 48);

  e.comment("S-boxes: sbval[4s..4s+3] = S_s(er[6s..6s+5]); s lives in var_s");
  e.line("sw   $zero, " + slots.at("var_s"));
  e.label("sbox_loop");
  if (options.shuffle_slots) {
    e.comment("shuffle: random delay nop_tab[16 + s] before S-box s");
    e.line("lw   $t9, " + slots.at("var_s"));
    e.line("addiu $t9, $t9, 16");
    emit_delay("nop_sbox");
  }
  e.line("lw   $a0, " + slots.at("var_s"));
  e.line("sll  $t1, $a0, 4");      // s*16
  e.line("sll  $t2, $a0, 3");      // s*8
  e.line("addu $t1, $t1, $t2");    // s*24
  e.line("lw   $t0, " + slots.at("sb_pe"));
  e.line("addu $a1, $t0, $t1");    // 6-bit group pointer
  e.line("sll  $t2, $a0, 4");
  e.line("lw   $t0, " + slots.at("sb_po"));
  e.line("addu $a2, $t0, $t2");    // output pointer
  e.line("lw   $t0, 0($a1)");      // b1 (FIPS numbering within the group)
  e.line("lw   $t1, 4($a1)");      // b2
  e.line("lw   $t2, 8($a1)");      // b3
  e.line("lw   $t3, 12($a1)");     // b4
  e.line("lw   $t4, 16($a1)");     // b5
  e.line("lw   $t5, 20($a1)");     // b6
  e.line("sll  $t6, $t0, 1");      // idx = b1 b6 b2 b3 b4 b5 (row*16+col)
  e.line("or   $t6, $t6, $t5");
  e.line("sll  $t6, $t6, 1");
  e.line("or   $t6, $t6, $t1");
  e.line("sll  $t6, $t6, 1");
  e.line("or   $t6, $t6, $t2");
  e.line("sll  $t6, $t6, 1");
  e.line("or   $t6, $t6, $t3");
  e.line("sll  $t6, $t6, 1");
  e.line("or   $t6, $t6, $t4");
  e.line("sll  $t6, $t6, 4");      // 16 bytes per table entry
  e.line("sll  $t7, $a0, 10");     // 1024 bytes per S-box
  e.line("lw   $t0, " + slots.at("sb_pb"));
  e.line("addu $t7, $t0, $t7");
  e.line("addu $t7, $t7, $t6");    // key-dependent table address
  e.line("lw   $t8, 0($t7)");      // secure indexing (4 output bits)
  e.line("sw   $t8, 0($a2)");
  e.line("lw   $t8, 4($t7)");
  e.line("sw   $t8, 4($a2)");
  e.line("lw   $t8, 8($t7)");
  e.line("sw   $t8, 8($a2)");
  e.line("lw   $t8, 12($t7)");
  e.line("sw   $t8, 12($a2)");
  e.line("lw   $a0, " + slots.at("var_s"));
  e.line("sw   $a0, " + slots.at("var_t"));
  e.line("lw   $at, " + slots.at("var_t"));
  e.line("move $v0, $a0");
  e.line("sll  $at, $v0, 1");
  e.line("addu $v0, $at, $a0");
  e.line("move $at, $v0");
  e.line("addiu $a0, $a0, 1");
  e.line("sw   $a0, " + slots.at("var_s"));
  e.line("li   $k1, 8");
  e.line("bne  $a0, $k1, sbox_loop");

  e.comment("P permutation: sout[i] = sbval[P[i]]");
  e.perm_loop("p_loop", 32, "p_pt", "p_ps", "p_pd");

  e.comment("round update: Lm = Rm-1 ; Rm = Lm-1 (+) f(Rm-1, Km)");
  e.line("sw   $zero, " + slots.at("var_i"));
  e.label("upd_loop");
  e.line("lw   $t9, " + slots.at("var_i"));
  e.line("sll  $t8, $t9, 2");
  e.line("lw   $t0, " + slots.at("upd_pl"));
  e.line("addu $t0, $t0, $t8");    // &L[i]
  e.line("lw   $t1, " + slots.at("upd_pr"));
  e.line("addu $t1, $t1, $t8");    // &R[i]
  e.line("lw   $t2, " + slots.at("upd_pf"));
  e.line("addu $t2, $t2, $t8");    // &f[i]
  e.line("lw   $t3, 0($t1)");      // old R bit
  e.line("lw   $t4, 0($t0)");      // old L bit
  e.line("lw   $t5, 0($t2)");      // f bit
  e.line("xor  $t6, $t4, $t5");
  e.line("sw   $t6, 0($t1)");      // new R
  e.line("sw   $t3, 0($t0)");      // new L
  e.step_i("upd_loop", 32);

  e.line("lw   $t9, " + slots.at("var_m"));
  e.line("addiu $t9, $t9, 1");
  e.line("sw   $t9, " + slots.at("var_m"));
  e.line("li   $k1, 16");
  e.line("bne  $t9, $k1, round_loop");

  e.comment("pre-output: preout = R16 || L16 (declassified: equals the");
  e.comment("cipher up to a public permutation)");
  e.copy_loop("pre_r", 32, "prer_ps", "prer_pd");
  e.copy_loop("pre_l", 32, "prel_ps", "prel_pd");

  e.comment("output inverse permutation: cipher[i] = preout[IPinv[i]]");
  e.comment("(insecure, Fig. 2(b))");
  e.perm_loop("fp_loop", 64, "fp_pt", "fp_ps", "fp_pd");

  if (options.cbc_chain && options.decrypt) {
    e.comment("CBC output chaining: cipher[i] ^= iv[i] (declassified value");
    e.comment("xor public previous cipher block)");
    e.xor_into_loop("cbc_loop", 64, "cbc_ps", "cbc_pd");
  }

  e.line("halt");
  return os.str();
}

void poke_key(assembler::Program& program, std::uint64_t key) {
  poke_block(program, "key", key);
}

void poke_plaintext(assembler::Program& program, std::uint64_t plaintext) {
  poke_block(program, "plain", plaintext);
}

void poke_plaintext(sim::DataMemory& memory, const assembler::Program& program,
                    std::uint64_t plaintext) {
  const assembler::DataSymbol* s = program.find_symbol("plain");
  if (s == nullptr || s->size_bytes < 64 * 4) {
    throw std::invalid_argument("poke_plaintext: no plain symbol");
  }
  for (unsigned i = 0; i < 64; ++i) {
    memory.store_word(s->address + i * 4,
                      static_cast<std::uint32_t>(
                          util::bit_of64(plaintext, 63 - i)));
  }
}

void poke_iv(assembler::Program& program, std::uint64_t iv) {
  const assembler::DataSymbol* s = program.find_symbol("iv");
  if (s == nullptr || s->size_bytes < 64 * 4) {
    throw std::invalid_argument(
        "poke_iv: program has no iv symbol (generate with cbc_chain)");
  }
  poke_block(program, "iv", iv);
}

void poke_iv(sim::DataMemory& memory, const assembler::Program& program,
             std::uint64_t iv) {
  const assembler::DataSymbol* s = program.find_symbol("iv");
  if (s == nullptr || s->size_bytes < 64 * 4) {
    throw std::invalid_argument(
        "poke_iv: program has no iv symbol (generate with cbc_chain)");
  }
  for (unsigned i = 0; i < 64; ++i) {
    memory.store_word(s->address + i * 4,
                      static_cast<std::uint32_t>(util::bit_of64(iv, 63 - i)));
  }
}

bool has_iv_symbol(const assembler::Program& program) {
  const assembler::DataSymbol* s = program.find_symbol("iv");
  return s != nullptr && s->size_bytes >= 64 * 4;
}

namespace {

const assembler::DataSymbol* nop_table_symbol(
    const assembler::Program& program, const std::vector<std::uint32_t>& delays) {
  if (delays.size() != kShuffleSlotCount) {
    throw std::invalid_argument(
        "poke_nop_schedule: expected " + std::to_string(kShuffleSlotCount) +
        " delay slots, got " + std::to_string(delays.size()));
  }
  const assembler::DataSymbol* s = program.find_symbol("nop_tab");
  if (s == nullptr || s->size_bytes < kShuffleSlotCount * 4) {
    throw std::invalid_argument(
        "poke_nop_schedule: program has no nop_tab symbol (generate with "
        "shuffle_slots)");
  }
  return s;
}

}  // namespace

void poke_nop_schedule(assembler::Program& program,
                       const std::vector<std::uint32_t>& delays) {
  const assembler::DataSymbol* s = nop_table_symbol(program, delays);
  for (std::size_t i = 0; i < kShuffleSlotCount; ++i) {
    program.poke_word(s->address + static_cast<std::uint32_t>(i) * 4,
                      delays[i]);
  }
}

void poke_nop_schedule(sim::DataMemory& memory,
                       const assembler::Program& program,
                       const std::vector<std::uint32_t>& delays) {
  const assembler::DataSymbol* s = nop_table_symbol(program, delays);
  for (std::size_t i = 0; i < kShuffleSlotCount; ++i) {
    memory.store_word(s->address + static_cast<std::uint32_t>(i) * 4,
                      delays[i]);
  }
}

bool has_nop_table(const assembler::Program& program) {
  const assembler::DataSymbol* s = program.find_symbol("nop_tab");
  return s != nullptr && s->size_bytes >= kShuffleSlotCount * 4;
}

std::uint64_t read_cipher(const sim::DataMemory& memory,
                          const assembler::Program& program) {
  const assembler::DataSymbol* s = program.find_symbol("cipher");
  if (s == nullptr || s->size_bytes < 64 * 4) {
    throw std::invalid_argument("read_cipher: no cipher symbol");
  }
  std::vector<std::uint32_t> bits(64);
  for (unsigned i = 0; i < 64; ++i) {
    bits[i] = memory.load_word(s->address + i * 4) & 1u;
  }
  return util::pack_block_msb_first(bits);
}

}  // namespace emask::des
