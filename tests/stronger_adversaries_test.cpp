// Tests for the stronger-adversary subsystem: MLPA, the collision
// attack, traces-to-disclosure curves, and their campaign artifacts.
// All suites are prefixed `Adversary` so CI can select them with
// `ctest -R '^Adversary'`.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/collision.hpp"
#include "analysis/disclosure.hpp"
#include "analysis/mlpa.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "des/des.hpp"
#include "util/rng.hpp"

namespace emask {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int parity(unsigned v) { return std::popcount(v) & 1; }

// ------------------------------------------------------------------ MLPA

TEST(AdversaryMlpa, LinearBiasMatchesExhaustiveCount) {
  for (const int sbox : {0, 3, 7}) {
    for (const int in_mask : {0x01, 0x15, 0x2A, 0x3F}) {
      for (const int out_mask : {0x1, 0x6, 0xF}) {
        int agree = 0;
        for (int x = 0; x < 64; ++x) {
          const int in = parity(static_cast<unsigned>(in_mask & x));
          const int out = parity(static_cast<unsigned>(
              out_mask & des::sbox_lookup(
                             sbox, static_cast<std::uint8_t>(x))));
          if (in == out) ++agree;
        }
        const double expected = agree / 64.0 - 0.5;
        EXPECT_DOUBLE_EQ(
            analysis::sbox_linear_bias(sbox, in_mask, out_mask), expected)
            << "sbox " << sbox << " a=" << in_mask << " b=" << out_mask;
      }
    }
  }
}

TEST(AdversaryMlpa, TrivialMasksHaveZeroBias) {
  // A balanced input parity against the constant-zero parity (b = 0), or
  // the constant-zero parity against a balanced S-box output combination
  // (a = 0), agrees exactly half the time.
  EXPECT_DOUBLE_EQ(analysis::sbox_linear_bias(0, 0x15, 0x0), 0.0);
  EXPECT_DOUBLE_EQ(analysis::sbox_linear_bias(0, 0x0, 0x5), 0.0);
}

// GF(2) rank of a set of 6-bit masks.
int mask_rank(const std::vector<analysis::LinearApprox>& approx) {
  std::vector<int> basis;
  for (const analysis::LinearApprox& a : approx) {
    int m = a.in_mask;
    for (const int b : basis) m = std::min(m, m ^ b);
    if (m != 0) basis.push_back(m);
  }
  return static_cast<int>(basis.size());
}

TEST(AdversaryMlpa, SelectedApproximationsSatisfyDeviceConstraints) {
  for (int sbox = 0; sbox < 8; ++sbox) {
    const auto approx = analysis::select_approximations(sbox, 10);
    ASSERT_GE(approx.size(), 6u) << "sbox " << sbox;
    std::set<int> in_masks;
    for (const analysis::LinearApprox& a : approx) {
      EXPECT_EQ(a.sbox, sbox);
      // Single output bit, multi-bit input mask, non-degenerate bias.
      EXPECT_EQ(std::popcount(static_cast<unsigned>(a.out_mask)), 1);
      EXPECT_GE(std::popcount(static_cast<unsigned>(a.in_mask)), 2);
      EXPECT_NE(a.bias, 0.0);
      EXPECT_DOUBLE_EQ(
          a.bias, analysis::sbox_linear_bias(sbox, a.in_mask, a.out_mask));
      // One approximation per in_mask: same-mask selection functions are
      // identical evidence, a second interpretation only contradicts.
      EXPECT_TRUE(in_masks.insert(a.in_mask).second)
          << "duplicate in_mask " << a.in_mask << " for sbox " << sbox;
    }
    // Wrong-guess cancellation needs the in_masks to span GF(2)^6.
    EXPECT_EQ(mask_rank(approx), 6) << "sbox " << sbox;
    // Selection is deterministic.
    const auto again = analysis::select_approximations(sbox, 10);
    ASSERT_EQ(again.size(), approx.size());
    for (std::size_t i = 0; i < approx.size(); ++i) {
      EXPECT_EQ(again[i].in_mask, approx[i].in_mask);
      EXPECT_EQ(again[i].out_mask, approx[i].out_mask);
    }
  }
}

TEST(AdversaryMlpa, SelectionParityIsPublicInputParity) {
  util::Rng rng(0x5EED);
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t pt = rng.next_u64();
    for (const int sbox : {0, 5}) {
      const std::uint8_t e = des::round1_sbox_input(pt, sbox);
      EXPECT_EQ(analysis::MlpaAttack::selection_parity(pt, sbox, 0x2B),
                parity(0x2Bu & e));
    }
  }
}

// Synthetic no-simulator device: an 8-cycle trace whose cycle b carries
// output bit b of S(e ^ k) (cycles 4..7 carry uncorrelated ballast).
analysis::Trace synthetic_sbox_trace(std::uint64_t pt, int sbox, int key,
                                     util::Rng& rng) {
  std::vector<double> samples(8, 0.0);
  const std::uint8_t e = des::round1_sbox_input(pt, sbox);
  const std::uint8_t v = des::sbox_lookup(
      sbox, static_cast<std::uint8_t>(e ^ key));
  for (int b = 0; b < 4; ++b)
    samples[static_cast<std::size_t>(b)] = (v >> b) & 1;
  for (int b = 4; b < 8; ++b)
    samples[static_cast<std::size_t>(b)] =
        static_cast<double>((rng.next_u64() >> 13) & 1);
  return analysis::Trace(std::move(samples));
}

TEST(AdversaryMlpa, RecoversKeyChunkFromSyntheticBitLeakage) {
  for (const int key : {0, 6, 0x3F, 0x2A}) {
    analysis::MlpaConfig cfg;
    cfg.sbox = 2;
    analysis::MlpaAttack mlpa(cfg);
    util::Rng rng(0xACE + static_cast<std::uint64_t>(key));
    for (int i = 0; i < 512; ++i) {
      const std::uint64_t pt = rng.next_u64();
      mlpa.add_trace(pt, synthetic_sbox_trace(pt, cfg.sbox, key, rng));
    }
    const analysis::MlpaResult r = mlpa.solve();
    EXPECT_EQ(r.best_guess, key);
    EXPECT_GT(r.margin(), 1.0);
  }
}

// ------------------------------------------------------------- collision

TEST(AdversaryCollision, RecoversKeyChunkFromSyntheticLeakage) {
  // The collision statistic never sees a power model, so it must recover
  // the chunk from *any* injective leakage of the S-box output — use the
  // same per-bit synthetic traces as the MLPA test.
  for (const int key : {0, 11, 0x31}) {
    analysis::CollisionConfig cfg;
    cfg.sbox = 0;
    analysis::CollisionAttack collision(cfg);
    util::Rng rng(0xBEEF + static_cast<std::uint64_t>(key));
    for (int i = 0; i < 2048; ++i) {
      const std::uint64_t pt = rng.next_u64();
      collision.add_trace(pt, synthetic_sbox_trace(pt, cfg.sbox, key, rng));
    }
    const analysis::CollisionResult r = collision.solve();
    EXPECT_EQ(r.classes_seen, 64u);
    EXPECT_EQ(r.best_guess, key);
  }
}

TEST(AdversaryCollision, LeveledClassMeansScoreNothing) {
  // A masked device levels the per-class means: with class-independent
  // traces no guess may stand out and the margin must collapse.
  analysis::CollisionConfig cfg;
  analysis::CollisionAttack collision(cfg);
  util::Rng rng(0xD00D);
  for (int i = 0; i < 2048; ++i) {
    const std::uint64_t pt = rng.next_u64();
    std::vector<double> samples(8);
    for (double& v : samples)
      v = static_cast<double>((rng.next_u64() >> 7) & 0xFF);
    collision.add_trace(pt, analysis::Trace(std::move(samples)));
  }
  const analysis::CollisionResult r = collision.solve();
  EXPECT_LT(r.best_score, 0.2);
}

// ------------------------------------------------------------ disclosure

TEST(AdversaryDisclosure, ScheduleIsPureAscendingAndEndsAtTotal) {
  const auto a = analysis::DisclosureCurve::schedule(600);
  const auto b = analysis::DisclosureCurve::schedule(600);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.back(), 600u);
  EXPECT_GE(a.front(), 2u);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
  // Degenerate totals still produce a usable schedule.
  EXPECT_EQ(analysis::DisclosureCurve::schedule(2),
            std::vector<std::size_t>{2});
  const auto tiny = analysis::DisclosureCurve::schedule(5);
  EXPECT_EQ(tiny.back(), 5u);
}

TEST(AdversaryDisclosure, RanksBreakScoreTiesByGuessIndex) {
  analysis::DisclosureCurve curve(4);
  curve.add_checkpoint(10, {1.0, 2.0, 2.0, 0.5});
  ASSERT_EQ(curve.checkpoints().size(), 1u);
  const auto& cp = curve.checkpoints().front();
  EXPECT_EQ(cp.ranks, (std::vector<int>{2, 0, 1, 3}));
  EXPECT_EQ(curve.final_rank(1), 0);
  EXPECT_EQ(curve.final_rank(2), 1);
}

TEST(AdversaryDisclosure, TracesToDisclosureResetsWhenOvertaken) {
  analysis::DisclosureCurve curve(2);
  curve.add_checkpoint(10, {2.0, 1.0});  // guess 0 leads early...
  curve.add_checkpoint(20, {1.0, 2.0});  // ...is overtaken...
  curve.add_checkpoint(30, {2.0, 1.0});  // ...and leads to the end.
  curve.add_checkpoint(40, {2.0, 1.0});
  EXPECT_EQ(curve.traces_to_disclosure(0), 30u);  // not 10
  EXPECT_EQ(curve.traces_to_disclosure(1), 0u);   // never disclosed
  EXPECT_EQ(curve.final_rank(0), 0);
  EXPECT_EQ(curve.final_rank(1), 1);
}

TEST(AdversaryDisclosure, EmptyCurveHasNoVerdict) {
  const analysis::DisclosureCurve curve;
  EXPECT_TRUE(curve.empty());
  EXPECT_EQ(curve.traces_to_disclosure(0), 0u);
  EXPECT_EQ(curve.final_rank(0), -1);
}

// -------------------------------------------------------- campaign wiring

TEST(AdversarySpec, UnknownAxisErrorsListAcceptedNames) {
  // The error message is generated from the same table that drives
  // parsing, so every accepted value — including the new attacks — must
  // appear in it.
  try {
    (void)campaign::CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                        "policy = original\n"
                                        "analysis = psychic\n");
    FAIL() << "expected SpecError";
  } catch (const campaign::SpecError& e) {
    const std::string what = e.what();
    for (const char* name :
         {"energy", "dpa", "cpa", "tvla", "second_order", "mlpa",
          "collision"}) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "missing '" << name << "' in: " << what;
    }
  }
}

TEST(AdversarySpec, NewAttacksAreDesOnly) {
  for (const char* analysis : {"mlpa", "collision"}) {
    EXPECT_THROW(
        (void)campaign::CampaignSpec::parse(
            std::string("[campaign]\nname = t\n[axes]\ncipher = aes\n"
                        "policy = original\nanalysis = ") +
            analysis + "\ntraces = 8\n")
            .expand(),
        campaign::SpecError)
        << analysis;
  }
}

TEST(AdversarySpec, ManifestMapsNewAttacksToDisclosureArtifacts) {
  using campaign::Analysis;
  EXPECT_TRUE(campaign::analysis_has_disclosure(Analysis::kMlpa));
  EXPECT_TRUE(campaign::analysis_has_disclosure(Analysis::kCollision));
  EXPECT_TRUE(campaign::analysis_has_disclosure(Analysis::kDpa));
  EXPECT_FALSE(campaign::analysis_has_disclosure(Analysis::kEnergy));
  EXPECT_FALSE(campaign::analysis_has_disclosure(Analysis::kTvla));
  EXPECT_EQ(campaign::scenario_disclosure_path("0000-x"),
            "scenarios/0000-x/disclosure.csv");
}

// A small all-attacks campaign: 3 scenarios, 24 traces each.  Windows are
// the per-S-box ones the runner derives itself; the trace budget is far
// below disclosure, but every byte of the artifact must still be stable.
constexpr const char* kAttackSpec =
    "[campaign]\n"
    "name = adversary_artifacts\n"
    "[axes]\n"
    "policy = original\n"
    "analysis = dpa, mlpa, collision\n"
    "traces = 24\n";

std::vector<fs::path> disclosure_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir / "scenarios")) {
    const fs::path csv = entry.path() / "disclosure.csv";
    if (fs::exists(csv)) files.push_back(csv);
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(AdversaryRunner, DisclosureIsByteIdenticalAcrossThreadCounts) {
  const campaign::CampaignSpec spec =
      campaign::CampaignSpec::parse(kAttackSpec);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_adv_jobs";
  fs::remove_all(base);

  std::vector<fs::path> dirs;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    campaign::RunnerOptions options;
    options.out_dir = (base / ("j" + std::to_string(jobs))).string();
    options.jobs = jobs;
    options.quiet = true;
    EXPECT_TRUE(campaign::CampaignRunner(spec, options).run().complete);
    dirs.push_back(options.out_dir);
  }

  const auto reference = disclosure_files(dirs[0]);
  ASSERT_EQ(reference.size(), 3u)
      << "every attack scenario must write disclosure.csv";
  for (std::size_t d = 1; d < dirs.size(); ++d) {
    const auto other = disclosure_files(dirs[d]);
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(read_file(reference[i]), read_file(other[i]))
          << "mismatch at " << other[i];
    }
  }
  fs::remove_all(base);
}

TEST(AdversaryRunner, DisclosureSurvivesInterruptAndResume) {
  const campaign::CampaignSpec spec =
      campaign::CampaignSpec::parse(kAttackSpec);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_adv_resume";
  fs::remove_all(base);

  campaign::RunnerOptions straight;
  straight.out_dir = (base / "straight").string();
  straight.jobs = 2;
  straight.quiet = true;
  EXPECT_TRUE(campaign::CampaignRunner(spec, straight).run().complete);

  campaign::RunnerOptions interrupted = straight;
  interrupted.out_dir = (base / "resumed").string();
  interrupted.limit = 1;
  EXPECT_FALSE(campaign::CampaignRunner(spec, interrupted).run().complete);
  interrupted.limit = 0;
  interrupted.resume = true;
  interrupted.jobs = 1;
  const campaign::CampaignReport report =
      campaign::CampaignRunner(spec, interrupted).run();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.resumed, 1u);

  const auto reference = disclosure_files(base / "straight");
  const auto resumed = disclosure_files(base / "resumed");
  ASSERT_EQ(reference.size(), 3u);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(read_file(reference[i]), read_file(resumed[i]))
        << "mismatch at " << resumed[i];
  }
  EXPECT_EQ(read_file(base / "straight" / "manifest.json"),
            read_file(base / "resumed" / "manifest.json"));
  fs::remove_all(base);
}

}  // namespace
}  // namespace emask
