// AES-128: golden FIPS-197 vectors and the simulated byte-per-word
// implementation under every masking policy.
#include <gtest/gtest.h>

#include "aes/aes128.hpp"
#include "aes/asm_generator.hpp"
#include "assembler/assembler.hpp"
#include "compiler/masking.hpp"
#include "core/masking_pipeline.hpp"
#include "sim/interpreter.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"

namespace emask::aes {
namespace {

Key seq_key() {
  Key k;
  for (int i = 0; i < 16; ++i) k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return k;
}

Block fips_plain() {
  Block b;
  for (int i = 0; i < 16; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i * 16 + i);
  }
  return b;  // 00 11 22 ... ff
}

TEST(AesGolden, Fips197AppendixCVector) {
  const Block ct = encrypt_block(fips_plain(), seq_key());
  const Block expected = {0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30,
                          0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5, 0x5A};
  EXPECT_EQ(ct, expected);
}

TEST(AesGolden, Fips197AppendixBVector) {
  const Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                   0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  const Block pt = {0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
                    0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34};
  const Block expected = {0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB,
                          0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A, 0x0B, 0x32};
  EXPECT_EQ(encrypt_block(pt, key), expected);
}

TEST(AesGolden, SboxProperties) {
  // Bijection, fixed reference points, and inverse consistency.
  bool seen[256] = {};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = sbox(static_cast<std::uint8_t>(i));
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
    EXPECT_EQ(inv_sbox(s), static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(sbox(0x00), 0x63);
  EXPECT_EQ(sbox(0x01), 0x7C);
  EXPECT_EQ(sbox(0x53), 0xED);  // FIPS 197 example
}

TEST(AesGolden, DecryptInvertsEncrypt) {
  util::Rng rng(0xAE5);
  for (int trial = 0; trial < 100; ++trial) {
    Key key;
    Block pt;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(decrypt_block(encrypt_block(pt, key), key), pt);
  }
}

TEST(AesGolden, KeyScheduleFirstExpansion) {
  // FIPS 197 Appendix A.1: w[4] for the 2b7e... key is a0fafe17.
  const Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                   0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  const KeySchedule ks = expand_key(key);
  EXPECT_EQ(ks.bytes[16], 0xA0);
  EXPECT_EQ(ks.bytes[17], 0xFA);
  EXPECT_EQ(ks.bytes[18], 0xFE);
  EXPECT_EQ(ks.bytes[19], 0x17);
}

TEST(AesGolden, XtimeMatchesDefinition) {
  EXPECT_EQ(xtime(0x57), 0xAE);
  EXPECT_EQ(xtime(0xAE), 0x47);  // FIPS 197 Sec. 4.2.1 example chain
  EXPECT_EQ(xtime(0x80), 0x1B);
}

// ---- On the simulated processor ----

TEST(AesOnPipeline, MatchesGoldenFipsVector) {
  const auto program =
      assembler::assemble(generate_aes_asm(seq_key(), fips_plain()));
  sim::Pipeline pipeline(program);
  pipeline.run();
  EXPECT_EQ(read_cipher(pipeline.memory(), program),
            encrypt_block(fips_plain(), seq_key()));
}

class AesPolicyTest : public ::testing::TestWithParam<compiler::Policy> {};

TEST_P(AesPolicyTest, CorrectUnderEveryPolicy) {
  util::Rng rng(0xAE6 + static_cast<std::uint64_t>(GetParam()));
  Key key;
  Block pt;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto pipeline =
      core::MaskingPipeline::from_source(generate_aes_asm(key, pt), GetParam());
  sim::Pipeline machine(pipeline.program());
  machine.run();
  EXPECT_EQ(read_cipher(machine.memory(), pipeline.program()),
            encrypt_block(pt, key));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AesPolicyTest,
                         ::testing::Values(compiler::Policy::kOriginal,
                                           compiler::Policy::kSelective,
                                           compiler::Policy::kNaiveLoadStore,
                                           compiler::Policy::kAllSecure),
                         [](const auto& info) {
                           return std::string(
                               compiler::policy_name(info.param));
                         });

TEST(AesOnPipeline, SliceCleanAndSecuresIndexing) {
  const auto pipeline = core::MaskingPipeline::from_source(
      generate_aes_asm(seq_key(), fips_plain()), compiler::Policy::kSelective);
  for (const auto& d : pipeline.mask_result().slice.diagnostics) {
    ADD_FAILURE() << "diagnostic: " << d.message;
  }
  EXPECT_GT(pipeline.mask_result().secured_count, 50u);
  EXPECT_LT(pipeline.mask_result().secured_count,
            pipeline.program().text.size());
}

TEST(AesOnPipeline, MaskingFlattensKeyDifferential) {
  const auto masked = core::MaskingPipeline::from_source(
      generate_aes_asm(seq_key(), fips_plain()), compiler::Policy::kSelective);
  Key key2 = seq_key();
  key2[5] ^= 0x20;
  assembler::Program image2 = masked.program();
  poke_key(image2, key2);
  const auto d =
      masked.run_raw().trace.difference(masked.run_image(image2).trace);
  // Flat everywhere except the final output loop (public ciphertext).
  const auto body = d.slice(0, d.size() - 400);
  EXPECT_EQ(body.max_abs(), 0.0);

  const auto original = core::MaskingPipeline::from_source(
      generate_aes_asm(seq_key(), fips_plain()), compiler::Policy::kOriginal);
  assembler::Program image2o = original.program();
  poke_key(image2o, key2);
  const auto d_orig =
      original.run_raw().trace.difference(original.run_image(image2o).trace);
  EXPECT_GT(d_orig.slice(0, d_orig.size() - 400).max_abs(), 0.0);
}

TEST(AesOnPipeline, DecryptionInvertsEncryptionOnSimulator) {
  util::Rng rng(0xAE7);
  for (int trial = 0; trial < 2; ++trial) {
    Key key;
    Block pt;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Block ct = encrypt_block(pt, key);
    AesAsmOptions opts;
    opts.decrypt = true;
    const auto program = assembler::assemble(generate_aes_asm(key, ct, opts));
    sim::Pipeline machine(program);
    machine.run();
    EXPECT_EQ(read_cipher(machine.memory(), program), pt);
  }
}

TEST(AesOnPipeline, MaskedDecryptionCleanSliceAndCorrect) {
  AesAsmOptions opts;
  opts.decrypt = true;
  const Block ct = encrypt_block(fips_plain(), seq_key());
  const auto pipeline = core::MaskingPipeline::from_source(
      generate_aes_asm(seq_key(), ct, opts), compiler::Policy::kSelective);
  for (const auto& d : pipeline.mask_result().slice.diagnostics) {
    ADD_FAILURE() << "diagnostic: " << d.message;
  }
  sim::Pipeline machine(pipeline.program());
  machine.run();
  EXPECT_EQ(read_cipher(machine.memory(), pipeline.program()), fips_plain());
}

TEST(AesOnPipeline, InterpreterAgrees) {
  const auto program =
      assembler::assemble(generate_aes_asm(seq_key(), fips_plain()));
  sim::Interpreter interp(program);
  interp.run();
  EXPECT_EQ(read_cipher(interp.memory(), program),
            encrypt_block(fips_plain(), seq_key()));
}

}  // namespace
}  // namespace emask::aes
