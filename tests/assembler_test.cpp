#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "isa/instruction.hpp"
#include "util/rng.hpp"

namespace emask::assembler {
namespace {

using isa::Opcode;

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("main:\n  halt\n");
  ASSERT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.text[0].op, Opcode::kHalt);
  EXPECT_EQ(p.entry(), 0u);
}

TEST(Assembler, EntryDefaultsToZeroWithoutMain) {
  const Program p = assemble("start:\n  nop\n  halt\n");
  EXPECT_EQ(p.entry(), 0u);
}

TEST(Assembler, DataWordsAndExtents) {
  const Program p = assemble(R"(
.data
a: .word 1, 2, 3
b: .word 0xdeadbeef
c: .space 8
.text
  halt
)");
  const DataSymbol* a = p.find_symbol("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->address, kDataBase);
  EXPECT_EQ(a->size_bytes, 12u);
  EXPECT_EQ(p.initial_word(kDataBase + 4), 2u);
  const DataSymbol* b = p.find_symbol("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(p.initial_word(b->address), 0xDEADBEEFu);
  const DataSymbol* c = p.find_symbol("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->size_bytes, 8u);
  EXPECT_EQ(p.symbol_at(kDataBase + 13), b);   // a:[0,12) b:[12,16) c:[16,24)
  EXPECT_EQ(p.symbol_at(kDataBase + 17), c);
  EXPECT_EQ(p.symbol_at(kDataBase + 100), nullptr);
}

TEST(Assembler, AlignDirective) {
  const Program p = assemble(R"(
.data
a: .space 3
   .align 2
b: .word 7
.text
  halt
)");
  EXPECT_EQ(p.find_symbol("b")->address % 4, 0u);
  EXPECT_EQ(p.initial_word(p.find_symbol("b")->address), 7u);
}

TEST(Assembler, SecretAndDeclassifiedAnnotations) {
  const Program p = assemble(R"(
.data
key: .word 1
.secret key
out: .space 4
.declassified out
.text
  halt
)");
  EXPECT_TRUE(p.find_symbol("key")->secret);
  EXPECT_FALSE(p.find_symbol("key")->declassified);
  EXPECT_TRUE(p.find_symbol("out")->declassified);
}

TEST(Assembler, SecretUnknownSymbolFails) {
  EXPECT_THROW(assemble(".data\n.secret nothere\n.text\n halt\n"), AsmError);
}

TEST(Assembler, InstructionOperands) {
  const Program p = assemble(R"(
main:
  addu $t0, $t1, $t2
  addiu $t0, $t0, -5
  lw  $s0, 12($sp)
  sw  $s0, -4($sp)
  sll $a0, $a1, 7
  lui $a2, 0x1234
  jr  $ra
  halt
)");
  EXPECT_EQ(p.text[0], isa::make_rtype(Opcode::kAddu, 8, 9, 10));
  EXPECT_EQ(p.text[1], isa::make_itype(Opcode::kAddiu, 8, 8, -5));
  EXPECT_EQ(p.text[2], isa::make_loadstore(Opcode::kLw, 16, 12, 29));
  EXPECT_EQ(p.text[3], isa::make_loadstore(Opcode::kSw, 16, -4, 29));
  EXPECT_EQ(p.text[4], isa::make_shift(Opcode::kSll, 4, 5, 7));
  EXPECT_EQ(p.text[5], isa::make_itype(Opcode::kLui, 6, 0, 0x1234));
  EXPECT_EQ(p.text[6].op, Opcode::kJr);
  EXPECT_EQ(p.text[6].rs, isa::kRa);
}

TEST(Assembler, BranchTargetsAreRelativeWords) {
  const Program p = assemble(R"(
main:
loop:
  nop
  bne $t0, $t1, loop
  beq $zero, $zero, done
  nop
done:
  halt
)");
  EXPECT_EQ(p.text[1].imm, -2);  // back to loop
  EXPECT_EQ(p.text[2].imm, 1);   // skip one instruction
}

TEST(Assembler, JumpTargetsAreAbsoluteIndices) {
  const Program p = assemble(R"(
main:
  j end
  nop
end:
  halt
)");
  EXPECT_EQ(p.text[0].op, Opcode::kJ);
  EXPECT_EQ(p.text[0].imm, 2);
}

TEST(Assembler, PseudoExpansions) {
  const Program p = assemble(R"(
.data
buf: .word 9
.text
main:
  move $t0, $t1
  li $t2, 100
  li $t3, 0x12345
  la $t4, buf
  b main
  halt
)");
  // move -> addu rd, rs, $zero
  EXPECT_EQ(p.text[0], isa::make_rtype(Opcode::kAddu, 8, 9, 0));
  // small li -> addiu
  EXPECT_EQ(p.text[1], isa::make_itype(Opcode::kAddiu, 10, 0, 100));
  // large li -> lui+ori
  EXPECT_EQ(p.text[2].op, Opcode::kLui);
  EXPECT_EQ(p.text[2].imm, 0x1);
  EXPECT_EQ(p.text[3].op, Opcode::kOri);
  EXPECT_EQ(p.text[3].imm, 0x2345);
  // la -> lui+ori of the symbol address
  EXPECT_EQ(p.text[4].op, Opcode::kLui);
  EXPECT_EQ(p.text[4].imm, static_cast<std::int32_t>(kDataBase >> 16));
  EXPECT_EQ(p.text[5].op, Opcode::kOri);
  // b -> beq $zero,$zero
  EXPECT_EQ(p.text[6].op, Opcode::kBeq);
  EXPECT_EQ(p.text[6].rs, isa::kZero);
  EXPECT_EQ(p.text[6].imm, -7);
}

TEST(Assembler, LabelSizingConsistentWithPseudoExpansion) {
  // A label after a 2-instruction pseudo must account for both slots.
  const Program p = assemble(R"(
.data
buf: .word 0
.text
main:
  la $t0, buf
after:
  halt
)");
  EXPECT_EQ(p.text_labels.at("after"), 2u);
}

TEST(Assembler, SecureSpellings) {
  const Program p = assemble(R"(
main:
  slw  $t0, 0($t1)
  ssw  $t0, 0($t1)
  sxor $t0, $t1, $t2
  ssll $t0, $t1, 3
  smove $t0, $t1
  saddu $t0, $t1, $t2
  sori $t0, $t1, 1
  halt
)");
  for (std::size_t i = 0; i + 1 < p.text.size(); ++i) {
    EXPECT_TRUE(p.text[i].secure) << i;
  }
  EXPECT_EQ(p.text[0].op, Opcode::kLw);
  EXPECT_EQ(p.text[2].op, Opcode::kXor);
  EXPECT_EQ(p.text[4].op, Opcode::kAddu);  // smove
}

TEST(Assembler, SecurePrefixOnNonSecurableRejected) {
  EXPECT_THROW(assemble("main:\n  ssubu $t0, $t1, $t2\n"), AsmError);
  EXPECT_THROW(assemble("main:\n  sbeq $t0, $t1, main\n"), AsmError);
}

TEST(Assembler, PlainShiftMnemonicsNotMisparsedAsSecure) {
  // "sll"/"sra"/"slt"/"sw" all start with 's' but are ordinary opcodes.
  const Program p = assemble(R"(
main:
  sll $t0, $t1, 1
  sra $t0, $t1, 1
  slt $t0, $t1, $t2
  sw  $t0, 0($t1)
  subu $t0, $t1, $t2
  halt
)");
  for (const auto& inst : p.text) EXPECT_FALSE(inst.secure);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
# leading comment
main:   ; trailing comment style 2
  nop   # mid comment

  halt
)");
  EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, MultipleLabelsOneLocation) {
  const Program p = assemble("a:\nb:  nop\n  halt\n");
  EXPECT_EQ(p.text_labels.at("a"), 0u);
  EXPECT_EQ(p.text_labels.at("b"), 0u);
}

TEST(Assembler, ErrorsCarrySourceLine) {
  try {
    (void)assemble("main:\n  nop\n  bogus $t0\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_THROW(assemble("a:\n nop\na:\n halt\n"), AsmError);
}

TEST(Assembler, UndefinedLabelRejected) {
  EXPECT_THROW(assemble("main:\n  b nowhere\n"), AsmError);
  EXPECT_THROW(assemble("main:\n  la $t0, nosym\n"), AsmError);
}

TEST(Assembler, WrongOperandCountRejected) {
  EXPECT_THROW(assemble("main:\n  addu $t0, $t1\n"), AsmError);
  EXPECT_THROW(assemble("main:\n  halt $t0\n"), AsmError);
}

TEST(Assembler, OutOfRangeImmediateRejected) {
  EXPECT_THROW(assemble("main:\n  addiu $t0, $t1, 100000\n"), AsmError);
  EXPECT_THROW(assemble("main:\n  sll $t0, $t1, 40\n"), AsmError);
}

// Property: every instruction the generators can produce prints (via
// to_string) in a form the assembler parses back to the identical
// instruction — listings from `emask-run --listing` are valid input again.
TEST(Assembler, InstructionPrintParseRoundTrip) {
  util::Rng rng(0x707);
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto op = static_cast<isa::Opcode>(
        rng.next_below(static_cast<std::uint64_t>(isa::kNumOpcodes)));
    const auto& oi = isa::info(op);
    // Branch/jump targets print as resolved numbers, which only reassemble
    // in context; skip control flow for this property.
    if (oi.is_branch || oi.is_jump) continue;
    isa::Instruction inst;
    inst.op = op;
    inst.secure = oi.securable && (rng.next_u64() & 1) != 0;
    switch (oi.format) {
      case isa::Format::kRegister:
        inst.rd = static_cast<isa::Reg>(rng.next_below(32));
        inst.rs = static_cast<isa::Reg>(rng.next_below(32));
        inst.rt = static_cast<isa::Reg>(rng.next_below(32));
        break;
      case isa::Format::kShiftImm:
        inst.rd = static_cast<isa::Reg>(rng.next_below(32));
        inst.rt = static_cast<isa::Reg>(rng.next_below(32));
        inst.imm = static_cast<std::int32_t>(rng.next_below(32));
        break;
      case isa::Format::kImmediate:
        inst.rt = static_cast<isa::Reg>(rng.next_below(32));
        if (op != isa::Opcode::kLui) {
          inst.rs = static_cast<isa::Reg>(rng.next_below(32));
        }
        inst.imm = (op == isa::Opcode::kAndi || op == isa::Opcode::kOri ||
                    op == isa::Opcode::kXori || op == isa::Opcode::kLui)
                       ? static_cast<std::int32_t>(rng.next_below(65536))
                       : static_cast<std::int32_t>(rng.next_below(65536)) -
                             32768;
        break;
      case isa::Format::kLoadStore:
        inst.rt = static_cast<isa::Reg>(rng.next_below(32));
        inst.rs = static_cast<isa::Reg>(rng.next_below(32));
        inst.imm =
            static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
        break;
      default:
        break;
    }
    const Program p = assemble("main:\n  " + inst.to_string() + "\n");
    ASSERT_EQ(p.text.size(), 1u) << inst.to_string();
    EXPECT_EQ(p.text[0], inst) << inst.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 1500);
}

TEST(Assembler, PokeWordUpdatesImage) {
  Program p = assemble(".data\nx: .word 1\n.text\n halt\n");
  p.poke_word(kDataBase, 42);
  EXPECT_EQ(p.initial_word(kDataBase), 42u);
  EXPECT_THROW(p.poke_word(kDataBase + 4, 0), std::out_of_range);
}

TEST(Assembler, ForkMarkerRecordsInstructionIndex) {
  const Program p = assemble(R"(
main:
  li $t0, 1
  li $t1, 2
  fork
  addu $t2, $t0, $t1
  halt
)");
  ASSERT_TRUE(p.fork_point.has_value());
  EXPECT_EQ(*p.fork_point, 2u);
  // The marker assembles to a retired no-op, so it costs one slot and one
  // retirement but changes no architectural state.
  EXPECT_EQ(p.text[*p.fork_point], isa::make_nop());
  EXPECT_EQ(p.text.size(), 5u);
}

TEST(Assembler, NoForkMarkerMeansNoForkPoint) {
  const Program p = assemble("main:\n  halt\n");
  EXPECT_FALSE(p.fork_point.has_value());
}

TEST(Assembler, DuplicateForkMarkerRejected) {
  EXPECT_THROW(assemble("main:\n  fork\n  fork\n  halt\n"), AsmError);
}

TEST(Assembler, ForkMarkerTakesNoOperands) {
  EXPECT_THROW(assemble("main:\n  fork $t0\n  halt\n"), AsmError);
}

}  // namespace
}  // namespace emask::assembler
