// Extended attack toolkit: correlation power analysis (CPA) and TVLA
// fixed-vs-random leakage assessment.
#include <gtest/gtest.h>

#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "analysis/generic_cpa.hpp"
#include "analysis/key_recovery.hpp"
#include "analysis/tvla.hpp"
#include "core/masking_pipeline.hpp"
#include "des/des.hpp"
#include "util/rng.hpp"

namespace emask::analysis {
namespace {

TEST(Cpa, PredictWeightRange) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int w = CpaAttack::predict_weight(
        rng.next_u64(), static_cast<int>(rng.next_below(8)),
        static_cast<int>(rng.next_below(64)));
    EXPECT_GE(w, 0);
    EXPECT_LE(w, 4);
  }
}

TEST(Cpa, WeightIsPopcountOfDpaPredictedBits) {
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t pt = rng.next_u64();
    const int sbox = static_cast<int>(rng.next_below(8));
    const int guess = static_cast<int>(rng.next_below(64));
    int sum = 0;
    for (int bit = 0; bit < 4; ++bit) {
      sum += DpaAttack::predict_bit(pt, sbox, bit, guess);
    }
    EXPECT_EQ(CpaAttack::predict_weight(pt, sbox, guess), sum);
  }
}

TEST(Cpa, RecoversKeyFromSyntheticHammingLeakage) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const int truth = DpaAttack::true_subkey_chunk(key, 5);
  CpaConfig cfg;
  cfg.sbox = 5;
  CpaAttack attack(cfg);
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t pt = rng.next_u64();
    std::vector<double> v(50);
    for (auto& s : v) s = 100.0 + rng.next_gaussian();
    v[23] += 2.0 * CpaAttack::predict_weight(pt, 5, truth);
    attack.add_trace(pt, Trace(std::move(v)));
  }
  const CpaResult r = attack.solve();
  EXPECT_EQ(r.best_guess, truth);
  EXPECT_GT(r.best_corr, 0.8);
  EXPECT_GT(r.margin(), 1.5);
}

TEST(Cpa, RejectsBadSbox) {
  CpaConfig bad;
  bad.sbox = -1;
  EXPECT_THROW(CpaAttack{bad}, std::invalid_argument);
}

TEST(Cpa, DegenerateCasesReturnNoGuess) {
  CpaAttack attack(CpaConfig{});
  EXPECT_EQ(attack.solve().best_guess, -1);
  attack.add_trace(1, Trace(std::vector<double>(8, 1.0)));
  EXPECT_EQ(attack.solve().best_guess, -1);  // fewer than 2 traces
}

TEST(Cpa, RecoversKeyFromRealUnmaskedTraces) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto device = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  CpaConfig cfg;
  cfg.sbox = 0;
  cfg.window_begin = 3000;
  cfg.window_end = 13000;
  CpaAttack attack(cfg);
  util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt, device.run_des(key, pt, 13000).trace);
  }
  const CpaResult r = attack.solve();
  EXPECT_EQ(r.best_guess, DpaAttack::true_subkey_chunk(key, 0));
  EXPECT_GT(r.margin(), 1.1);
}

TEST(Cpa, MaskedTracesYieldNoCorrelation) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto device = core::MaskingPipeline::des(compiler::Policy::kSelective);
  CpaConfig cfg;
  cfg.sbox = 0;
  cfg.window_begin = 3000;
  cfg.window_end = 13000;
  CpaAttack attack(cfg);
  util::Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt, device.run_des(key, pt, 13000).trace);
  }
  // Every cycle in the secured window has zero variance across traces, so
  // every correlation is degenerate: no guess can be distinguished.
  EXPECT_EQ(attack.solve().best_corr, 0.0);
}

// ---- Key reconstruction from K1 ----

TEST(KeyRecovery, SourceBitMapIsConsistentWithKeySchedule) {
  // Flipping key bit kpos must flip exactly the K1 bits that map to it.
  util::Rng rng(0x4B);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t key = rng.next_u64();
    for (int i = 0; i < 48; ++i) {
      const int kpos = k1_source_key_bit(i);
      const std::uint64_t flipped = key ^ (1ull << (64 - kpos));
      const std::uint64_t k1a = des::key_schedule(key).subkeys[0];
      const std::uint64_t k1b = des::key_schedule(flipped).subkeys[0];
      EXPECT_EQ((k1a ^ k1b) >> (47 - i) & 1u, 1u) << "bit " << i;
    }
  }
}

TEST(KeyRecovery, ReconstructsFullKeyFromK1) {
  util::Rng rng(0x4C);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t key = des::with_odd_parity(rng.next_u64());
    const std::uint64_t pt = rng.next_u64();
    const std::uint64_t ct = des::encrypt_block(pt, key);
    const std::uint64_t k1 = des::key_schedule(key).subkeys[0];
    const auto recovered = reconstruct_key(k1, pt, ct);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, key);
  }
}

TEST(KeyRecovery, WrongK1Fails) {
  const std::uint64_t key = des::with_odd_parity(0x133457799BBCDFF1ull);
  const std::uint64_t pt = 42, ct = des::encrypt_block(pt, key);
  const std::uint64_t k1 = des::key_schedule(key).subkeys[0];
  EXPECT_FALSE(reconstruct_key(k1 ^ 0b100100ull, pt, ct).has_value());
}

// ---- GenericCpa (the engine the AES attack uses with 256 guesses) ----

TEST(GenericCpa, ValidatesInputs) {
  EXPECT_THROW(GenericCpa(0), std::invalid_argument);
  GenericCpa cpa(4);
  EXPECT_THROW(cpa.add_trace(std::vector<int>(3), Trace({1, 2})),
               std::invalid_argument);
  cpa.add_trace(std::vector<int>{0, 1, 2, 3}, Trace({1, 2}));
  EXPECT_THROW(cpa.add_trace(std::vector<int>{0, 1, 2, 3}, Trace({1})),
               std::invalid_argument);
}

TEST(GenericCpa, RecoversSyntheticGuess) {
  GenericCpa cpa(256);
  util::Rng rng(7);
  // Guess 0xA7's hypothesis drives sample 11; others are random.
  for (int i = 0; i < 400; ++i) {
    std::vector<int> h(256);
    for (auto& x : h) x = static_cast<int>(rng.next_below(9));
    std::vector<double> v(32);
    for (auto& s : v) s = 50.0 + rng.next_gaussian();
    v[11] += 1.5 * h[0xA7];
    cpa.add_trace(h, Trace(std::move(v)));
  }
  const GenericCpaResult r = cpa.solve();
  EXPECT_EQ(r.best_guess, 0xA7);
  EXPECT_GT(r.margin(), 1.5);
}

TEST(GenericCpa, ConstantHypothesisIsDegenerate) {
  GenericCpa cpa(2);
  util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> v(8);
    for (auto& s : v) s = rng.next_gaussian();
    cpa.add_trace({1, static_cast<int>(rng.next_below(2))},
                  Trace(std::move(v)));
  }
  const GenericCpaResult r = cpa.solve();
  EXPECT_EQ(r.corr_per_guess[0], 0.0);  // guess 0 never varies
}

// ---- TVLA ----

TEST(Tvla, FlagsSyntheticLeak) {
  TvlaAssessment tvla;
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> fixed(20), random(20);
    for (auto& s : fixed) s = 10.0 + rng.next_gaussian();
    for (auto& s : random) s = 10.0 + rng.next_gaussian();
    fixed[7] += 2.0;  // the fixed class consumes more at sample 7
    tvla.add_fixed(Trace(std::move(fixed)));
    tvla.add_random(Trace(std::move(random)));
  }
  const TvlaResult r = tvla.solve();
  EXPECT_TRUE(r.leaks());
  EXPECT_EQ(r.worst_cycle, 7u);
  EXPECT_GT(r.max_abs_t, TvlaResult::kTvlaThreshold);
}

TEST(Tvla, PassesWhenGroupsIdentical) {
  TvlaAssessment tvla;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> a(20), b(20);
    for (auto& s : a) s = rng.next_gaussian();
    for (auto& s : b) s = rng.next_gaussian();
    tvla.add_fixed(Trace(std::move(a)));
    tvla.add_random(Trace(std::move(b)));
  }
  // With 100 samples and threshold 4.5, false positives are (very) rare.
  EXPECT_FALSE(tvla.solve().leaks());
}

TEST(Tvla, RealDeviceAssessment) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto original = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  TvlaAssessment unmasked_tvla(3000, 13000);
  TvlaAssessment masked_tvla(3000, 13000);
  util::Rng rng(6);
  for (int i = 0; i < 15; ++i) {
    const std::uint64_t pt = rng.next_u64();
    unmasked_tvla.add_fixed(original.run_des(key, 1, 13000).trace);
    unmasked_tvla.add_random(original.run_des(key, pt, 13000).trace);
    masked_tvla.add_fixed(masked.run_des(key, 1, 13000).trace);
    masked_tvla.add_random(masked.run_des(key, pt, 13000).trace);
  }
  EXPECT_TRUE(unmasked_tvla.solve().leaks());
  const TvlaResult r = masked_tvla.solve();
  EXPECT_FALSE(r.leaks());
  EXPECT_EQ(r.max_abs_t, 0.0);  // the secured round is *exactly* constant
}

}  // namespace
}  // namespace emask::analysis
