#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace emask::campaign {
namespace {

namespace fs = std::filesystem;

constexpr const char* kMinimalSpec =
    "[campaign]\n"
    "name = t\n"
    "[axes]\n"
    "policy = original\n";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------- parsing

TEST(Spec, ParsesMinimalSpecWithDefaults) {
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.seed, 0xC0FFEEu);
  EXPECT_EQ(spec.key, 0x133457799BBCDFF1ull);
  EXPECT_EQ(spec.window_begin, 3000u);
  EXPECT_EQ(spec.window_end, 13000u);
  EXPECT_FALSE(spec.save_traces);
  ASSERT_EQ(spec.policies.size(), 1u);
  EXPECT_EQ(spec.hash.size(), 16u);
}

TEST(Spec, MissingCampaignSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, MissingNameIsError) {
  EXPECT_THROW(
      (void)CampaignSpec::parse("[campaign]\n[axes]\npolicy = original\n"),
      SpecError);
}

TEST(Spec, UnknownSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[mystery]\nx = 1\n"),
               SpecError);
}

TEST(Spec, UnknownKeyIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\nbogus = 1\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, MalformedSeedIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "seed = 12junk\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, BadAxisValueIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = stealthy\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "cipher = rsa\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "analysis = psychic\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "noise = -1\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "traces = 0\n"),
               SpecError);
}

TEST(Spec, EmptyListItemIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original,,selective\n"),
               SpecError);
}

TEST(Spec, DuplicateSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "[axes]\npolicy = selective\n"),
               SpecError);
}

TEST(Spec, MissingPolicyAxisIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"),
               SpecError);
}

TEST(Spec, UnknownTechFieldIsError) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[tech]\nflux_capacitance = 1.21\n"),
               SpecError);
}

TEST(Spec, TechOverrideAppliesToScenarios) {
  const CampaignSpec spec = CampaignSpec::parse(std::string(kMinimalSpec) +
                                                "[tech]\nvdd = 1.8\n");
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].tech_params(spec.tech_overrides).vdd, 1.8);
}

TEST(Spec, ReferenceKeysMustBePolicies) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[reference]\nstealthy = 46.4\n"),
               SpecError);
}

TEST(Spec, WindowMustBeOrdered) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "window_begin = 9000\n"
                                         "window_end = 100\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

// -------------------------------------------------------------- expansion

TEST(Spec, ExpandsCrossProductInOrder) {
  const CampaignSpec spec = CampaignSpec::parse(
      "[campaign]\nname = t\n"
      "[axes]\n"
      "policy = original, selective\n"
      "analysis = energy\n"
      "noise = 0, 10\n"
      "traces = 3\n");
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].id, "0000-des-original-energy-n0-t3-c0");
  EXPECT_EQ(scenarios[1].id, "0001-des-original-energy-n10-t3-c0");
  EXPECT_EQ(scenarios[2].id, "0002-des-selective-energy-n0-t3-c0");
  EXPECT_EQ(scenarios[3].id, "0003-des-selective-energy-n10-t3-c0");
  // Scenario seeds are decorrelated but reproducible.
  EXPECT_NE(scenarios[0].seed, scenarios[1].seed);
  EXPECT_EQ(scenarios[0].seed, spec.expand()[0].seed);
}

TEST(Spec, RejectsAnalysesTheCipherCannotRun) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = sha1\npolicy = original\n"
                                         "analysis = dpa\ntraces = 8\n")
                   .expand(),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = sha1\npolicy = original\n"
                                         "analysis = cpa\ntraces = 8\n")
                   .expand(),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = aes\npolicy = original\n"
                                         "analysis = second_order\n"
                                         "traces = 8\n")
                   .expand(),
               SpecError);
}

TEST(Spec, RejectsAttacksWithTooFewTraces) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "policy = original\n"
                                         "analysis = tvla\ntraces = 1\n")
                   .expand(),
               SpecError);
}

TEST(Spec, HashIsStableAndTextSensitive) {
  const CampaignSpec a = CampaignSpec::parse(kMinimalSpec);
  const CampaignSpec b = CampaignSpec::parse(kMinimalSpec);
  const CampaignSpec c =
      CampaignSpec::parse(std::string(kMinimalSpec) + "# tweak\n");
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.hash, c.hash);
}

// ------------------------------------------------------------ checkpoints

TEST(Checkpoint, RoundTripsThroughDisk) {
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_ckpt_test";
  fs::create_directories(dir);
  Scenario s;
  s.id = "0000-des-original-energy-n0-t1-c0";
  ScenarioResult r;
  r.encryptions = 3;
  r.total_cycles = 413247;
  r.total_energy_uj = 68.2166408846;
  r.metric = 1.0 / 3.0;  // exercise %.17g round-tripping
  r.best_guess = 6;
  r.true_value = 6;
  r.success = true;
  r.margin = 1.0544;
  const fs::path path = dir / "ckpt.ini";
  save_checkpoint(path.string(), s, r, "deadbeefdeadbeef");
  ScenarioResult loaded;
  ASSERT_TRUE(load_checkpoint(path.string(), s, "deadbeefdeadbeef", &loaded));
  EXPECT_EQ(loaded.encryptions, r.encryptions);
  EXPECT_EQ(loaded.total_cycles, r.total_cycles);
  EXPECT_DOUBLE_EQ(loaded.total_energy_uj, r.total_energy_uj);
  EXPECT_DOUBLE_EQ(loaded.metric, r.metric);
  EXPECT_EQ(loaded.best_guess, r.best_guess);
  EXPECT_TRUE(loaded.success);
  // A stale spec hash must invalidate the checkpoint.
  EXPECT_FALSE(
      load_checkpoint(path.string(), s, "0000000000000000", &loaded));
  fs::remove_all(dir);
}

// ------------------------------------------------------- resume identity

TEST(Runner, InterruptedResumeIsByteIdentical) {
  const std::string spec_text =
      "[campaign]\n"
      "name = resume_test\n"
      "window_end = 4000\n"
      "[axes]\n"
      "policy = original, selective\n"
      "analysis = energy, tvla\n"
      "traces = 4\n"
      "[reference]\n"
      "original = 46.4\n"
      "selective = 52.6\n";
  const CampaignSpec spec = CampaignSpec::parse(spec_text);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_resume_test";
  fs::remove_all(base);
  const fs::path dir_a = base / "uninterrupted";
  const fs::path dir_b = base / "interrupted";

  RunnerOptions options_a;
  options_a.out_dir = dir_a.string();
  options_a.jobs = 2;
  options_a.quiet = true;
  const CampaignReport full = CampaignRunner(spec, options_a).run();
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.executed, 4u);

  // Interrupt after 2 scenarios, then resume with a different thread count.
  RunnerOptions options_b = options_a;
  options_b.out_dir = dir_b.string();
  options_b.limit = 2;
  const CampaignReport partial = CampaignRunner(spec, options_b).run();
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed, 2u);
  EXPECT_FALSE(fs::exists(dir_b / "manifest.json"));

  RunnerOptions options_c = options_b;
  options_c.limit = 0;
  options_c.resume = true;
  options_c.jobs = 1;
  const CampaignReport resumed = CampaignRunner(spec, options_c).run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 2u);

  EXPECT_EQ(read_file(dir_a / "manifest.json"),
            read_file(dir_b / "manifest.json"));
  EXPECT_EQ(read_file(dir_a / "summary.csv"), read_file(dir_b / "summary.csv"));
  for (const auto& entry : fs::directory_iterator(dir_a / "scenarios")) {
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const fs::path other =
          dir_b / "scenarios" / entry.path().filename() / file.path().filename();
      EXPECT_EQ(read_file(file.path()), read_file(other))
          << "mismatch at " << other;
    }
  }
  fs::remove_all(base);
}

TEST(Runner, RerunWithDifferentSpecInSameDirIsError) {
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_guard_test";
  fs::remove_all(dir);
  RunnerOptions options;
  options.out_dir = dir.string();
  options.quiet = true;
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);
  EXPECT_TRUE(CampaignRunner(spec, options).run().complete);
  const CampaignSpec other =
      CampaignSpec::parse(std::string(kMinimalSpec) + "# changed\n");
  EXPECT_THROW((void)CampaignRunner(other, options).run(), SpecError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace emask::campaign
