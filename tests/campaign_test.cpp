#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/manifest.hpp"
#include "campaign/merge.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace emask::campaign {
namespace {

namespace fs = std::filesystem;

constexpr const char* kMinimalSpec =
    "[campaign]\n"
    "name = t\n"
    "[axes]\n"
    "policy = original\n";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------- parsing

TEST(Spec, ParsesMinimalSpecWithDefaults) {
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.seed, 0xC0FFEEu);
  EXPECT_EQ(spec.key, 0x133457799BBCDFF1ull);
  EXPECT_EQ(spec.window_begin, 3000u);
  EXPECT_EQ(spec.window_end, 13000u);
  EXPECT_FALSE(spec.save_traces);
  ASSERT_EQ(spec.policies.size(), 1u);
  EXPECT_EQ(spec.hash.size(), 16u);
}

TEST(Spec, MissingCampaignSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, MissingNameIsError) {
  EXPECT_THROW(
      (void)CampaignSpec::parse("[campaign]\n[axes]\npolicy = original\n"),
      SpecError);
}

TEST(Spec, UnknownSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[mystery]\nx = 1\n"),
               SpecError);
}

TEST(Spec, UnknownKeyIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\nbogus = 1\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, MalformedSeedIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "seed = 12junk\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

TEST(Spec, BadAxisValueIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = stealthy\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "cipher = rsa\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "analysis = psychic\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "noise = -1\n"),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "traces = 0\n"),
               SpecError);
}

TEST(Spec, EmptyListItemIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original,,selective\n"),
               SpecError);
}

TEST(Spec, DuplicateSectionIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "[axes]\npolicy = original\n"
                                         "[axes]\npolicy = selective\n"),
               SpecError);
}

TEST(Spec, MissingPolicyAxisIsError) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"),
               SpecError);
}

TEST(Spec, UnknownTechFieldIsError) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[tech]\nflux_capacitance = 1.21\n"),
               SpecError);
}

TEST(Spec, TechOverrideAppliesToScenarios) {
  const CampaignSpec spec = CampaignSpec::parse(std::string(kMinimalSpec) +
                                                "[tech]\nvdd = 1.8\n");
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].tech_params(spec.tech_overrides).vdd, 1.8);
}

TEST(Spec, ReferenceKeysMustBePolicies) {
  EXPECT_THROW((void)CampaignSpec::parse(std::string(kMinimalSpec) +
                                         "[reference]\nstealthy = 46.4\n"),
               SpecError);
}

TEST(Spec, WindowMustBeOrdered) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n"
                                         "window_begin = 9000\n"
                                         "window_end = 100\n"
                                         "[axes]\npolicy = original\n"),
               SpecError);
}

// -------------------------------------------------------------- expansion

TEST(Spec, ExpandsCrossProductInOrder) {
  const CampaignSpec spec = CampaignSpec::parse(
      "[campaign]\nname = t\n"
      "[axes]\n"
      "policy = original, selective\n"
      "analysis = energy\n"
      "noise = 0, 10\n"
      "traces = 3\n");
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].id, "0000-des-original-energy-n0-t3-c0");
  EXPECT_EQ(scenarios[1].id, "0001-des-original-energy-n10-t3-c0");
  EXPECT_EQ(scenarios[2].id, "0002-des-selective-energy-n0-t3-c0");
  EXPECT_EQ(scenarios[3].id, "0003-des-selective-energy-n10-t3-c0");
  // Scenario seeds are decorrelated but reproducible.
  EXPECT_NE(scenarios[0].seed, scenarios[1].seed);
  EXPECT_EQ(scenarios[0].seed, spec.expand()[0].seed);
}

TEST(Spec, RejectsAnalysesTheCipherCannotRun) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = sha1\npolicy = original\n"
                                         "analysis = dpa\ntraces = 8\n")
                   .expand(),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = sha1\npolicy = original\n"
                                         "analysis = cpa\ntraces = 8\n")
                   .expand(),
               SpecError);
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "cipher = aes\npolicy = original\n"
                                         "analysis = second_order\n"
                                         "traces = 8\n")
                   .expand(),
               SpecError);
}

TEST(Spec, RejectsAttacksWithTooFewTraces) {
  EXPECT_THROW((void)CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                         "policy = original\n"
                                         "analysis = tvla\ntraces = 1\n")
                   .expand(),
               SpecError);
}

TEST(Spec, HashIsStableAndTextSensitive) {
  const CampaignSpec a = CampaignSpec::parse(kMinimalSpec);
  const CampaignSpec b = CampaignSpec::parse(kMinimalSpec);
  const CampaignSpec c =
      CampaignSpec::parse(std::string(kMinimalSpec) + "# tweak\n");
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.hash, c.hash);
}

// ------------------------------------------------------------ checkpoints

TEST(Checkpoint, RoundTripsThroughDisk) {
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_ckpt_test";
  fs::create_directories(dir);
  Scenario s;
  s.id = "0000-des-original-energy-n0-t1-c0";
  ScenarioResult r;
  r.encryptions = 3;
  r.total_cycles = 413247;
  r.total_energy_uj = 68.2166408846;
  r.metric = 1.0 / 3.0;  // exercise %.17g round-tripping
  r.best_guess = 6;
  r.true_value = 6;
  r.success = true;
  r.margin = 1.0544;
  const fs::path path = dir / "ckpt.ini";
  save_checkpoint(path.string(), s, r, "deadbeefdeadbeef");
  ScenarioResult loaded;
  ASSERT_TRUE(load_checkpoint(path.string(), s, "deadbeefdeadbeef", &loaded));
  EXPECT_EQ(loaded.encryptions, r.encryptions);
  EXPECT_EQ(loaded.total_cycles, r.total_cycles);
  EXPECT_DOUBLE_EQ(loaded.total_energy_uj, r.total_energy_uj);
  EXPECT_DOUBLE_EQ(loaded.metric, r.metric);
  EXPECT_EQ(loaded.best_guess, r.best_guess);
  EXPECT_TRUE(loaded.success);
  // A stale spec hash must invalidate the checkpoint.
  EXPECT_FALSE(
      load_checkpoint(path.string(), s, "0000000000000000", &loaded));
  fs::remove_all(dir);
}

// ------------------------------------------------------- resume identity

TEST(Runner, InterruptedResumeIsByteIdentical) {
  const std::string spec_text =
      "[campaign]\n"
      "name = resume_test\n"
      "window_end = 4000\n"
      "[axes]\n"
      "policy = original, selective\n"
      "analysis = energy, tvla\n"
      "traces = 4\n"
      "[reference]\n"
      "original = 46.4\n"
      "selective = 52.6\n";
  const CampaignSpec spec = CampaignSpec::parse(spec_text);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_resume_test";
  fs::remove_all(base);
  const fs::path dir_a = base / "uninterrupted";
  const fs::path dir_b = base / "interrupted";

  RunnerOptions options_a;
  options_a.out_dir = dir_a.string();
  options_a.jobs = 2;
  options_a.quiet = true;
  const CampaignReport full = CampaignRunner(spec, options_a).run();
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.executed, 4u);

  // Interrupt after 2 scenarios, then resume with a different thread count.
  RunnerOptions options_b = options_a;
  options_b.out_dir = dir_b.string();
  options_b.limit = 2;
  const CampaignReport partial = CampaignRunner(spec, options_b).run();
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed, 2u);
  EXPECT_FALSE(fs::exists(dir_b / "manifest.json"));

  RunnerOptions options_c = options_b;
  options_c.limit = 0;
  options_c.resume = true;
  options_c.jobs = 1;
  const CampaignReport resumed = CampaignRunner(spec, options_c).run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 2u);

  EXPECT_EQ(read_file(dir_a / "manifest.json"),
            read_file(dir_b / "manifest.json"));
  EXPECT_EQ(read_file(dir_a / "summary.csv"), read_file(dir_b / "summary.csv"));
  for (const auto& entry : fs::directory_iterator(dir_a / "scenarios")) {
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const fs::path other =
          dir_b / "scenarios" / entry.path().filename() / file.path().filename();
      EXPECT_EQ(read_file(file.path()), read_file(other))
          << "mismatch at " << other;
    }
  }
  fs::remove_all(base);
}

// ---------------------------------------------------------------- sharding

TEST(Shard, ParsesAndValidates) {
  const ShardSpec s = ShardSpec::parse("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_TRUE(s.sharded());
  EXPECT_EQ(s.label(), "shard-2-of-5");
  EXPECT_FALSE(ShardSpec{}.sharded());
  EXPECT_THROW((void)ShardSpec::parse(""), SpecError);
  EXPECT_THROW((void)ShardSpec::parse("2"), SpecError);
  EXPECT_THROW((void)ShardSpec::parse("a/b"), SpecError);
  EXPECT_THROW((void)ShardSpec::parse("1/0"), SpecError);
  EXPECT_THROW((void)ShardSpec::parse("5/5"), SpecError);
  EXPECT_THROW((void)ShardSpec::parse("-1/4"), SpecError);
}

TEST(Shard, PartitionIsDisjointCompleteAndStable) {
  // Every scenario index lands in exactly one shard, and ownership is a
  // pure function of (index, N) — nothing about execution order or thread
  // count enters the partition.
  for (const std::size_t n : {1u, 2u, 3u, 7u}) {
    for (std::size_t index = 0; index < 29; ++index) {
      std::size_t owners = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ShardSpec shard;
        shard.index = i;
        shard.count = n;
        if (shard.owns(index)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "index " << index << " N=" << n;
    }
  }
}

TEST(Shard, CheckpointHashIsPartitionSpecific) {
  const std::string spec_hash = "deadbeefdeadbeef";
  EXPECT_EQ(ShardSpec{}.checkpoint_hash(spec_hash), spec_hash);
  ShardSpec a = ShardSpec::parse("0/2");
  ShardSpec b = ShardSpec::parse("1/2");
  ShardSpec c = ShardSpec::parse("0/3");
  EXPECT_NE(a.checkpoint_hash(spec_hash), spec_hash);
  EXPECT_NE(a.checkpoint_hash(spec_hash), b.checkpoint_hash(spec_hash));
  EXPECT_NE(a.checkpoint_hash(spec_hash), c.checkpoint_hash(spec_hash));
  // Same partition, same guard — resume within a shard still works.
  EXPECT_EQ(a.checkpoint_hash(spec_hash),
            ShardSpec::parse("0/2").checkpoint_hash(spec_hash));
}

TEST(Checkpoint, OtherPartitionsCheckpointIsStale) {
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_shard_ckpt";
  fs::create_directories(dir);
  Scenario s;
  s.id = "0000-des-original-energy-n0-t1-c0";
  ScenarioResult r;
  r.encryptions = 1;
  const std::string spec_hash = "deadbeefdeadbeef";
  const fs::path path = dir / "ckpt.ini";
  // A single-machine checkpoint must not satisfy a sharded resume...
  save_checkpoint(path.string(), s, r, spec_hash);
  ScenarioResult loaded;
  EXPECT_FALSE(load_checkpoint(
      path.string(), s, ShardSpec::parse("0/2").checkpoint_hash(spec_hash),
      &loaded));
  // ...and a shard's checkpoint must not leak into another partition.
  const std::string guard = ShardSpec::parse("0/2").checkpoint_hash(spec_hash);
  save_checkpoint(path.string(), s, r, guard);
  EXPECT_TRUE(load_checkpoint(path.string(), s, guard, &loaded));
  EXPECT_FALSE(load_checkpoint(
      path.string(), s, ShardSpec::parse("1/2").checkpoint_hash(spec_hash),
      &loaded));
  EXPECT_FALSE(load_checkpoint(path.string(), s, spec_hash, &loaded));
  fs::remove_all(dir);
}

constexpr const char* kMatrix4Spec =
    "[campaign]\n"
    "name = shard_test\n"
    "window_end = 4000\n"
    "[axes]\n"
    "policy = original, selective\n"
    "analysis = energy, tvla\n"
    "traces = 4\n";

TEST(Runner, ShardedMergeIsByteIdenticalToUnsharded) {
  const CampaignSpec spec = CampaignSpec::parse(kMatrix4Spec);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_shard_merge";
  fs::remove_all(base);

  RunnerOptions full;
  full.out_dir = (base / "full").string();
  full.jobs = 2;
  full.quiet = true;
  EXPECT_TRUE(CampaignRunner(spec, full).run().complete);

  // Shard 0 straight through; shard 1 interrupted after one scenario and
  // resumed — with different thread counts everywhere, since neither the
  // partition nor the manifest may depend on scheduling.
  RunnerOptions s0 = full;
  s0.out_dir = (base / "s0").string();
  s0.jobs = 1;
  s0.shard = ShardSpec::parse("0/2");
  const CampaignReport r0 = CampaignRunner(spec, s0).run();
  EXPECT_TRUE(r0.complete);
  EXPECT_EQ(r0.total_scenarios, 2u);

  RunnerOptions s1 = full;
  s1.out_dir = (base / "s1").string();
  s1.jobs = 2;
  s1.shard = ShardSpec::parse("1/2");
  s1.limit = 1;
  EXPECT_FALSE(CampaignRunner(spec, s1).run().complete);
  EXPECT_FALSE(fs::exists(base / "s1" / "manifest.shard-1-of-2.json"));
  s1.limit = 0;
  s1.resume = true;
  s1.jobs = 1;
  const CampaignReport r1 = CampaignRunner(spec, s1).run();
  EXPECT_TRUE(r1.complete);
  EXPECT_EQ(r1.resumed, 1u);
  EXPECT_EQ(r1.executed, 1u);
  EXPECT_TRUE(fs::exists(base / "s1" / "manifest.shard-1-of-2.json"));

  MergeOptions merge;
  merge.shard_dirs = {(base / "s0").string(), (base / "s1").string()};
  merge.out_dir = (base / "merged").string();
  merge.quiet = true;
  const MergeReport report = merge_shards(merge);
  EXPECT_EQ(report.shard_count, 2u);
  EXPECT_EQ(report.scenarios, 4u);
  EXPECT_TRUE(report.timings_merged);

  EXPECT_EQ(read_file(base / "merged" / "manifest.json"),
            read_file(base / "full" / "manifest.json"));
  EXPECT_EQ(read_file(base / "merged" / "summary.csv"),
            read_file(base / "full" / "summary.csv"));
  EXPECT_TRUE(fs::exists(base / "merged" / "timings.json"));
  fs::remove_all(base);
}

TEST(Runner, ShardedResumeIgnoresUnshardedCheckpoints) {
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_shard_guard";
  fs::remove_all(dir);
  RunnerOptions options;
  options.out_dir = dir.string();
  options.quiet = true;
  EXPECT_TRUE(CampaignRunner(spec, options).run().complete);
  // The single-machine checkpoint exists, but a sharded --resume runs under
  // a different partition guard and must re-simulate.
  options.resume = true;
  options.shard = ShardSpec::parse("0/2");
  const CampaignReport report = CampaignRunner(spec, options).run();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.executed, 1u);
  fs::remove_all(dir);
}

TEST(Runner, ShardOwningNoScenariosIsError) {
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);  // 1 scenario
  RunnerOptions options;
  options.out_dir =
      (fs::path(::testing::TempDir()) / "emask_shard_empty").string();
  options.quiet = true;
  options.shard = ShardSpec::parse("1/2");
  EXPECT_THROW((void)CampaignRunner(spec, options).run(), SpecError);
  fs::remove_all(options.out_dir);
}

// ------------------------------------------------------------------ merge
//
// The error paths are exercised on crafted shard directories (spec.ini +
// write_manifest with a ShardSpec) — no simulation needed, and each
// incompatibility is injected surgically.

std::vector<ScenarioOutcome> owned_outcomes(const std::vector<Scenario>& matrix,
                                            const ShardSpec& shard) {
  std::vector<ScenarioOutcome> outcomes;
  for (const Scenario& s : matrix) {
    if (!shard.owns(s.index)) continue;
    ScenarioOutcome o;
    o.scenario = s;
    o.result.encryptions = s.index + 1;
    o.result.total_cycles = (1ull << 60) + s.index;  // above 2^53
    o.result.total_energy_uj = 68.2166408846 + static_cast<double>(s.index);
    o.result.metric = s.index == 1 ? std::nan("") :  // null round-trip
                          static_cast<double>(s.index) / 3.0;
    o.result.margin = -2.5e-7;
    o.result.success = true;
    outcomes.push_back(o);
  }
  return outcomes;
}

void write_shard_dir(const fs::path& dir, const CampaignSpec& spec,
                     const ShardSpec& shard,
                     const std::vector<ScenarioOutcome>& outcomes) {
  fs::create_directories(dir);
  std::ofstream out(dir / "spec.ini", std::ios::binary);
  out << spec.text;
  out.close();
  write_manifest((dir / ("manifest." + shard.label() + ".json")).string(),
                 spec, outcomes, git_describe(), &shard);
}

struct MergeFixture {
  CampaignSpec spec = CampaignSpec::parse(kMatrix4Spec);
  std::vector<Scenario> matrix = spec.expand();
  ShardSpec shard0 = ShardSpec::parse("0/2");
  ShardSpec shard1 = ShardSpec::parse("1/2");
  fs::path base;
  MergeOptions options;

  explicit MergeFixture(const char* name) {
    base = fs::path(::testing::TempDir()) / name;
    fs::remove_all(base);
    options.out_dir = (base / "merged").string();
    options.quiet = true;
  }
  ~MergeFixture() { fs::remove_all(base); }

  void add(const char* dir_name, const ShardSpec& shard,
           const std::vector<ScenarioOutcome>& outcomes) {
    write_shard_dir(base / dir_name, spec, shard, outcomes);
    options.shard_dirs.push_back((base / dir_name).string());
  }
};

TEST(Merge, ReassemblesCraftedShardsByteIdentically) {
  MergeFixture f("emask_merge_ok");
  f.add("s0", f.shard0, owned_outcomes(f.matrix, f.shard0));
  f.add("s1", f.shard1, owned_outcomes(f.matrix, f.shard1));
  const MergeReport report = merge_shards(f.options);
  EXPECT_EQ(report.shard_count, 2u);
  EXPECT_EQ(report.scenarios, 4u);
  EXPECT_FALSE(report.timings_merged);  // crafted dirs carry no timings
  EXPECT_FALSE(fs::exists(f.base / "merged" / "timings.json"));

  // The merged manifest must byte-match what a single write_manifest over
  // the whole matrix emits — including the NaN metric, which survives the
  // JSON round trip as null.
  std::vector<ScenarioOutcome> whole;
  for (const ScenarioOutcome& o : owned_outcomes(f.matrix, f.shard0))
    whole.push_back(o);
  for (const ScenarioOutcome& o : owned_outcomes(f.matrix, f.shard1))
    whole.push_back(o);
  std::sort(whole.begin(), whole.end(),
            [](const ScenarioOutcome& a, const ScenarioOutcome& b) {
              return a.scenario.index < b.scenario.index;
            });
  const fs::path expected = f.base / "expected_manifest.json";
  write_manifest(expected.string(), f.spec, whole, git_describe());
  EXPECT_EQ(read_file(f.base / "merged" / "manifest.json"),
            read_file(expected));
  EXPECT_NE(read_file(expected).find("\"metric\": null"), std::string::npos);
}

TEST(Merge, SpecHashMismatchIsError) {
  MergeFixture f("emask_merge_hash");
  f.add("s0", f.shard0, owned_outcomes(f.matrix, f.shard0));
  const CampaignSpec other =
      CampaignSpec::parse(std::string(kMatrix4Spec) + "# tweak\n");
  write_shard_dir(f.base / "s1", other, f.shard1,
                  owned_outcomes(other.expand(), f.shard1));
  f.options.shard_dirs.push_back((f.base / "s1").string());
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, MissingShardIsError) {
  MergeFixture f("emask_merge_missing");
  f.add("s0", f.shard0, owned_outcomes(f.matrix, f.shard0));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, DuplicateShardIsError) {
  MergeFixture f("emask_merge_dup");
  f.add("s0", f.shard0, owned_outcomes(f.matrix, f.shard0));
  f.add("s0_again", f.shard0, owned_outcomes(f.matrix, f.shard0));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, UnshardedDirectoryIsError) {
  MergeFixture f("emask_merge_unsharded");
  // A directory holding only an unsharded run: spec.ini + manifest.json.
  fs::create_directories(f.base / "plain");
  std::ofstream(f.base / "plain" / "spec.ini") << f.spec.text;
  write_manifest((f.base / "plain" / "manifest.json").string(), f.spec,
                 owned_outcomes(f.matrix, ShardSpec{}), git_describe());
  f.options.shard_dirs.push_back((f.base / "plain").string());
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, UnknownScenarioIsError) {
  MergeFixture f("emask_merge_unknown");
  auto outcomes = owned_outcomes(f.matrix, f.shard0);
  outcomes[0].scenario.id = "9999-not-in-this-matrix";
  f.add("s0", f.shard0, outcomes);
  f.add("s1", f.shard1, owned_outcomes(f.matrix, f.shard1));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, ForeignScenarioIsError) {
  MergeFixture f("emask_merge_foreign");
  // Shard 0 claims a scenario that shard 1 owns.
  auto outcomes = owned_outcomes(f.matrix, f.shard0);
  outcomes.push_back(owned_outcomes(f.matrix, f.shard1).front());
  f.add("s0", f.shard0, outcomes);
  f.add("s1", f.shard1, owned_outcomes(f.matrix, f.shard1));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, DuplicateScenarioIsError) {
  MergeFixture f("emask_merge_dupscenario");
  auto outcomes = owned_outcomes(f.matrix, f.shard0);
  outcomes.push_back(outcomes.front());
  f.add("s0", f.shard0, outcomes);
  f.add("s1", f.shard1, owned_outcomes(f.matrix, f.shard1));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Merge, MissingScenarioIsError) {
  MergeFixture f("emask_merge_partial");
  auto outcomes = owned_outcomes(f.matrix, f.shard0);
  outcomes.pop_back();  // shard 0 never completed its last scenario
  f.add("s0", f.shard0, outcomes);
  f.add("s1", f.shard1, owned_outcomes(f.matrix, f.shard1));
  EXPECT_THROW((void)merge_shards(f.options), SpecError);
}

TEST(Runner, RerunWithDifferentSpecInSameDirIsError) {
  const fs::path dir = fs::path(::testing::TempDir()) / "emask_guard_test";
  fs::remove_all(dir);
  RunnerOptions options;
  options.out_dir = dir.string();
  options.quiet = true;
  const CampaignSpec spec = CampaignSpec::parse(kMinimalSpec);
  EXPECT_TRUE(CampaignRunner(spec, options).run().complete);
  const CampaignSpec other =
      CampaignSpec::parse(std::string(kMinimalSpec) + "# changed\n");
  EXPECT_THROW((void)CampaignRunner(other, options).run(), SpecError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace emask::campaign
