// Core MaskingPipeline API behaviours.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "des/asm_generator.hpp"
#include "des/des.hpp"
#include "isa/encoding.hpp"
#include "util/rng.hpp"

namespace emask::core {
namespace {

TEST(MaskingPipeline, FromSourceCompilesAndRuns) {
  const auto p = MaskingPipeline::from_source(R"(
.data
x: .word 21
.text
main:
  la $t0, x
  lw $t1, 0($t0)
  addu $t1, $t1, $t1
  sw $t1, 0($t0)
  halt
)",
                                              compiler::Policy::kOriginal);
  const EncryptionRun run = p.run_raw();
  EXPECT_TRUE(run.sim.halted);
  EXPECT_GT(run.total_uj(), 0.0);
  EXPECT_EQ(run.trace.size(), run.sim.cycles);
}

TEST(MaskingPipeline, BadSourcePropagatesAsmError) {
  EXPECT_THROW(MaskingPipeline::from_source("main:\n  bogus\n",
                                            compiler::Policy::kOriginal),
               assembler::AsmError);
}

TEST(MaskingPipeline, StopAfterCyclesTruncates) {
  const auto p = MaskingPipeline::des(compiler::Policy::kOriginal);
  const EncryptionRun run = p.run_des(1, 2, /*stop_after_cycles=*/5000);
  EXPECT_EQ(run.trace.size(), 5000u);
  EXPECT_FALSE(run.sim.halted);
  EXPECT_EQ(run.cipher, 0u);  // truncated runs report no ciphertext
}

TEST(MaskingPipeline, TruncatedPrefixMatchesFullRun) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  const EncryptionRun full = p.run_des(3, 4);
  const EncryptionRun part = p.run_des(3, 4, 4000);
  for (std::size_t i = 0; i < part.trace.size(); ++i) {
    ASSERT_EQ(part.trace[i], full.trace[i]) << "cycle " << i;
  }
}

TEST(MaskingPipeline, CustomTechParamsChangeEnergyNotBehaviour) {
  energy::TechParams hot = energy::TechParams::smartcard_025um();
  hot.e_clock_tree *= 2.0;
  const auto base = MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto hotter = MaskingPipeline::des(compiler::Policy::kOriginal, hot);
  const auto r1 = base.run_des(7, 8);
  const auto r2 = hotter.run_des(7, 8);
  EXPECT_EQ(r1.cipher, r2.cipher);
  EXPECT_EQ(r1.sim.cycles, r2.sim.cycles);
  EXPECT_GT(r2.total_uj(), r1.total_uj());
}

TEST(MaskingPipeline, SimConfigCycleBudgetEnforced) {
  auto p = MaskingPipeline::des(compiler::Policy::kOriginal);
  sim::SimConfig config;
  config.max_cycles = 100;
  p.set_sim_config(config);
  EXPECT_THROW(p.run_des(1, 2), std::runtime_error);
}

TEST(MaskingPipeline, BreakdownTotalsMatchTrace) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  const EncryptionRun run = p.run_des(5, 6);
  EXPECT_NEAR(run.breakdown.total() * 1e6, run.total_uj(), 1e-6);
}

TEST(MaskingPipeline, SecureBitsSurviveEncoding) {
  // The secure bit the compiler sets must round-trip through the binary
  // encoding the fetch stage uses.
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  for (const auto& inst : p.program().text) {
    EXPECT_EQ(isa::decode(isa::encode(inst)), inst);
  }
}

TEST(PhaseProfile, TotalsMatchWholeRunAndCoverEveryCycle) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  assembler::Program image = p.program();
  des::poke_key(image, 0x133457799BBCDFF1ull);
  des::poke_plaintext(image, 0x0123456789ABCDEFull);
  const auto phases = core::profile_phases(p, image);
  const EncryptionRun run = p.run_des(0x133457799BBCDFF1ull,
                                      0x0123456789ABCDEFull);
  std::uint64_t cycles = 0;
  double uj = 0.0;
  for (const auto& phase : phases) {
    cycles += phase.cycles;
    uj += phase.energy_uj;
  }
  EXPECT_EQ(cycles, run.sim.cycles);
  EXPECT_NEAR(uj, run.total_uj(), 1e-6);
  // Phase table covers the whole text contiguously.
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].begin, phases[i - 1].end);
  }
  EXPECT_EQ(phases.back().end, p.program().text.size());
  // The sixteen-round phases dominate the run.
  double round_uj = 0.0;
  for (const auto& phase : phases) {
    if (phase.label != "ip_loop" && phase.label != "pc1_loop" &&
        phase.label != "fp_loop" && phase.label != "pre_r" &&
        phase.label != "pre_l" && phase.label != "main") {
      round_uj += phase.energy_uj;
    }
  }
  EXPECT_GT(round_uj / uj, 0.9);
}

TEST(MaskingPipeline, PolicyAccessorsConsistent) {
  const auto p = MaskingPipeline::des(compiler::Policy::kNaiveLoadStore);
  EXPECT_EQ(p.policy(), compiler::Policy::kNaiveLoadStore);
  EXPECT_EQ(p.mask_result().secured_count, [&] {
    std::size_t n = 0;
    for (const auto& inst : p.program().text) n += inst.secure;
    return n;
  }());
}

}  // namespace
}  // namespace emask::core
