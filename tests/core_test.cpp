// Core MaskingPipeline API behaviours.
#include <gtest/gtest.h>

#include <map>

#include "assembler/assembler.hpp"
#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "des/asm_generator.hpp"
#include "des/des.hpp"
#include "isa/encoding.hpp"
#include "util/rng.hpp"

namespace emask::core {
namespace {

TEST(MaskingPipeline, FromSourceCompilesAndRuns) {
  const auto p = MaskingPipeline::from_source(R"(
.data
x: .word 21
.text
main:
  la $t0, x
  lw $t1, 0($t0)
  addu $t1, $t1, $t1
  sw $t1, 0($t0)
  halt
)",
                                              compiler::Policy::kOriginal);
  const EncryptionRun run = p.run_raw();
  EXPECT_TRUE(run.sim.halted);
  EXPECT_GT(run.total_uj(), 0.0);
  EXPECT_EQ(run.trace.size(), run.sim.cycles);
}

TEST(MaskingPipeline, BadSourcePropagatesAsmError) {
  EXPECT_THROW(MaskingPipeline::from_source("main:\n  bogus\n",
                                            compiler::Policy::kOriginal),
               assembler::AsmError);
}

TEST(MaskingPipeline, StopAfterCyclesTruncates) {
  const auto p = MaskingPipeline::des(compiler::Policy::kOriginal);
  const EncryptionRun run = p.run_des(1, 2, /*stop_after_cycles=*/5000);
  EXPECT_EQ(run.trace.size(), 5000u);
  EXPECT_FALSE(run.sim.halted);
  EXPECT_EQ(run.cipher, 0u);  // truncated runs report no ciphertext
}

TEST(MaskingPipeline, TruncatedPrefixMatchesFullRun) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  const EncryptionRun full = p.run_des(3, 4);
  const EncryptionRun part = p.run_des(3, 4, 4000);
  for (std::size_t i = 0; i < part.trace.size(); ++i) {
    ASSERT_EQ(part.trace[i], full.trace[i]) << "cycle " << i;
  }
}

TEST(MaskingPipeline, CustomTechParamsChangeEnergyNotBehaviour) {
  energy::TechParams hot = energy::TechParams::smartcard_025um();
  hot.e_clock_tree *= 2.0;
  const auto base = MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto hotter = MaskingPipeline::des(compiler::Policy::kOriginal, hot);
  const auto r1 = base.run_des(7, 8);
  const auto r2 = hotter.run_des(7, 8);
  EXPECT_EQ(r1.cipher, r2.cipher);
  EXPECT_EQ(r1.sim.cycles, r2.sim.cycles);
  EXPECT_GT(r2.total_uj(), r1.total_uj());
}

TEST(MaskingPipeline, SimConfigCycleBudgetEnforced) {
  auto p = MaskingPipeline::des(compiler::Policy::kOriginal);
  sim::SimConfig config;
  config.max_cycles = 100;
  p.set_sim_config(config);
  EXPECT_THROW(p.run_des(1, 2), std::runtime_error);
}

TEST(MaskingPipeline, BreakdownTotalsMatchTrace) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  const EncryptionRun run = p.run_des(5, 6);
  EXPECT_NEAR(run.breakdown.total() * 1e6, run.total_uj(), 1e-6);
}

TEST(MaskingPipeline, SecureBitsSurviveEncoding) {
  // The secure bit the compiler sets must round-trip through the binary
  // encoding the fetch stage uses.
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  for (const auto& inst : p.program().text) {
    EXPECT_EQ(isa::decode(isa::encode(inst)), inst);
  }
}

TEST(PhaseProfile, TotalsMatchWholeRunAndCoverEveryCycle) {
  const auto p = MaskingPipeline::des(compiler::Policy::kSelective);
  assembler::Program image = p.program();
  des::poke_key(image, 0x133457799BBCDFF1ull);
  des::poke_plaintext(image, 0x0123456789ABCDEFull);
  const auto phases = core::profile_phases(p, image);
  const EncryptionRun run = p.run_des(0x133457799BBCDFF1ull,
                                      0x0123456789ABCDEFull);
  std::uint64_t cycles = 0;
  double uj = 0.0;
  for (const auto& phase : phases) {
    cycles += phase.cycles;
    uj += phase.energy_uj;
  }
  EXPECT_EQ(cycles, run.sim.cycles);
  EXPECT_NEAR(uj, run.total_uj(), 1e-6);
  // Phase table covers the whole text contiguously.
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].begin, phases[i - 1].end);
  }
  EXPECT_EQ(phases.back().end, p.program().text.size());
  // The sixteen-round phases dominate the run.
  double round_uj = 0.0;
  for (const auto& phase : phases) {
    if (phase.label != "ip_loop" && phase.label != "pc1_loop" &&
        phase.label != "fp_loop" && phase.label != "pre_r" &&
        phase.label != "pre_l" && phase.label != "main") {
      round_uj += phase.energy_uj;
    }
  }
  EXPECT_GT(round_uj / uj, 0.9);
}

TEST(MaskingPipeline, PolicyAccessorsConsistent) {
  const auto p = MaskingPipeline::des(compiler::Policy::kNaiveLoadStore);
  EXPECT_EQ(p.policy(), compiler::Policy::kNaiveLoadStore);
  EXPECT_EQ(p.mask_result().secured_count, [&] {
    std::size_t n = 0;
    for (const auto& inst : p.program().text) n += inst.secure;
    return n;
  }());
}

// --- Shared-prefix snapshot/fork capture -------------------------------

const MaskingPipeline& forkable(compiler::Policy policy) {
  static std::map<compiler::Policy, MaskingPipeline> cache;
  auto it = cache.find(policy);
  if (it == cache.end()) {
    des::DesAsmOptions opts;
    opts.hoist_key_schedule = true;
    it = cache.emplace(policy, MaskingPipeline::des(
                                   policy,
                                   energy::TechParams::smartcard_025um(),
                                   opts))
             .first;
  }
  return it->second;
}

constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
constexpr std::uint64_t kPlain = 0x0123456789ABCDEFull;

// The hoisted program is still correct DES, and the selective compiler
// still covers its whole slice (the hoisted key schedule introduces no
// unsecurable operations).
TEST(SnapshotFork, HoistedProgramEncryptsCorrectly) {
  const MaskingPipeline& p = forkable(compiler::Policy::kSelective);
  ASSERT_TRUE(p.has_fork_point());
  EXPECT_TRUE(p.mask_result().slice.diagnostics.empty());
  const EncryptionRun run = p.run_des(kKey, kPlain);
  EXPECT_EQ(run.cipher, des::encrypt_block(kPlain, kKey));
  EXPECT_EQ(run.cipher, 0x85E813540F0AB405ull);
}

// The headline contract: a forked run is bit-identical to a cold run —
// trace samples, sim counters, breakdown, and ciphertext.
TEST(SnapshotFork, ForkedRunIsBitIdenticalToColdRun) {
  for (const auto policy :
       {compiler::Policy::kOriginal, compiler::Policy::kSelective}) {
    const MaskingPipeline& p = forkable(policy);
    const DesSnapshot snap = p.snapshot_des(kKey);
    EXPECT_GT(snap.fork_cycle, 0u);
    EXPECT_EQ(snap.prefix.size(), snap.fork_cycle);
    for (const std::uint64_t pt : {kPlain, std::uint64_t{0}, ~std::uint64_t{0}}) {
      const EncryptionRun cold = p.run_des(kKey, pt);
      const EncryptionRun forked = p.run_des_from(snap, pt);
      EXPECT_EQ(forked.cipher, cold.cipher);
      EXPECT_EQ(forked.cipher, des::encrypt_block(pt, kKey));
      EXPECT_EQ(forked.sim.cycles, cold.sim.cycles);
      EXPECT_EQ(forked.sim.instructions, cold.sim.instructions);
      EXPECT_EQ(forked.sim.stalls, cold.sim.stalls);
      EXPECT_EQ(forked.trace.samples(), cold.trace.samples());
      EXPECT_EQ(forked.breakdown.total(), cold.breakdown.total());
    }
  }
}

// One snapshot serves many forks without interference (copy-on-write: no
// fork ever mutates the captured memory).
TEST(SnapshotFork, SnapshotIsReusableAcrossForks) {
  const MaskingPipeline& p = forkable(compiler::Policy::kOriginal);
  const DesSnapshot snap = p.snapshot_des(kKey);
  util::Rng rng(0xF0F0);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(p.run_des_from(snap, pt).cipher, des::encrypt_block(pt, kKey));
  }
}

// Budget boundaries around the fork point: a stop at or before the fork
// cycle falls back to a cold start; either way the emitted trace is the
// exact cold-run prefix, never longer than requested.
TEST(SnapshotFork, StopAfterCyclesBoundary) {
  const MaskingPipeline& p = forkable(compiler::Policy::kOriginal);
  const DesSnapshot snap = p.snapshot_des(kKey);
  const std::uint64_t fc = snap.fork_cycle;
  ASSERT_GT(fc, 2u);
  for (const std::uint64_t stop : {fc - 1, fc, fc + 1, fc + 500}) {
    const EncryptionRun forked = p.run_des_from(snap, kPlain, stop);
    const EncryptionRun cold = p.run_des(kKey, kPlain, stop);
    EXPECT_EQ(forked.trace.size(), stop) << "stop " << stop;
    EXPECT_EQ(forked.trace.samples(), cold.trace.samples())
        << "stop " << stop;
    EXPECT_EQ(forked.sim.cycles, cold.sim.cycles) << "stop " << stop;
  }
}

// Misuse is caught loudly.
TEST(SnapshotFork, SnapshotWithoutForkMarkerThrows) {
  const auto plain = MaskingPipeline::des(compiler::Policy::kOriginal);
  EXPECT_FALSE(plain.has_fork_point());
  EXPECT_THROW((void)plain.snapshot_des(kKey), std::logic_error);
}

TEST(SnapshotFork, ForeignSnapshotRejected) {
  const MaskingPipeline& p = forkable(compiler::Policy::kOriginal);
  const DesSnapshot snap = p.snapshot_des(kKey);
  const auto other = MaskingPipeline::des(compiler::Policy::kOriginal);
  EXPECT_THROW((void)other.run_des_from(snap, kPlain), std::invalid_argument);
}

}  // namespace
}  // namespace emask::core
